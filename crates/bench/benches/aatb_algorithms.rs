//! Bench behind Figures 9-11: wall-clock time of each of the five `A·Aᵀ·B`
//! algorithms on an instance with a small symmetric order (`d0`), using the
//! real kernels. In this regime the paper finds abundant anomalies: the
//! SYRK/SYMM-based algorithms 1 and 2 are the cheapest in FLOPs but the
//! GEMM-based algorithms are often faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lamb_expr::enumerate_aatb_algorithms;
use lamb_kernels::BlockConfig;
use lamb_perfmodel::{Executor, MachineModel, MeasuredExecutor};
use std::hint::black_box;
use std::time::Duration;

fn bench_aatb(c: &mut Criterion) {
    let (d0, d1, d2) = (120usize, 420, 520);
    let algorithms = enumerate_aatb_algorithms(d0, d1, d2);
    let mut group = c.benchmark_group("aatb_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (i, alg) in algorithms.iter().enumerate() {
        let id = BenchmarkId::new(
            format!("alg{}", i + 1),
            format!("{} ({} flops)", alg.kernel_summary(), alg.flops()),
        );
        group.bench_with_input(id, alg, |bench, alg| {
            let mut exec =
                MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 1, 0);
            bench.iter(|| black_box(exec.execute_algorithm(alg).seconds));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aatb);
criterion_main!(benches);
