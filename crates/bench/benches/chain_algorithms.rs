//! Bench behind Figures 6-8: wall-clock time of each of the six matrix-chain
//! algorithms on one skewed instance, using the real kernels. The expected
//! shape is that the algorithms differ noticeably and that the ranking does
//! not always follow the FLOP counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lamb_expr::enumerate_chain_algorithms;
use lamb_kernels::BlockConfig;
use lamb_perfmodel::{Executor, MachineModel, MeasuredExecutor};
use std::hint::black_box;
use std::time::Duration;

fn bench_chain(c: &mut Criterion) {
    // A skewed instance: small inner dimensions make the multiplication order
    // matter a lot.
    let dims = [260usize, 60, 230, 70, 190];
    let algorithms = enumerate_chain_algorithms(&dims).expect("valid chain");
    let mut group = c.benchmark_group("chain_algorithms");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (i, alg) in algorithms.iter().enumerate() {
        let id = BenchmarkId::new(format!("alg{}", i + 1), format!("{} flops", alg.flops()));
        group.bench_with_input(id, alg, |bench, alg| {
            let mut exec =
                MeasuredExecutor::new(MachineModel::generic_laptop(), BlockConfig::default(), 1, 0);
            bench.iter(|| black_box(exec.execute_algorithm(alg).seconds));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
