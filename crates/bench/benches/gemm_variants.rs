//! Ablation bench: naive vs blocked-serial vs blocked-parallel GEMM.
//!
//! Establishes that the packed/blocked kernel structure and the Rayon
//! parallelisation each contribute a meaningful speedup, i.e. that the
//! substrate kernels have a realistic efficiency ramp (DESIGN.md, ablation 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lamb_kernels::flops::gemm_flops;
use lamb_kernels::{gemm, gemm_naive, BlockConfig};
use lamb_matrix::random::random_seeded;
use lamb_matrix::{Matrix, Trans};
use std::hint::black_box;
use std::time::Duration;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_variants");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &size in &[128usize, 256] {
        let a = random_seeded(size, size, 1);
        let b = random_seeded(size, size, 2);
        group.throughput(Throughput::Elements(gemm_flops(size, size, size)));

        group.bench_with_input(BenchmarkId::new("naive", size), &size, |bench, _| {
            let mut out = Matrix::zeros(size, size);
            bench.iter(|| {
                gemm_naive(
                    Trans::No,
                    Trans::No,
                    1.0,
                    &a.view(),
                    &b.view(),
                    0.0,
                    &mut out.view_mut(),
                )
                .unwrap();
                black_box(&out);
            });
        });

        let serial = BlockConfig::serial();
        group.bench_with_input(
            BenchmarkId::new("blocked_serial", size),
            &size,
            |bench, _| {
                let mut out = Matrix::zeros(size, size);
                bench.iter(|| {
                    gemm(
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut out.view_mut(),
                        &serial,
                    )
                    .unwrap();
                    black_box(&out);
                });
            },
        );

        let parallel = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("blocked_parallel", size),
            &size,
            |bench, _| {
                let mut out = Matrix::zeros(size, size);
                bench.iter(|| {
                    gemm(
                        Trans::No,
                        Trans::No,
                        1.0,
                        &a.view(),
                        &b.view(),
                        0.0,
                        &mut out.view_mut(),
                        &parallel,
                    )
                    .unwrap();
                    black_box(&out);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
