//! Criterion bench behind Figure 1: throughput of the real GEMM, SYRK and
//! SYMM kernels on square operands of growing size. The reported throughput
//! (in FLOP/s) divided by the machine peak is the efficiency curve of the
//! paper's Figure 1; the expected shape is GEMM > SYMM ≳ SYRK with all three
//! ramping up with size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lamb_kernels::flops::{gemm_flops, symm_flops, syrk_flops};
use lamb_kernels::{gemm_new, symm_new, syrk_new, BlockConfig};
use lamb_matrix::random::random_seeded;
use lamb_matrix::{Side, Trans, Uplo};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let cfg = BlockConfig::default();
    let mut group = c.benchmark_group("kernel_efficiency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for &size in &[96usize, 192, 384] {
        let a = random_seeded(size, size, 1);
        let b = random_seeded(size, size, 2);
        let sym = {
            let mut s = random_seeded(size, size, 3);
            s.symmetrize_from(Uplo::Lower).unwrap();
            s
        };

        group.throughput(Throughput::Elements(gemm_flops(size, size, size)));
        group.bench_with_input(BenchmarkId::new("gemm", size), &size, |bench, _| {
            bench.iter(|| black_box(gemm_new(Trans::No, &a, Trans::No, &b, &cfg).unwrap()));
        });

        group.throughput(Throughput::Elements(syrk_flops(size, size)));
        group.bench_with_input(BenchmarkId::new("syrk", size), &size, |bench, _| {
            bench.iter(|| black_box(syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap()));
        });

        group.throughput(Throughput::Elements(symm_flops(size, size)));
        group.bench_with_input(BenchmarkId::new("symm", size), &size, |bench, _| {
            bench.iter(|| black_box(symm_new(Side::Left, Uplo::Lower, &sym, &b, &cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
