//! Bench for the algorithm-selection overhead: how long does it take to pick
//! an algorithm with each selection policy (FLOP counting only, versus
//! consulting the kernel performance model), and how much does the planner's
//! shared prediction cache recover on repeated selections? Selection cost
//! matters because run-time selection (symbolic sizes) sits on the critical
//! path of the evaluated expression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms, AatbExpression};
use lamb_perfmodel::SimulatedExecutor;
use lamb_plan::Planner;
use lamb_select::{Hybrid, MinFlops, MinPredictedTime, SelectionPolicy};
use std::hint::black_box;
use std::time::Duration;

fn bench_selection(c: &mut Criterion) {
    let chain = enumerate_chain_algorithms(&[331, 279, 338, 854, 427]).expect("valid chain");
    let aatb = enumerate_aatb_algorithms(227, 260, 549);
    let policies: Vec<Box<dyn SelectionPolicy>> = vec![
        Box::new(MinFlops),
        Box::new(MinPredictedTime),
        Box::new(Hybrid { flop_margin: 0.5 }),
    ];
    let mut group = c.benchmark_group("selection_strategies");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (label, algs) in [("chain", &chain), ("aatb", &aatb)] {
        for policy in &policies {
            let id = BenchmarkId::new(policy.name(), label);
            group.bench_with_input(id, algs, |bench, algs| {
                let mut exec = SimulatedExecutor::paper_like();
                bench.iter(|| black_box(policy.select(algs, &mut exec).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_planner_cache(c: &mut Criterion) {
    // Repeatedly planning the same instance with MinPredictedTime: the
    // second and later plans are dominated by prediction-cache hits.
    let expr = AatbExpression::new();
    let dims = [227usize, 260, 549];
    let mut group = c.benchmark_group("planner_prediction_cache");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::new("cold", "aatb"), &dims, |bench, dims| {
        bench.iter(|| {
            let planner = Planner::for_expression(&expr).policy(MinPredictedTime);
            black_box(planner.plan(&dims[..]).unwrap().chosen)
        });
    });
    group.bench_with_input(BenchmarkId::new("warm", "aatb"), &dims, |bench, dims| {
        let planner = Planner::for_expression(&expr).policy(MinPredictedTime);
        let _ = planner.plan(&dims[..]).unwrap();
        bench.iter(|| black_box(planner.plan(&dims[..]).unwrap().chosen));
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_planner_cache);
criterion_main!(benches);
