//! Bench for the algorithm-selection overhead: how long does it take to pick
//! an algorithm with each strategy (FLOP counting only, versus consulting the
//! kernel performance model)? Selection cost matters because run-time
//! selection (symbolic sizes) sits on the critical path of the evaluated
//! expression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lamb_expr::{enumerate_aatb_algorithms, enumerate_chain_algorithms};
use lamb_perfmodel::SimulatedExecutor;
use lamb_select::Strategy;
use std::hint::black_box;
use std::time::Duration;

fn bench_selection(c: &mut Criterion) {
    let chain = enumerate_chain_algorithms(&[331, 279, 338, 854, 427]);
    let aatb = enumerate_aatb_algorithms(227, 260, 549);
    let strategies = [
        Strategy::MinFlops,
        Strategy::MinPredictedTime,
        Strategy::Hybrid { flop_margin: 0.5 },
    ];
    let mut group = c.benchmark_group("selection_strategies");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (label, algs) in [("chain", &chain), ("aatb", &aatb)] {
        for strategy in strategies {
            let id = BenchmarkId::new(strategy.name(), label);
            group.bench_with_input(id, algs, |bench, algs| {
                let mut exec = SimulatedExecutor::paper_like();
                bench.iter(|| black_box(strategy.select(algs, &mut exec)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
