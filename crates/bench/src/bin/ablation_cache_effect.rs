//! Ablation: how many anomalies survive when inter-kernel cache effects are
//! removed from the time model?
//!
//! The paper notes that "most of the anomalies remained as such even after
//! filtering out the inter-kernel cache effects" — i.e. anomalies are mostly
//! explained by kernel performance profiles, not by cache interactions
//! between consecutive calls. This binary quantifies that on the simulator by
//! re-classifying the Experiment-1 anomalies with the cache-reuse model
//! disabled.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin ablation_cache_effect [-- --scale 0.2]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::{classify_instance, run_random_search};
use lamb_expr::AatbExpression;
use lamb_perfmodel::{AnalyticEfficiencyModel, MachineModel, SimulatedExecutor, SimulatorConfig};

fn main() {
    let opts = RunOptions::from_env();
    let expr = AatbExpression::new();

    // Baseline: the paper-like simulator with inter-kernel cache effects.
    let mut with_cache = SimulatedExecutor::paper_like();
    let search = run_random_search(&expr, &mut with_cache, &opts.aatb_search_config());
    println!(
        "Experiment 1 on A*A^T*B with inter-kernel cache effects: {} anomalies in {} samples ({:.2}%)",
        search.anomalies.len(),
        search.samples_drawn,
        100.0 * search.abundance()
    );

    // Ablation: identical efficiency model, but no cache reuse between calls.
    let mut no_cache = SimulatedExecutor::new(
        MachineModel::paper_xeon_silver_4210(),
        AnalyticEfficiencyModel::default(),
        SimulatorConfig {
            cache_reuse_gain: 0.0,
            ..SimulatorConfig::default()
        },
    );
    let mut survived = 0;
    for anomaly in &search.anomalies {
        let c = classify_instance(&expr, &mut no_cache, &anomaly.dims, search.threshold);
        if c.is_anomaly {
            survived += 1;
        }
    }
    let total = search.anomalies.len().max(1);
    println!(
        "after removing inter-kernel cache effects: {survived}/{} anomalies remain ({:.1}%)",
        search.anomalies.len(),
        100.0 * survived as f64 / total as f64
    );
    println!("paper reference: 'most of the anomalies remained as such even after filtering out the inter-kernel cache effects'");
}
