//! Ablation: how much faster are the selected algorithms when the selection
//! strategy combines FLOP counts with kernel performance profiles, compared
//! to the pure minimum-FLOP-count discriminant?
//!
//! This quantifies the paper's concluding conjecture ("combining FLOP counts
//! with kernel performance models will significantly improve our ability to
//! choose optimal algorithms").
//!
//! ```text
//! cargo run --release -p lamb-bench --bin ablation_strategies [-- --seed 3]
//! ```

use lamb_bench::RunOptions;
use lamb_expr::{AatbExpression, Expression, MatrixChainExpression};
use lamb_select::{evaluate_strategy, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = RunOptions::from_env();
    let instances = ((400.0 * opts.scale).ceil() as usize).max(20);
    let strategies = [
        Strategy::MinFlops,
        Strategy::MinPredictedTime,
        Strategy::Hybrid { flop_margin: 0.5 },
        Strategy::Oracle,
    ];

    for (name, num_dims, algorithms_of) in [
        (
            "matrix chain ABCD",
            5usize,
            Box::new(|dims: &[usize]| {
                MatrixChainExpression::abcd()
                    .algorithms(dims)
                    .expect("valid chain instance")
            }) as Box<dyn Fn(&[usize]) -> Vec<lamb_expr::Algorithm>>,
        ),
        (
            "A*A^T*B",
            3usize,
            Box::new(|dims: &[usize]| {
                AatbExpression::new()
                    .algorithms(dims)
                    .expect("valid aatb instance")
            }),
        ),
    ] {
        println!("==== strategy comparison on {name} ({instances} random instances) ====");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let sampled: Vec<Vec<usize>> = (0..instances)
            .map(|_| (0..num_dims).map(|_| rng.random_range(20..=1200)).collect())
            .collect();
        for strategy in strategies {
            let mut executor = opts.build_executor();
            let mut total_regret = 0.0;
            let mut optimal = 0;
            for dims in &sampled {
                let algs = algorithms_of(dims);
                let outcome = evaluate_strategy(strategy, &algs, executor.as_mut());
                total_regret += outcome.regret();
                if outcome.regret() < 1e-9 {
                    optimal += 1;
                }
            }
            println!(
                "  {:<28} mean slowdown vs optimum {:>6.2}%   optimal picks {:>5.1}%",
                strategy.name(),
                100.0 * total_regret / instances as f64,
                100.0 * optimal as f64 / instances as f64
            );
        }
    }
}
