//! Batch planning throughput: cold cache versus a warm calibration store.
//!
//! Generates a scenario-mixed workload of ≥100 parsed expression instances
//! (chains, Gram products and the triangular TRMM/TRSM family)
//! (the same generator that backs `lamb batch --demo`, with dimensions
//! snapped to a palette so kernel-call signatures genuinely repeat across
//! instances, as they do along the paper's Experiment-2 lines), then plans
//! it three ways:
//!
//! 1. **cold** — an empty prediction cache: every distinct kernel call is
//!    benchmarked through the executor;
//! 2. **warm** — a fresh planner whose cache is preloaded from a calibration
//!    store built out of the cold run's snapshot: planning never benchmarks;
//! 3. **warm+rerun** — the warm batch planned again (steady state of a
//!    long-lived server).
//!
//! By default the isolated-call benchmarks run the **real kernels** under a
//! quick version of the paper's protocol (3 repetitions, cache flushed), so
//! the cold phase pays genuine measurement time and the warm phase shows the
//! full value of the persistent store; the bench asserts the warm speedup,
//! and holds cold-versus-warm predictions to a tolerance (cold-phase workers
//! can race to benchmark the same timing key, and two wall-clock
//! measurements of the same call differ slightly). With
//! `--executor simulated` the benchmarks are analytic and nearly free — the
//! bench then only reports the (noise-level) timing difference and asserts
//! the structural wins: zero warm misses, bit-identical predictions.
//!
//! Reported per phase: wall time, expressions/second, cache hits/misses and
//! the speedup versus cold, as `batch_throughput.csv` in the results
//! harness.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin batch_throughput
//! cargo run --release -p lamb-bench --bin batch_throughput -- --executor simulated
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::{csv_from_rows, write_text};
use lamb_experiments::{all_scenarios, scenario_batch_requests};
use lamb_kernels::BlockConfig;
use lamb_perfmodel::{CalibrationStore, Executor, MachineModel, MeasuredExecutor};
use lamb_plan::{BatchOutcome, BatchPlanner, BatchRequest};

const TOP_K: usize = 8;

/// The quick measured protocol this bench defaults to: real kernels, 3
/// repetitions, an 8 MiB flush — enough to make benchmarks genuinely cost
/// wall-clock time without turning the bench into a coffee break.
fn quick_measured() -> Box<dyn Executor> {
    Box::new(MeasuredExecutor::new(
        MachineModel::generic_laptop(),
        BlockConfig::default(),
        3,
        8 * 1024 * 1024,
    ))
}

/// Snap every dimension to a small palette: serving traffic clusters around
/// recurring shapes, and recurring shapes are what a call-time store
/// amortises.
fn snap_dims(requests: Vec<BatchRequest>, palette: &[usize]) -> Vec<BatchRequest> {
    requests
        .into_iter()
        .map(|req| {
            let dims: Vec<usize> = req
                .dims
                .iter()
                .map(|&d| {
                    *palette
                        .iter()
                        .min_by_key(|&&p| p.abs_diff(d))
                        .expect("non-empty palette")
                })
                .collect();
            BatchRequest::new(req.expr, dims).expect("snapping preserves arity")
        })
        .collect()
}

fn phase_row(phase: &str, outcome: &BatchOutcome, cold_elapsed: f64) -> (Vec<String>, f64) {
    let stats = &outcome.stats;
    let speedup = if phase == "cold" {
        1.0
    } else if stats.elapsed_seconds > 0.0 {
        cold_elapsed / stats.elapsed_seconds
    } else {
        f64::INFINITY
    };
    println!(
        "{:>11}: {:8.4} s  {:>9.0} exprs/s  hits {:>6}  misses {:>6}  hit rate {:>5.1}%  speedup {:>7.2}x",
        phase,
        stats.elapsed_seconds,
        stats.expressions_per_second(),
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.hit_rate(),
        speedup,
    );
    let row = vec![
        phase.to_string(),
        stats.planned.to_string(),
        format!("{:.6}", stats.elapsed_seconds),
        format!("{:.1}", stats.expressions_per_second()),
        stats.cache_hits.to_string(),
        stats.cache_misses.to_string(),
        format!("{:.4}", stats.hit_rate()),
        format!("{speedup:.3}"),
    ];
    (row, speedup)
}

/// Compare cold and warm predictions. `max_rel_diff` is 0 for deterministic
/// executors (bit-identical required); for the wall-clock measured executor
/// a small tolerance is allowed, because two workers can race to benchmark
/// the same timing key during the cold phase — each uses its own genuine
/// measurement while last-write-wins decides what the snapshot (and thus the
/// warm run) replays.
fn assert_matching_predictions(cold: &BatchOutcome, warm: &BatchOutcome, max_rel_diff: f64) {
    for (c, w) in cold.results.iter().zip(&warm.results) {
        let (c, w) = (
            c.as_ref().expect("cold plan ok"),
            w.as_ref().expect("warm plan ok"),
        );
        for (cs, ws) in c.scores.iter().zip(&w.scores) {
            let (cs, ws) = (
                cs.predicted_seconds.expect("scored"),
                ws.predicted_seconds.expect("scored"),
            );
            if max_rel_diff == 0.0 {
                assert_eq!(
                    cs.to_bits(),
                    ws.to_bits(),
                    "warm start changed a prediction"
                );
            } else {
                let rel = (cs - ws).abs() / cs.max(ws).max(f64::MIN_POSITIVE);
                assert!(
                    rel <= max_rel_diff,
                    "cold and warm predictions diverge by {:.1}% (> {:.1}%)",
                    100.0 * rel,
                    100.0 * max_rel_diff
                );
            }
        }
        if max_rel_diff == 0.0 {
            assert_eq!(c.chosen, w.chosen, "warm start changed a selection");
        }
    }
}

fn main() {
    let opts = RunOptions::from_env();
    // This bench defaults to real measured benchmarking (that is the cost a
    // store amortises); an explicit --executor flag overrides.
    let explicit_executor = std::env::args().any(|a| a == "--executor");
    let measured_mode = !explicit_executor;
    let planner_for = |warm_from: Option<&CalibrationStore>| {
        let run = opts.clone();
        let planner = BatchPlanner::new()
            .executor_factory(move || {
                if measured_mode {
                    quick_measured()
                } else {
                    run.build_executor()
                }
            })
            .top_k(TOP_K);
        match warm_from {
            Some(store) => planner.with_store(store),
            None => planner,
        }
    };

    let per_scenario = ((40.0 * opts.scale).ceil() as usize).max(13);
    let palette: &[usize] = if measured_mode {
        &[32, 48, 64, 96, 128] // real kernels: keep individual calls small
    } else {
        &[64, 128, 256, 384, 512, 768]
    };
    let scenarios = all_scenarios();
    let requests = snap_dims(
        scenario_batch_requests(&scenarios, per_scenario, opts.seed, palette[0], {
            *palette.last().expect("non-empty")
        }),
        palette,
    );
    println!(
        "batch throughput: {} expressions from {} scenarios, {} executor, dim palette {palette:?}, top-{TOP_K}",
        requests.len(),
        scenarios.len(),
        if measured_mode {
            "measured-quick"
        } else {
            opts.executor.name()
        },
    );
    assert!(
        requests.len() >= 100,
        "the throughput workload must hold at least 100 expressions"
    );

    // Phase 1: cold.
    let cold_planner = planner_for(None);
    let cold = cold_planner.plan_batch(&requests);
    let (row, _) = phase_row("cold", &cold, 0.0);
    let mut rows = vec![row];
    let cold_elapsed = cold.stats.elapsed_seconds;

    // The store a `lamb calibrate --exprs <workload>` run would have written.
    let mut store = CalibrationStore::new(MachineModel::generic_laptop(), "bench");
    store.calls = cold_planner.snapshot_cache();

    // Phase 2: warm from the persisted store (fresh planner, fresh cache).
    let warm_planner = planner_for(Some(&store));
    let warm = warm_planner.plan_batch(&requests);
    let (row, warm_speedup) = phase_row("warm", &warm, cold_elapsed);
    rows.push(row);

    // Phase 3: steady state.
    let rerun = warm_planner.plan_batch(&requests);
    let (row, _) = phase_row("warm+rerun", &rerun, cold_elapsed);
    rows.push(row);

    assert_eq!(
        warm.stats.cache_misses, 0,
        "a warm store must eliminate every benchmark"
    );
    if measured_mode {
        // Real wall-clock times: allow for cold-phase benchmark races (two
        // workers measuring the same key see slightly different times).
        assert_matching_predictions(&cold, &warm, 0.5);
        assert!(
            warm_speedup > 1.0,
            "warm batch planning must beat cold ({warm_speedup:.3}x)"
        );
        println!(
            "\nwarm start skipped {} real benchmark(s): {:.2}x faster than cold",
            cold.stats.cache_misses, warm_speedup
        );
    } else {
        // Deterministic executors: the warm run must be bit-identical.
        assert_matching_predictions(&cold, &warm, 0.0);
        println!(
            "\nwarm start skipped {} simulated benchmark(s) (near-free: timing delta is noise); predictions identical",
            cold.stats.cache_misses
        );
    }

    let csv = csv_from_rows(
        &[
            "phase",
            "expressions",
            "seconds",
            "exprs_per_sec",
            "cache_hits",
            "cache_misses",
            "hit_rate",
            "speedup_vs_cold",
        ],
        &rows,
    );
    match write_text(&opts.out_dir, "batch_throughput.csv", &csv) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
}
