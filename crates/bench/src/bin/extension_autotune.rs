//! Extension beyond the paper: the **blocking autotuner** headline numbers —
//! `BlockConfig::default()` versus the configuration coordinate descent
//! discovers, on the machine actually running the bench.
//!
//! Three measurements:
//!
//! * **Autotune** — run the measured coordinate descent
//!   ([`lamb_perfmodel::autotune_measured`]) from the compiled-in default
//!   over `(tile, mc, kc, nc, tri_block, parallel_flop_threshold)`.
//! * **Before/after GFLOP/s** — sustained square-GEMM GFLOP/s under the
//!   default and the tuned configuration for n ∈ {256, 512, 1024} (smaller
//!   at reduced `--scale`), the numbers quoted in the README quickstart.
//! * **Store round trip** — the tuned configuration is saved into a schema-v5
//!   calibration store, loaded back, and re-saved; the binary asserts the
//!   document is byte-identical and the configuration survives exactly.
//!
//! The per-size table lands in `autotune.csv`; the headline point (largest n)
//! is emitted as `BENCH_autotune.json` for the perf trajectory.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_autotune [-- --scale 0.25]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_kernels::BlockConfig;
use lamb_perfmodel::{autotune_measured, measured_gemm_gflops, CalibrationStore, MachineModel};

/// One before/after measurement at a single square size.
struct SizeRow {
    n: usize,
    default_gflops: f64,
    tuned_gflops: f64,
}

impl SizeRow {
    fn speedup(&self) -> f64 {
        self.tuned_gflops / self.default_gflops.max(1e-12)
    }
}

/// Round-trip the tuned configuration through a v5 store on disk and insist
/// the document and the configuration both come back bit-identical.
fn assert_store_round_trip(
    tuned: &lamb_perfmodel::TunedConfig,
    out_dir: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let mut store = CalibrationStore::new(MachineModel::generic_laptop(), "measured");
    store.meta.block_fingerprint = tuned.config.fingerprint();
    store.tuned = Some(tuned.clone());
    let path = out_dir.join("autotune_store_roundtrip.json");
    store.save(&path).map_err(std::io::Error::other)?;
    let first = std::fs::read_to_string(&path)?;
    let loaded = CalibrationStore::load(&path).map_err(std::io::Error::other)?;
    assert_eq!(
        loaded.tuned.as_ref(),
        Some(tuned),
        "tuned configuration must survive the v5 store round trip exactly"
    );
    loaded.save(&path).map_err(std::io::Error::other)?;
    let second = std::fs::read_to_string(&path)?;
    assert_eq!(
        first, second,
        "v5 store document must re-serialise byte-identically"
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}

fn bench_json(rows: &[SizeRow], tuned_fingerprint: &str, quick: bool) -> String {
    let headline = rows.last().expect("at least one size is measured");
    format!(
        "{{\n  \"bench\": \"autotune\",\n  \"mode\": \"{}\",\n  \
         \"default_fingerprint\": \"{}\",\n  \"tuned_fingerprint\": \"{}\",\n  \
         \"n\": {},\n  \"default_gflops\": {:.3},\n  \"tuned_gflops\": {:.3},\n  \
         \"speedup\": {:.3}\n}}\n",
        if quick { "quick" } else { "full" },
        BlockConfig::default().fingerprint(),
        tuned_fingerprint,
        headline.n,
        headline.default_gflops,
        headline.tuned_gflops,
        headline.speedup()
    )
}

fn main() {
    let opts = RunOptions::from_env();
    // Reduced scale is the CI smoke mode: one descent pass over small
    // operands, and proportionally smaller before/after sizes.
    let quick = opts.scale < 0.99;
    let (sizes, reps): (Vec<usize>, usize) = if quick {
        (
            [256usize, 512, 1024]
                .iter()
                .map(|n| ((*n as f64 * opts.scale) as usize).max(64))
                .collect(),
            1,
        )
    } else {
        (vec![256, 512, 1024], 3)
    };

    let base = BlockConfig::default();
    println!(
        "autotuning from {} ({} mode) ...",
        base.fingerprint(),
        if quick { "quick" } else { "full" }
    );
    let (outcome, tuned) = autotune_measured(&base, quick);
    println!(
        "tuned  : {} after {} evaluation(s) in {} pass(es)",
        tuned.config.fingerprint(),
        outcome.evaluations,
        outcome.passes
    );

    println!("\nsquare GEMM, default vs tuned configuration (best of {reps})");
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "n", "default GF/s", "tuned GF/s", "speedup"
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let default_gflops = measured_gemm_gflops(&base, n, reps);
        let tuned_gflops = measured_gemm_gflops(&tuned.config, n, reps);
        let row = SizeRow {
            n,
            default_gflops,
            tuned_gflops,
        };
        println!(
            "{:>6} {:>16.3} {:>16.3} {:>7.2}x",
            row.n,
            row.default_gflops,
            row.tuned_gflops,
            row.speedup()
        );
        rows.push(row);
    }

    if let Err(e) = assert_store_round_trip(&tuned, &opts.out_dir) {
        eprintln!("store round trip failed: {e}");
        std::process::exit(1);
    }
    println!("\nstore  : tuned configuration round-trips bit-identically through v5");

    let csv: String = std::iter::once("n,default_gflops,tuned_gflops,speedup\n".to_string())
        .chain(rows.iter().map(|r| {
            format!(
                "{},{:.3},{:.3},{:.3}\n",
                r.n,
                r.default_gflops,
                r.tuned_gflops,
                r.speedup()
            )
        }))
        .collect();
    match write_text(&opts.out_dir, "autotune.csv", &csv) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    match write_text(
        &opts.out_dir,
        "BENCH_autotune.json",
        &bench_json(&rows, &tuned.config.fingerprint(), quick),
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write JSON: {e}"),
    }
}
