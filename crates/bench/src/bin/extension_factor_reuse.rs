//! Extension beyond the paper: **factor reuse** across repeated solves and
//! **common-subexpression elimination** within one expression.
//!
//! Two workload families, both built so that the paper's per-expression cost
//! model over-charges them and the PR's DAG-aware model does not:
//!
//! * `repeated_solve` — k ∈ {1, 2, 4, 8} solves `S⁻¹·Bᵢ` against **one** SPD
//!   operand `S`. Cold, every solve pays its own Cholesky (`n³/3` each);
//!   warm, the batch's shared factor cache computes the POTRF once and every
//!   later solve reuses the resident factor. The binary asserts the warm
//!   batch executes **exactly one** POTRF (kernel-call accounting through
//!   `ReuseReport`) and, at representative sizes, that measured wall time
//!   improves at least 1.5× over the no-factor-cache ablation.
//! * `repeated_gram` — `A·Aᵀ·A·Aᵀ·B`, where the Gram product appears twice
//!   in a single expression. The CSE'd chosen algorithm computes it once;
//!   the `--no-cse` ablation's chosen algorithm computes it twice.
//!
//! CSV rows (one per family × k) land in `factor_reuse.csv`; the headline
//! k = 8 point is also emitted as `BENCH_factor_reuse.json` so the perf
//! trajectory has a machine-readable data point.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_factor_reuse [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_expr::{Algorithm, TreeExpression};
use lamb_perfmodel::{MeasuredExecutor, SimpleFactorStore};
use lamb_plan::{BatchPlanner, BatchRequest, FactorCache, Planner};
use std::sync::Arc;
use std::time::Instant;

/// One measured row of the sweep.
struct Row {
    family: &'static str,
    k: usize,
    n: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    cold_flops: u64,
    warm_flops: u64,
    potrf_executed: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-12)
    }
}

/// Plan and execute k solves `S⁻¹·Bᵢ` against one SPD operand, cold (every
/// solve re-factors) and warm (one shared factor store across the batch).
fn repeated_solve_row(executor: &MeasuredExecutor, k: usize, n: usize, m: usize) -> Row {
    let workload: String = (0..k)
        .map(|i| format!("S[spd]^-1*B{i} {n} {m}\n"))
        .collect();
    let requests = BatchRequest::parse_file(&workload).expect("well-formed workload");
    let cache = Arc::new(FactorCache::new());
    let outcome = BatchPlanner::new()
        .factor_cache(Arc::clone(&cache))
        .plan_batch(&requests);
    let chosen: Vec<Algorithm> = outcome
        .results
        .iter()
        .map(|r| r.as_ref().expect("solve plans").chosen_algorithm().clone())
        .collect();
    let cold_flops: u64 = chosen.iter().map(Algorithm::flops).sum();

    // Cold ablation (`--no-factor-cache`): every solve executes in full.
    let start = Instant::now();
    for alg in &chosen {
        let _ = executor.compute_result(alg);
    }
    let cold_seconds = start.elapsed().as_secs_f64();

    // Warm: one factor store shared across the batch, in request order.
    let store = SimpleFactorStore::new();
    let mut reused_flops = 0u64;
    let mut potrf_executed = 0usize;
    let start = Instant::now();
    for alg in &chosen {
        let (_, report) = executor.compute_result_reusing(alg, &store);
        reused_flops += report.reused_flops;
        potrf_executed += report.executed("potrf");
    }
    let warm_seconds = start.elapsed().as_secs_f64();

    Row {
        family: "repeated_solve",
        k,
        n,
        cold_seconds,
        warm_seconds,
        cold_flops,
        warm_flops: cold_flops - reused_flops,
        potrf_executed,
    }
}

/// Plan `A·Aᵀ·A·Aᵀ·B` with and without CSE and execute both chosen
/// algorithms: the within-expression half of the story. `A` is short and
/// wide (`q × 4n`, `q = n/8`), the regime where forming the small Gram
/// matrix once beats re-deriving it — so the duplicated SYRK dominates the
/// chosen algorithm's cost and CSE has something real to merge.
fn repeated_gram_row(executor: &MeasuredExecutor, n: usize) -> Row {
    let expr = TreeExpression::parse("A*A^T*A*A^T*B").expect("fixed text");
    let q = (n / 8).max(16);
    let dims = vec![q, 4 * n, q];
    let shared = Planner::for_expression(&expr)
        .plan(&dims)
        .expect("gram plans");
    let raw = Planner::for_expression(&expr)
        .cse(false)
        .plan(&dims)
        .expect("gram plans without CSE");
    let shared_alg = shared.chosen_algorithm();
    let raw_alg = raw.chosen_algorithm();

    let start = Instant::now();
    let _ = executor.compute_result(raw_alg);
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let _ = executor.compute_result(shared_alg);
    let warm_seconds = start.elapsed().as_secs_f64();

    Row {
        family: "repeated_gram",
        k: 1,
        n,
        cold_seconds,
        warm_seconds,
        cold_flops: raw_alg.flops(),
        warm_flops: shared_alg.flops(),
        potrf_executed: 0,
    }
}

fn csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "family,k,n,cold_seconds,warm_seconds,speedup,cold_flops,warm_flops,potrf_executed\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.3},{},{},{}\n",
            r.family,
            r.k,
            r.n,
            r.cold_seconds,
            r.warm_seconds,
            r.speedup(),
            r.cold_flops,
            r.warm_flops,
            r.potrf_executed
        ));
    }
    out
}

/// The headline k = 8 point as a machine-readable perf data point.
fn bench_json(row: &Row) -> String {
    format!(
        "{{\n  \"bench\": \"factor_reuse\",\n  \"family\": \"{}\",\n  \"k\": {},\n  \
         \"n\": {},\n  \"cold_seconds\": {:.6},\n  \"warm_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"cold_flops\": {},\n  \"warm_flops\": {},\n  \
         \"potrf_executed\": {}\n}}\n",
        row.family,
        row.k,
        row.n,
        row.cold_seconds,
        row.warm_seconds,
        row.speedup(),
        row.cold_flops,
        row.warm_flops,
        row.potrf_executed
    )
}

fn main() {
    let opts = RunOptions::from_env();
    // `--scale` shrinks the SPD order from its default 512; the wall-time
    // gate only applies at orders where the factorisation dominates enough
    // for the 1.5× bar to be meaningful.
    let n = ((512.0 * opts.scale) as usize).max(64);
    let m = (n / 16).max(8);
    let executor = MeasuredExecutor::quick();

    println!("factor reuse across k repeated solves S^-1*B_i (n = {n}, m = {m})");
    println!(
        "{:>15} {:>3} {:>12} {:>12} {:>8} {:>14} {:>14} {:>6}",
        "family", "k", "cold (s)", "warm (s)", "speedup", "cold FLOPs", "warm FLOPs", "potrf"
    );
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        rows.push(repeated_solve_row(&executor, k, n, m));
    }
    rows.push(repeated_gram_row(&executor, n));
    for r in &rows {
        println!(
            "{:>15} {:>3} {:>12.6} {:>12.6} {:>7.2}x {:>14} {:>14} {:>6}",
            r.family,
            r.k,
            r.cold_seconds,
            r.warm_seconds,
            r.speedup(),
            r.cold_flops,
            r.warm_flops,
            r.potrf_executed
        );
    }

    // Kernel-call accounting: the warm batch factors S exactly once, at
    // every k — the whole point of the shared factor cache.
    for r in rows.iter().filter(|r| r.family == "repeated_solve") {
        assert_eq!(
            r.potrf_executed, 1,
            "k = {}: the warm batch must execute exactly one POTRF",
            r.k
        );
    }
    let headline = rows
        .iter()
        .find(|r| r.family == "repeated_solve" && r.k == 8)
        .expect("the k = 8 row is always measured");
    if n >= 256 {
        assert!(
            headline.speedup() >= 1.5,
            "k = 8 at n = {n}: warm speedup {:.2}x fell below the 1.5x bar",
            headline.speedup()
        );
    }

    match write_text(&opts.out_dir, "factor_reuse.csv", &csv(&rows)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    match write_text(
        &opts.out_dir,
        "BENCH_factor_reuse.json",
        &bench_json(headline),
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write JSON: {e}"),
    }
    println!(
        "\nreading: one resident Cholesky factor serves all {} warm solves — the\n\
         batch executes 1 POTRF instead of {}, and the repeated Gram product's\n\
         CSE'd algorithm drops {} of {} FLOPs by computing A*A^T once.",
        headline.k,
        headline.k,
        rows.last().map_or(0, |g| g.cold_flops - g.warm_flops),
        rows.last().map_or(0, |g| g.cold_flops),
    );
}
