//! Extension beyond the paper: the **general-solve** scenario family —
//! unstructured inverses realised through partially pivoted LU
//! (`GETRF + LASWP + TRSM + TRSM`, `2n³/3 + 2n²·m` FLOPs) and least-squares
//! pseudo-inverses realised through Householder QR
//! (`QR + ORMQR + TRSM`, `2n²(3m−n)/3` dominant term).
//!
//! Two measurements, mirroring the SPD and factor-reuse extensions:
//!
//! * **Predicted-anomaly abundance** — the batched Experiment-1 sweep over
//!   `lu_solve` / `lu_solve_chain` / `lstsq` / `lstsq_chain`. The pure
//!   solves have a single realisation each, so the family's abundance is
//!   carried by the chains, where the dominant factorisation FLOPs make the
//!   anomaly question "should the *solve side* merge early or late". The
//!   batched generator keeps the least-squares operand tall, so every drawn
//!   instance is realisable.
//! * **Factor reuse** — k repeated solves `A⁻¹·Bᵢ` against **one** general
//!   operand `A`, measured cold (every solve pays its own `2n³/3` GETRF)
//!   and warm (one shared factor store across the batch). The binary
//!   asserts the warm batch executes **exactly one** GETRF — the LU mirror
//!   of the POTRF accounting in `extension_factor_reuse`.
//!
//! Sweep rows land in `general_solve.csv`; the k = 8 reuse point is also
//! emitted as `BENCH_general_solve.json` for the perf trajectory.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_general_solve [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_experiments::{batch_sweep_csv, lu_qr_scenarios, sweep_scenarios_batched};
use lamb_expr::Algorithm;
use lamb_perfmodel::{MeasuredExecutor, SimpleFactorStore};
use lamb_plan::{BatchPlanner, BatchRequest, FactorCache};
use std::sync::Arc;
use std::time::Instant;

/// The measured k-repeated-LU-solve point.
struct ReuseRow {
    k: usize,
    n: usize,
    m: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    cold_flops: u64,
    warm_flops: u64,
    getrf_executed: usize,
}

impl ReuseRow {
    fn speedup(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-12)
    }
}

/// Plan and execute k solves `A⁻¹·Bᵢ` against one general operand, cold
/// (every solve re-factors) and warm (one shared factor store).
fn lu_reuse_row(executor: &MeasuredExecutor, k: usize, n: usize, m: usize) -> ReuseRow {
    let workload: String = (0..k).map(|i| format!("A^-1*B{i} {n} {m}\n")).collect();
    let requests = BatchRequest::parse_file(&workload).expect("well-formed workload");
    let cache = Arc::new(FactorCache::new());
    let outcome = BatchPlanner::new()
        .factor_cache(Arc::clone(&cache))
        .plan_batch(&requests);
    let chosen: Vec<Algorithm> = outcome
        .results
        .iter()
        .map(|r| r.as_ref().expect("solve plans").chosen_algorithm().clone())
        .collect();
    let cold_flops: u64 = chosen.iter().map(Algorithm::flops).sum();

    // Cold ablation: every solve executes its own GETRF.
    let start = Instant::now();
    for alg in &chosen {
        let _ = executor.compute_result(alg);
    }
    let cold_seconds = start.elapsed().as_secs_f64();

    // Warm: one factor store shared across the batch, in request order.
    let store = SimpleFactorStore::new();
    let mut reused_flops = 0u64;
    let mut getrf_executed = 0usize;
    let start = Instant::now();
    for alg in &chosen {
        let (_, report) = executor.compute_result_reusing(alg, &store);
        reused_flops += report.reused_flops;
        getrf_executed += report.executed("getrf");
    }
    let warm_seconds = start.elapsed().as_secs_f64();

    ReuseRow {
        k,
        n,
        m,
        cold_seconds,
        warm_seconds,
        cold_flops,
        warm_flops: cold_flops - reused_flops,
        getrf_executed,
    }
}

/// The headline k = 8 reuse point as a machine-readable perf data point.
fn bench_json(row: &ReuseRow) -> String {
    format!(
        "{{\n  \"bench\": \"general_solve\",\n  \"family\": \"lu_repeated_solve\",\n  \
         \"k\": {},\n  \"n\": {},\n  \"m\": {},\n  \"cold_seconds\": {:.6},\n  \
         \"warm_seconds\": {:.6},\n  \"speedup\": {:.3},\n  \"cold_flops\": {},\n  \
         \"warm_flops\": {},\n  \"getrf_executed\": {}\n}}\n",
        row.k,
        row.n,
        row.m,
        row.cold_seconds,
        row.warm_seconds,
        row.speedup(),
        row.cold_flops,
        row.warm_flops,
        row.getrf_executed
    )
}

fn main() {
    let opts = RunOptions::from_env();

    // Part 1: batched predicted-anomaly abundance over the LU/QR family.
    let scenarios = lu_qr_scenarios();
    let per_scenario = ((200.0 * opts.scale) as usize).max(20);
    let planner = BatchPlanner::new().top_k(8);
    println!(
        "predicted anomaly abundance across general-solve scenarios \
         ({per_scenario} instances each, dims 40..400)"
    );
    println!(
        "{:>16} {:<12} {:>10} {:>10} {:>10}",
        "scenario", "expression", "instances", "anomalies", "abundance"
    );
    let rows = sweep_scenarios_batched(&scenarios, &planner, per_scenario, opts.seed, 40, 400);
    for row in &rows {
        let abundance = row.predicted_anomalies as f64 / row.instances.max(1) as f64;
        println!(
            "{:>16} {:<12} {:>10} {:>10} {:>9.2}%",
            row.name,
            row.expression,
            row.instances,
            row.predicted_anomalies,
            100.0 * abundance
        );
    }
    for row in &rows {
        assert_eq!(
            row.instances, per_scenario,
            "{}: every drawn instance must plan (the generator keeps \
             least-squares operands tall)",
            row.name
        );
    }

    // Part 2: measured GETRF reuse across k repeated general solves.
    let n = ((384.0 * opts.scale) as usize).max(48);
    let m = (n / 16).max(8);
    let executor = MeasuredExecutor::quick();
    println!("\nfactor reuse across k repeated solves A^-1*B_i (n = {n}, m = {m})");
    println!(
        "{:>3} {:>12} {:>12} {:>8} {:>14} {:>14} {:>6}",
        "k", "cold (s)", "warm (s)", "speedup", "cold FLOPs", "warm FLOPs", "getrf"
    );
    let mut reuse = Vec::new();
    for k in [1usize, 2, 4, 8] {
        reuse.push(lu_reuse_row(&executor, k, n, m));
    }
    for r in &reuse {
        println!(
            "{:>3} {:>12.6} {:>12.6} {:>7.2}x {:>14} {:>14} {:>6}",
            r.k,
            r.cold_seconds,
            r.warm_seconds,
            r.speedup(),
            r.cold_flops,
            r.warm_flops,
            r.getrf_executed
        );
    }

    // Kernel-call accounting: the warm batch factors A exactly once, at
    // every k — GETRF flows through the same factor-cache identities POTRF
    // does, so the guarantee is identical.
    for r in &reuse {
        assert_eq!(
            r.getrf_executed, 1,
            "k = {}: the warm batch must execute exactly one GETRF",
            r.k
        );
    }
    let headline = reuse.last().expect("the k = 8 row is always measured");

    match write_text(&opts.out_dir, "general_solve.csv", &batch_sweep_csv(&rows)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    match write_text(
        &opts.out_dir,
        "BENCH_general_solve.json",
        &bench_json(headline),
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write JSON: {e}"),
    }
    println!(
        "\nreading: one resident LU factor serves all {} warm solves — the batch\n\
         executes 1 GETRF instead of {}, reusing {} of {} FLOPs. On the sweep\n\
         side the single-realisation solves cannot be anomalous by\n\
         construction; the chains, whose `2n³/3` factorisation dominates, are\n\
         where merge order separates FLOP-minimal from fastest.",
        headline.k,
        headline.k,
        headline.cold_flops - headline.warm_flops,
        headline.cold_flops,
    );
}
