//! Extension beyond the paper: anomaly abundance as the matrix chain grows.
//!
//! The paper conjectures that "anomalies will be even more frequent in more
//! complex expressions" because longer chains have more mathematically
//! equivalent algorithms. The enumerator in `lamb-expr` handles chains of any
//! length ((p-1)! algorithms for p matrices), so this binary measures the
//! anomaly abundance for chains of 3, 4, 5 and 6 matrices under identical
//! sampling conditions.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_longer_chains [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::{run_random_search, SearchConfig};
use lamb_expr::MatrixChainExpression;

fn main() {
    let opts = RunOptions::from_env();
    println!("Anomaly abundance vs chain length (threshold 10%, box [20, 1200], simulator)");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>12}",
        "matrices", "algorithms", "samples", "anomalies", "abundance"
    );
    for (p, budget) in [(3usize, 20_000usize), (4, 16_000), (5, 10_000), (6, 5_000)] {
        let expr = MatrixChainExpression::new(p);
        let mut executor = opts.build_executor();
        // Per-length sample budgets large enough to resolve sub-percent
        // abundances; longer chains cost more per sample, so the budget
        // shrinks with the chain length.
        let samples = ((budget as f64 * opts.scale) as usize).max(500);
        let config = SearchConfig {
            target_anomalies: usize::MAX,
            max_samples: samples,
            seed: opts.seed,
            ..SearchConfig::paper_chain()
        };
        let result = run_random_search(&expr, executor.as_mut(), &config);
        let n_algorithms: usize = (1..p).product();
        println!(
            "{:>8} {:>12} {:>10} {:>12} {:>11.2}%",
            p,
            n_algorithms,
            result.samples_drawn,
            result.anomalies.len(),
            100.0 * result.abundance()
        );
    }
    println!(
        "\npaper conjecture: more equivalent algorithms -> more anomalies. Note that for\n\
         GEMM-only chains under the analytic machine model the abundance stays well\n\
         below 1% at every length — the conjecture is driven by expressions that mix\n\
         *different* kernels (as A*A^T*B does), not by the number of algorithms alone."
    );
}
