//! Extension beyond the paper: anomaly abundance across mixed-transpose
//! expression scenarios, enumerated by the general expression engine.
//!
//! The paper studies two expressions (`A·B·C·D` and `A·Aᵀ·B`). With the
//! general enumerator any product of (possibly transposed, possibly
//! repeated) operands is searchable, so this binary runs the Experiment-1
//! random search over the standard scenario set — longer chains,
//! Gram-flavoured products on either side, transposed sandwiches — under
//! identical sampling conditions, and writes the usual CSV.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_mixed_transpose [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_experiments::{mixed_transpose_scenarios, sweep_csv, sweep_scenarios, SearchConfig};

fn main() {
    let opts = RunOptions::from_env();
    let scenarios = mixed_transpose_scenarios();
    let samples = ((4000.0 * opts.scale) as usize).max(200);
    let config = SearchConfig {
        target_anomalies: usize::MAX,
        max_samples: samples,
        seed: opts.seed,
        ..SearchConfig::paper_aatb()
    };
    let mut executor = opts.build_executor();

    println!(
        "anomaly abundance across expression scenarios (threshold 10%, box [20, 1200], {} samples each)",
        samples
    );
    println!(
        "{:>10} {:<16} {:>6} {:>12} {:>12} {:>12}",
        "scenario", "expression", "dims", "algorithms", "anomalies", "abundance"
    );
    let rows = sweep_scenarios(&scenarios, executor.as_mut(), &config);
    for row in &rows {
        println!(
            "{:>10} {:<16} {:>6} {:>12} {:>12} {:>11.2}%",
            row.name,
            row.expression,
            row.num_dims,
            row.num_algorithms,
            row.result.anomalies.len(),
            100.0 * row.result.abundance()
        );
    }
    match write_text(
        &opts.out_dir,
        "mixed_transpose_scenarios.csv",
        &sweep_csv(&rows),
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    println!(
        "\nreading: scenarios whose algorithm sets mix different kernels (SYRK/SYMM vs\n\
         GEMM — aatb, atab, abbt, gram2) show far more anomalies than GEMM-only chains,\n\
         supporting the paper's conjecture about richer expressions."
    );
}
