//! Extension beyond the paper: the **right-side** scenario family and the
//! per-call **backend crossover** at small orders.
//!
//! Part 1 runs the Experiment-1 random search over expressions whose
//! structured operand sits on the *right* of the product (`B·L`, `B·L⁻¹`,
//! `A·S`), which lower to the `side = Right` TRMM/TRSM/SYMM kernels. Their
//! FLOP counts mirror the left-side twins exactly, so any abundance
//! difference is purely a property of the sided FLOP-rate surfaces.
//!
//! Part 2 sweeps the registered backends over small square orders to locate
//! the native/reference crossover, then demonstrates the per-call backend
//! assignment on a chain that straddles it: the benchmark-driven argmin
//! mixes backends and is never slower (per the model) than pinning either
//! one everywhere — the paper's discriminant argument applied one level
//! below algorithm selection. The headline numbers land in
//! `BENCH_right_side.json` for the perf trajectory.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_right_side [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_experiments::{right_side_scenarios, sweep_csv, sweep_scenarios, Scenario, SearchConfig};
use lamb_expr::{Expression, KernelOp, TreeExpression};
use lamb_matrix::{Side, Trans, Uplo};
use lamb_perfmodel::calibrate::single_call_algorithm;
use lamb_perfmodel::{Executor, SimulatedExecutor};
use lamb_select::{assign_backends, pinned_backends};

/// One row of the small-order backend-crossover sweep.
struct CrossoverRow {
    size: usize,
    kernel: &'static str,
    native_seconds: f64,
    reference_seconds: f64,
}

impl CrossoverRow {
    fn winner(&self) -> &'static str {
        if self.reference_seconds < self.native_seconds {
            "reference"
        } else {
            "native"
        }
    }
}

/// Time one square op under both backends on the simulator.
fn crossover_row(
    sim: &mut SimulatedExecutor,
    kernel: &'static str,
    op: KernelOp,
    size: usize,
) -> CrossoverRow {
    let alg = single_call_algorithm(op);
    CrossoverRow {
        size,
        kernel,
        native_seconds: sim.time_isolated_call_on(&alg, 0, "native"),
        reference_seconds: sim.time_isolated_call_on(&alg, 0, "reference"),
    }
}

/// The headline numbers as a machine-readable perf data point, emitted as
/// `BENCH_right_side.json` for the perf trajectory.
#[allow(clippy::too_many_arguments)]
fn bench_json(
    right_abundance: f64,
    left_abundance: f64,
    crossover_order: usize,
    mixed: bool,
    assigned_seconds: f64,
    native_pin_seconds: f64,
    reference_pin_seconds: f64,
    samples: usize,
) -> String {
    format!(
        "{{\n  \"bench\": \"right_side\",\n  \"family\": \"right_side_structured\",\n  \
         \"samples_per_scenario\": {samples},\n  \
         \"right_side_abundance\": {right_abundance:.4},\n  \
         \"left_side_abundance\": {left_abundance:.4},\n  \
         \"gemm_crossover_order\": {crossover_order},\n  \
         \"assignment_is_mixed\": {mixed},\n  \
         \"assigned_seconds\": {assigned_seconds:.6},\n  \
         \"native_pin_seconds\": {native_pin_seconds:.6},\n  \
         \"reference_pin_seconds\": {reference_pin_seconds:.6}\n}}\n"
    )
}

fn main() {
    let opts = RunOptions::from_env();

    // Part 1: anomaly abundance across the right-side family, with the
    // left-side twins and a GEMM-only chain as baselines.
    let mut scenarios = right_side_scenarios();
    scenarios.push(Scenario::new("trmm_l_twin", "L[lower]*B"));
    scenarios.push(Scenario::new("symm_l_twin", "S[spd]*B"));
    scenarios.push(Scenario::new("chain4", "A*B*C*D"));
    let samples = ((4000.0 * opts.scale) as usize).max(200);
    let config = SearchConfig {
        target_anomalies: usize::MAX,
        max_samples: samples,
        seed: opts.seed,
        ..SearchConfig::paper_aatb()
    };
    let mut executor = opts.build_executor();

    println!(
        "anomaly abundance across right-side scenarios (threshold 10%, {} samples each)",
        samples
    );
    println!(
        "{:>16} {:<22} {:>6} {:>12} {:>12} {:>12}",
        "scenario", "expression", "dims", "algorithms", "anomalies", "abundance"
    );
    let rows = sweep_scenarios(&scenarios, executor.as_mut(), &config);
    for row in &rows {
        println!(
            "{:>16} {:<22} {:>6} {:>12} {:>12} {:>11.2}%",
            row.name,
            row.expression,
            row.num_dims,
            row.num_algorithms,
            row.result.anomalies.len(),
            100.0 * row.result.abundance()
        );
    }

    // Right-side scenarios with more than one realisation versus their
    // left-side twins (pure solves have a single realisation each).
    let abundance_of = |pred: &dyn Fn(&str) -> bool| {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| pred(&r.name) && r.num_algorithms > 1)
            .map(|r| r.result.abundance())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let right_abundance = abundance_of(&|n| n.contains("_r"));
    let left_abundance = abundance_of(&|n| n.ends_with("_twin"));

    match write_text(&opts.out_dir, "right_side_scenarios.csv", &sweep_csv(&rows)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }

    // Part 2: the native/reference crossover at small square orders. The
    // reference backend's flat cost profile beats the blocked native kernels
    // below a small order, above which the native rate pulls away.
    let mut sim = SimulatedExecutor::paper_like();
    println!("\nbackend crossover at small orders (simulated, isolated benchmarks)");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>10}",
        "n", "kernel", "native (s)", "reference (s)", "winner"
    );
    let mut crossover_rows: Vec<CrossoverRow> = Vec::new();
    for &size in &[8usize, 12, 16, 24, 32, 48, 64, 96] {
        let gemm = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: size,
            n: size,
            k: size,
        };
        let trmm_r = KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: size,
            n: size,
        };
        crossover_rows.push(crossover_row(&mut sim, "gemm", gemm, size));
        crossover_rows.push(crossover_row(&mut sim, "trmm_r", trmm_r, size));
    }
    for row in &crossover_rows {
        println!(
            "{:>6} {:>8} {:>14.3e} {:>14.3e} {:>10}",
            row.size,
            row.kernel,
            row.native_seconds,
            row.reference_seconds,
            row.winner()
        );
    }
    let crossover_order = crossover_rows
        .iter()
        .filter(|r| r.kernel == "gemm" && r.winner() == "native")
        .map(|r| r.size)
        .min()
        .unwrap_or(0);
    assert!(
        crossover_rows.iter().any(|r| r.winner() == "reference"),
        "the reference backend should win somewhere at small orders"
    );
    assert!(
        crossover_order > 0,
        "the native backend should win by order 96"
    );

    let crossover_csv: String =
        std::iter::once("size,kernel,native_seconds,reference_seconds,winner".to_string())
            .chain(crossover_rows.iter().map(|r| {
                format!(
                    "{},{},{:.9},{:.9},{}",
                    r.size,
                    r.kernel,
                    r.native_seconds,
                    r.reference_seconds,
                    r.winner()
                )
            }))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
    match write_text(&opts.out_dir, "backend_crossover.csv", &crossover_csv) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }

    // Part 3: the per-call assignment on a right-side chain that straddles
    // the crossover — one large GEMM (native territory) feeding a tiny
    // right-side TRMM (reference territory).
    let expr = TreeExpression::parse("A*B*L[lower]").expect("right-side chain parses");
    let dims = vec![360, 360, 10];
    let algs = expr.algorithms(&dims).expect("right-side chain enumerates");
    let alg = algs
        .iter()
        .min_by_key(|a| a.flops())
        .expect("at least one algorithm");
    let assignment = assign_backends(alg, &mut sim);
    let native_pin = pinned_backends(alg, &mut sim, "native");
    let reference_pin = pinned_backends(alg, &mut sim, "reference");
    println!(
        "\nper-call assignment for A*B*L[lower] at dims {dims:?} (algorithm `{}`):",
        alg.name
    );
    for choice in &assignment.per_call {
        println!(
            "  [{}] {:<28} -> {:<10} {:.3e} s",
            choice.call_index, choice.label, choice.backend, choice.seconds
        );
    }
    println!(
        "  assigned {:.3e} s | native pin {:.3e} s | reference pin {:.3e} s",
        assignment.seconds, native_pin.seconds, reference_pin.seconds
    );
    assert!(
        assignment.seconds <= native_pin.seconds + 1e-15
            && assignment.seconds <= reference_pin.seconds + 1e-15,
        "the per-call argmin must not lose to either pin"
    );

    match write_text(
        &opts.out_dir,
        "BENCH_right_side.json",
        &bench_json(
            right_abundance,
            left_abundance,
            crossover_order,
            assignment.is_mixed(),
            assignment.seconds,
            native_pin.seconds,
            reference_pin.seconds,
            samples,
        ),
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write JSON: {e}"),
    }

    println!(
        "\nreading: the right-side scenarios average {:.2}% anomaly abundance versus\n\
         {:.2}% for their left-side twins — the sided kernels inherit the same\n\
         FLOPs-versus-rate tension, so the discriminant argument carries over\n\
         unchanged. Below order {} the reference backend's flat cost profile\n\
         beats the blocked native kernels, and the per-call assignment {} the\n\
         backends on the straddling chain ({:.1}% under the best pin).",
        100.0 * right_abundance,
        100.0 * left_abundance,
        crossover_order,
        if assignment.is_mixed() {
            "mixes"
        } else {
            "does not mix"
        },
        100.0 * (1.0 - assignment.seconds / native_pin.seconds.min(reference_pin.seconds)),
    );
}
