//! Extension beyond the paper: anomaly abundance across the **SPD** scenario
//! family (symmetric positive-definite products, Cholesky-realised solves
//! and Gram-flavoured mixtures).
//!
//! An SPD operand is symmetric — so plain products through it pick up the
//! SYMM-versus-GEMM variant pair — and positive definite, so its inverse
//! realises as `POTRF + TRSM + TRSM` (`n³/3 + 2·n²·m` FLOPs) where no
//! kernel realisation existed before. The factorisation and the symmetric
//! kernels run at markedly lower FLOP rates than GEMM on small and mid-sized
//! orders, which is exactly the FLOPs-versus-time tension the paper's
//! discriminant argument is about. This binary runs the Experiment-1 random
//! search over the SPD family under the same sampling conditions as the
//! mixed-transpose and triangular sweeps, reports the measured anomaly
//! abundance per scenario, and compares it against the GEMM-only chain
//! baseline.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_spd [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_experiments::{spd_scenarios, sweep_csv, sweep_scenarios, Scenario, SearchConfig};

fn main() {
    let opts = RunOptions::from_env();
    // The SPD family plus a GEMM-only chain baseline for contrast.
    let mut scenarios = spd_scenarios();
    scenarios.push(Scenario::new("chain4", "A*B*C*D"));
    let samples = ((4000.0 * opts.scale) as usize).max(200);
    let config = SearchConfig {
        target_anomalies: usize::MAX,
        max_samples: samples,
        seed: opts.seed,
        ..SearchConfig::paper_aatb()
    };
    let mut executor = opts.build_executor();

    println!(
        "anomaly abundance across SPD scenarios (threshold 10%, {} samples each)",
        samples
    );
    println!(
        "{:>16} {:<22} {:>6} {:>12} {:>12} {:>12}",
        "scenario", "expression", "dims", "algorithms", "anomalies", "abundance"
    );
    let rows = sweep_scenarios(&scenarios, executor.as_mut(), &config);
    for row in &rows {
        println!(
            "{:>16} {:<22} {:>6} {:>12} {:>12} {:>11.2}%",
            row.name,
            row.expression,
            row.num_dims,
            row.num_algorithms,
            row.result.anomalies.len(),
            100.0 * row.result.abundance()
        );
    }

    // Single-realisation solves and equal-FLOP variant pairs cannot be
    // anomalous by construction; the family's abundance is carried by the
    // scenarios whose variants genuinely differ in FLOPs.
    let contested: Vec<f64> = rows
        .iter()
        .filter(|r| !matches!(r.name.as_str(), "chain4" | "spd_solve" | "spd_product"))
        .map(|r| r.result.abundance())
        .collect();
    let spd_abundance = contested.iter().sum::<f64>() / contested.len().max(1) as f64;
    let chain_abundance = rows
        .iter()
        .find(|r| r.name == "chain4")
        .map_or(0.0, |r| r.result.abundance());

    match write_text(&opts.out_dir, "spd_scenarios.csv", &sweep_csv(&rows)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    println!(
        "\nreading: the contested SPD scenarios average {:.2}% anomaly abundance versus\n\
         {:.2}% for the GEMM-only chain. Where the SYRK/SYMM variants of the\n\
         Gram-flavoured mixtures save FLOPs, their small-order rate collapse\n\
         frequently hands the win to the FLOP-richer GEMM realisations — the\n\
         same mis-selection mechanism the paper demonstrates for A*A^T*B, now\n\
         on a workload family whose inverses are only planable at all because\n\
         the Cholesky rewrite (POTRF + two TRSMs) realises them. (The pure\n\
         solve `spd_solve` has a single realisation and the equal-FLOP\n\
         `spd_product` pair cannot separate cheapest from fastest, so both are\n\
         excluded from the contested average.)",
        100.0 * spd_abundance,
        100.0 * chain_abundance,
    );
}
