//! Extension beyond the paper: anomaly abundance across the **triangular**
//! scenario family (TRMM products, triangular chains, Cholesky-style Gram
//! products and TRSM solves).
//!
//! TRMM and TRSM halve the FLOP count of the equal-shape GEMM (`m²·n` versus
//! `2·m²·n`) while running at a markedly lower FLOP rate on small and
//! mid-sized triangular orders — exactly the FLOPs-versus-time tension the
//! paper's discriminant argument is about. This binary runs the Experiment-1
//! random search over the triangular family under the same sampling
//! conditions as the mixed-transpose sweep, reports the measured anomaly
//! abundance per scenario, and compares it against the GEMM-only chain
//! baseline.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin extension_triangular [-- --scale 0.5]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::write_text;
use lamb_experiments::{sweep_csv, sweep_scenarios, triangular_scenarios, Scenario, SearchConfig};

fn main() {
    let opts = RunOptions::from_env();
    // The triangular family plus a GEMM-only chain baseline for contrast.
    let mut scenarios = triangular_scenarios();
    scenarios.push(Scenario::new("chain4", "A*B*C*D"));
    let samples = ((4000.0 * opts.scale) as usize).max(200);
    let config = SearchConfig {
        target_anomalies: usize::MAX,
        max_samples: samples,
        seed: opts.seed,
        ..SearchConfig::paper_aatb()
    };
    let mut executor = opts.build_executor();

    println!(
        "anomaly abundance across triangular scenarios (threshold 10%, {} samples each)",
        samples
    );
    println!(
        "{:>16} {:<22} {:>6} {:>12} {:>12} {:>12}",
        "scenario", "expression", "dims", "algorithms", "anomalies", "abundance"
    );
    let rows = sweep_scenarios(&scenarios, executor.as_mut(), &config);
    for row in &rows {
        println!(
            "{:>16} {:<22} {:>6} {:>12} {:>12} {:>11.2}%",
            row.name,
            row.expression,
            row.num_dims,
            row.num_algorithms,
            row.result.anomalies.len(),
            100.0 * row.result.abundance()
        );
    }

    let trmm_rows: Vec<f64> = rows
        .iter()
        .filter(|r| r.name != "chain4" && r.name != "trsm")
        .map(|r| r.result.abundance())
        .collect();
    let triangular_abundance = trmm_rows.iter().sum::<f64>() / trmm_rows.len().max(1) as f64;
    let chain_abundance = rows
        .iter()
        .find(|r| r.name == "chain4")
        .map_or(0.0, |r| r.result.abundance());

    match write_text(&opts.out_dir, "triangular_scenarios.csv", &sweep_csv(&rows)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    println!(
        "\nreading: the TRMM-bearing scenarios average {:.2}% anomaly abundance versus\n\
         {:.2}% for the GEMM-only chain — the structured kernels' FLOP savings are\n\
         frequently defeated by their lower FLOP rates, so a FLOP discriminant\n\
         mis-selects exactly as it does for the paper's A*A^T*B family. (The pure\n\
         solve `trsm` has a single realisation and therefore no anomalies by\n\
         construction.)",
        100.0 * triangular_abundance,
        100.0 * chain_abundance,
    );
}
