//! Regenerates **Figure 1**: efficiency of GEMM, SYRK and SYMM as the size of
//! the (square) operands grows.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig1 [-- --executor measured --sizes 1200]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::run_figure1;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let sizes = opts.figure1_sizes();
    let output =
        run_figure1(executor.as_mut(), &sizes, &opts.out_dir).expect("writing Figure 1 artifacts");
    print_output("Figure 1: kernel efficiency vs operand size", &output);
}
