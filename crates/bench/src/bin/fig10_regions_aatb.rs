//! Regenerates **Figure 10**: the distribution of the thickness of the
//! anomalous regions around the `A·Aᵀ·B` anomalies of Experiment 1, in each
//! of the three dimensions `d0..d2` (Experiment 2).
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig10_regions_aatb [-- --scale 0.05]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::{run_experiment1, run_experiment2};
use lamb_expr::AatbExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = AatbExpression::new();
    let (search, o1) = run_experiment1(
        &expr,
        executor.as_mut(),
        &opts.aatb_search_config(),
        &opts.out_dir,
        "fig10_aatb",
    )
    .expect("running Experiment 1");
    print_output("Experiment 1 (prerequisite)", &o1);
    let (_, o2) = run_experiment2(
        &expr,
        executor.as_mut(),
        &search,
        &opts.line_config(),
        &opts.out_dir,
        "fig10_aatb",
    )
    .expect("writing Figure 10 artifacts");
    print_output("Figure 10: region thickness per dimension (A*A^T*B)", &o2);
}
