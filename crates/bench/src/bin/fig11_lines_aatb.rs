//! Regenerates **Figure 11**: per-algorithm (and per-kernel-call)
//! efficiencies along the three axis-aligned lines through `A·Aᵀ·B` anomalies
//! highlighted in the paper.
//!
//! * left:   line `(227 ± 10x, 260, 549)`, dimension `d0`
//! * centre: line `(80, 514 ± 10x, 768)`,  dimension `d1`
//! * right:  line `(110, 301, 938 ± 10x)`, dimension `d2`
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig11_lines_aatb
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::run_efficiency_line;
use lamb_expr::AatbExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = AatbExpression::new();
    let cfg = opts.line_config();

    let panels: [(&str, [usize; 3], usize); 3] = [
        ("fig11_left_d0", [227, 260, 549], 0),
        ("fig11_centre_d1", [80, 514, 768], 1),
        ("fig11_right_d2", [110, 301, 938], 2),
    ];
    for (label, base, dim) in panels {
        let output = run_efficiency_line(
            &expr,
            executor.as_mut(),
            &base,
            dim,
            &cfg,
            &opts.out_dir,
            label,
        )
        .expect("writing Figure 11 artifacts");
        print_output(
            &format!("Figure 11 {label}: line through {base:?} along d{dim}"),
            &output,
        );
    }
}
