//! Regenerates **Figure 6** and the abundance numbers of Section 4.1.1:
//! Experiment 1 (random search for anomalies) on the matrix chain `A·B·C·D`.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig6_exp1_chain [-- --scale 0.1]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::run_experiment1;
use lamb_expr::MatrixChainExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = MatrixChainExpression::abcd();
    let (result, output) = run_experiment1(
        &expr,
        executor.as_mut(),
        &opts.chain_search_config(),
        &opts.out_dir,
        "fig6_chain",
    )
    .expect("writing Figure 6 artifacts");
    print_output(
        "Figure 6 / Section 4.1.1: chain anomalies (Experiment 1)",
        &output,
    );
    println!(
        "paper reference: 100 anomalies in 22,962 samples (abundance 0.4%); this run: {} anomalies in {} samples ({:.2}%)",
        result.anomalies.len(),
        result.samples_drawn,
        100.0 * result.abundance()
    );
}
