//! Regenerates **Figure 7**: the distribution of the thickness of the
//! anomalous regions around the chain anomalies of Experiment 1, in each of
//! the five dimensions `d0..d4` (Experiment 2).
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig7_regions_chain [-- --scale 0.1]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::{run_experiment1, run_experiment2};
use lamb_expr::MatrixChainExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = MatrixChainExpression::abcd();
    let (search, o1) = run_experiment1(
        &expr,
        executor.as_mut(),
        &opts.chain_search_config(),
        &opts.out_dir,
        "fig7_chain",
    )
    .expect("running Experiment 1");
    print_output("Experiment 1 (prerequisite)", &o1);
    let (_, o2) = run_experiment2(
        &expr,
        executor.as_mut(),
        &search,
        &opts.line_config(),
        &opts.out_dir,
        "fig7_chain",
    )
    .expect("writing Figure 7 artifacts");
    print_output("Figure 7: region thickness per dimension (chain)", &o2);
}
