//! Regenerates **Figure 8**: per-algorithm (and per-GEMM-call) efficiencies
//! along the two axis-aligned lines through chain anomalies highlighted in
//! the paper, illustrating the two types of region-boundary transitions.
//!
//! * left column:  line `(331, 279, 338, 854, 427 ± 10x)`, dimension `d4`
//! * right column: line `(320, 172, 293, 919 ± 10x, 284)`, dimension `d3`
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig8_lines_chain
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::run_efficiency_line;
use lamb_expr::MatrixChainExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = MatrixChainExpression::abcd();
    let cfg = opts.line_config();

    let left = run_efficiency_line(
        &expr,
        executor.as_mut(),
        &[331, 279, 338, 854, 427],
        4,
        &cfg,
        &opts.out_dir,
        "fig8_left_d4",
    )
    .expect("writing Figure 8 (left) artifacts");
    print_output("Figure 8 left: line (331,279,338,854,427±10x), d4", &left);

    let right = run_efficiency_line(
        &expr,
        executor.as_mut(),
        &[320, 172, 293, 919, 284],
        3,
        &cfg,
        &opts.out_dir,
        "fig8_right_d3",
    )
    .expect("writing Figure 8 (right) artifacts");
    print_output("Figure 8 right: line (320,172,293,919±10x,284), d3", &right);
}
