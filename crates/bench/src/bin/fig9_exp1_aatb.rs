//! Regenerates **Figure 9** and the abundance numbers of Section 4.2.1:
//! Experiment 1 (random search for anomalies) on the expression `A·Aᵀ·B`.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin fig9_exp1_aatb [-- --scale 0.1]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::run_experiment1;
use lamb_expr::AatbExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = AatbExpression::new();
    let (result, output) = run_experiment1(
        &expr,
        executor.as_mut(),
        &opts.aatb_search_config(),
        &opts.out_dir,
        "fig9_aatb",
    )
    .expect("writing Figure 9 artifacts");
    print_output(
        "Figure 9 / Section 4.2.1: A*A^T*B anomalies (Experiment 1)",
        &output,
    );
    println!(
        "paper reference: 1,000 anomalies in 10,258 samples (abundance 9.7%, 39.2% severe); this run: {} anomalies in {} samples ({:.2}%, {:.1}% severe)",
        result.anomalies.len(),
        result.samples_drawn,
        100.0 * result.abundance(),
        100.0 * result.severe_fraction(0.20, 0.30)
    );
}
