//! Enumeration cost of the general expression engine as chains grow:
//! algorithm count and wall-clock enumeration time versus chain length, with
//! and without the top-k FLOPs pruning knob.
//!
//! A chain of `p` matrices has `(p-1)!` multiplication orders, so full
//! enumeration explodes factorially; branch-and-bound pruning to the k
//! FLOP-cheapest algorithms is what keeps `Planner::plan` tractable at
//! length 8–10. Full enumeration is attempted up to `--max-full` (default
//! 8 matrices) and skipped above that; the analytic count `(p-1)!` is always
//! reported.
//!
//! ```text
//! cargo run --release -p lamb-bench --bin generator_scaling [-- --out results]
//! ```

use lamb_bench::RunOptions;
use lamb_experiments::csvout::{csv_from_rows, write_text};
use lamb_expr::{Expression, TreeExpression};
use std::time::Instant;

const TOP_K: usize = 8;
const MAX_FULL: usize = 8;

/// A deterministic, heterogeneous dimension tuple so FLOP counts spread and
/// pruning has real work to do.
fn dims_for(p: usize) -> Vec<usize> {
    let palette = [60usize, 20, 90, 30, 120, 40, 70, 25, 110, 35, 80];
    (0..=p).map(|i| palette[i % palette.len()]).collect()
}

fn chain_text(p: usize) -> String {
    let names: Vec<String> = (0..p)
        .map(|i| char::from(b'A' + u8::try_from(i).expect("p <= 10")).to_string())
        .collect();
    names.join("*")
}

fn main() {
    let opts = RunOptions::from_env();
    println!("general-enumerator scaling on chains (top-k = {TOP_K}, full enumeration up to {MAX_FULL} matrices)");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "matrices", "orders", "full [ms]", "full count", "top-k [ms]", "kept"
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for p in 4..=10usize {
        let expr = TreeExpression::parse(&chain_text(p)).expect("chain text parses");
        let dims = dims_for(p);
        let orders: u64 = (1..p as u64).product();

        let (full_ms, full_count) = if p <= MAX_FULL {
            let start = Instant::now();
            let algorithms = expr.algorithms(&dims).expect("valid chain");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            (Some(elapsed), Some(algorithms.len()))
        } else {
            (None, None)
        };

        let start = Instant::now();
        let pruned = expr
            .algorithms_pruned(&dims, Some(TOP_K))
            .expect("valid chain");
        let pruned_ms = start.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>12.3} {:>12}",
            p,
            orders,
            full_ms.map_or("-".to_string(), |t| format!("{t:.3}")),
            full_count.map_or("-".to_string(), |c| c.to_string()),
            pruned_ms,
            pruned.len()
        );
        rows.push(vec![
            p.to_string(),
            orders.to_string(),
            full_ms.map_or(String::new(), |t| format!("{t:.6}")),
            full_count.map_or(String::new(), |c| c.to_string()),
            format!("{pruned_ms:.6}"),
            pruned.len().to_string(),
        ]);
    }
    let csv = csv_from_rows(
        &[
            "matrices",
            "orders",
            "full_ms",
            "full_count",
            "topk_ms",
            "topk_kept",
        ],
        &rows,
    );
    match write_text(&opts.out_dir, "generator_scaling.csv", &csv) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("cannot write CSV: {e}"),
    }
    println!(
        "\nreading: full enumeration is factorial in the chain length, while the\n\
         branch-and-bound top-{TOP_K} search stays fast — this is the knob `Planner::top_k`\n\
         threads through for long chains."
    );
}
