//! Regenerates **Table 1**: the confusion matrix for predicting matrix-chain
//! anomalies from isolated kernel benchmarks (Experiment 3, built on top of
//! Experiments 1 and 2).
//!
//! ```text
//! cargo run --release -p lamb-bench --bin table1_predict_chain [-- --scale 0.1]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::{run_full_pipeline, PredictConfig};
use lamb_expr::MatrixChainExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = MatrixChainExpression::abcd();
    let output = run_full_pipeline(
        &expr,
        executor.as_mut(),
        &opts.chain_search_config(),
        &opts.line_config(),
        &PredictConfig::paper(),
        &opts.out_dir,
        "table1_chain",
    )
    .expect("running the chain pipeline");
    print_output(
        "Table 1: benchmark-based anomaly prediction (chain)",
        &output,
    );
    println!("paper reference: ~92% of anomalies predicted, ~96% of predictions are anomalies");
}
