//! Regenerates **Table 2**: the confusion matrix for predicting `A·Aᵀ·B`
//! anomalies from isolated kernel benchmarks (Experiment 3, built on top of
//! Experiments 1 and 2).
//!
//! ```text
//! cargo run --release -p lamb-bench --bin table2_predict_aatb [-- --scale 0.05]
//! ```

use lamb_bench::{print_output, RunOptions};
use lamb_experiments::{run_full_pipeline, PredictConfig};
use lamb_expr::AatbExpression;

fn main() {
    let opts = RunOptions::from_env();
    let mut executor = opts.build_executor();
    let expr = AatbExpression::new();
    let output = run_full_pipeline(
        &expr,
        executor.as_mut(),
        &opts.aatb_search_config(),
        &opts.line_config(),
        &PredictConfig::paper(),
        &opts.out_dir,
        "table2_aatb",
    )
    .expect("running the A*A^T*B pipeline");
    print_output(
        "Table 2: benchmark-based anomaly prediction (A*A^T*B)",
        &output,
    );
    println!("paper reference: ~75% of anomalies predicted, ~98.5% of predictions are anomalies");
}
