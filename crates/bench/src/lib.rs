//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --executor simulated|smooth|measured   back end used to time algorithms
//! --scale <0..1>                         workload scale factor (default 1.0 for
//!                                        simulated, 0.02 for measured)
//! --seed <u64>                           random seed for Experiment 1
//! --out <dir>                            output directory for CSV artifacts
//! --sizes <max>                          largest square size for Figure 1
//! ```

#![forbid(unsafe_code)]

use lamb_experiments::{LineConfig, SearchConfig};
use lamb_kernels::BlockConfig;
use lamb_perfmodel::{Executor, MachineModel, MeasuredExecutor, SimulatedExecutor};
use std::path::PathBuf;

/// Which executor back end a binary should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Deterministic analytic machine model (default; paper-scale feasible).
    Simulated,
    /// Analytic model without abrupt variant switches (ablation).
    SimulatedSmooth,
    /// Real kernels, wall-clock timing, paper measurement protocol.
    Measured,
}

impl ExecutorKind {
    /// Parse from the `--executor` flag value.
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "simulated" | "sim" => Some(ExecutorKind::Simulated),
            "smooth" | "simulated-smooth" => Some(ExecutorKind::SimulatedSmooth),
            "measured" | "real" => Some(ExecutorKind::Measured),
            _ => None,
        }
    }

    /// Short name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::Simulated => "simulated",
            ExecutorKind::SimulatedSmooth => "simulated-smooth",
            ExecutorKind::Measured => "measured",
        }
    }
}

/// Options shared by every figure/table binary.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Executor back end.
    pub executor: ExecutorKind,
    /// Workload scale in `(0, 1]`, applied to anomaly targets and sample caps.
    pub scale: f64,
    /// Seed for Experiment 1 sampling.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Largest square size used for Figure 1 sweeps.
    pub max_size: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            executor: ExecutorKind::Simulated,
            scale: 1.0,
            seed: 20220829,
            out_dir: PathBuf::from("results"),
            max_size: 3000,
        }
    }
}

impl RunOptions {
    /// Parse options from an iterator of command-line arguments (not
    /// including the program name). Unknown flags are ignored so binaries can
    /// add their own.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = RunOptions::default();
        let mut explicit_scale = false;
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| args.get(i + 1).cloned();
            match args[i].as_str() {
                "--executor" => {
                    if let Some(v) = take(i).and_then(|v| ExecutorKind::parse(&v)) {
                        opts.executor = v;
                    }
                    i += 1;
                }
                "--scale" => {
                    if let Some(v) = take(i).and_then(|v| v.parse::<f64>().ok()) {
                        opts.scale = v.clamp(1.0e-6, 1.0);
                        explicit_scale = true;
                    }
                    i += 1;
                }
                "--seed" => {
                    if let Some(v) = take(i).and_then(|v| v.parse::<u64>().ok()) {
                        opts.seed = v;
                    }
                    i += 1;
                }
                "--out" => {
                    if let Some(v) = take(i) {
                        opts.out_dir = PathBuf::from(v);
                    }
                    i += 1;
                }
                "--sizes" => {
                    if let Some(v) = take(i).and_then(|v| v.parse::<usize>().ok()) {
                        opts.max_size = v.max(100);
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        // Measured runs are wall-clock expensive: default to a small scale
        // unless the user explicitly asked for more.
        if opts.executor == ExecutorKind::Measured && !explicit_scale {
            opts.scale = 0.02;
            opts.max_size = opts.max_size.min(1200);
        }
        opts
    }

    /// Parse options from the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        RunOptions::parse(std::env::args().skip(1))
    }

    /// Build the requested executor.
    #[must_use]
    pub fn build_executor(&self) -> Box<dyn Executor> {
        match self.executor {
            ExecutorKind::Simulated => Box::new(SimulatedExecutor::paper_like()),
            ExecutorKind::SimulatedSmooth => Box::new(SimulatedExecutor::paper_like_smooth()),
            ExecutorKind::Measured => Box::new(MeasuredExecutor::new(
                MachineModel::generic_laptop(),
                BlockConfig::default(),
                10,
                64 * 1024 * 1024,
            )),
        }
    }

    /// The scaled Experiment-1 configuration for the matrix chain.
    #[must_use]
    pub fn chain_search_config(&self) -> SearchConfig {
        SearchConfig {
            seed: self.seed,
            ..SearchConfig::paper_chain().scaled(self.scale)
        }
    }

    /// The scaled Experiment-1 configuration for `A·Aᵀ·B`.
    #[must_use]
    pub fn aatb_search_config(&self) -> SearchConfig {
        SearchConfig {
            seed: self.seed,
            ..SearchConfig::paper_aatb().scaled(self.scale)
        }
    }

    /// The Experiment-2 configuration, capped for measured runs.
    #[must_use]
    pub fn line_config(&self) -> LineConfig {
        let cfg = LineConfig::paper();
        if self.executor == ExecutorKind::Measured {
            cfg.with_max_anomalies(((3.0 * self.scale * 100.0).ceil() as usize).max(1))
        } else {
            cfg
        }
    }

    /// Sizes for the Figure-1 sweep: 100 to `max_size` in steps of 100.
    #[must_use]
    pub fn figure1_sizes(&self) -> Vec<usize> {
        (1..=self.max_size / 100).map(|i| i * 100).collect()
    }
}

/// Print a driver report plus the artifact list in a uniform way.
pub fn print_output(title: &str, output: &lamb_experiments::DriverOutput) {
    println!("==== {title} ====");
    println!("{}", output.report);
    for (label, path) in &output.artifacts {
        println!("  wrote {label}: {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale_simulated() {
        let o = RunOptions::parse(Vec::<String>::new());
        assert_eq!(o.executor, ExecutorKind::Simulated);
        assert!((o.scale - 1.0).abs() < 1e-12);
        assert_eq!(o.chain_search_config().target_anomalies, 100);
        assert_eq!(o.aatb_search_config().target_anomalies, 1000);
        assert_eq!(o.figure1_sizes().len(), 30);
    }

    #[test]
    fn flags_are_parsed() {
        let o = RunOptions::parse(
            [
                "--executor",
                "measured",
                "--seed",
                "7",
                "--out",
                "/tmp/x",
                "--sizes",
                "800",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(o.executor, ExecutorKind::Measured);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.max_size, 800);
        // Measured defaults to a reduced scale.
        assert!(o.scale < 0.1);
        assert!(o.line_config().max_anomalies.is_some());
    }

    #[test]
    fn explicit_scale_overrides_measured_default() {
        let o = RunOptions::parse(
            ["--executor", "measured", "--scale", "0.5"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!((o.scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn executor_kind_parsing() {
        assert_eq!(ExecutorKind::parse("sim"), Some(ExecutorKind::Simulated));
        assert_eq!(
            ExecutorKind::parse("smooth"),
            Some(ExecutorKind::SimulatedSmooth)
        );
        assert_eq!(ExecutorKind::parse("real"), Some(ExecutorKind::Measured));
        assert_eq!(ExecutorKind::parse("gpu"), None);
        assert_eq!(ExecutorKind::Measured.name(), "measured");
    }

    #[test]
    fn executors_can_be_built() {
        for kind in [ExecutorKind::Simulated, ExecutorKind::SimulatedSmooth] {
            let o = RunOptions {
                executor: kind,
                ..RunOptions::default()
            };
            let exec = o.build_executor();
            assert!(exec.machine().peak_flops > 0.0);
        }
    }
}
