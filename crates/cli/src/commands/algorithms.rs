//! `lamb algorithms` — list the algorithm set of an expression instance with
//! FLOP counts, kernel composition and the cheapest/most-expensive markers.

use super::common;

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (_, expr) = opts.expression()?;
    let dims = opts.dims(expr.num_dims())?;
    let algorithms = expr.algorithms(&dims);
    let min_flops = algorithms.iter().map(|a| a.flops()).min().unwrap_or(0);

    println!("{} with dims {:?}", expr.name(), dims);
    println!("{} mathematically equivalent algorithms:", algorithms.len());
    for (i, alg) in algorithms.iter().enumerate() {
        let marker = if alg.flops() == min_flops {
            "  <-- cheapest"
        } else {
            ""
        };
        println!(
            "  [{}] {:<45} {:>16} FLOPs  kernels: {}{}",
            i + 1,
            alg.name,
            alg.flops(),
            alg.kernel_summary(),
            marker
        );
        for call in &alg.calls {
            println!("        {call}");
        }
    }
    Ok(())
}
