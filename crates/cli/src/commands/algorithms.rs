//! `lamb algorithms` — list the algorithm set of an expression instance with
//! FLOP counts, kernel composition and the cheapest/most-expensive markers.
//!
//! Works with the named paper expressions (`chain`, `aatb`) and with any
//! parsed text via `--expr "A*A^T*B" --dims 80,514,768`.

use super::common;

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (_, expr) = opts.expression()?;
    let dims = opts.dims(expr.num_dims())?;
    let algorithms = expr
        .algorithms_pruned(&dims, opts.top_k)
        .map_err(|e| e.to_string())?;
    let min_flops = algorithms.iter().map(|a| a.flops()).min().unwrap_or(0);

    println!("{} with dims {:?}", expr.name(), dims);
    if let Some(k) = opts.top_k {
        println!(
            "{} FLOP-cheapest algorithms (top-k = {k}):",
            algorithms.len()
        );
    } else {
        println!("{} mathematically equivalent algorithms:", algorithms.len());
    }
    for (i, alg) in algorithms.iter().enumerate() {
        let marker = if alg.flops() == min_flops {
            "  <-- cheapest"
        } else {
            ""
        };
        println!(
            "  [{}] {:<45} {:>16} FLOPs  kernels: {}{}",
            i + 1,
            alg.name,
            alg.flops(),
            alg.kernel_summary(),
            marker
        );
        for call in &alg.calls {
            println!("        {call}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn named_expressions_still_work() {
        assert!(run(&strs(&["aatb", "40", "50", "60"])).is_ok());
    }

    #[test]
    fn parsed_expressions_enumerate() {
        assert!(run(&strs(&["--expr", "A*A^T*B", "--dims", "40,50,60"])).is_ok());
        assert!(run(&strs(&[
            "--expr",
            "A*B*C*D*E",
            "--dims",
            "9,8,7,6,5,4",
            "--top-k",
            "3"
        ]))
        .is_ok());
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = run(&strs(&["--expr", "A**B", "--dims", "4,5,6"])).unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
    }
}
