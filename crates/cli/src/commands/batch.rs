//! `lamb batch` — plan a whole file of expression instances against a
//! calibration store and emit a CSV report.
//!
//! The serving half of "calibrate once, plan many": requests are read from
//! `--exprs FILE` (one `EXPR d0 d1 ...` per line, `#` comments allowed) or
//! generated from the built-in scenario set (`--demo N`), fanned out across
//! worker threads with a shared prediction cache warm-started from
//! `--store`, and summarised: cache hit rate, expressions per second, the
//! predicted cost of the chosen algorithms versus the FLOP-optimal ones, and
//! the predicted-anomaly count.
//!
//! ```text
//! lamb batch --exprs workload.txt --store results/calibration.json
//! lamb batch --demo 50 --store store.json --update-store --strategy predicted
//! ```

use super::common::{self, parse_strategy};
use lamb_experiments::all_scenarios;
use lamb_perfmodel::store::now_unix;
use lamb_perfmodel::CalibrationStore;
use lamb_plan::{BatchOutcome, BatchPlanner, BatchRequest, FactorCache};
use lamb_select::{assign_backends, pinned_backends, BackendAssignment};
use std::sync::Arc;

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let executor_label = opts.executor_label()?;
    let strategy = parse_strategy(opts.strategy.as_deref().unwrap_or("predicted"))?;
    let threshold = opts.threshold.unwrap_or(0.10);

    // The workload: a request file, or a generated scenario batch.
    let requests: Vec<BatchRequest> = if let Some(path) = &opts.exprs_file {
        let contents = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read --exprs {}: {e}", path.display()))?;
        BatchRequest::parse_file(&contents).map_err(|e| e.to_string())?
    } else if let Some(per_scenario) = opts.demo {
        lamb_experiments::scenario_batch_requests(
            &all_scenarios(),
            per_scenario,
            opts.seed,
            60,
            900,
        )
    } else {
        return Err("missing workload: give --exprs FILE or --demo N".into());
    };
    if requests.is_empty() {
        return Err("the workload contains no requests".into());
    }

    let factory_opts = opts.clone();
    let mut planner = BatchPlanner::new()
        .strategy(strategy)
        .threshold(threshold)
        .cse(!opts.no_cse)
        .executor_factory(move || {
            factory_opts
                .build_executor()
                .expect("executor name validated above")
        });
    let factor_cache = (!opts.no_factor_cache).then(|| Arc::new(FactorCache::new()));
    if let Some(fc) = &factor_cache {
        planner = planner.factor_cache(Arc::clone(fc));
    }
    if let Some(k) = opts.top_k {
        planner = planner.top_k(k);
    }

    // Warm-start from the store, when one exists.
    let store_path = opts.store_path();
    let loaded_store = if store_path.exists() {
        let store = CalibrationStore::load(&store_path)
            .map_err(|e| format!("cannot load {}: {e}", store_path.display()))?;
        let (block_fingerprint, _) = opts.timing_metadata();
        if store.meta.executor != executor_label {
            return Err(format!(
                "store {} was calibrated with the `{}` executor, this run uses `{executor_label}`",
                store_path.display(),
                store.meta.executor
            ));
        }
        for warning in store.staleness(
            opts.build_executor()?.machine(),
            &block_fingerprint,
            now_unix(),
        ) {
            println!("warning: store is stale: {warning}");
        }
        planner = planner.with_store(&store);
        println!(
            "warm start: {} call(s) from {}",
            store.calls.len(),
            store_path.display()
        );
        Some(store)
    } else {
        println!("cold start: no store at {}", store_path.display());
        None
    };

    let outcome = planner.plan_batch(&requests);

    // Per-call backend assignments over the chosen algorithms: the
    // benchmark-driven argmin, or every call pinned by `--backend <name>`.
    let mut backend_exec = opts.build_executor()?;
    if let Some(name) = &opts.backend {
        let names = backend_exec.backend_names();
        if !names.iter().any(|n| n == name) {
            return Err(format!(
                "unknown backend `{name}` (this executor offers: {})",
                names.join(", ")
            ));
        }
    }
    let assignments: Vec<Option<BackendAssignment>> = outcome
        .results
        .iter()
        .map(|result| {
            result.as_ref().ok().map(|plan| match &opts.backend {
                Some(name) => pinned_backends(plan.chosen_algorithm(), backend_exec.as_mut(), name),
                None => assign_backends(plan.chosen_algorithm(), backend_exec.as_mut()),
            })
        })
        .collect();

    // The CSV report.
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    let report_path = opts.out_dir.join("batch_report.csv");
    std::fs::write(&report_path, report_csv(&requests, &outcome, &assignments))
        .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;

    // Optionally persist what this batch benchmarked. The new calls are
    // wrapped in a sweep store and merged through
    // `CalibrationStore::merge_from`, so its executor/block-config
    // compatibility guards apply (a store must never silently mix times
    // measured under different configurations).
    if opts.update_store {
        let executor = opts.build_executor()?;
        let mut sweep = CalibrationStore::new(executor.machine().clone(), executor_label);
        let (block_fingerprint, timing_reps) = opts.timing_metadata();
        sweep.meta.block_fingerprint = block_fingerprint;
        sweep.meta.timing_reps = timing_reps;
        sweep.calls = planner.snapshot_cache();
        let mut store = match loaded_store {
            Some(mut store) => {
                store
                    .merge_from(&sweep)
                    .map_err(|e| format!("cannot update {}: {e}", store_path.display()))?;
                store
            }
            None => sweep,
        };
        store.meta.updated_unix = now_unix();
        if let Some(dir) = store_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        store
            .save(&store_path)
            .map_err(|e| format!("cannot write {}: {e}", store_path.display()))?;
        println!(
            "updated store: {} call(s) -> {}",
            store.calls.len(),
            store_path.display()
        );
    }

    let stats = &outcome.stats;
    println!(
        "planned {}/{} request(s) in {:.3} s ({:.0} expressions/s, policy {})",
        stats.planned,
        stats.requests,
        stats.elapsed_seconds,
        stats.expressions_per_second(),
        strategy.name(),
    );
    println!(
        "cache: {} hit(s), {} miss(es) ({:.1}% hit rate), {} distinct call(s)",
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.hit_rate(),
        stats.distinct_calls
    );
    println!(
        "predicted time: chosen {:.6} s vs FLOP-optimal {:.6} s (saved {:.6} s)",
        stats.chosen_predicted_seconds,
        stats.flop_optimal_predicted_seconds,
        stats.predicted_seconds_saved()
    );
    let mixed = assignments
        .iter()
        .flatten()
        .filter(|a| a.is_mixed())
        .count();
    match &opts.backend {
        Some(name) => println!("backends: every call pinned to `{name}` (--backend)"),
        None => println!(
            "backends: {mixed} of {} chosen algorithm(s) mix backends",
            assignments.iter().flatten().count()
        ),
    }
    match &factor_cache {
        Some(fc) => println!(
            "factor cache: {} reusable factor identity(ies) across the batch",
            fc.len()
        ),
        None => println!("factor cache: disabled (--no-factor-cache)"),
    }
    if opts.no_cse {
        println!("cse: disabled (--no-cse)");
    }
    println!(
        "predicted anomalies: {} of {} ({:.1}%)",
        stats.predicted_anomalies,
        stats.planned,
        if stats.planned == 0 {
            0.0
        } else {
            100.0 * stats.predicted_anomalies as f64 / stats.planned as f64
        }
    );
    println!("wrote report: {}", report_path.display());
    if stats.failed > 0 {
        return Err(format!("{} request(s) failed to plan", stats.failed));
    }
    Ok(())
}

/// One CSV row per request: what was planned, what it costs, whether the
/// FLOP discriminant is predicted to be misled (at each plan's threshold),
/// and which backends the chosen algorithm's calls were assigned.
fn report_csv(
    requests: &[BatchRequest],
    outcome: &BatchOutcome,
    assignments: &[Option<BackendAssignment>],
) -> String {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(requests.len());
    for ((req, result), assignment) in requests.iter().zip(&outcome.results).zip(assignments) {
        let dims = req
            .dims
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        match result {
            Ok(plan) => {
                let chosen = plan.chosen_score();
                let flop_optimal = plan.flop_optimal_score();
                rows.push(vec![
                    req.text.clone(),
                    dims,
                    "ok".into(),
                    plan.algorithms.len().to_string(),
                    plan.chosen_algorithm().name.clone(),
                    chosen.flops.to_string(),
                    flop_optimal.flops.to_string(),
                    format_opt_seconds(chosen.predicted_seconds),
                    format_opt_seconds(flop_optimal.predicted_seconds),
                    plan.predicted_anomaly().unwrap_or(false).to_string(),
                    assignment
                        .as_ref()
                        .map_or(String::new(), |a| a.backends_used().join("+")),
                ]);
            }
            Err(e) => rows.push(vec![
                req.text.clone(),
                dims,
                format!("error: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    lamb_experiments::csvout::csv_from_rows(
        &[
            "expression",
            "dims",
            "status",
            "algorithms",
            "chosen",
            "chosen_flops",
            "min_flops",
            "chosen_predicted_s",
            "flop_optimal_predicted_s",
            "predicted_anomaly",
            "backends",
        ],
        &rows,
    )
}

fn format_opt_seconds(seconds: Option<f64>) -> String {
    seconds.map_or(String::new(), |s| format!("{s:.9e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lamb-batch-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn batch_plans_a_request_file_and_writes_the_report() {
        let dir = temp_dir("file");
        let exprs = dir.join("workload.txt");
        std::fs::write(
            &exprs,
            "# two instances\nA*A^T*B 80 514 768\nA*B*C*D 331 279 338 854 427\n",
        )
        .unwrap();
        run(&strs(&[
            "--exprs",
            &exprs.to_string_lossy(),
            "--out",
            &dir.to_string_lossy(),
        ]))
        .unwrap();
        let report = std::fs::read_to_string(dir.join("batch_report.csv")).unwrap();
        assert_eq!(report.lines().count(), 3);
        assert!(report.starts_with("expression,dims,status,"));
        // The Figure-11 instance is a predicted anomaly, and every ok row
        // carries a backend assignment in the trailing column.
        let row = report.lines().find(|l| l.starts_with("A*A^T*B")).unwrap();
        assert_eq!(row.rsplit(',').nth(1), Some("true"), "{row}");
        assert!(row.rsplit(',').next().unwrap().contains("native"), "{row}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_then_batch_is_fully_warm_and_update_store_persists_growth() {
        let dir = temp_dir("roundtrip");
        let exprs = dir.join("workload.txt");
        std::fs::write(&exprs, "A*A^T*B 80 514 768\nA*B*B^T 300 700 900\n").unwrap();
        let store_path = dir.join("store.json");

        // First run: cold, but --update-store persists what it benchmarked.
        run(&strs(&[
            "--exprs",
            &exprs.to_string_lossy(),
            "--store",
            &store_path.to_string_lossy(),
            "--out",
            &dir.to_string_lossy(),
            "--update-store",
        ]))
        .unwrap();
        let store = CalibrationStore::load(&store_path).unwrap();
        assert!(!store.calls.is_empty());

        // Second run over the same workload: everything is a cache hit, and
        // the report is byte-identical (bit-identical predictions).
        let first_report = std::fs::read_to_string(dir.join("batch_report.csv")).unwrap();
        run(&strs(&[
            "--exprs",
            &exprs.to_string_lossy(),
            "--store",
            &store_path.to_string_lossy(),
            "--out",
            &dir.to_string_lossy(),
        ]))
        .unwrap();
        let second_report = std::fs::read_to_string(dir.join("batch_report.csv")).unwrap();
        assert_eq!(first_report, second_report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demo_workloads_and_bad_flags_behave() {
        let dir = temp_dir("demo");
        run(&strs(&[
            "--demo",
            "3",
            "--out",
            &dir.to_string_lossy(),
            "--top-k",
            "6",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(dir.join("batch_report.csv").exists());
        assert!(run(&strs(&[])).unwrap_err().contains("missing workload"));
        assert!(run(&strs(&["--demo", "0"])).is_err());
        let err = run(&strs(&["--exprs", "/nonexistent/file.txt"])).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_factor_cache_discounts_repeated_solves_and_the_ablation_does_not() {
        let dir = temp_dir("reuse");
        let exprs = dir.join("workload.txt");
        std::fs::write(
            &exprs,
            "S[spd]^-1*B 96 12\nS[spd]^-1*B 96 12\nS[spd]^-1*B 96 12\n",
        )
        .unwrap();
        let run_and_read = |extra: &[&str]| {
            let mut args = strs(&[
                "--exprs",
                &exprs.to_string_lossy(),
                "--out",
                &dir.to_string_lossy(),
            ]);
            args.extend(strs(extra));
            run(&args).unwrap();
            std::fs::read_to_string(dir.join("batch_report.csv")).unwrap()
        };
        // The chosen-algorithm name may itself contain commas (its kernel
        // summary), so index the comma-free numeric columns from the end:
        // ..., chosen_flops, min_flops, chosen_predicted_s,
        // flop_optimal_predicted_s, predicted_anomaly, backends.
        let chosen_flops = |report: &str| -> Vec<u64> {
            report
                .lines()
                .skip(1)
                .map(|l| l.rsplit(',').nth(5).unwrap().parse().unwrap())
                .collect()
        };
        // Warm requests are discounted: the resident POTRF/TRSM factors make
        // later identical solves cheaper than the cold first one.
        let cached = chosen_flops(&run_and_read(&[]));
        assert_eq!(cached.len(), 3);
        assert!(cached[1] < cached[0], "{cached:?}");
        assert_eq!(cached[1], cached[2], "{cached:?}");
        // The ablation re-factors every time: all three rows identical.
        let ablated = chosen_flops(&run_and_read(&["--no-factor-cache"]));
        assert_eq!(ablated, vec![cached[0]; 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn executor_mismatch_with_the_store_is_refused() {
        let dir = temp_dir("mismatch");
        let exprs = dir.join("w.txt");
        std::fs::write(&exprs, "A*B 10 20 30\n").unwrap();
        let store_path = dir.join("store.json");
        run(&strs(&[
            "--exprs",
            &exprs.to_string_lossy(),
            "--store",
            &store_path.to_string_lossy(),
            "--out",
            &dir.to_string_lossy(),
            "--update-store",
        ]))
        .unwrap();
        let err = run(&strs(&[
            "--exprs",
            &exprs.to_string_lossy(),
            "--store",
            &store_path.to_string_lossy(),
            "--out",
            &dir.to_string_lossy(),
            "--executor",
            "smooth",
        ]))
        .unwrap_err();
        assert!(err.contains("calibrated with"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
