//! `lamb calibrate` — run calibration sweeps and persist them.
//!
//! Builds (or refines) a versioned on-disk [`CalibrationStore`]:
//!
//! * a **square sweep** measures the GEMM/SYRK/SYMM/TRMM/TRSM/POTRF/GETRF/QR
//!   efficiency curves on square operands (the paper's Figure 1, extended
//!   with the triangular and factorisation kernels) and seeds the
//!   isolated-call table with those benchmarks;
//! * an optional **workload sweep** (`--exprs FILE`) benchmarks every
//!   distinct kernel call the given batch of expression instances needs, so
//!   a later `lamb batch` against the same workload starts 100% warm.
//!
//! By default a new sweep *merges* into an existing store (newer entries
//! win); `--no-merge` replaces it. The command prints coverage (distinct
//! calls per kernel) and staleness warnings.
//!
//! ```text
//! lamb calibrate --store results/calibration.json --sizes 1200
//! lamb calibrate --store store.json --exprs workload.txt --executor measured
//! ```

use super::common::{self, CommonOptions};
use lamb_perfmodel::store::now_unix;
use lamb_perfmodel::{CalibrationStore, SquareProfile};
use lamb_plan::{BatchPlanner, BatchRequest};

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let executor_label = opts.executor_label()?;

    // `--autotune`: search the blocking space first, so the sweep below runs
    // under — and is fingerprinted with — the winning configuration.
    let tuned = if opts.autotune {
        let base = opts.block_config();
        println!(
            "autotuning block configuration ({} mode, starting from {}) ...",
            if opts.quick { "quick" } else { "full" },
            base.fingerprint()
        );
        let (outcome, tuned) = lamb_perfmodel::autotune_measured(&base, opts.quick);
        println!(
            "  winner : {} after {} evaluation(s) in {} pass(es)",
            tuned.config.fingerprint(),
            outcome.evaluations,
            outcome.passes
        );
        println!(
            "  gemm   : {:.2} GFLOP/s under the tuned configuration",
            tuned.gflops
        );
        Some(tuned)
    } else {
        None
    };
    let block_config = tuned
        .as_ref()
        .map(|t| t.config.clone())
        .unwrap_or_else(|| opts.block_config());
    let block_fingerprint = block_config.fingerprint();
    let (_, timing_reps) = opts.timing_metadata();
    let mut executor = opts.build_executor_with(block_config)?;

    let mut store = CalibrationStore::new(executor.machine().clone(), executor_label);
    store.meta.block_fingerprint = block_fingerprint.clone();
    store.meta.timing_reps = timing_reps;
    store.tuned = tuned;

    // Square sweep: benchmark every compute kernel on square operands, fill
    // the call table, and derive the efficiency curves from the same times.
    let sizes = opts.figure1_sizes();
    println!(
        "calibrating ({executor_label}) on square sizes {}..={} ...",
        sizes.first().copied().unwrap_or(0),
        sizes.last().copied().unwrap_or(0)
    );
    let machine = executor.machine().clone();
    let mut curves: Vec<(String, Vec<usize>, Vec<f64>)> = lamb_perfmodel::SQUARE_SWEEP_KERNELS
        .iter()
        .map(|name| ((*name).to_string(), Vec::new(), Vec::new()))
        .collect();
    for &size in &sizes {
        for (curve, op) in curves
            .iter_mut()
            .zip(lamb_perfmodel::calibrate::square_ops(size))
        {
            let alg = lamb_perfmodel::single_call_algorithm(op.clone());
            let seconds = executor.time_isolated_call(&alg, 0);
            curve.1.push(size);
            curve.2.push(machine.efficiency(op.flops(), seconds));
            store.calls.insert(op, seconds);
        }
    }
    for (name, sizes, effs) in curves {
        let profile = SquareProfile::new(&name, sizes, effs);
        println!(
            "  {name:<5}: {} sizes, peak efficiency {:.2}",
            profile.sizes.len(),
            profile.max_efficiency()
        );
        store.profiles.push(profile);
    }

    // Per-backend square sweeps: every backend beyond the default gets its
    // own curves and call table in the store's v6 `backends` section (the
    // default backend's data is the top-level sweep above), so the planner
    // can compare implementations per call from a warm start.
    for backend in executor.backend_names().iter().skip(1) {
        println!("  sweeping backend `{backend}` ...");
        let mut curves: Vec<(String, Vec<usize>, Vec<f64>)> = lamb_perfmodel::SQUARE_SWEEP_KERNELS
            .iter()
            .map(|name| ((*name).to_string(), Vec::new(), Vec::new()))
            .collect();
        let (profiles, calls) = store.backend_tables_mut(backend);
        for &size in &sizes {
            for (curve, op) in curves
                .iter_mut()
                .zip(lamb_perfmodel::calibrate::square_ops(size))
            {
                let alg = lamb_perfmodel::single_call_algorithm(op.clone());
                let seconds = executor.time_isolated_call_on(&alg, 0, backend);
                curve.1.push(size);
                curve.2.push(machine.efficiency(op.flops(), seconds));
                calls.insert(op, seconds);
            }
        }
        for (name, sizes, effs) in curves {
            profiles.push(SquareProfile::new(&name, sizes, effs));
        }
    }

    // Workload sweep: benchmark exactly the calls a request file needs.
    if let Some(path) = &opts.exprs_file {
        let contents = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read --exprs {}: {e}", path.display()))?;
        let requests = BatchRequest::parse_file(&contents).map_err(|e| e.to_string())?;
        let factory_opts = opts.clone();
        let planner = BatchPlanner::new()
            .executor_factory(move || {
                factory_opts
                    .build_executor()
                    .expect("executor name validated above")
            })
            .threshold(opts.threshold.unwrap_or(0.10));
        let planner = match opts.top_k {
            Some(k) => planner.top_k(k),
            None => planner,
        };
        let outcome = planner.plan_batch(&requests);
        store.calls.merge_from(&planner.snapshot_cache());
        println!(
            "  workload: {} request(s) from {}, {} distinct call(s) benchmarked",
            requests.len(),
            path.display(),
            outcome.stats.cache_misses
        );
        if outcome.stats.failed > 0 {
            return Err(format!(
                "{} request(s) in {} failed to plan",
                outcome.stats.failed,
                path.display()
            ));
        }
    }

    // Merge into (or replace) the on-disk store. A newly tuned block
    // configuration makes old timings incomparable, so when `--autotune`
    // lands on a different fingerprint than the existing store was measured
    // under, the sweep replaces the store instead of merging (which the
    // store's own fingerprint check would refuse anyway).
    let path = opts.store_path();
    let mut merge = path.exists() && !opts.no_merge;
    if merge && opts.autotune {
        if let Ok(existing) = CalibrationStore::load(&path) {
            if !existing.meta.block_fingerprint.is_empty()
                && existing.meta.block_fingerprint != block_fingerprint
            {
                println!(
                    "  note   : existing store was measured under `{}`; replacing it — \
                     timings under the tuned `{}` are not comparable",
                    existing.meta.block_fingerprint, block_fingerprint
                );
                merge = false;
            }
        }
    }
    let final_store = if merge {
        let mut existing = CalibrationStore::load(&path).map_err(|e| {
            format!(
                "cannot merge into {}: {e} (use --no-merge to overwrite)",
                path.display()
            )
        })?;
        existing.merge_from(&store).map_err(|e| {
            format!(
                "cannot merge into {}: {e} (use --no-merge to overwrite)",
                path.display()
            )
        })?;
        existing
    } else {
        store
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    final_store
        .save(&path)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;

    print_coverage(&final_store, &opts, &block_fingerprint);
    println!("wrote {}", path.display());
    Ok(())
}

fn print_coverage(store: &CalibrationStore, opts: &CommonOptions, block_fingerprint: &str) {
    let coverage = store.coverage();
    let per_kernel: Vec<String> = coverage
        .iter()
        .map(|(kernel, count)| format!("{kernel} {count}"))
        .collect();
    println!(
        "store: version {}, executor {}, {} sweep(s)",
        lamb_perfmodel::STORE_FORMAT_VERSION,
        store.meta.executor,
        store.meta.sweeps
    );
    println!(
        "  calls  : {} distinct ({})",
        store.calls.len(),
        per_kernel.join(", ")
    );
    for name in store.backend_names().iter().skip(1) {
        let coverage = store.backend_coverage(name);
        let calls: usize = coverage.values().sum();
        let per_kernel: Vec<String> = coverage
            .iter()
            .map(|(kernel, count)| format!("{kernel} {count}"))
            .collect();
        let missing = store.backend_missing_kernels(name);
        let gaps = if missing.is_empty() {
            String::new()
        } else {
            format!("; missing {}", missing.join(", "))
        };
        println!(
            "  [{name}]: {calls} distinct ({}{gaps})",
            per_kernel.join(", ")
        );
    }
    if let Some(tuned) = &store.tuned {
        println!(
            "  tuned  : {} ({:.2} GFLOP/s GEMM)",
            tuned.config.fingerprint(),
            tuned.gflops
        );
    }
    let missing = store.missing_kernels();
    if !missing.is_empty() {
        println!(
            "  gaps   : no benchmarks yet for {} (run another sweep to cover them)",
            missing.join(", ")
        );
    }
    println!(
        "  curves : {}",
        store
            .profiles
            .iter()
            .map(|p| format!("{} [{} samples]", p.kernel, p.sizes.len()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let warnings = match opts.build_executor() {
        Ok(executor) => store.staleness(executor.machine(), block_fingerprint, now_unix()),
        Err(_) => Vec::new(),
    };
    if warnings.is_empty() {
        println!("  status : fresh");
    } else {
        for warning in warnings {
            println!("  stale  : {warning}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lamb-calibrate-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn calibrate_writes_a_loadable_store_and_merges_on_rerun() {
        let dir = temp_dir("merge");
        let store_path = dir.join("calibration.json");
        let store_arg = store_path.to_string_lossy().to_string();
        run(&strs(&["--store", &store_arg, "--sizes", "300"])).unwrap();
        let first = CalibrationStore::load(&store_path).unwrap();
        assert_eq!(first.meta.sweeps, 1);
        assert_eq!(first.calls.len(), 33); // 11 kernels x 3 sizes
        assert_eq!(first.profiles.len(), 11);
        assert!(
            first.missing_kernels().is_empty(),
            "sweep covers every kernel"
        );
        // The simulated executor distinguishes two backends, so the sweep
        // also fills a per-backend section with full coverage.
        assert_eq!(
            first.backend_names(),
            vec!["native".to_string(), "reference".to_string()]
        );
        assert_eq!(first.backend_calls("reference").unwrap().len(), 33);
        assert!(first.backend_missing_kernels("reference").is_empty());

        // A second, larger sweep merges: coverage grows, sweeps accumulate.
        run(&strs(&["--store", &store_arg, "--sizes", "500"])).unwrap();
        let merged = CalibrationStore::load(&store_path).unwrap();
        assert_eq!(merged.meta.sweeps, 2);
        assert_eq!(merged.calls.len(), 55); // 11 kernels x 5 sizes
        assert_eq!(merged.profiles[0].sizes.len(), 5);
        assert_eq!(merged.backend_calls("reference").unwrap().len(), 55);

        // --no-merge replaces instead.
        run(&strs(&[
            "--store",
            &store_arg,
            "--sizes",
            "200",
            "--no-merge",
        ]))
        .unwrap();
        let replaced = CalibrationStore::load(&store_path).unwrap();
        assert_eq!(replaced.meta.sweeps, 1);
        assert_eq!(replaced.calls.len(), 22);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_calibration_covers_a_request_file() {
        let dir = temp_dir("workload");
        let exprs = dir.join("workload.txt");
        std::fs::write(
            &exprs,
            "A*A^T*B 80 514 768\nA*B*C*D 100 20 300 20 500\nL[lower]*A*B 60 40 20\nL[lower]^-1*B 90 30\n",
        )
        .unwrap();
        let store_path = dir.join("store.json");
        run(&strs(&[
            "--store",
            &store_path.to_string_lossy(),
            "--exprs",
            &exprs.to_string_lossy(),
            "--sizes",
            "100",
        ]))
        .unwrap();
        let store = CalibrationStore::load(&store_path).unwrap();
        // Square sweep (5 calls) plus the workload's distinct calls,
        // including the triangular kernels the workload needs.
        assert!(store.calls.len() > 5);
        let coverage = store.coverage();
        assert!(coverage.get("trmm").copied().unwrap_or(0) >= 2);
        assert!(coverage.get("trsm").copied().unwrap_or(0) >= 2);
        // A warm batch against the same workload never benchmarks.
        let requests = BatchRequest::parse_file(&std::fs::read_to_string(&exprs).unwrap()).unwrap();
        let outcome = BatchPlanner::new().with_store(&store).plan_batch(&requests);
        assert_eq!(outcome.stats.cache_misses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn autotune_records_a_tuned_config_and_warm_starts_use_it() {
        let dir = temp_dir("autotune");
        let store_path = dir.join("calibration.json");
        let store_arg = store_path.to_string_lossy().to_string();
        run(&strs(&[
            "--store",
            &store_arg,
            "--sizes",
            "100",
            "--autotune",
            "--quick",
        ]))
        .unwrap();
        let store = CalibrationStore::load(&store_path).unwrap();
        let tuned = store
            .tuned
            .as_ref()
            .expect("--autotune records a tuned configuration");
        assert_eq!(store.meta.block_fingerprint, tuned.config.fingerprint());
        assert!(tuned.gflops > 0.0);

        // Warm start: options pointed at the store resolve the tuned config,
        // so executors and staleness fingerprints both follow it.
        let opts = common::parse(&strs(&["--store", &store_arg])).unwrap();
        assert_eq!(opts.block_config(), tuned.config);
        assert_eq!(opts.timing_metadata().0, tuned.config.fingerprint());

        // A later plain sweep runs under the tuned fingerprint, so it merges
        // instead of being refused, and the tuned section survives the merge.
        run(&strs(&["--store", &store_arg, "--sizes", "200"])).unwrap();
        let merged = CalibrationStore::load(&store_path).unwrap();
        assert_eq!(merged.meta.sweeps, 2);
        assert_eq!(merged.tuned, store.tuned);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merging_across_executors_is_refused() {
        let dir = temp_dir("mixed");
        let store_path = dir.join("store.json");
        let store_arg = store_path.to_string_lossy().to_string();
        run(&strs(&["--store", &store_arg, "--sizes", "100"])).unwrap();
        let err = run(&strs(&[
            "--store",
            &store_arg,
            "--sizes",
            "100",
            "--executor",
            "smooth",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot merge"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
