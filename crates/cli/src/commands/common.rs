//! Shared argument parsing for the CLI subcommands.

use lamb_experiments::{LineConfig, SearchConfig};
use lamb_expr::{AatbExpression, Expression, MatrixChainExpression, TreeExpression};
use lamb_kernels::BlockConfig;
use lamb_perfmodel::{
    CalibrationStore, Executor, MachineModel, MeasuredExecutor, SimulatedExecutor,
};
use std::path::PathBuf;

/// Options shared by the experiment-style subcommands.
#[derive(Debug, Clone)]
pub struct CommonOptions {
    /// Executor back end name (`simulated`, `smooth`, `measured`).
    pub executor: String,
    /// Workload scale factor in `(0, 1]`.
    pub scale: f64,
    /// Sampling seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Maximum square size for Figure-1 sweeps.
    pub max_size: usize,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
    /// Value of `--strategy`, if given.
    pub strategy: Option<String>,
    /// Expression text given via `--expr`, e.g. `"A*A^T*B"`.
    pub expr_text: Option<String>,
    /// Dimension tuple given via `--dims` (comma-separated).
    pub dims_flag: Option<Vec<usize>>,
    /// Enumeration cap given via `--top-k`.
    pub top_k: Option<usize>,
    /// Calibration-store path given via `--store`.
    pub store: Option<PathBuf>,
    /// Batch request file given via `--exprs` (alias: `--file`).
    pub exprs_file: Option<PathBuf>,
    /// `--no-merge`: overwrite an existing calibration store instead of
    /// merging the new sweep into it.
    pub no_merge: bool,
    /// `--update-store`: write newly benchmarked calls back into the store
    /// after a batch run.
    pub update_store: bool,
    /// Anomaly time-score threshold given via `--threshold`.
    pub threshold: Option<f64>,
    /// `--demo N`: generate N instances per built-in scenario instead of
    /// reading a request file.
    pub demo: Option<usize>,
    /// `--no-cse`: ablation — plan the raw enumerator output without
    /// common-subexpression elimination over the kernel-call IR.
    pub no_cse: bool,
    /// `--no-factor-cache`: ablation — plan without the shared factor cache,
    /// so repeated solves against the same operand re-factor every time.
    pub no_factor_cache: bool,
    /// `--cse-parity`: verify-only mode that plans each scenario family with
    /// CSE on and off and checks the chosen algorithms compute identical
    /// numerics.
    pub cse_parity: bool,
    /// `--autotune`: run the coordinate-descent blocking autotuner before a
    /// calibration sweep and record the winning configuration in the store.
    pub autotune: bool,
    /// `--quick`: reduced problem size and repetition count for the
    /// autotuner (CI smoke mode).
    pub quick: bool,
    /// `--backend <name>`: pin every kernel call to the named backend
    /// instead of letting the planner assign backends per call (ablation).
    pub backend: Option<String>,
}

impl Default for CommonOptions {
    fn default() -> Self {
        CommonOptions {
            executor: "simulated".into(),
            scale: 1.0,
            seed: 20220829,
            out_dir: PathBuf::from("results"),
            max_size: 3000,
            positional: Vec::new(),
            strategy: None,
            expr_text: None,
            dims_flag: None,
            top_k: None,
            store: None,
            exprs_file: None,
            no_merge: false,
            update_store: false,
            threshold: None,
            demo: None,
            no_cse: false,
            no_factor_cache: false,
            cse_parity: false,
            autotune: false,
            quick: false,
            backend: None,
        }
    }
}

/// Parse flags and positional arguments.
pub fn parse(args: &[String]) -> Result<CommonOptions, String> {
    let mut opts = CommonOptions::default();
    let mut explicit_scale = false;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let value = |name: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match arg.as_str() {
            "--executor" => {
                opts.executor = value("--executor")?;
                i += 1;
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse::<f64>()
                    .map_err(|e| format!("invalid --scale: {e}"))?
                    .clamp(1.0e-6, 1.0);
                explicit_scale = true;
                i += 1;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?;
                i += 1;
            }
            "--out" => {
                opts.out_dir = PathBuf::from(value("--out")?);
                i += 1;
            }
            "--sizes" => {
                opts.max_size = value("--sizes")?
                    .parse()
                    .map_err(|e| format!("invalid --sizes: {e}"))?;
                i += 1;
            }
            "--strategy" => {
                opts.strategy = Some(value("--strategy")?);
                i += 1;
            }
            "--expr" => {
                opts.expr_text = Some(value("--expr")?);
                i += 1;
            }
            "--dims" => {
                let text = value("--dims")?;
                let dims: Result<Vec<usize>, _> =
                    text.split(',').map(|s| s.trim().parse::<usize>()).collect();
                opts.dims_flag = Some(dims.map_err(|e| format!("invalid --dims `{text}`: {e}"))?);
                i += 1;
            }
            "--top-k" => {
                let k: usize = value("--top-k")?
                    .parse()
                    .map_err(|e| format!("invalid --top-k: {e}"))?;
                if k == 0 {
                    return Err("--top-k must be at least 1".into());
                }
                opts.top_k = Some(k);
                i += 1;
            }
            "--store" => {
                opts.store = Some(PathBuf::from(value("--store")?));
                i += 1;
            }
            "--exprs" | "--file" => {
                opts.exprs_file = Some(PathBuf::from(value(arg)?));
                i += 1;
            }
            "--no-merge" => {
                opts.no_merge = true;
            }
            "--no-cse" => {
                opts.no_cse = true;
            }
            "--no-factor-cache" => {
                opts.no_factor_cache = true;
            }
            "--cse-parity" => {
                opts.cse_parity = true;
            }
            "--autotune" => {
                opts.autotune = true;
            }
            "--quick" => {
                opts.quick = true;
            }
            "--update-store" => {
                opts.update_store = true;
            }
            "--backend" => {
                opts.backend = Some(value("--backend")?);
                i += 1;
            }
            "--threshold" => {
                let t: f64 = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("invalid --threshold: {e}"))?;
                if !(t.is_finite() && t >= 0.0) {
                    return Err("--threshold must be a non-negative number".into());
                }
                opts.threshold = Some(t);
                i += 1;
            }
            "--demo" => {
                let n: usize = value("--demo")?
                    .parse()
                    .map_err(|e| format!("invalid --demo: {e}"))?;
                if n == 0 {
                    return Err("--demo must be at least 1".into());
                }
                opts.demo = Some(n);
                i += 1;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            positional => opts.positional.push(positional.to_string()),
        }
        i += 1;
    }
    if opts.executor == "measured" && !explicit_scale {
        opts.scale = 0.02;
    }
    Ok(opts)
}

/// Repetitions per measurement of the CLI's measured executor (the paper's
/// protocol) — the single source for both the executor construction and the
/// `meta.reps` provenance recorded in calibration stores.
pub const MEASURED_REPS: usize = 10;

/// Cache-flush buffer size of the CLI's measured executor.
pub const MEASURED_FLUSH_BYTES: usize = 64 * 1024 * 1024;

/// Parse the `--strategy` flag value, shared by `select` and `batch`.
pub fn parse_strategy(name: &str) -> Result<lamb_select::Strategy, String> {
    use lamb_select::Strategy;
    match name {
        "min-flops" | "flops" => Ok(Strategy::MinFlops),
        "predicted" | "min-predicted-time" => Ok(Strategy::MinPredictedTime),
        "hybrid" => Ok(Strategy::Hybrid { flop_margin: 0.5 }),
        "oracle" | "exhaustive" => Ok(Strategy::Oracle),
        other => Err(format!(
            "unknown strategy `{other}` (expected min-flops, predicted, hybrid or oracle)"
        )),
    }
}

impl CommonOptions {
    /// Build the requested executor under [`CommonOptions::block_config`].
    pub fn build_executor(&self) -> Result<Box<dyn Executor>, String> {
        self.build_executor_with(self.block_config())
    }

    /// Build the requested executor under an explicit block configuration
    /// (the simulated back ends ignore it). `lamb calibrate --autotune` uses
    /// this to run its sweep under a configuration it just discovered — one
    /// that is not yet persisted where [`CommonOptions::block_config`] looks.
    pub fn build_executor_with(&self, cfg: BlockConfig) -> Result<Box<dyn Executor>, String> {
        match self.executor.as_str() {
            "simulated" | "sim" => Ok(Box::new(SimulatedExecutor::paper_like())),
            "smooth" | "simulated-smooth" => Ok(Box::new(SimulatedExecutor::paper_like_smooth())),
            "measured" | "real" => Ok(Box::new(MeasuredExecutor::new(
                MachineModel::generic_laptop(),
                cfg,
                MEASURED_REPS,
                MEASURED_FLUSH_BYTES,
            ))),
            other => Err(format!(
                "unknown executor `{other}` (expected simulated, smooth or measured)"
            )),
        }
    }

    /// The kernel block configuration the measured executor runs under.
    ///
    /// When the calibration store at [`CommonOptions::store_path`] exists and
    /// carries an autotuned configuration (schema v5 `tuned` section), that
    /// configuration wins — so a warm start after `lamb calibrate --autotune`
    /// both runs the kernels under the tuned blocking *and* records/compares
    /// the matching fingerprint in [`CommonOptions::timing_metadata`].
    /// Otherwise the compiled-in default applies.
    pub fn block_config(&self) -> BlockConfig {
        self.stored_tuned_config().unwrap_or_default()
    }

    /// The autotuned block configuration persisted in the calibration store
    /// at [`CommonOptions::store_path`], when one exists. Unreadable or
    /// pre-v5 stores simply yield `None`; they are diagnosed elsewhere.
    pub fn stored_tuned_config(&self) -> Option<BlockConfig> {
        let path = self.store_path();
        if !path.exists() {
            return None;
        }
        let store = CalibrationStore::load(&path).ok()?;
        store.tuned_block_config().cloned()
    }

    /// Resolve the expression: either parsed from `--expr <text>` or named
    /// by the first positional argument.
    pub fn expression(&self) -> Result<(String, Box<dyn Expression>), String> {
        if let Some(text) = &self.expr_text {
            let parsed = TreeExpression::parse(text)
                .map_err(|e| format!("cannot parse --expr `{text}`: {e}"))?;
            return Ok(("expr".into(), Box::new(parsed)));
        }
        let name = self
            .positional
            .first()
            .ok_or("missing expression (chain, aatb, or --expr \"...\")")?;
        match name.as_str() {
            "chain" | "abcd" => Ok(("chain".into(), Box::new(MatrixChainExpression::abcd()))),
            "aatb" => Ok(("aatb".into(), Box::new(AatbExpression::new()))),
            other => Err(format!(
                "unknown expression `{other}` (expected chain, aatb, or --expr \"...\")"
            )),
        }
    }

    /// Parse the dimension tuple — from `--dims` when given, otherwise from
    /// the positional arguments after the expression name — and validate its
    /// length.
    pub fn dims(&self, expected: usize) -> Result<Vec<usize>, String> {
        let dims = if let Some(dims) = &self.dims_flag {
            dims.clone()
        } else {
            let start = usize::from(self.expr_text.is_none());
            let parsed: Result<Vec<usize>, _> = self
                .positional
                .get(start.min(self.positional.len())..)
                .unwrap_or(&[])
                .iter()
                .map(|s| s.parse::<usize>())
                .collect();
            parsed.map_err(|e| format!("invalid dimension: {e}"))?
        };
        if dims.len() != expected {
            return Err(format!(
                "expected {expected} dimension sizes, got {}",
                dims.len()
            ));
        }
        if dims.contains(&0) {
            return Err("dimension sizes must be positive".into());
        }
        Ok(dims)
    }

    /// The scaled Experiment-1 configuration for the named expression.
    pub fn search_config(&self, expression: &str) -> SearchConfig {
        let base = if expression == "aatb" {
            SearchConfig::paper_aatb()
        } else {
            SearchConfig::paper_chain()
        };
        SearchConfig {
            seed: self.seed,
            ..base.scaled(self.scale)
        }
    }

    /// The Experiment-2 configuration (capped when the measured executor is
    /// selected).
    pub fn line_config(&self) -> LineConfig {
        let cfg = LineConfig::paper();
        if self.executor == "measured" {
            cfg.with_max_anomalies(((100.0 * self.scale).ceil() as usize).max(1))
        } else {
            cfg
        }
    }

    /// Sizes for Figure-1 sweeps.
    pub fn figure1_sizes(&self) -> Vec<usize> {
        (1..=self.max_size.max(100) / 100)
            .map(|i| i * 100)
            .collect()
    }

    /// The calibration-store path: `--store` when given, else
    /// `<out_dir>/calibration.json`.
    pub fn store_path(&self) -> PathBuf {
        self.store
            .clone()
            .unwrap_or_else(|| self.out_dir.join("calibration.json"))
    }

    /// Canonical name of the selected executor for store metadata (aliases
    /// like `sim`/`real` collapse onto one name, so stores stay mergeable).
    pub fn executor_label(&self) -> Result<&'static str, String> {
        match self.executor.as_str() {
            "simulated" | "sim" => Ok("simulated"),
            "smooth" | "simulated-smooth" => Ok("simulated-smooth"),
            "measured" | "real" => Ok("measured"),
            other => Err(format!(
                "unknown executor `{other}` (expected simulated, smooth or measured)"
            )),
        }
    }

    /// Timing-protocol metadata recorded in calibration stores: the block
    /// configuration fingerprint and repetitions per measurement of the
    /// executor that [`CommonOptions::build_executor`] constructs (both read
    /// from the same definitions the construction uses).
    pub fn timing_metadata(&self) -> (String, usize) {
        let reps = if matches!(self.executor.as_str(), "measured" | "real") {
            MEASURED_REPS
        } else {
            1
        };
        (self.block_config().fingerprint(), reps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let opts = parse(&strs(&[
            "aatb",
            "80",
            "514",
            "768",
            "--seed",
            "3",
            "--strategy",
            "oracle",
        ]))
        .unwrap();
        assert_eq!(opts.positional, vec!["aatb", "80", "514", "768"]);
        assert_eq!(opts.seed, 3);
        assert_eq!(opts.strategy.as_deref(), Some("oracle"));
        assert_eq!(opts.dims(3).unwrap(), vec![80, 514, 768]);
        let (name, expr) = opts.expression().unwrap();
        assert_eq!(name, "aatb");
        assert_eq!(expr.num_dims(), 3);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_dims() {
        assert!(parse(&strs(&["--bogus"])).is_err());
        let opts = parse(&strs(&["chain", "10", "20"])).unwrap();
        assert!(opts.dims(5).is_err());
        let opts = parse(&strs(&["chain", "10", "0", "3", "4", "5"])).unwrap();
        assert!(opts.dims(5).is_err());
    }

    #[test]
    fn measured_executor_defaults_to_reduced_scale() {
        let opts = parse(&strs(&["aatb", "--executor", "measured"])).unwrap();
        assert!(opts.scale < 0.1);
        assert!(opts.line_config().max_anomalies.is_some());
        let opts2 = parse(&strs(&["aatb", "--executor", "measured", "--scale", "0.9"])).unwrap();
        assert!((opts2.scale - 0.9).abs() < 1e-12);
    }

    #[test]
    fn search_config_scales_with_expression() {
        let opts = parse(&strs(&["aatb", "--scale", "0.1"])).unwrap();
        assert_eq!(opts.search_config("aatb").target_anomalies, 100);
        assert_eq!(opts.search_config("chain").target_anomalies, 10);
    }

    #[test]
    fn ablation_flags_default_off_and_parse() {
        let opts = parse(&strs(&["aatb", "40", "50", "60"])).unwrap();
        assert!(!opts.no_cse && !opts.no_factor_cache && !opts.cse_parity);
        let opts = parse(&strs(&[
            "aatb",
            "--no-cse",
            "--no-factor-cache",
            "--cse-parity",
        ]))
        .unwrap();
        assert!(opts.no_cse && opts.no_factor_cache && opts.cse_parity);
    }

    #[test]
    fn unknown_executor_is_an_error() {
        let opts = parse(&strs(&["chain", "--executor", "quantum"])).unwrap();
        assert!(opts.build_executor().is_err());
    }
}
