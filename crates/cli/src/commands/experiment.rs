//! `lamb exp1` and `lamb pipeline` — the paper's experiments from the command
//! line.

use super::common;
use lamb_experiments::{run_experiment1, run_full_pipeline, PredictConfig};

/// Run Experiment 1 (random anomaly search) for the named expression.
pub fn run_exp1(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (name, expr) = opts.expression()?;
    let mut executor = opts.build_executor()?;
    let (result, output) = run_experiment1(
        expr.as_ref(),
        executor.as_mut(),
        &opts.search_config(&name),
        &opts.out_dir,
        &format!("cli_exp1_{name}"),
    )
    .map_err(|e| format!("failed to write artifacts: {e}"))?;
    println!("{}", output.report);
    for (label, path) in &output.artifacts {
        println!("wrote {label}: {path}");
    }
    println!(
        "abundance: {:.2}% ({} anomalies / {} samples)",
        100.0 * result.abundance(),
        result.anomalies.len(),
        result.samples_drawn
    );
    Ok(())
}

/// Run Experiments 1+2+3 end to end for the named expression.
pub fn run_pipeline(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (name, expr) = opts.expression()?;
    let mut executor = opts.build_executor()?;
    let output = run_full_pipeline(
        expr.as_ref(),
        executor.as_mut(),
        &opts.search_config(&name),
        &opts.line_config(),
        &PredictConfig::paper(),
        &opts.out_dir,
        &format!("cli_pipeline_{name}"),
    )
    .map_err(|e| format!("failed to write artifacts: {e}"))?;
    println!("{}", output.report);
    for (label, path) in &output.artifacts {
        println!("wrote {label}: {path}");
    }
    Ok(())
}
