//! `lamb figure1` — the kernel-efficiency sweep of the paper's Figure 1.

use super::common;

/// Run the subcommand.
pub fn run_figure1(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let mut executor = opts.build_executor()?;
    let output =
        lamb_experiments::run_figure1(executor.as_mut(), &opts.figure1_sizes(), &opts.out_dir)
            .map_err(|e| format!("failed to write artifacts: {e}"))?;
    println!("{}", output.report);
    for (label, path) in &output.artifacts {
        println!("wrote {label}: {path}");
    }
    Ok(())
}
