//! CLI subcommands.

pub mod algorithms;
pub mod batch;
pub mod calibrate;
pub mod common;
pub mod experiment;
pub mod figure;
pub mod select;
pub mod verify;

/// Print the top-level usage text.
pub fn print_help() {
    println!(
        "lamb — FLOPs as a discriminant for dense linear algebra algorithms (ICPP'22 reproduction)

USAGE:
    lamb <COMMAND> [ARGS]

COMMANDS:
    algorithms chain d0 d1 d2 d3 d4    list the six ABCD algorithms with FLOP counts
    algorithms aatb d0 d1 d2           list the five A*A^T*B algorithms with FLOP counts
    algorithms --expr \"A*A^T*B\" --dims d0,d1,d2
                                       enumerate any parsed product expression
    select [--strategy S] EXPR dims..  select an algorithm (S: min-flops, predicted, hybrid, oracle)
    select --expr \"A*B*C*D\" --dims d0,..,d4 [--top-k K]
                                       parse, enumerate, select and execute any expression
    select --expr \"L[lower]*A*B\" --dims d0,d1,d2
                                       triangular structure: [lower]/[upper] unlock TRMM, ^-1 TRSM
    select --expr \"S[spd]^-1*B\" --dims d0,d1
                                       SPD structure: [spd] unlocks SYMM; ^-1 realises as
                                       a Cholesky factorisation (POTRF) plus two TRSMs
    calibrate [--store F] [OPTS]       run calibration sweeps, write/merge the store, print coverage
    batch --exprs FILE|--demo N [OPTS] plan a whole request file against a store, emit a CSV report
    verify EXPR dims.. | --expr \"...\" --dims d0,..
                                       statically verify every enumerated algorithm (5 passes:
                                       def-use, shape-flow, structure-flow, cost-audit, alias-safety)
    verify --file FILE | --demo N      verify a whole request file / all built-in scenario families
                                       (--store F additionally lints the store's timing keys)
    verify --cse-parity                plan every scenario family with CSE on and off and check
                                       the chosen algorithms compute identical numerics
    figure1 [OPTS]                     kernel efficiency sweep (paper Figure 1)
    exp1 chain|aatb [OPTS]             Experiment 1: random anomaly search (Figures 6/9)
    pipeline chain|aatb [OPTS]         Experiments 1+2+3 end to end (Figures 7/10, Tables 1/2)
    help                               show this message

COMMON OPTIONS:
    --executor simulated|smooth|measured   (default: simulated)
    --expr <text>                          expression text, e.g. \"A*A^T*B\", \"L[lower]^-1*B\"
                                           or \"S[spd]^-1*B\" (^T / ' transpose, N[lower|upper]
                                           triangular, N[spd] SPD, ^-1 solve)
    --dims d0,d1,...                       comma-separated dimension tuple for --expr
    --top-k <K>                            keep only the K FLOP-cheapest algorithms (long chains)
    --scale <0..1>                         workload scale for experiments
    --seed <u64>                           sampling seed
    --out <dir>                            output directory for CSV artifacts (default: results)

CALIBRATION / BATCH OPTIONS:
    --store <file>                         calibration store path (default: <out>/calibration.json)
    --exprs <file>                         batch request file: one `EXPR d0 d1 ...` per line
    --demo <N>                             generate N instances per built-in scenario instead
    --threshold <t>                        anomaly time-score threshold (default: 0.10)
    --no-merge                             calibrate: overwrite an existing store instead of merging
    --update-store                         batch: write newly benchmarked calls back into the store
    --no-cse                               select/batch ablation: disable common-subexpression
                                           elimination (repeated POTRF/SYRK/TRSM stay duplicated)
    --no-factor-cache                      select/batch ablation: disable the shared factor cache
                                           (repeated solves against one operand re-factor each time)
"
    );
}
