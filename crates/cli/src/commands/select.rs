//! `lamb select` — choose an algorithm for a concrete instance with one of
//! the selection strategies and report how it compares to the empirical
//! optimum.

use super::common;
use lamb_select::{evaluate_strategy, Strategy};

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    match name {
        "min-flops" | "flops" => Ok(Strategy::MinFlops),
        "predicted" | "min-predicted-time" => Ok(Strategy::MinPredictedTime),
        "hybrid" => Ok(Strategy::Hybrid { flop_margin: 0.5 }),
        "oracle" | "exhaustive" => Ok(Strategy::Oracle),
        other => Err(format!(
            "unknown strategy `{other}` (expected min-flops, predicted, hybrid or oracle)"
        )),
    }
}

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (_, expr) = opts.expression()?;
    let dims = opts.dims(expr.num_dims())?;
    let strategy = parse_strategy(opts.strategy.as_deref().unwrap_or("min-flops"))?;
    let mut executor = opts.build_executor()?;

    let algorithms = expr.algorithms(&dims);
    let outcome = evaluate_strategy(strategy, &algorithms, executor.as_mut());
    let chosen = &algorithms[outcome.chosen];

    println!("{} with dims {:?} ({} executor)", expr.name(), dims, opts.executor);
    println!("strategy        : {}", outcome.strategy);
    println!("chosen algorithm: {}", chosen.name);
    println!("  kernels       : {}", chosen.kernel_summary());
    println!("  FLOPs         : {}", chosen.flops());
    println!("  time          : {:.6} s", outcome.chosen_seconds);
    println!("best achievable : {:.6} s", outcome.best_seconds);
    println!("slowdown vs best: {:.2}%", 100.0 * outcome.regret());
    Ok(())
}
