//! `lamb select` — plan a concrete instance with the unified `Planner`
//! pipeline: enumerate the algorithms, score them, let the selection policy
//! choose, execute, and report how the choice compares to the empirical
//! optimum (plus the instance's anomaly verdict).
//!
//! Besides the named paper expressions, any product expression can be given
//! as text and planned end to end:
//!
//! ```text
//! lamb select --expr "A*A^T*B" --dims 80,514,768
//! lamb select --expr "S[spd]^-1*B" --dims 200,60
//! lamb select --strategy predicted --expr "A*B*C*D*E*F*G*H" \
//!     --dims 600,40,800,30,900,50,700,60,500 --top-k 8
//! ```

use super::common::{self, parse_strategy};
use lamb_plan::{FactorCache, Planner};
use lamb_select::{assign_backends, pinned_backends, Strategy};
use std::collections::HashMap;
use std::sync::Arc;

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (_, expr) = opts.expression()?;
    let dims = opts.dims(expr.num_dims())?;
    let strategy = parse_strategy(opts.strategy.as_deref().unwrap_or("min-flops"))?;
    let mut executor = opts.build_executor()?;

    // Only benchmark predicted-time scores when the policy consults them:
    // with a measured executor, filling the column for min-flops/oracle would
    // run real isolated-call benchmarks the selection never uses.
    let wants_predictions = matches!(
        strategy,
        Strategy::MinPredictedTime | Strategy::Hybrid { .. }
    );
    let mut planner = Planner::for_expression(expr.as_ref())
        .strategy(strategy)
        .score_predictions(wants_predictions)
        .cse(!opts.no_cse);
    let factor_cache = (!opts.no_factor_cache).then(|| Arc::new(FactorCache::new()));
    if let Some(fc) = &factor_cache {
        planner = planner.factor_cache(Arc::clone(fc));
    }
    if let Some(k) = opts.top_k {
        planner = planner.top_k(k);
    }
    let plan = planner
        .plan_with(&dims, executor.as_mut())
        .map_err(|e| e.to_string())?;
    let outcome = plan.execute_with(executor.as_mut());

    println!(
        "{} with dims {:?} ({} executor)",
        plan.expression, dims, opts.executor
    );
    println!("policy          : {}", plan.policy);
    if plan.duplicates_removed > 0 {
        println!(
            "deduplication   : removed {} rewrite-equivalent algorithm(s)",
            plan.duplicates_removed
        );
    }
    if let Some(k) = opts.top_k {
        println!("pruning         : top-{k} by FLOP count");
    }
    if opts.no_cse {
        println!("ablation        : common-subexpression elimination disabled (--no-cse)");
    }
    if let Some(fc) = &factor_cache {
        if !fc.is_empty() {
            println!(
                "factor cache    : {} reusable factor identity(ies) noted for this plan",
                fc.len()
            );
        }
    } else {
        println!("ablation        : factor cache disabled (--no-factor-cache)");
    }
    println!("algorithm set   :");
    for score in &plan.scores {
        let marker = if score.index == plan.chosen {
            "->"
        } else {
            "  "
        };
        let predicted = score
            .predicted_seconds
            .map_or(String::from("      n/a"), |s| format!("{:9.6}", s));
        println!(
            "  {} [{}] {:<40} {:>16} FLOPs  predicted {predicted} s",
            marker, score.index, score.name, score.flops
        );
    }
    let chosen = plan.chosen_algorithm();
    println!("chosen algorithm: {}", chosen.name);
    println!("  kernels       : {}", chosen.kernel_summary());
    println!("  time          : {:.6} s", outcome.chosen_seconds);

    // Per-call backend assignment over the chosen algorithm: either the
    // benchmark-driven argmin or a `--backend <name>` pin (ablation).
    let assignment = match opts.backend.as_deref() {
        Some(name) => {
            let names = executor.backend_names();
            if !names.iter().any(|n| n == name) {
                return Err(format!(
                    "unknown backend `{name}` (this executor offers: {})",
                    names.join(", ")
                ));
            }
            println!("backend plan    : pinned to `{name}` (--backend)");
            pinned_backends(chosen, executor.as_mut(), name)
        }
        None => {
            let a = assign_backends(chosen, executor.as_mut());
            println!(
                "backend plan    : {} ({})",
                if a.is_mixed() { "mixed" } else { "uniform" },
                a.backends_used().join(", ")
            );
            a
        }
    };
    for choice in &assignment.per_call {
        println!(
            "    [{}] {:<34} -> {:<10} {:9.6} s",
            choice.call_index, choice.label, choice.backend, choice.seconds
        );
    }
    executor.set_backend_assignment(&assignment.as_map());
    let assigned = executor.execute_algorithm(chosen);
    executor.set_backend_assignment(&HashMap::new());
    println!("  assigned time : {:.6} s", assigned.seconds);
    println!("best achievable : {:.6} s", outcome.best_seconds);
    println!("slowdown vs best: {:.2}%", 100.0 * outcome.regret());
    println!(
        "anomaly verdict : {} (time score {:.1}%, FLOP score {:.1}%)",
        if outcome.is_anomaly() {
            "ANOMALY"
        } else {
            "not an anomaly"
        },
        100.0 * outcome.verdict.time_score,
        100.0 * outcome.verdict.flop_score
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parsed_expression_round_trips_through_the_planner_to_a_verdict() {
        // The acceptance path of the general enumerator: text -> parse ->
        // enumerate -> select -> execute -> verdict, on the paper's A*A^T*B
        // anomaly instance.
        assert!(run(&strs(&["--expr", "A*A^T*B", "--dims", "80,514,768"])).is_ok());
        // And with a prediction-based strategy plus pruning on a long chain.
        assert!(run(&strs(&[
            "--strategy",
            "predicted",
            "--expr",
            "A*B*C*D*E*F",
            "--dims",
            "60,20,90,30,120,40,70",
            "--top-k",
            "4"
        ]))
        .is_ok());
    }

    #[test]
    fn named_expressions_still_select() {
        assert!(run(&strs(&["aatb", "40", "50", "60"])).is_ok());
    }

    #[test]
    fn triangular_structure_syntax_round_trips() {
        // TRMM products, chained structure, and TRSM solves all plan and
        // execute through the same path as the paper expressions.
        assert!(run(&strs(&["--expr", "L[lower]*A*B", "--dims", "96,64,48"])).is_ok());
        assert!(run(&strs(&[
            "--strategy",
            "predicted",
            "--expr",
            "L[lower]^-1*A*B",
            "--dims",
            "200,120,80"
        ]))
        .is_ok());
        // Unrealisable structure fails with the enumerator's message, not a
        // panic: a pseudo-inverse of a wide operand has no QR realisation.
        let err = run(&strs(&["--expr", "A^+*b", "--dims", "40,10,3"])).unwrap_err();
        assert!(err.contains("rows"), "{err}");
    }

    #[test]
    fn spd_structure_syntax_round_trips() {
        // SPD products (SYMM-versus-GEMM), Cholesky-realised solves, and the
        // solve chain's competing orders all plan and execute end to end.
        assert!(run(&strs(&["--expr", "S[spd]*B", "--dims", "96,48"])).is_ok());
        assert!(run(&strs(&["--expr", "S[spd]^-1*B", "--dims", "120,40"])).is_ok());
        assert!(run(&strs(&[
            "--strategy",
            "predicted",
            "--expr",
            "S[spd]^-1*B*C",
            "--dims",
            "150,90,30"
        ]))
        .is_ok());
        // The general inverse is realised too now, via the LU pipeline.
        assert!(run(&strs(&["--expr", "A^-1*B", "--dims", "40,10"])).is_ok());
        // And the least-squares form plans through the QR pipeline.
        assert!(run(&strs(&["--expr", "A^+*b", "--dims", "10,40,3"])).is_ok());
    }

    #[test]
    fn ablation_flags_round_trip_on_a_repeated_solve() {
        // The shared-factor expression plans with CSE + factor cache on by
        // default, and under both ablations.
        let base = ["--expr", "S[spd]^-1*S[spd]^-1*B", "--dims", "64,12"];
        assert!(run(&strs(&base)).is_ok());
        let mut no_cse = strs(&base);
        no_cse.push("--no-cse".into());
        assert!(run(&no_cse).is_ok());
        let mut no_cache = strs(&base);
        no_cache.push("--no-factor-cache".into());
        assert!(run(&no_cache).is_ok());
    }

    #[test]
    fn backend_pins_and_the_default_assignment_round_trip() {
        // A chain whose calls straddle the native/reference crossover: the
        // default path computes a per-call assignment, and both pins run the
        // same instance end to end (the --backend ablation).
        let base = [
            "--strategy",
            "predicted",
            "--expr",
            "A*B*C",
            "--dims",
            "300,300,8,8",
        ];
        assert!(run(&strs(&base)).is_ok());
        for name in ["native", "reference"] {
            let mut pinned = strs(&base);
            pinned.extend(["--backend".to_string(), name.to_string()]);
            assert!(run(&pinned).is_ok(), "--backend {name}");
        }
        let mut bogus = strs(&base);
        bogus.extend(["--backend".to_string(), "quantum".to_string()]);
        let err = run(&bogus).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
    }

    #[test]
    fn bad_expression_text_fails_cleanly() {
        let err = run(&strs(&["--expr", "A*(B", "--dims", "4,5,6"])).unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
        let err = run(&strs(&["--expr", "A*B", "--dims", "4,5"])).unwrap_err();
        assert!(err.contains("expected 3"), "{err}");
    }
}
