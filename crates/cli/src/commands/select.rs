//! `lamb select` — plan a concrete instance with the unified `Planner`
//! pipeline: enumerate the algorithms, score them, let the selection policy
//! choose, execute, and report how the choice compares to the empirical
//! optimum (plus the instance's anomaly verdict).

use super::common;
use lamb_plan::Planner;
use lamb_select::Strategy;

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    match name {
        "min-flops" | "flops" => Ok(Strategy::MinFlops),
        "predicted" | "min-predicted-time" => Ok(Strategy::MinPredictedTime),
        "hybrid" => Ok(Strategy::Hybrid { flop_margin: 0.5 }),
        "oracle" | "exhaustive" => Ok(Strategy::Oracle),
        other => Err(format!(
            "unknown strategy `{other}` (expected min-flops, predicted, hybrid or oracle)"
        )),
    }
}

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    let (_, expr) = opts.expression()?;
    let dims = opts.dims(expr.num_dims())?;
    let strategy = parse_strategy(opts.strategy.as_deref().unwrap_or("min-flops"))?;
    let mut executor = opts.build_executor()?;

    // Only benchmark predicted-time scores when the policy consults them:
    // with a measured executor, filling the column for min-flops/oracle would
    // run real isolated-call benchmarks the selection never uses.
    let wants_predictions = matches!(
        strategy,
        Strategy::MinPredictedTime | Strategy::Hybrid { .. }
    );
    let planner = Planner::for_expression(expr.as_ref())
        .strategy(strategy)
        .score_predictions(wants_predictions);
    let plan = planner
        .plan_with(&dims, executor.as_mut())
        .map_err(|e| e.to_string())?;
    let outcome = plan.execute_with(executor.as_mut());

    println!(
        "{} with dims {:?} ({} executor)",
        plan.expression, dims, opts.executor
    );
    println!("policy          : {}", plan.policy);
    println!("algorithm set   :");
    for score in &plan.scores {
        let marker = if score.index == plan.chosen {
            "->"
        } else {
            "  "
        };
        let predicted = score
            .predicted_seconds
            .map_or(String::from("      n/a"), |s| format!("{:9.6}", s));
        println!(
            "  {} [{}] {:<40} {:>16} FLOPs  predicted {predicted} s",
            marker, score.index, score.name, score.flops
        );
    }
    let chosen = plan.chosen_algorithm();
    println!("chosen algorithm: {}", chosen.name);
    println!("  kernels       : {}", chosen.kernel_summary());
    println!("  time          : {:.6} s", outcome.chosen_seconds);
    println!("best achievable : {:.6} s", outcome.best_seconds);
    println!("slowdown vs best: {:.2}%", 100.0 * outcome.regret());
    println!(
        "anomaly verdict : {} (time score {:.1}%, FLOP score {:.1}%)",
        if outcome.is_anomaly() {
            "ANOMALY"
        } else {
            "not an anomaly"
        },
        100.0 * outcome.verdict.time_score,
        100.0 * outcome.verdict.flop_score
    );
    Ok(())
}
