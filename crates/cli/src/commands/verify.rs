//! `lamb verify` — run the static analyser over enumerated algorithms.
//!
//! Every algorithm the enumerator emits for the requested instances is
//! checked by `lamb-verify`'s five passes (def-use, shape-flow,
//! structure-flow, cost-audit, alias-safety); any error-severity diagnostic
//! makes the command fail. With `--store`, the calibration store's timing
//! table is additionally linted for canonical keys and finite times.
//!
//! With `--cse-parity`, the command instead plans every built-in scenario
//! family twice — common-subexpression elimination on and off — and checks
//! the two chosen algorithms compute numerically identical results
//! (difference within `1e-10` of the result's magnitude).
//!
//! ```text
//! lamb verify --expr "A*A^T*B" --dims 80,514,768
//! lamb verify aatb 80 514 768
//! lamb verify --file workload.txt
//! lamb verify --demo 5 --seed 7                 all scenario families
//! lamb verify --store results/calibration.json --demo 3
//! lamb verify --cse-parity                      CSE on/off numerical parity sweep
//! ```

use super::common;
use lamb_experiments::{all_scenarios, factor_reuse_scenarios};
use lamb_expr::Expression;
use lamb_perfmodel::CalibrationStore;
use lamb_plan::BatchRequest;
use lamb_verify::{verify_algorithm, verify_call_table};

/// Run the subcommand.
pub fn run(args: &[String]) -> Result<(), String> {
    let opts = common::parse(args)?;
    if opts.cse_parity {
        return run_cse_parity();
    }

    // The workload: an instance given inline, a request file, or the
    // generated scenario batch.
    let mut collected: Vec<(String, Vec<lamb_expr::Algorithm>)> = Vec::new();
    if opts.exprs_file.is_none() && opts.demo.is_none() {
        if opts.expr_text.is_none() && opts.positional.is_empty() {
            if opts.store.is_some() {
                // Store-only lint: no algorithms to verify.
                return finish(verify_instances(collected.into_iter(), &opts)?);
            }
            return Err(
                "missing workload: give --expr/--dims, a named expression, --file FILE or --demo N"
                    .into(),
            );
        }
        let (name, expr) = opts.expression()?;
        let dims = opts.dims(expr.num_dims())?;
        let algorithms = expr
            .algorithms_pruned(&dims, opts.top_k)
            .map_err(|e| format!("enumeration failed: {e}"))?;
        collected.push((format!("{name} {dims:?}"), algorithms));
        return finish(verify_instances(collected.into_iter(), &opts)?);
    }

    let requests: Vec<BatchRequest> = if let Some(path) = &opts.exprs_file {
        let contents = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read --file {}: {e}", path.display()))?;
        BatchRequest::parse_file(&contents).map_err(|e| e.to_string())?
    } else {
        lamb_experiments::scenario_batch_requests(
            &all_scenarios(),
            opts.demo.unwrap_or(1),
            opts.seed,
            60,
            900,
        )
    };
    for req in requests {
        let algorithms = req
            .expr
            .algorithms_pruned(&req.dims, opts.top_k)
            .map_err(|e| format!("enumeration failed for `{}`: {e}", req.text))?;
        collected.push((format!("{} {:?}", req.text, req.dims), algorithms));
    }
    finish(verify_instances(collected.into_iter(), &opts)?)
}

/// Plan every scenario family with CSE on and off and check the two chosen
/// algorithms agree numerically: the CSE rewrite must be a pure cost
/// optimisation, never a semantic change.
fn run_cse_parity() -> Result<(), String> {
    use lamb_matrix::ops::{max_abs, max_abs_diff};
    use lamb_perfmodel::MeasuredExecutor;
    use lamb_plan::Planner;

    let executor = MeasuredExecutor::quick();
    let mut families = 0usize;
    for scenario in all_scenarios()
        .iter()
        .chain(factor_reuse_scenarios().iter())
    {
        // Small, distinct dimensions: large enough to exercise blocking,
        // small enough that the untimed numerical execution stays cheap.
        let dims: Vec<usize> = (0..scenario.expression.num_dims())
            .map(|i| 24 + 8 * i)
            .collect();
        let with_cse = Planner::for_expression(&scenario.expression)
            .plan(&dims)
            .map_err(|e| format!("{}: cannot plan with CSE: {e}", scenario.name))?;
        let without_cse = Planner::for_expression(&scenario.expression)
            .cse(false)
            .plan(&dims)
            .map_err(|e| format!("{}: cannot plan without CSE: {e}", scenario.name))?;
        let shared = executor.compute_result(with_cse.chosen_algorithm());
        let raw = executor.compute_result(without_cse.chosen_algorithm());
        let diff = max_abs_diff(&shared, &raw)
            .map_err(|e| format!("{}: result shapes disagree: {e}", scenario.name))?;
        let tolerance = 1e-10 * max_abs(&raw).max(1.0);
        if diff > tolerance {
            return Err(format!(
                "{}: CSE changed the numerics: |shared - raw| = {diff:e} > {tolerance:e} \
                 (chosen `{}` vs `{}`)",
                scenario.name,
                with_cse.chosen_algorithm().name,
                without_cse.chosen_algorithm().name
            ));
        }
        println!(
            "ok   {} {dims:?}: CSE on/off agree to {diff:e} (chosen `{}` / `{}`)",
            scenario.name,
            with_cse.chosen_algorithm().name,
            without_cse.chosen_algorithm().name
        );
        families += 1;
    }
    println!("cse parity: {families} scenario family(ies) numerically identical");
    Ok(())
}

struct Totals {
    algorithms: usize,
    errors: usize,
    warnings: usize,
}

fn verify_instances(
    instances: impl Iterator<Item = (String, Vec<lamb_expr::Algorithm>)>,
    opts: &common::CommonOptions,
) -> Result<Totals, String> {
    let mut totals = Totals {
        algorithms: 0,
        errors: 0,
        warnings: 0,
    };
    let mut shown = 0usize;
    for (label, algorithms) in instances {
        let mut instance_errors = 0usize;
        for alg in &algorithms {
            let report = verify_algorithm(alg);
            totals.algorithms += 1;
            totals.errors += report.errors().count();
            totals.warnings += report.warnings().count();
            if report.has_errors() {
                instance_errors += report.errors().count();
                // Cap the spam on a badly broken enumerator, keep full
                // detail for the first offenders.
                if shown < 20 {
                    println!("FAIL {label} :: {}", alg.name);
                    for d in report.errors() {
                        println!("    {d}");
                        shown += 1;
                    }
                }
            }
        }
        println!(
            "{} {label}: {} algorithm(s), {} error(s)",
            if instance_errors == 0 { "ok  " } else { "FAIL" },
            algorithms.len(),
            instance_errors
        );
    }

    // Optionally lint the calibration store's timing table too.
    if let Some(path) = &opts.store {
        let store = CalibrationStore::load(path)
            .map_err(|e| format!("cannot load --store {}: {e}", path.display()))?;
        let report = verify_call_table(&store.calls);
        let errors = report.errors().count();
        totals.errors += errors;
        totals.warnings += report.warnings().count();
        if errors > 0 {
            println!("FAIL store {}:", path.display());
            for d in report.errors() {
                println!("    {d}");
            }
        } else {
            println!(
                "ok   store {}: {} timing key(s) canonical",
                path.display(),
                store.calls.len()
            );
        }
    }
    Ok(totals)
}

fn finish(totals: Totals) -> Result<(), String> {
    println!(
        "verified {} algorithm(s): {} error(s), {} warning(s)",
        totals.algorithms, totals.errors, totals.warnings
    );
    if totals.errors > 0 {
        return Err(format!(
            "verification failed with {} error-severity diagnostic(s)",
            totals.errors
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cse_parity_holds_across_every_scenario_family() {
        run(&["--cse-parity".to_string()]).unwrap();
    }
}
