//! `lamb` — command-line driver for the ICPP'22 "FLOPs as a Discriminant"
//! reproduction.
//!
//! ```text
//! lamb algorithms chain 331 279 338 854 427      list the 6 ABCD algorithms + FLOPs
//! lamb algorithms aatb 227 260 549               list the 5 A*A^T*B algorithms + FLOPs
//! lamb select --strategy predicted aatb 80 514 768
//! lamb calibrate --store results/calibration.json --sizes 1200
//! lamb batch --exprs workload.txt --store results/calibration.json
//! lamb verify --demo 5                           static analysis of all enumerated algorithms
//! lamb figure1 [--executor measured] [--sizes 1200]
//! lamb exp1 chain|aatb [--scale 0.1] [--executor simulated|smooth|measured]
//! lamb pipeline chain|aatb [--scale 0.05]        experiments 1+2+3 end to end
//! lamb help
//! ```

#![forbid(unsafe_code)]

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        commands::print_help();
        return ExitCode::SUCCESS;
    };
    let result = match command.as_str() {
        "algorithms" | "algs" => commands::algorithms::run(rest),
        "select" => commands::select::run(rest),
        "calibrate" => commands::calibrate::run(rest),
        "batch" => commands::batch::run(rest),
        "verify" => commands::verify::run(rest),
        "figure1" | "fig1" => commands::figure::run_figure1(rest),
        "exp1" | "experiment1" => commands::experiment::run_exp1(rest),
        "pipeline" => commands::experiment::run_pipeline(rest),
        "help" | "--help" | "-h" => {
            commands::print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `lamb help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
