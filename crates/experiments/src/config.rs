//! Configuration of the three experiments.
//!
//! The defaults reproduce the parameters reported in Sections 3.4 and 4 of
//! the paper; the `scaled` constructors shrink the workloads for quick runs
//! on the measured executor or in CI.

/// Parameters of Experiment 1 (random search for anomalies).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Lower bound of every dimension (paper: 20).
    pub box_min: usize,
    /// Upper bound of every dimension (paper: 1200).
    pub box_max: usize,
    /// Stop after this many distinct anomalies (paper: 100 for the chain,
    /// 1000 for `A·Aᵀ·B`).
    pub target_anomalies: usize,
    /// Hard cap on the number of samples drawn.
    pub max_samples: usize,
    /// Time-score threshold for classifying an anomaly (paper: 10%).
    pub time_score_threshold: f64,
    /// Seed of the uniform sampler.
    pub seed: u64,
}

impl SearchConfig {
    /// The paper's Experiment 1 configuration for the matrix chain
    /// (100 anomalies, threshold 10%, box `[20, 1200]`).
    #[must_use]
    pub fn paper_chain() -> Self {
        SearchConfig {
            box_min: 20,
            box_max: 1200,
            target_anomalies: 100,
            max_samples: 200_000,
            time_score_threshold: 0.10,
            seed: 20220829,
        }
    }

    /// The paper's Experiment 1 configuration for `A·Aᵀ·B`
    /// (1000 anomalies, threshold 10%, box `[20, 1200]`).
    #[must_use]
    pub fn paper_aatb() -> Self {
        SearchConfig {
            target_anomalies: 1000,
            ..SearchConfig::paper_chain()
        }
    }

    /// Scale the workload down by `factor` (both the anomaly target and the
    /// sample cap), keeping at least one target anomaly.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = factor.clamp(1.0e-6, 1.0);
        self.target_anomalies = ((self.target_anomalies as f64 * f).round() as usize).max(1);
        self.max_samples = ((self.max_samples as f64 * f).round() as usize).max(10);
        self
    }
}

/// Parameters of Experiment 2 (axis-aligned lines through anomalous regions).
#[derive(Debug, Clone, PartialEq)]
pub struct LineConfig {
    /// Step along the line (paper: 10).
    pub step: usize,
    /// Lower bound of the search box.
    pub box_min: usize,
    /// Upper bound of the search box.
    pub box_max: usize,
    /// Time-score threshold (paper: 5% for Experiments 2 and 3).
    pub time_score_threshold: f64,
    /// Maximum number of consecutive non-anomalies treated as a hole inside a
    /// region (paper: one or two).
    pub hole_tolerance: usize,
    /// Number of consecutive non-anomalies that marks the end of a region
    /// (paper: three).
    pub end_run: usize,
    /// Optional cap on the number of anomalies whose neighbourhood is scanned
    /// (`None` scans all of them).
    pub max_anomalies: Option<usize>,
}

impl LineConfig {
    /// The paper's Experiment 2 configuration.
    #[must_use]
    pub fn paper() -> Self {
        LineConfig {
            step: 10,
            box_min: 20,
            box_max: 1200,
            time_score_threshold: 0.05,
            hole_tolerance: 2,
            end_run: 3,
            max_anomalies: None,
        }
    }

    /// Scan at most `n` anomalies (useful for quick runs).
    #[must_use]
    pub fn with_max_anomalies(mut self, n: usize) -> Self {
        self.max_anomalies = Some(n);
        self
    }
}

/// Parameters of Experiment 3 (prediction from isolated kernel benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictConfig {
    /// Time-score threshold used for both the actual and the predicted
    /// classification (paper: 5%).
    pub time_score_threshold: f64,
}

impl PredictConfig {
    /// The paper's Experiment 3 configuration.
    #[must_use]
    pub fn paper() -> Self {
        PredictConfig {
            time_score_threshold: 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_reported_parameters() {
        let chain = SearchConfig::paper_chain();
        assert_eq!(chain.box_min, 20);
        assert_eq!(chain.box_max, 1200);
        assert_eq!(chain.target_anomalies, 100);
        assert!((chain.time_score_threshold - 0.10).abs() < 1e-12);
        let aatb = SearchConfig::paper_aatb();
        assert_eq!(aatb.target_anomalies, 1000);
        let lines = LineConfig::paper();
        assert_eq!(lines.step, 10);
        assert_eq!(lines.end_run, 3);
        assert!((lines.time_score_threshold - 0.05).abs() < 1e-12);
        assert!((PredictConfig::paper().time_score_threshold - 0.05).abs() < 1e-12);
    }

    #[test]
    fn scaling_shrinks_but_never_to_zero() {
        let c = SearchConfig::paper_aatb().scaled(0.01);
        assert_eq!(c.target_anomalies, 10);
        assert!(c.max_samples >= 10);
        let tiny = SearchConfig::paper_chain().scaled(0.0);
        assert_eq!(tiny.target_anomalies, 1);
    }

    #[test]
    fn line_config_anomaly_cap() {
        let c = LineConfig::paper().with_max_anomalies(5);
        assert_eq!(c.max_anomalies, Some(5));
    }
}
