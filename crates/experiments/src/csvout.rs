//! Minimal CSV/text output helpers: every figure/table binary writes its data
//! series next to the printed summary so plots can be regenerated externally.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Default output directory for experiment artifacts, relative to the current
/// working directory.
pub const DEFAULT_RESULTS_DIR: &str = "results";

/// Write `content` to `<dir>/<name>` (creating `dir` if needed) and return the
/// full path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_text(dir: &Path, name: &str, content: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Build a CSV string from a header and rows of already-formatted cells.
#[must_use]
pub fn csv_from_rows(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_from_rows_builds_expected_text() {
        let csv = csv_from_rows(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn write_text_creates_directories_and_files() {
        let dir = std::env::temp_dir().join(format!("lamb-csv-test-{}", std::process::id()));
        let path = write_text(&dir, "probe.csv", "x,y\n1,2\n").unwrap();
        assert!(path.exists());
        let read_back = fs::read_to_string(&path).unwrap();
        assert!(read_back.contains("1,2"));
        fs::remove_dir_all(&dir).ok();
    }
}
