//! High-level drivers: one function per paper artifact (figure or table).
//!
//! Each driver runs the necessary experiment(s), writes the raw data series
//! as CSV into an output directory, and returns a textual report. The
//! figure/table binaries in `lamb-bench` and the `lamb` CLI are thin wrappers
//! around these functions, so the artifacts can also be regenerated
//! programmatically (e.g. from the integration tests).

use crate::config::{LineConfig, PredictConfig, SearchConfig};
use crate::csvout::write_text;
use crate::figures::{
    efficiency_along_line, figure1_csv, figure1_kernel_efficiency, scatter_csv,
    thickness_distribution_csv,
};
use crate::lines::{scan_lines_around, LineScan};
use crate::predict::{predict_from_benchmarks, PredictionResult};
use crate::report::{prediction_report, region_report, search_report};
use crate::search::{run_random_search, SearchResult};
use lamb_expr::Expression;
use lamb_perfmodel::Executor;
use std::fmt::Write as _;
use std::path::Path;

/// The report and artifact paths produced by one driver invocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriverOutput {
    /// Human-readable summary (also suitable for EXPERIMENTS.md).
    pub report: String,
    /// CSV files written, as `(label, path)` pairs.
    pub artifacts: Vec<(String, String)>,
}

impl DriverOutput {
    fn add_artifact(&mut self, label: &str, path: &Path) {
        self.artifacts
            .push((label.to_string(), path.display().to_string()));
    }
}

/// Figure 1: kernel efficiency versus square operand size.
pub fn run_figure1(
    executor: &mut dyn Executor,
    sizes: &[usize],
    out_dir: &Path,
) -> std::io::Result<DriverOutput> {
    let profiles = figure1_kernel_efficiency(executor, sizes);
    let csv = figure1_csv(&profiles);
    let mut out = DriverOutput::default();
    let path = write_text(out_dir, "figure1_kernel_efficiency.csv", &csv)?;
    out.add_artifact("figure 1 data", &path);
    let _ = writeln!(
        out.report,
        "Figure 1 — kernel efficiency vs size ({} executor)",
        executor.name()
    );
    for p in &profiles {
        let last = p.efficiencies.last().copied().unwrap_or(0.0);
        let first = p.efficiencies.first().copied().unwrap_or(0.0);
        let _ = writeln!(
            out.report,
            "  {:<5} efficiency: {:.2} at size {} -> {:.2} at size {}",
            p.kernel,
            first,
            p.sizes.first().copied().unwrap_or(0),
            last,
            p.sizes.last().copied().unwrap_or(0)
        );
    }
    Ok(out)
}

/// Experiment 1 for one expression (Figures 6 / 9 and the abundance numbers
/// of Sections 4.1.1 / 4.2.1).
pub fn run_experiment1(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    config: &SearchConfig,
    out_dir: &Path,
    label: &str,
) -> std::io::Result<(SearchResult, DriverOutput)> {
    let result = run_random_search(expr, executor, config);
    let mut out = DriverOutput {
        report: search_report(&result),
        artifacts: Vec::new(),
    };
    let path = write_text(
        out_dir,
        &format!("{label}_scatter.csv"),
        &scatter_csv(&result),
    )?;
    out.add_artifact("time-score vs FLOP-score scatter", &path);
    Ok((result, out))
}

/// Experiment 2 for one expression (Figures 7 / 10).
pub fn run_experiment2(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    search: &SearchResult,
    config: &LineConfig,
    out_dir: &Path,
    label: &str,
) -> std::io::Result<(Vec<LineScan>, DriverOutput)> {
    let scans = scan_lines_around(expr, executor, &search.anomalies, config);
    let mut out = DriverOutput {
        report: region_report(&scans, expr.num_dims()),
        artifacts: Vec::new(),
    };
    let csv = thickness_distribution_csv(&scans, expr.num_dims());
    let path = write_text(out_dir, &format!("{label}_region_thickness.csv"), &csv)?;
    out.add_artifact("region thickness per dimension", &path);
    Ok((scans, out))
}

/// Experiment 3 for one expression (Tables 1 / 2).
pub fn run_experiment3(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    scans: &[LineScan],
    config: &PredictConfig,
    out_dir: &Path,
    label: &str,
) -> std::io::Result<(PredictionResult, DriverOutput)> {
    let result = predict_from_benchmarks(expr, executor, scans, config);
    let mut out = DriverOutput {
        report: prediction_report(&result),
        artifacts: Vec::new(),
    };
    let c = &result.confusion;
    let csv = format!(
        "actual,predicted_no,predicted_yes\nno,{},{}\nyes,{},{}\n",
        c.true_negative, c.false_positive, c.false_negative, c.true_positive
    );
    let path = write_text(out_dir, &format!("{label}_confusion_matrix.csv"), &csv)?;
    out.add_artifact("confusion matrix", &path);
    Ok((result, out))
}

/// Figures 8 / 11: per-algorithm efficiencies along an axis-aligned line.
pub fn run_efficiency_line(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    base_dims: &[usize],
    dimension: usize,
    config: &LineConfig,
    out_dir: &Path,
    label: &str,
) -> std::io::Result<DriverOutput> {
    let line = efficiency_along_line(expr, executor, base_dims, dimension, config);
    let mut out = DriverOutput::default();
    let path = write_text(
        out_dir,
        &format!("{label}_efficiency_line.csv"),
        &line.to_csv(),
    )?;
    out.add_artifact("per-algorithm efficiency along line", &path);
    let anomalous = line.points.iter().filter(|p| p.is_anomaly).count();
    let _ = writeln!(
        out.report,
        "Efficiency line through {:?} along d{} ({} executor): {} points, {} anomalous",
        base_dims,
        dimension,
        executor.name(),
        line.points.len(),
        anomalous
    );
    // Report which algorithm is fastest / cheapest at the line centre.
    if let Some(centre) = line
        .points
        .iter()
        .min_by_key(|p| (p.value as i64 - base_dims[dimension] as i64).abs())
    {
        for alg in &centre.algorithms {
            let _ = writeln!(
                out.report,
                "  at d{}={}: {:<40} total eff {:.2} cheapest={} fastest={}",
                dimension, centre.value, alg.name, alg.total, alg.is_cheapest, alg.is_fastest
            );
        }
    }
    Ok(out)
}

/// Run the full pipeline (Experiments 1, 2 and 3) for one expression and
/// return the combined report. This is what `EXPERIMENTS.md` is generated
/// from.
pub fn run_full_pipeline(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    search_cfg: &SearchConfig,
    line_cfg: &LineConfig,
    predict_cfg: &PredictConfig,
    out_dir: &Path,
    label: &str,
) -> std::io::Result<DriverOutput> {
    let (search, o1) = run_experiment1(expr, executor, search_cfg, out_dir, label)?;
    let (scans, o2) = run_experiment2(expr, executor, &search, line_cfg, out_dir, label)?;
    let (_, o3) = run_experiment3(expr, executor, &scans, predict_cfg, out_dir, label)?;
    Ok(DriverOutput {
        report: format!("{}\n{}\n{}", o1.report, o2.report, o3.report),
        artifacts: [o1.artifacts, o2.artifacts, o3.artifacts].concat(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::AatbExpression;
    use lamb_perfmodel::SimulatedExecutor;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lamb-driver-{tag}-{}", std::process::id()))
    }

    #[test]
    fn figure1_driver_writes_csv_and_report() {
        let dir = temp_dir("fig1");
        let mut exec = SimulatedExecutor::paper_like();
        let out = run_figure1(&mut exec, &[100, 500, 1000], &dir).unwrap();
        assert_eq!(out.artifacts.len(), 1);
        assert!(PathBuf::from(&out.artifacts[0].1).exists());
        assert!(out.report.contains("gemm"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_pipeline_runs_at_reduced_scale() {
        let dir = temp_dir("pipeline");
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let search_cfg = SearchConfig {
            target_anomalies: 2,
            max_samples: 3000,
            ..SearchConfig::paper_aatb()
        };
        let line_cfg = LineConfig::paper().with_max_anomalies(1);
        let out = run_full_pipeline(
            &expr,
            &mut exec,
            &search_cfg,
            &line_cfg,
            &PredictConfig::paper(),
            &dir,
            "aatb_test",
        )
        .unwrap();
        assert_eq!(out.artifacts.len(), 3);
        assert!(out.report.contains("Experiment 1"));
        assert!(out.report.contains("Experiment 2"));
        assert!(out.report.contains("Experiment 3"));
        for (_, path) in &out.artifacts {
            assert!(PathBuf::from(path).exists(), "{path} missing");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn efficiency_line_driver_reports_centre_classification() {
        let dir = temp_dir("line");
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let mut cfg = LineConfig::paper();
        cfg.box_min = 80;
        cfg.box_max = 200;
        let out = run_efficiency_line(
            &expr,
            &mut exec,
            &[110, 301, 938],
            0,
            &cfg,
            &dir,
            "fig11_right",
        )
        .unwrap();
        assert!(out.report.contains("Efficiency line"));
        assert!(out.report.contains("cheapest="));
        std::fs::remove_dir_all(&dir).ok();
    }
}
