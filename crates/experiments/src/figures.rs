//! Data generators for every figure of the paper's evaluation section.
//!
//! | Figure | Generator |
//! |--------|-----------|
//! | 1      | [`figure1_kernel_efficiency`] — GEMM/SYRK/SYMM (+ TRMM/TRSM) efficiency vs square size |
//! | 6, 9   | [`scatter_csv`] — time score vs FLOP score of the Experiment-1 anomalies |
//! | 7, 10  | [`thickness_distribution_csv`] — region thicknesses per dimension |
//! | 8, 11  | [`efficiency_along_line`] — per-algorithm and per-call efficiencies along a line |

use crate::lines::{scan_line, LineScan};
use crate::search::SearchResult;
use lamb_expr::Expression;
use lamb_perfmodel::{measure_square_profiles, Executor, SquareProfile};
use std::fmt::Write as _;

/// Figure 1: efficiency of the kernels on square operands of growing size
/// (the paper's GEMM/SYRK/SYMM trio plus the TRMM/TRSM extensions).
pub fn figure1_kernel_efficiency(
    executor: &mut dyn Executor,
    sizes: &[usize],
) -> Vec<SquareProfile> {
    measure_square_profiles(executor, sizes)
}

/// Merge the Figure-1 profiles into one CSV (`size,gemm,syrk,symm,trmm,trsm`).
#[must_use]
pub fn figure1_csv(profiles: &[SquareProfile]) -> String {
    let mut out = String::from("size");
    for p in profiles {
        let _ = write!(out, ",{}", p.kernel);
    }
    out.push('\n');
    if let Some(first) = profiles.first() {
        for (i, &size) in first.sizes.iter().enumerate() {
            let _ = write!(out, "{size}");
            for p in profiles {
                let _ = write!(out, ",{:.6}", p.efficiencies.get(i).copied().unwrap_or(0.0));
            }
            out.push('\n');
        }
    }
    out
}

/// Figures 6 and 9: scatter of time score versus FLOP score for the anomalies
/// found by Experiment 1.
#[must_use]
pub fn scatter_csv(result: &SearchResult) -> String {
    let mut out = String::from("flop_score,time_score\n");
    for (flop, time) in result.scatter() {
        let _ = writeln!(out, "{flop:.6},{time:.6}");
    }
    out
}

/// Figures 7 and 10: the distribution of region thicknesses in each
/// dimension. One CSV row per scanned line: `dimension,anomaly_index,thickness`.
#[must_use]
pub fn thickness_distribution_csv(scans: &[LineScan], num_dims: usize) -> String {
    let mut out = String::from("dimension,scan_index,thickness\n");
    let mut per_dim_counter = vec![0usize; num_dims];
    for scan in scans {
        let d = scan.dimension;
        let idx = per_dim_counter.get(d).copied().unwrap_or(0);
        let _ = writeln!(out, "d{d},{idx},{}", scan.thickness());
        if d < num_dims {
            per_dim_counter[d] += 1;
        }
    }
    out
}

/// One algorithm's efficiencies at one point of a Figure-8/11 line.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmEfficiencyPoint {
    /// Algorithm name.
    pub name: String,
    /// Whole-algorithm efficiency ("Total" curve).
    pub total: f64,
    /// Per-call efficiencies ("First", "Second", ... curves).
    pub per_call: Vec<f64>,
    /// Whether the algorithm is among the cheapest at this instance.
    pub is_cheapest: bool,
    /// Whether the algorithm is among the fastest at this instance.
    pub is_fastest: bool,
}

/// One sampled instance of a Figure-8/11 line.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyLinePoint {
    /// Value of the traversed dimension.
    pub value: usize,
    /// Efficiencies of every algorithm at this instance.
    pub algorithms: Vec<AlgorithmEfficiencyPoint>,
    /// Whether the instance is an anomaly at the configured threshold.
    pub is_anomaly: bool,
}

/// The data of one panel column of the paper's Figure 8 (matrix chain) or
/// Figure 11 (`A·Aᵀ·B`).
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyLine {
    /// The base instance of the line.
    pub base_dims: Vec<usize>,
    /// The traversed dimension.
    pub dimension: usize,
    /// One entry per visited instance, in increasing dimension order.
    pub points: Vec<EfficiencyLinePoint>,
}

impl EfficiencyLine {
    /// Serialise as CSV with one row per `(value, algorithm)` pair.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("value,algorithm,total_efficiency,is_cheapest,is_fastest,is_anomaly,call_efficiencies\n");
        for point in &self.points {
            for alg in &point.algorithms {
                let calls = alg
                    .per_call
                    .iter()
                    .map(|e| format!("{e:.4}"))
                    .collect::<Vec<_>>()
                    .join("|");
                let _ = writeln!(
                    out,
                    "{},{},{:.6},{},{},{},{}",
                    point.value,
                    alg.name.replace(',', ";"),
                    alg.total,
                    alg.is_cheapest,
                    alg.is_fastest,
                    point.is_anomaly,
                    calls
                );
            }
        }
        out
    }
}

/// Figures 8 and 11: efficiencies of every algorithm (and of their individual
/// kernel calls) along the axis-aligned line through `base_dims` in dimension
/// `dim`, traversed across the whole search box.
pub fn efficiency_along_line(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    base_dims: &[usize],
    dim: usize,
    config: &crate::config::LineConfig,
) -> EfficiencyLine {
    // Reuse the Experiment-2 traversal machinery but keep every point's
    // per-algorithm timings to convert them into efficiencies.
    let scan = scan_line(expr, executor, base_dims, dim, config);
    let machine = executor.machine().clone();
    let mut points = Vec::with_capacity(scan.points.len());
    for point in &scan.points {
        let algorithms = expr
            .algorithms(&point.dims)
            .unwrap_or_else(|e| panic!("cannot enumerate algorithms at {:?}: {e}", point.dims));
        let mut entries = Vec::with_capacity(algorithms.len());
        for (i, alg) in algorithms.iter().enumerate() {
            // Re-execute to recover the per-call breakdown (the classification
            // in `point` only stores totals).
            let timing = executor.execute_algorithm(alg);
            let per_call = (0..timing.per_call.len())
                .map(|c| timing.call_efficiency(c, &machine))
                .collect();
            entries.push(AlgorithmEfficiencyPoint {
                name: alg.name.clone(),
                total: timing.efficiency(&machine),
                per_call,
                is_cheapest: point.classification.cheapest.contains(&i),
                is_fastest: point.classification.fastest.contains(&i),
            });
        }
        points.push(EfficiencyLinePoint {
            value: point.value,
            algorithms: entries,
            is_anomaly: point.classification.is_anomaly,
        });
    }
    EfficiencyLine {
        base_dims: base_dims.to_vec(),
        dimension: dim,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LineConfig, SearchConfig};
    use crate::search::run_random_search;
    use lamb_expr::{AatbExpression, MatrixChainExpression};
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn figure1_csv_has_all_kernels_and_sizes() {
        let mut exec = SimulatedExecutor::paper_like();
        let profiles = figure1_kernel_efficiency(&mut exec, &[100, 500, 1000]);
        let csv = figure1_csv(&profiles);
        assert!(csv.starts_with("size,gemm,syrk,symm,trmm,trsm"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn scatter_csv_has_one_row_per_anomaly() {
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let cfg = SearchConfig {
            target_anomalies: 5,
            max_samples: 4000,
            ..SearchConfig::paper_aatb()
        };
        let result = run_random_search(&expr, &mut exec, &cfg);
        let csv = scatter_csv(&result);
        assert_eq!(csv.lines().count(), result.anomalies.len() + 1);
    }

    #[test]
    fn efficiency_line_reproduces_figure11_structure() {
        // Use the paper's Figure 11 centre column: line (80, 514±10x, 768).
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let mut cfg = LineConfig::paper();
        // Keep the test fast: a narrow box around the centre.
        cfg.box_min = 450;
        cfg.box_max = 600;
        let line = efficiency_along_line(&expr, &mut exec, &[80, 514, 768], 1, &cfg);
        assert_eq!(line.dimension, 1);
        assert!(!line.points.is_empty());
        for p in &line.points {
            assert_eq!(p.algorithms.len(), 5);
            for a in &p.algorithms {
                assert!(a.total > 0.0 && a.total <= 1.0);
                assert!(!a.per_call.is_empty());
            }
            // Exactly the cheapest/fastest flags of the classification are set.
            assert!(p.algorithms.iter().any(|a| a.is_cheapest));
            assert!(p.algorithms.iter().any(|a| a.is_fastest));
        }
        let csv = line.to_csv();
        assert!(csv.lines().count() > 5);
    }

    #[test]
    fn thickness_csv_is_grouped_by_dimension() {
        let expr = MatrixChainExpression::abcd();
        let mut exec = SimulatedExecutor::paper_like();
        let cfg = SearchConfig {
            target_anomalies: 1,
            max_samples: 20000,
            time_score_threshold: 0.05,
            ..SearchConfig::paper_chain()
        };
        let result = run_random_search(&expr, &mut exec, &cfg);
        if result.anomalies.is_empty() {
            // Chain anomalies are rare; an empty result still exercises the CSV.
            let csv = thickness_distribution_csv(&[], 5);
            assert_eq!(csv.lines().count(), 1);
            return;
        }
        let scans = crate::lines::scan_lines_around(
            &expr,
            &mut exec,
            &result.anomalies,
            &LineConfig::paper(),
        );
        let csv = thickness_distribution_csv(&scans, 5);
        assert_eq!(csv.lines().count(), scans.len() + 1);
        assert!(csv.contains("d0,0,"));
    }
}
