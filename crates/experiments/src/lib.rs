//! # lamb-experiments
//!
//! The experimental apparatus of the ICPP'22 paper *"FLOPs as a Discriminant
//! for Dense Linear Algebra Algorithms"*:
//!
//! * **Experiment 1** ([`search`]) — random search for anomalies, estimating
//!   their abundance and severity (Figures 6 and 9, Sections 4.1.1 / 4.2.1).
//! * **Experiment 2** ([`lines`], [`region`]) — axis-aligned lines through the
//!   regions around each anomaly, measuring how anomalies cluster (Figures 7,
//!   8, 10 and 11).
//! * **Experiment 3** ([`predict`]) — predicting anomalies from isolated
//!   kernel benchmarks, summarised as confusion matrices (Tables 1 and 2).
//!
//! The [`figures`] module generates the data series of every figure, and
//! [`report`] renders the textual summaries. All drivers are generic over the
//! [`lamb_perfmodel::Executor`], so they run identically on the measured and
//! the simulated back end.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod csvout;
pub mod driver;
pub mod figures;
pub mod lines;
pub mod predict;
pub mod region;
pub mod report;
pub mod scenarios;
pub mod search;

pub use config::{LineConfig, PredictConfig, SearchConfig};
pub use driver::{
    run_efficiency_line, run_experiment1, run_experiment2, run_experiment3, run_figure1,
    run_full_pipeline, DriverOutput,
};
pub use figures::{
    efficiency_along_line, figure1_csv, figure1_kernel_efficiency, scatter_csv,
    thickness_distribution_csv, EfficiencyLine,
};
pub use lines::{scan_line, scan_lines_around, thickness_by_dimension, LinePoint, LineScan};
pub use predict::{predict_from_benchmarks, ConfusionMatrix, PredictionResult};
pub use region::{find_boundary, RegionExtent};
pub use report::{prediction_report, region_report, search_report, summary_stats};
pub use scenarios::{
    all_scenarios, batch_sweep_csv, factor_reuse_scenarios, lu_qr_scenarios,
    mixed_transpose_scenarios, right_side_scenarios, scenario_batch_requests, spd_scenarios,
    sweep_csv, sweep_scenarios, sweep_scenarios_batched, triangular_scenarios, BatchSweepRow,
    Scenario, ScenarioSweepRow,
};
pub use search::{classify_instance, run_random_search, AnomalyRecord, SearchResult};
