//! Experiment 2: axis-aligned lines through anomalous regions (Section 3.4.2).
//!
//! For every anomaly found by Experiment 1 and every dimension of the
//! instance space, the line through the anomaly along that dimension is
//! traversed in steps of 10 in both directions. Each visited instance is
//! classified (threshold 5%), holes of up to two non-anomalous instances are
//! tolerated, and the region boundary/thickness is derived from the
//! classifications.

use crate::config::LineConfig;
use crate::region::{find_boundary, RegionExtent};
use crate::search::{pipeline, AnomalyRecord};
use lamb_expr::Expression;
use lamb_perfmodel::Executor;
use lamb_plan::Planner;
use lamb_select::{Classification, InstanceEvaluation};

/// One instance visited during a line traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct LinePoint {
    /// The instance's dimension tuple.
    pub dims: Vec<usize>,
    /// Value of the traversed dimension at this point.
    pub value: usize,
    /// The per-algorithm measurements on this instance.
    pub evaluation: InstanceEvaluation,
    /// The classification of this instance (threshold from [`LineConfig`]).
    pub classification: Classification,
}

/// The traversal of one line (one anomaly, one dimension).
#[derive(Debug, Clone, PartialEq)]
pub struct LineScan {
    /// The anomaly at the centre of the line.
    pub anomaly_dims: Vec<usize>,
    /// Index of the traversed dimension.
    pub dimension: usize,
    /// All visited instances, sorted by increasing dimension value
    /// (the anomaly itself included).
    pub points: Vec<LinePoint>,
    /// The detected region extent along this line.
    pub region: RegionExtent,
}

impl LineScan {
    /// Thickness of the region along this line (`b - a - 1`).
    #[must_use]
    pub fn thickness(&self) -> usize {
        self.region.thickness()
    }

    /// Number of instances visited.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the scan visited no instances (cannot happen in practice —
    /// the anomaly itself is always included).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Classify the instance obtained by replacing dimension `dim` of `base` with
/// `value`, routed through the [`Planner`] pipeline.
fn classify_at(
    planner: &Planner<'_>,
    executor: &mut dyn Executor,
    base: &[usize],
    dim: usize,
    value: usize,
) -> LinePoint {
    let mut dims = base.to_vec();
    dims[dim] = value;
    let executed = planner
        .plan_with(&dims, executor)
        .unwrap_or_else(|e| panic!("cannot classify instance {dims:?}: {e}"))
        .execute_with(executor);
    LinePoint {
        dims,
        value,
        evaluation: executed.evaluation,
        classification: executed.verdict,
    }
}

/// Traverse the line through `anomaly` along dimension `dim`.
pub fn scan_line(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    anomaly: &[usize],
    dim: usize,
    config: &LineConfig,
) -> LineScan {
    let planner = pipeline(expr, config.time_score_threshold);
    let centre_value = anomaly[dim];
    let centre = classify_at(&planner, executor, anomaly, dim, centre_value);

    // Walk outwards in both directions until the region provably ends
    // (end_run consecutive non-anomalies) or the box edge is reached.
    let mut walk = |direction: i64| -> (Vec<LinePoint>, usize) {
        let mut points = Vec::new();
        let mut flags = Vec::new();
        let mut clean_run = 0usize;
        let mut step_index = 1i64;
        loop {
            let value = centre_value as i64 + direction * step_index * config.step as i64;
            if value < config.box_min as i64 || value > config.box_max as i64 {
                break;
            }
            let value = value as usize;
            let point = classify_at(&planner, executor, anomaly, dim, value);
            let is_anomaly = point.classification.is_anomaly;
            flags.push((value, is_anomaly));
            points.push(point);
            if is_anomaly {
                clean_run = 0;
            } else {
                clean_run += 1;
                if clean_run >= config.end_run {
                    break;
                }
            }
            step_index += 1;
        }
        let boundary = find_boundary(centre_value, &flags, config.end_run);
        (points, boundary)
    };

    let (up_points, upper) = walk(1);
    let (down_points, lower) = walk(-1);

    let mut points: Vec<LinePoint> = down_points.into_iter().rev().collect();
    points.push(centre);
    points.extend(up_points);

    LineScan {
        anomaly_dims: anomaly.to_vec(),
        dimension: dim,
        points,
        region: RegionExtent { lower, upper },
    }
}

/// Run Experiment 2: scan all axis-aligned lines through all (or the first
/// `max_anomalies`) anomalies.
pub fn scan_lines_around(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    anomalies: &[AnomalyRecord],
    config: &LineConfig,
) -> Vec<LineScan> {
    let limit = config.max_anomalies.unwrap_or(usize::MAX);
    let mut scans = Vec::new();
    for anomaly in anomalies.iter().take(limit) {
        for dim in 0..expr.num_dims() {
            scans.push(scan_line(expr, executor, &anomaly.dims, dim, config));
        }
    }
    scans
}

/// Group region thicknesses by traversed dimension: entry `d` of the result
/// holds the thicknesses of every scanned line along dimension `d`, in scan
/// order. This is the data behind the paper's Figures 7 and 10.
#[must_use]
pub fn thickness_by_dimension(scans: &[LineScan], num_dims: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); num_dims];
    for scan in scans {
        if scan.dimension < num_dims {
            out[scan.dimension].push(scan.thickness());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchConfig;
    use crate::search::run_random_search;
    use lamb_expr::AatbExpression;
    use lamb_perfmodel::SimulatedExecutor;

    fn find_one_anomaly() -> AnomalyRecord {
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let cfg = SearchConfig {
            target_anomalies: 1,
            max_samples: 5000,
            ..SearchConfig::paper_aatb()
        };
        run_random_search(&expr, &mut exec, &cfg).anomalies[0].clone()
    }

    #[test]
    fn line_scan_contains_the_anomaly_and_is_sorted() {
        let anomaly = find_one_anomaly();
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let scan = scan_line(&expr, &mut exec, &anomaly.dims, 0, &LineConfig::paper());
        assert!(!scan.is_empty());
        assert!(scan.points.windows(2).all(|w| w[0].value < w[1].value));
        // The centre value is among the visited points and anomalous at 5%.
        let centre = scan
            .points
            .iter()
            .find(|p| p.value == anomaly.dims[0])
            .expect("centre present");
        assert!(centre.classification.is_anomaly);
        // The region extent brackets the centre.
        assert!(scan.region.lower <= anomaly.dims[0]);
        assert!(scan.region.upper >= anomaly.dims[0]);
    }

    #[test]
    fn scans_cover_every_dimension() {
        let anomaly = find_one_anomaly();
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let scans = scan_lines_around(&expr, &mut exec, &[anomaly], &LineConfig::paper());
        assert_eq!(scans.len(), 3);
        let dims: Vec<usize> = scans.iter().map(|s| s.dimension).collect();
        assert_eq!(dims, vec![0, 1, 2]);
        for scan in &scans {
            assert!(scan.thickness() < 1200);
        }
    }

    #[test]
    fn thickness_grouping_matches_scan_dimensions() {
        let anomaly = find_one_anomaly();
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let scans = scan_lines_around(&expr, &mut exec, &[anomaly], &LineConfig::paper());
        let grouped = thickness_by_dimension(&scans, 3);
        assert_eq!(grouped.len(), 3);
        assert!(grouped.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn max_anomalies_cap_limits_work() {
        let anomaly = find_one_anomaly();
        let anomalies = vec![anomaly.clone(), anomaly];
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let cfg = LineConfig::paper().with_max_anomalies(1);
        let scans = scan_lines_around(&expr, &mut exec, &anomalies, &cfg);
        assert_eq!(scans.len(), 3);
    }

    #[test]
    fn points_respect_the_search_box() {
        let anomaly = find_one_anomaly();
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let cfg = LineConfig::paper();
        for dim in 0..3 {
            let scan = scan_line(&expr, &mut exec, &anomaly.dims, dim, &cfg);
            assert!(scan
                .points
                .iter()
                .all(|p| p.value >= cfg.box_min && p.value <= cfg.box_max));
            // All points lie on the step-10 grid centred at the anomaly.
            let centre = anomaly.dims[dim] as i64;
            assert!(scan
                .points
                .iter()
                .all(|p| (p.value as i64 - centre) % cfg.step as i64 == 0));
        }
    }
}
