//! Experiment 3: predicting anomalies from isolated kernel benchmarks
//! (Section 3.4.3).
//!
//! For every instance visited in Experiment 2, each algorithm's execution
//! time is *predicted* as the sum of isolated-call benchmark times (cold
//! cache, one call at a time). The anomaly classification derived from the
//! measured whole-algorithm times (Experiment 2) is taken as ground truth and
//! compared against the classification derived from the predictions, yielding
//! the confusion matrices of the paper's Tables 1 and 2.

use crate::config::PredictConfig;
use crate::lines::LineScan;
use lamb_expr::Expression;
use lamb_perfmodel::Executor;
use lamb_plan::Planner;
use std::fmt;

/// A 2x2 confusion matrix over (actual anomaly, predicted anomaly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Actual no, predicted no.
    pub true_negative: usize,
    /// Actual no, predicted yes.
    pub false_positive: usize,
    /// Actual yes, predicted no.
    pub false_negative: usize,
    /// Actual yes, predicted yes.
    pub true_positive: usize,
}

impl ConfusionMatrix {
    /// Record one instance.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (false, false) => self.true_negative += 1,
            (false, true) => self.false_positive += 1,
            (true, false) => self.false_negative += 1,
            (true, true) => self.true_positive += 1,
        }
    }

    /// Total number of instances.
    #[must_use]
    pub fn total(&self) -> usize {
        self.true_negative + self.false_positive + self.false_negative + self.true_positive
    }

    /// Fraction of actual anomalies that were predicted
    /// (the paper reports ≈92% for the chain and ≈75% for `A·Aᵀ·B`).
    #[must_use]
    pub fn recall(&self) -> f64 {
        let actual_yes = self.true_positive + self.false_negative;
        if actual_yes == 0 {
            0.0
        } else {
            self.true_positive as f64 / actual_yes as f64
        }
    }

    /// Fraction of predicted anomalies that are actual anomalies
    /// (the paper reports ≈96% and ≈98.5%).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let predicted_yes = self.true_positive + self.false_positive;
        if predicted_yes == 0 {
            0.0
        } else {
            self.true_positive as f64 / predicted_yes as f64
        }
    }

    /// Fraction of instances classified identically by measurement and
    /// prediction.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.true_positive + self.true_negative) as f64 / t as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "                 Predicted")?;
        writeln!(f, "                 No       Yes      Total")?;
        writeln!(
            f,
            "Actual  No   {:>8} {:>8} {:>10}",
            self.true_negative,
            self.false_positive,
            self.true_negative + self.false_positive
        )?;
        writeln!(
            f,
            "        Yes  {:>8} {:>8} {:>10}",
            self.false_negative,
            self.true_positive,
            self.false_negative + self.true_positive
        )?;
        writeln!(
            f,
            "        Total{:>8} {:>8} {:>10}",
            self.true_negative + self.false_negative,
            self.false_positive + self.true_positive,
            self.total()
        )?;
        writeln!(
            f,
            "recall = {:.1}%  precision = {:.1}%  accuracy = {:.1}%",
            100.0 * self.recall(),
            100.0 * self.precision(),
            100.0 * self.accuracy()
        )
    }
}

/// The outcome of Experiment 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionResult {
    /// Confusion matrix over all instances visited in Experiment 2.
    pub confusion: ConfusionMatrix,
    /// Number of distinct isolated calls that had to be benchmarked
    /// (identical calls are benchmarked once and memoised).
    pub distinct_calls: usize,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// Run Experiment 3 over the instances visited by Experiment 2.
///
/// The ground-truth classification is re-derived from the stored Experiment-2
/// measurements at the Experiment-3 threshold; the predicted classification
/// comes from [`Planner::predict_instance`], whose shared cache memoises the
/// isolated-call benchmarks by kernel-call signature — identical calls are
/// benchmarked once across all scans.
pub fn predict_from_benchmarks(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    scans: &[LineScan],
    config: &PredictConfig,
) -> PredictionResult {
    let planner = Planner::for_expression(expr).score_predictions(false);
    let mut confusion = ConfusionMatrix::default();
    let mut instances = 0;
    for scan in scans {
        for point in &scan.points {
            instances += 1;
            let actual = point
                .evaluation
                .classify(config.time_score_threshold)
                .is_anomaly;
            let predicted = planner
                .predict_instance(&point.dims, executor)
                .unwrap_or_else(|e| panic!("cannot predict instance {:?}: {e}", point.dims))
                .classify(config.time_score_threshold)
                .is_anomaly;
            confusion.record(actual, predicted);
        }
    }
    PredictionResult {
        confusion,
        distinct_calls: planner.cache_len(),
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LineConfig, SearchConfig};
    use crate::lines::scan_lines_around;
    use crate::search::run_random_search;
    use lamb_expr::AatbExpression;
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn confusion_matrix_statistics() {
        let mut m = ConfusionMatrix::default();
        for _ in 0..90 {
            m.record(true, true);
        }
        for _ in 0..10 {
            m.record(true, false);
        }
        for _ in 0..5 {
            m.record(false, true);
        }
        for _ in 0..95 {
            m.record(false, false);
        }
        assert_eq!(m.total(), 200);
        assert!((m.recall() - 0.9).abs() < 1e-12);
        assert!((m.precision() - 90.0 / 95.0).abs() < 1e-12);
        assert!((m.accuracy() - 185.0 / 200.0).abs() < 1e-12);
        let text = m.to_string();
        assert!(text.contains("Predicted"));
        assert!(text.contains("recall"));
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn prediction_experiment_runs_end_to_end_on_the_simulator() {
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let search_cfg = SearchConfig {
            target_anomalies: 2,
            max_samples: 5000,
            ..SearchConfig::paper_aatb()
        };
        let search = run_random_search(&expr, &mut exec, &search_cfg);
        assert_eq!(search.anomalies.len(), 2);
        let scans = scan_lines_around(&expr, &mut exec, &search.anomalies, &LineConfig::paper());
        let result = predict_from_benchmarks(&expr, &mut exec, &scans, &PredictConfig::paper());
        let expected_instances: usize = scans.iter().map(|s| s.points.len()).sum();
        assert_eq!(result.instances, expected_instances);
        assert_eq!(result.confusion.total(), expected_instances);
        assert!(result.distinct_calls > 0);
        // The predictor captures the dominant (kernel-profile) component of
        // the time model, so most anomalies must be predictable — the paper
        // reports 75-92% recall and >95% precision.
        assert!(
            result.confusion.recall() > 0.5,
            "recall {}",
            result.confusion.recall()
        );
        assert!(
            result.confusion.precision() > 0.5,
            "precision {}",
            result.confusion.precision()
        );
    }
}
