//! Anomalous-region detection along axis-aligned lines (Section 3.4.2).
//!
//! Starting from an anomaly and walking outwards along one dimension, a
//! region keeps extending while instances are anomalous; one or two
//! consecutive non-anomalous instances are treated as a *hole* inside the
//! region, and three or more consecutive non-anomalous instances mark the end
//! of the region, the first of them being the *boundary*. If the walk reaches
//! the edge of the search box the last visited instance is the boundary.

/// The extent of an anomalous region along one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionExtent {
    /// Boundary on the decreasing side (`a` in the paper's notation).
    pub lower: usize,
    /// Boundary on the increasing side (`b` in the paper's notation).
    pub upper: usize,
}

impl RegionExtent {
    /// The paper's thickness definition: `b - a - 1`.
    #[must_use]
    pub fn thickness(&self) -> usize {
        self.upper.saturating_sub(self.lower).saturating_sub(1)
    }
}

/// Find the boundary of a region given the classifications of the instances
/// visited while walking *outwards* from the anomaly (the anomaly itself is
/// not included). `points` is a list of `(dimension value, is_anomaly)` in
/// walking order; `end_run` is the number of consecutive non-anomalies that
/// terminates the region (3 in the paper).
///
/// Returns the dimension value of the boundary: the first instance of the
/// terminating run, or the last visited instance if the search-space edge was
/// reached first, or `anomaly_value` itself if no step could be taken.
#[must_use]
pub fn find_boundary(anomaly_value: usize, points: &[(usize, bool)], end_run: usize) -> usize {
    if points.is_empty() {
        return anomaly_value;
    }
    let end_run = end_run.max(1);
    let mut run_start: Option<usize> = None;
    let mut run_len = 0usize;
    for &(value, is_anomaly) in points {
        if is_anomaly {
            run_len = 0;
            run_start = None;
        } else {
            if run_len == 0 {
                run_start = Some(value);
            }
            run_len += 1;
            if run_len >= end_run {
                return run_start.expect("run started");
            }
        }
    }
    // Reached the edge of the search space: the last instance is the boundary.
    points.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thickness_follows_paper_formula() {
        let r = RegionExtent {
            lower: 417,
            upper: 700,
        };
        assert_eq!(r.thickness(), 700 - 417 - 1);
        // A single-point region bounded by its immediate neighbours at step 10.
        let single = RegionExtent {
            lower: 90,
            upper: 110,
        };
        assert_eq!(single.thickness(), 19);
        // Degenerate.
        let degenerate = RegionExtent {
            lower: 20,
            upper: 20,
        };
        assert_eq!(degenerate.thickness(), 0);
    }

    #[test]
    fn boundary_is_first_of_three_consecutive_non_anomalies() {
        // Walk: anomalous, anomalous, then three clean instances.
        let points = vec![
            (110, true),
            (120, true),
            (130, false),
            (140, false),
            (150, false),
            (160, false),
        ];
        assert_eq!(find_boundary(100, &points, 3), 130);
    }

    #[test]
    fn holes_of_one_or_two_do_not_end_the_region() {
        // A two-instance hole followed by more anomalies, then the real end.
        let points = vec![
            (110, true),
            (120, false),
            (130, false),
            (140, true),
            (150, false),
            (160, false),
            (170, false),
        ];
        assert_eq!(find_boundary(100, &points, 3), 150);
    }

    #[test]
    fn reaching_the_search_space_edge_uses_last_instance() {
        let points = vec![(110, true), (120, true), (130, false), (140, false)];
        // Only two trailing non-anomalies: the walk hit the edge of the box.
        assert_eq!(find_boundary(100, &points, 3), 140);
    }

    #[test]
    fn empty_walk_returns_the_anomaly_itself() {
        assert_eq!(find_boundary(1200, &[], 3), 1200);
    }

    #[test]
    fn immediate_clean_run_gives_adjacent_boundary() {
        let points = vec![(110, false), (120, false), (130, false)];
        assert_eq!(find_boundary(100, &points, 3), 110);
    }

    #[test]
    fn end_run_of_one_terminates_at_first_clean_instance() {
        let points = vec![(110, true), (120, false), (130, true)];
        assert_eq!(find_boundary(100, &points, 1), 120);
    }
}
