//! Human-readable reporting of experiment results.

use crate::lines::LineScan;
use crate::predict::PredictionResult;
use crate::search::SearchResult;
use std::fmt::Write as _;

/// Summary statistics of a set of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Median value.
    pub median: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
}

/// Compute summary statistics of a sample set.
#[must_use]
pub fn summary_stats(values: &[f64]) -> SummaryStats {
    if values.is_empty() {
        return SummaryStats {
            count: 0,
            min: 0.0,
            median: 0.0,
            mean: 0.0,
            max: 0.0,
        };
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    SummaryStats {
        count: n,
        min: sorted[0],
        median,
        mean: sorted.iter().sum::<f64>() / n as f64,
        max: sorted[n - 1],
    }
}

/// Render an Experiment-1 summary in the style of Sections 4.1.1 / 4.2.1.
#[must_use]
pub fn search_report(result: &SearchResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Experiment 1 (random search) — {}", result.expression);
    let _ = writeln!(out, "  executor            : {}", result.executor);
    let _ = writeln!(
        out,
        "  time-score threshold: {:.0}%",
        100.0 * result.threshold
    );
    let _ = writeln!(out, "  samples drawn       : {}", result.samples_drawn);
    let _ = writeln!(out, "  anomalies found     : {}", result.anomalies.len());
    let _ = writeln!(
        out,
        "  abundance           : {:.2}%",
        100.0 * result.abundance()
    );
    let _ = writeln!(
        out,
        "  severe (ts>20% or fs>30%): {:.1}%",
        100.0 * result.severe_fraction(0.20, 0.30)
    );
    let time_scores: Vec<f64> = result.anomalies.iter().map(|a| a.time_score).collect();
    let flop_scores: Vec<f64> = result.anomalies.iter().map(|a| a.flop_score).collect();
    let ts = summary_stats(&time_scores);
    let fs = summary_stats(&flop_scores);
    let _ = writeln!(
        out,
        "  time score  : min {:.2} median {:.2} mean {:.2} max {:.2}",
        ts.min, ts.median, ts.mean, ts.max
    );
    let _ = writeln!(
        out,
        "  FLOP score  : min {:.2} median {:.2} mean {:.2} max {:.2}",
        fs.min, fs.median, fs.mean, fs.max
    );
    out
}

/// Render an Experiment-2 summary in the style of Sections 4.1.2 / 4.2.2.
#[must_use]
pub fn region_report(scans: &[LineScan], num_dims: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Experiment 2 (regions around anomalies)");
    let _ = writeln!(out, "  lines scanned : {}", scans.len());
    let points: usize = scans.iter().map(LineScan::len).sum();
    let _ = writeln!(out, "  instances     : {points}");
    for d in 0..num_dims {
        let thicknesses: Vec<f64> = scans
            .iter()
            .filter(|s| s.dimension == d)
            .map(|s| s.thickness() as f64)
            .collect();
        let st = summary_stats(&thicknesses);
        let _ = writeln!(
            out,
            "  d{d}: {} lines, thickness min {:.0} median {:.0} mean {:.0} max {:.0}",
            st.count, st.min, st.median, st.mean, st.max
        );
    }
    out
}

/// Render an Experiment-3 summary in the style of Tables 1 and 2.
#[must_use]
pub fn prediction_report(result: &PredictionResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Experiment 3 (prediction from isolated kernel benchmarks)"
    );
    let _ = writeln!(out, "  instances evaluated : {}", result.instances);
    let _ = writeln!(out, "  distinct calls      : {}", result.distinct_calls);
    let _ = writeln!(out, "{}", result.confusion);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::ConfusionMatrix;
    use crate::region::RegionExtent;
    use crate::search::AnomalyRecord;

    fn fake_search_result() -> SearchResult {
        SearchResult {
            expression: "A*A^T*B".into(),
            executor: "simulated".into(),
            threshold: 0.10,
            samples_drawn: 1000,
            anomalies: vec![
                AnomalyRecord {
                    dims: vec![100, 200, 300],
                    time_score: 0.25,
                    flop_score: 0.10,
                    cheapest: vec![0, 1],
                    fastest: vec![3],
                },
                AnomalyRecord {
                    dims: vec![400, 500, 600],
                    time_score: 0.15,
                    flop_score: 0.35,
                    cheapest: vec![0],
                    fastest: vec![4],
                },
            ],
        }
    }

    #[test]
    fn summary_stats_basic_properties() {
        let s = summary_stats(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(summary_stats(&[]).count, 0);
    }

    #[test]
    fn search_report_contains_key_numbers() {
        let report = search_report(&fake_search_result());
        assert!(report.contains("abundance"));
        assert!(report.contains("0.20%"));
        assert!(report.contains("anomalies found     : 2"));
        // Both anomalies are severe under the 20%/30% rule.
        assert!(report.contains("100.0%"));
    }

    #[test]
    fn region_report_groups_by_dimension() {
        let scan = LineScan {
            anomaly_dims: vec![100, 200, 300],
            dimension: 1,
            points: Vec::new(),
            region: RegionExtent {
                lower: 150,
                upper: 260,
            },
        };
        let report = region_report(&[scan], 3);
        assert!(report.contains("d1: 1 lines"));
        assert!(report.contains("d0: 0 lines"));
        assert!(report.contains("109"));
    }

    #[test]
    fn prediction_report_embeds_confusion_matrix() {
        let mut confusion = ConfusionMatrix::default();
        confusion.record(true, true);
        confusion.record(false, false);
        let result = PredictionResult {
            confusion,
            distinct_calls: 12,
            instances: 2,
        };
        let report = prediction_report(&result);
        assert!(report.contains("distinct calls      : 12"));
        assert!(report.contains("recall"));
    }
}
