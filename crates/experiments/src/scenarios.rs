//! Scenario sweeps beyond the paper's two expressions: longer chains and
//! mixed/transposed products, enumerated by the general expression engine.
//!
//! The paper conjectures that anomalies grow more frequent as expressions
//! get more algorithmic variety — especially when the variants mix
//! *different* kernels (SYRK/SYMM versus GEMM), as `A·Aᵀ·B` does. With the
//! general enumerator every product expression is searchable, so this module
//! packages a standard set of scenarios and runs the Experiment-1 random
//! search over each of them under identical sampling conditions.

use crate::config::SearchConfig;
use crate::search::{run_random_search, SearchResult};
use lamb_expr::{Expression, TreeExpression};
use lamb_perfmodel::Executor;
use lamb_plan::{BatchPlanner, BatchRequest};

/// A named expression scenario for anomaly sweeps.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short name used in reports and CSV rows.
    pub name: String,
    /// The parsed expression.
    pub expression: TreeExpression,
}

impl Scenario {
    /// Build a scenario from a name and an expression text.
    ///
    /// # Panics
    ///
    /// Panics if `text` does not parse (scenario sets are static data).
    #[must_use]
    pub fn new(name: &str, text: &str) -> Self {
        Scenario {
            name: name.to_string(),
            expression: TreeExpression::parse(text)
                .unwrap_or_else(|e| panic!("scenario `{name}` does not parse: {e}")),
        }
    }

    /// Number of algorithms the expression enumerates on a probe instance.
    #[must_use]
    pub fn algorithm_count(&self) -> usize {
        let dims = vec![64; self.expression.num_dims()];
        self.expression
            .algorithms(&dims)
            .map(|algs| algs.len())
            .unwrap_or(0)
    }
}

/// The standard mixed-transpose scenario set: the paper's two expressions
/// plus Gram-flavoured and transposed products that exercise the SYRK/SYMM
/// rewrites, and longer GEMM-only chains for scale.
#[must_use]
pub fn mixed_transpose_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("chain4", "A*B*C*D"),
        Scenario::new("chain5", "A*B*C*D*E"),
        Scenario::new("chain6", "A*B*C*D*E*F"),
        Scenario::new("aatb", "A*A^T*B"),
        Scenario::new("atab", "A^T*A*B"),
        Scenario::new("abbt", "A*B*B^T"),
        Scenario::new("sandwich", "A^T*B*A"),
        Scenario::new("gram2", "A*A^T*B*B^T"),
    ]
}

/// The triangular scenario family: expressions whose operands carry
/// `[lower]`/`[upper]` structure, unlocking the TRMM rewrite (`m²·n` FLOPs
/// versus GEMM's `2·m²·n`) and the TRSM lowering of triangular inverses.
/// Because the structured kernels' FLOP *rates* trail GEMM hardest at small
/// orders, these scenarios are an abundant source of the paper-style
/// anomalies where the FLOP-minimal (TRMM/TRSM-based) algorithm is not the
/// fastest.
#[must_use]
pub fn triangular_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("trmm", "L[lower]*B"),
        Scenario::new("tri_chain", "L[lower]*A*B"),
        Scenario::new("tri_chain_upper", "U[upper]^T*A*B"),
        Scenario::new("cholesky_gram", "L[lower]*L^T*B"),
        Scenario::new("tri_pair", "L1[lower]*L2[lower]*B"),
        Scenario::new("trsm", "L[lower]^-1*B"),
        Scenario::new("tri_solve_chain", "L[lower]^-1*A*B"),
    ]
}

/// The SPD scenario family: expressions whose operands carry the `[spd]`
/// annotation. Plain SPD products unlock the SYMM-versus-GEMM variant pair;
/// SPD inverses realise through Cholesky (`POTRF` + two `TRSM`s), turning
/// solves that previously had no realisation into planable algorithm sets
/// with genuinely competing orders; and the Gram-flavoured mixtures combine
/// SYRK's FLOP savings with the SPD operand's SYMM variants — the regime
/// where FLOP-minimal and fastest separate most often, exactly as for the
/// paper's `A·Aᵀ·B`.
#[must_use]
pub fn spd_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("spd_product", "S[spd]*B"),
        Scenario::new("spd_solve", "S[spd]^-1*B"),
        Scenario::new("spd_solve_chain", "S[spd]^-1*B*C"),
        Scenario::new("spd_solve_mixed", "S[spd]^-1*A*B"),
        Scenario::new("spd_gram", "S[spd]*A*A^T"),
        Scenario::new("spd_sandwich", "A^T*S[spd]*A"),
        Scenario::new("spd_pair", "S1[spd]*S2[spd]*B"),
    ]
}

/// The general-solve scenario family: unstructured inverses (realised
/// through partially pivoted LU) and least-squares pseudo-inverses (realised
/// through Householder QR). The factorisations cost `2n³/3` and `2n²(3m−n)/3`
/// FLOPs against the `n³/3` of Cholesky, and their solve chains compete over
/// merge orders exactly like the SPD family — with the added twist that the
/// factorisation is the dominant FLOP term, so the anomaly question becomes
/// whether the *solve side* of the pipeline should be merged early or late.
#[must_use]
pub fn lu_qr_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("lu_solve", "A^-1*B"),
        Scenario::new("lu_solve_chain", "A^-1*B*C"),
        Scenario::new("lstsq", "A^+*b"),
        Scenario::new("lstsq_chain", "A^+*B*C"),
    ]
}

/// The right-side scenario family: structured operands appearing on the
/// *right* of the product, unlocking the `side = Right` TRMM/TRSM/SYMM
/// kernels (`B·L`, `B·L⁻¹`, `A·S`). The FLOP counts mirror the left-side
/// family exactly, so any abundance difference against the left-side twins
/// is purely a property of the sided kernels' FLOP-rate surfaces — and at
/// small orders these scenarios are also where the reference backend's flat
/// cost profile beats the blocked native kernels, making them the natural
/// workload for the per-call backend assignment demo.
#[must_use]
pub fn right_side_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("trmm_r", "B*L[lower]"),
        Scenario::new("trmm_r_upper", "B*U[upper]^T"),
        Scenario::new("trmm_r_chain", "A*B*L[lower]"),
        Scenario::new("trsm_r", "B*L[lower]^-1"),
        Scenario::new("trsm_r_chain", "A*B*L[lower]^-1"),
        Scenario::new("symm_r", "A*S[spd]"),
        Scenario::new("symm_r_chain", "A*S[spd]*B"),
    ]
}

/// Every standing scenario: the mixed-transpose set plus the triangular,
/// SPD, general-solve (LU/QR) and right-side families — the workload behind
/// `lamb batch --demo`, `lamb verify --demo` and the throughput benches.
#[must_use]
pub fn all_scenarios() -> Vec<Scenario> {
    let mut scenarios = mixed_transpose_scenarios();
    scenarios.extend(triangular_scenarios());
    scenarios.extend(spd_scenarios());
    scenarios.extend(lu_qr_scenarios());
    scenarios.extend(right_side_scenarios());
    scenarios
}

/// The factor-reuse scenario family: expressions with *repeated* operands,
/// where the same factorisation or Gram product occurs more than once in a
/// single expression. These are the workloads the CSE pass and the batch
/// factor cache exist for — a repeated SPD solve needs exactly one POTRF,
/// a repeated Gram product exactly one SYRK — and the sweep driving the
/// `extension_factor_reuse` bench and the CLI's CSE-parity check runs over
/// them. Kept separate from [`all_scenarios`] because their headline metric
/// is shared-versus-raw FLOPs rather than anomaly frequency.
#[must_use]
pub fn factor_reuse_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("solve", "S[spd]^-1*B"),
        Scenario::new("repeated_solve", "S[spd]^-1*S[spd]^-1*B"),
        Scenario::new("repeated_gram", "A*A^T*A*A^T*B"),
    ]
}

/// Deterministically sample a batch of expression instances from the
/// scenarios: `per_scenario` instances each, dimensions drawn uniformly from
/// `dim_min..=dim_max`. This is the workload generator behind the `lamb
/// batch` demo file, the batch scenario sweep and the `batch_throughput`
/// benchmark — a standing stream of heterogeneous planning requests, exactly
/// what a calibration store is amortised over.
#[must_use]
pub fn scenario_batch_requests(
    scenarios: &[Scenario],
    per_scenario: usize,
    seed: u64,
    dim_min: usize,
    dim_max: usize,
) -> Vec<BatchRequest> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = dim_min.max(1);
    let hi = dim_max.max(lo);
    let mut requests = Vec::with_capacity(scenarios.len() * per_scenario);
    for scenario in scenarios {
        let num_dims = scenario.expression.num_dims();
        let least_squares = scenario.expression.name().contains("^+");
        for _ in 0..per_scenario {
            let mut dims: Vec<usize> = (0..num_dims).map(|_| rng.random_range(lo..=hi)).collect();
            // The QR-based least-squares solve needs its operand at least as
            // tall as it is wide; dims are in flattened logical order, so
            // `A^+` puts the column count first.
            if least_squares && dims[0] > dims[1] {
                dims.swap(0, 1);
            }
            requests.push(
                BatchRequest::new(scenario.expression.clone(), dims)
                    .expect("scenario dims match by construction"),
            );
        }
    }
    requests
}

/// The per-scenario aggregate of a batched scenario sweep.
#[derive(Debug, Clone)]
pub struct BatchSweepRow {
    /// Scenario name.
    pub name: String,
    /// Expression text.
    pub expression: String,
    /// Instances planned for this scenario.
    pub instances: usize,
    /// Instances whose FLOP-minimal algorithm is predicted more than the
    /// threshold slower than the predicted-fastest one.
    pub predicted_anomalies: usize,
    /// Sum of predicted times of the chosen algorithms (seconds).
    pub chosen_predicted_seconds: f64,
    /// Sum of predicted times of the FLOP-minimal algorithms (seconds).
    pub flop_optimal_predicted_seconds: f64,
}

/// Plan a scenario-generated batch with `planner` and aggregate the outcome
/// per scenario (the batched, store-amortised analogue of
/// [`sweep_scenarios`]). Predicted anomalies use the planner's own anomaly
/// threshold, carried by each [`lamb_plan::Plan`].
#[must_use]
pub fn sweep_scenarios_batched(
    scenarios: &[Scenario],
    planner: &BatchPlanner,
    per_scenario: usize,
    seed: u64,
    dim_min: usize,
    dim_max: usize,
) -> Vec<BatchSweepRow> {
    let requests = scenario_batch_requests(scenarios, per_scenario, seed, dim_min, dim_max);
    let outcome = planner.plan_batch(&requests);
    scenarios
        .iter()
        .enumerate()
        .map(|(s, scenario)| {
            let mut row = BatchSweepRow {
                name: scenario.name.clone(),
                expression: scenario.expression.name(),
                instances: 0,
                predicted_anomalies: 0,
                chosen_predicted_seconds: 0.0,
                flop_optimal_predicted_seconds: 0.0,
            };
            let span = s * per_scenario..(s + 1) * per_scenario;
            for result in &outcome.results[span] {
                let Ok(plan) = result else { continue };
                row.instances += 1;
                if let Some(chosen) = plan.chosen_score().predicted_seconds {
                    row.chosen_predicted_seconds += chosen;
                }
                if let Some(flop_optimal) = plan.flop_optimal_score().predicted_seconds {
                    row.flop_optimal_predicted_seconds += flop_optimal;
                }
                if plan.predicted_anomaly() == Some(true) {
                    row.predicted_anomalies += 1;
                }
            }
            row
        })
        .collect()
}

/// CSV rows for a batched scenario sweep
/// (`scenario,expression,instances,predicted_anomalies,abundance,chosen_predicted_s,flop_optimal_predicted_s`).
#[must_use]
pub fn batch_sweep_csv(rows: &[BatchSweepRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let abundance = if row.instances == 0 {
                0.0
            } else {
                row.predicted_anomalies as f64 / row.instances as f64
            };
            vec![
                row.name.clone(),
                row.expression.clone(),
                row.instances.to_string(),
                row.predicted_anomalies.to_string(),
                format!("{abundance:.6}"),
                format!("{:.6e}", row.chosen_predicted_seconds),
                format!("{:.6e}", row.flop_optimal_predicted_seconds),
            ]
        })
        .collect();
    crate::csvout::csv_from_rows(
        &[
            "scenario",
            "expression",
            "instances",
            "predicted_anomalies",
            "abundance",
            "chosen_predicted_s",
            "flop_optimal_predicted_s",
        ],
        &data,
    )
}

/// One row of a scenario sweep.
#[derive(Debug, Clone)]
pub struct ScenarioSweepRow {
    /// Scenario name.
    pub name: String,
    /// Expression text.
    pub expression: String,
    /// Dimensions per instance.
    pub num_dims: usize,
    /// Algorithms enumerated on a probe instance.
    pub num_algorithms: usize,
    /// The random-search outcome.
    pub result: SearchResult,
}

/// Run the Experiment-1 random search over every scenario with the same
/// configuration and executor settings.
pub fn sweep_scenarios(
    scenarios: &[Scenario],
    executor: &mut dyn Executor,
    config: &SearchConfig,
) -> Vec<ScenarioSweepRow> {
    scenarios
        .iter()
        .map(|scenario| {
            let result = run_random_search(&scenario.expression, executor, config);
            ScenarioSweepRow {
                name: scenario.name.clone(),
                expression: scenario.expression.name(),
                num_dims: scenario.expression.num_dims(),
                num_algorithms: scenario.algorithm_count(),
                result,
            }
        })
        .collect()
}

/// CSV rows (`scenario,expression,dims,algorithms,samples,anomalies,abundance`)
/// for a sweep.
#[must_use]
pub fn sweep_csv(rows: &[ScenarioSweepRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.name.clone(),
                row.expression.clone(),
                row.num_dims.to_string(),
                row.num_algorithms.to_string(),
                row.result.samples_drawn.to_string(),
                row.result.anomalies.len().to_string(),
                format!("{:.6}", row.result.abundance()),
            ]
        })
        .collect();
    crate::csvout::csv_from_rows(
        &[
            "scenario",
            "expression",
            "dims",
            "algorithms",
            "samples",
            "anomalies",
            "abundance",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_perfmodel::SimulatedExecutor;

    #[test]
    fn the_standard_scenarios_parse_and_enumerate() {
        let scenarios = mixed_transpose_scenarios();
        assert!(scenarios.len() >= 6);
        for s in &scenarios {
            assert!(s.algorithm_count() >= 1, "{} enumerates nothing", s.name);
        }
        // The Gram-flavoured expressions have kernel variety beyond GEMM.
        let aatb = scenarios.iter().find(|s| s.name == "aatb").unwrap();
        assert_eq!(aatb.algorithm_count(), 5);
        let gram2 = scenarios.iter().find(|s| s.name == "gram2").unwrap();
        assert!(gram2.algorithm_count() > 5);
    }

    #[test]
    fn triangular_scenarios_parse_and_reach_the_triangular_kernels() {
        let scenarios = triangular_scenarios();
        assert!(scenarios.len() >= 5);
        for s in &scenarios {
            assert!(s.algorithm_count() >= 1, "{} enumerates nothing", s.name);
        }
        // The plain triangular product offers exactly TRMM vs GEMM; the
        // solve has exactly one realisation.
        let trmm = scenarios.iter().find(|s| s.name == "trmm").unwrap();
        assert_eq!(trmm.algorithm_count(), 2);
        let trsm = scenarios.iter().find(|s| s.name == "trsm").unwrap();
        assert_eq!(trsm.algorithm_count(), 1);
        // Spot-check kernel reachability across the family.
        for (name, kernel) in [("tri_chain", "trmm"), ("tri_solve_chain", "trsm")] {
            let s = scenarios.iter().find(|s| s.name == name).unwrap();
            let dims = vec![64; s.expression.num_dims()];
            let algs = s.expression.algorithms(&dims).unwrap();
            assert!(
                algs.iter().any(|a| a.kernel_summary().contains(kernel)),
                "{name} never reaches {kernel}"
            );
        }
        // The combined set is the concatenation, with unique names.
        let all = all_scenarios();
        assert_eq!(
            all.len(),
            mixed_transpose_scenarios().len()
                + scenarios.len()
                + spd_scenarios().len()
                + lu_qr_scenarios().len()
                + right_side_scenarios().len()
        );
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn right_side_scenarios_parse_and_reach_the_sided_kernels() {
        let scenarios = right_side_scenarios();
        assert!(scenarios.len() >= 5);
        for s in &scenarios {
            assert!(s.algorithm_count() >= 1, "{} enumerates nothing", s.name);
        }
        // Each headline scenario must reach its right-side kernel somewhere
        // in the enumerated set (the GEMM realisation coexists).
        for (name, kernel) in [
            ("trmm_r", "trmm"),
            ("trsm_r", "trsm"),
            ("symm_r", "symm"),
            ("trmm_r_chain", "trmm"),
            ("trsm_r_chain", "trsm"),
        ] {
            let s = scenarios.iter().find(|s| s.name == name).unwrap();
            let dims = vec![64; s.expression.num_dims()];
            let algs = s.expression.algorithms(&dims).unwrap();
            assert!(
                algs.iter().any(|a| a.kernel_summary().contains(kernel)),
                "{name} never reaches {kernel}"
            );
        }
        // The pure right-side solve has exactly one realisation, like its
        // left-side twin.
        let trsm_r = scenarios.iter().find(|s| s.name == "trsm_r").unwrap();
        assert_eq!(trsm_r.algorithm_count(), 1);
    }

    #[test]
    fn the_factor_reuse_family_shares_its_factorisations() {
        use lamb_plan::{MinPredictedTime, Planner};
        let scenarios = factor_reuse_scenarios();
        for s in &scenarios {
            assert!(s.algorithm_count() >= 1, "{} enumerates nothing", s.name);
        }
        // The repeated solve genuinely repeats work before CSE...
        let repeated = scenarios
            .iter()
            .find(|s| s.name == "repeated_solve")
            .unwrap();
        let dims = vec![48; repeated.expression.num_dims()];
        let algs = repeated.expression.algorithms(&dims).unwrap();
        assert!(
            algs.iter().any(|a| a.shared_flops() < a.flops()),
            "repeated solves must have shareable subcomputations"
        );
        // ...and the planner's chosen algorithm factors the operand exactly
        // once post-CSE, predicted strictly cheaper than the `--no-cse`
        // ablation (which pays one POTRF per inverse).
        let plan = Planner::for_expression(&repeated.expression)
            .policy(MinPredictedTime)
            .plan(&dims)
            .unwrap();
        let potrfs = plan
            .chosen_algorithm()
            .calls
            .iter()
            .filter(|c| c.op.mnemonic() == "potrf")
            .count();
        assert_eq!(potrfs, 1, "one factorisation serves the repeated solve");
        let ablation = Planner::for_expression(&repeated.expression)
            .policy(MinPredictedTime)
            .cse(false)
            .plan(&dims)
            .unwrap();
        assert!(
            plan.chosen_score().predicted_seconds.unwrap()
                < ablation.chosen_score().predicted_seconds.unwrap(),
            "the shared-factor algorithm must be predicted faster"
        );
        // The repeated Gram product shares its SYRK the same way.
        let gram = scenarios
            .iter()
            .find(|s| s.name == "repeated_gram")
            .unwrap();
        let gram_dims = vec![40; gram.expression.num_dims()];
        let gram_plan = Planner::for_expression(&gram.expression)
            .policy(MinPredictedTime)
            .plan(&gram_dims)
            .unwrap();
        let chosen = gram_plan.chosen_algorithm();
        assert!(
            chosen.shared_flops() == chosen.flops(),
            "post-CSE form is dup-free"
        );
    }

    #[test]
    fn spd_scenarios_parse_and_reach_the_cholesky_kernels() {
        let scenarios = spd_scenarios();
        assert!(scenarios.len() >= 5);
        for s in &scenarios {
            assert!(s.algorithm_count() >= 1, "{} enumerates nothing", s.name);
        }
        // The pure solve has exactly one (Cholesky) realisation; the solve
        // chain competes over orders.
        let solve = scenarios.iter().find(|s| s.name == "spd_solve").unwrap();
        assert_eq!(solve.algorithm_count(), 1);
        let chain = scenarios
            .iter()
            .find(|s| s.name == "spd_solve_chain")
            .unwrap();
        assert!(chain.algorithm_count() >= 2);
        // Kernel reachability across the family.
        for (name, kernel) in [
            ("spd_solve", "potrf"),
            ("spd_solve_chain", "trsm"),
            ("spd_product", "symm"),
            ("spd_gram", "syrk"),
        ] {
            let s = scenarios.iter().find(|s| s.name == name).unwrap();
            let dims = vec![64; s.expression.num_dims()];
            let algs = s.expression.algorithms(&dims).unwrap();
            assert!(
                algs.iter().any(|a| a.kernel_summary().contains(kernel)),
                "{name} never reaches {kernel}"
            );
        }
    }

    #[test]
    fn lu_qr_scenarios_parse_and_reach_the_general_solve_kernels() {
        let scenarios = lu_qr_scenarios();
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert!(s.algorithm_count() >= 1, "{} enumerates nothing", s.name);
        }
        // The pure solves have exactly one realisation each; the chains
        // compete over merge orders.
        let lu = scenarios.iter().find(|s| s.name == "lu_solve").unwrap();
        assert_eq!(lu.algorithm_count(), 1);
        let lstsq = scenarios.iter().find(|s| s.name == "lstsq").unwrap();
        assert_eq!(lstsq.algorithm_count(), 1);
        let chain = scenarios
            .iter()
            .find(|s| s.name == "lu_solve_chain")
            .unwrap();
        assert!(chain.algorithm_count() >= 2);
        // Kernel reachability across the family.
        for (name, kernel) in [
            ("lu_solve", "getrf"),
            ("lu_solve", "laswp"),
            ("lu_solve_chain", "factortri"),
            ("lstsq", "qr"),
            ("lstsq_chain", "ormqr"),
        ] {
            let s = scenarios.iter().find(|s| s.name == name).unwrap();
            let dims = vec![64; s.expression.num_dims()];
            let algs = s.expression.algorithms(&dims).unwrap();
            assert!(
                algs.iter().any(|a| a.kernel_summary().contains(kernel)),
                "{name} never reaches {kernel}"
            );
        }
        // Randomly drawn batches stay realisable: the generator keeps the
        // least-squares operand tall.
        let requests = scenario_batch_requests(&scenarios, 10, 5, 40, 400);
        assert_eq!(requests.len(), 40);
        for req in &requests {
            assert!(
                req.expr.algorithms(&req.dims).is_ok(),
                "`{}` {:?} fails to enumerate",
                req.text,
                req.dims
            );
        }
    }

    #[test]
    fn spd_scenarios_show_predicted_anomalies_in_a_batch() {
        // The batched abundance measurement over the SPD family: the
        // Gram-flavoured mixtures put SYRK's FLOP savings against the
        // small-order rate collapse of the symmetric kernels, so the family
        // as a whole produces predicted anomalies at small-to-medium dims.
        let scenarios = spd_scenarios();
        let planner = BatchPlanner::new().top_k(8);
        let rows = sweep_scenarios_batched(&scenarios, &planner, 20, 13, 40, 400);
        assert_eq!(rows.len(), scenarios.len());
        let total_anomalies: usize = rows.iter().map(|r| r.predicted_anomalies).sum();
        assert!(
            total_anomalies > 0,
            "the SPD family should produce predicted anomalies"
        );
        for row in &rows {
            assert_eq!(row.instances, 20, "{}", row.name);
        }
    }

    #[test]
    fn triangular_scenarios_show_predicted_anomalies_in_a_batch() {
        // The batched analogue of the paper's abundance measurements, over
        // the triangular family: at small-to-medium dimensions the TRMM/TRSM
        // FLOP savings are frequently defeated by their lower FLOP rates.
        let scenarios = triangular_scenarios();
        let planner = BatchPlanner::new().top_k(8);
        let rows = sweep_scenarios_batched(&scenarios, &planner, 20, 11, 40, 400);
        assert_eq!(rows.len(), scenarios.len());
        let total_anomalies: usize = rows.iter().map(|r| r.predicted_anomalies).sum();
        assert!(
            total_anomalies > 0,
            "the triangular family should produce predicted anomalies"
        );
        for row in &rows {
            assert_eq!(row.instances, 20, "{}", row.name);
        }
    }

    #[test]
    fn sweeping_scenarios_produces_one_row_each_and_csv() {
        let scenarios = vec![
            Scenario::new("aatb", "A*A^T*B"),
            Scenario::new("abbt", "A*B*B^T"),
        ];
        let mut exec = SimulatedExecutor::paper_like();
        let config = SearchConfig {
            target_anomalies: usize::MAX,
            max_samples: 60,
            seed: 11,
            ..SearchConfig::paper_aatb()
        };
        let rows = sweep_scenarios(&scenarios, &mut exec, &config);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.result.samples_drawn, 60);
            assert_eq!(row.num_dims, 3);
        }
        let csv = sweep_csv(&rows);
        assert!(csv.starts_with("scenario,expression,dims,"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("A*A^T*B"));
    }

    #[test]
    fn scenario_batches_are_deterministic_and_well_formed() {
        let scenarios = mixed_transpose_scenarios();
        let a = scenario_batch_requests(&scenarios, 4, 99, 50, 400);
        let b = scenario_batch_requests(&scenarios, 4, 99, 50, 400);
        assert_eq!(a.len(), scenarios.len() * 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.dims, y.dims);
            assert!(x.dims.iter().all(|&d| (50..=400).contains(&d)));
        }
        // A different seed draws different dims.
        let c = scenario_batch_requests(&scenarios, 4, 100, 50, 400);
        assert!(a.iter().zip(&c).any(|(x, y)| x.dims != y.dims));
    }

    #[test]
    fn batched_sweep_aggregates_per_scenario() {
        let scenarios = vec![
            Scenario::new("aatb", "A*A^T*B"),
            Scenario::new("chain4", "A*B*C*D"),
        ];
        let planner = BatchPlanner::new().top_k(8);
        let rows = sweep_scenarios_batched(&scenarios, &planner, 25, 7, 40, 600);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.instances, 25);
            assert!(row.chosen_predicted_seconds > 0.0);
            assert!(row.chosen_predicted_seconds <= row.flop_optimal_predicted_seconds + 1e-15);
        }
        // The Gram-flavoured scenario mixes kernels and shows far more
        // predicted anomalies than the GEMM-only chain (the paper's thesis).
        let aatb = &rows[0];
        let chain = &rows[1];
        assert!(aatb.predicted_anomalies > chain.predicted_anomalies);
        let csv = batch_sweep_csv(&rows);
        assert!(csv.starts_with("scenario,expression,instances,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn gram_scenarios_find_anomalies_like_the_paper_expression() {
        // A*B*B^T has the same SYRK/SYMM-versus-GEMM structure as A*A^T*B,
        // so the simulator should flag anomalies for it too.
        let scenario = Scenario::new("abbt", "A*B*B^T");
        let mut exec = SimulatedExecutor::paper_like();
        let config = SearchConfig {
            target_anomalies: 5,
            max_samples: 4000,
            seed: 3,
            ..SearchConfig::paper_aatb()
        };
        let result = run_random_search(&scenario.expression, &mut exec, &config);
        assert!(
            !result.anomalies.is_empty(),
            "no anomalies in {} samples",
            result.samples_drawn
        );
    }
}
