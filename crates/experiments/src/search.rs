//! Experiment 1: random search for anomalies (Section 3.4.1).
//!
//! Instances are sampled uniformly at random (with replacement) from the
//! search box; every algorithm of the expression is timed on each instance;
//! the instance is classified as an anomaly or not; the search stops when the
//! target number of *distinct* anomalies has been found (or the sample cap is
//! reached).

use crate::config::SearchConfig;
use lamb_expr::Expression;
use lamb_perfmodel::Executor;
use lamb_plan::Planner;
use lamb_select::Classification;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One anomaly found by the random search.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRecord {
    /// The instance's dimension tuple.
    pub dims: Vec<usize>,
    /// Its time score (Section 3.3).
    pub time_score: f64,
    /// Its FLOP score (Section 3.3).
    pub flop_score: f64,
    /// Indices of the cheapest algorithms.
    pub cheapest: Vec<usize>,
    /// Indices of the fastest algorithms.
    pub fastest: Vec<usize>,
}

/// The outcome of a random search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Name of the expression that was searched.
    pub expression: String,
    /// Name of the executor that timed the algorithms.
    pub executor: String,
    /// Time-score threshold used for classification.
    pub threshold: f64,
    /// Number of instances sampled (with replacement).
    pub samples_drawn: usize,
    /// The anomalies found, in discovery order.
    pub anomalies: Vec<AnomalyRecord>,
}

impl SearchResult {
    /// Estimated anomaly abundance: anomalies found per sample drawn
    /// (the paper reports 0.4% for the chain and 9.7% for `A·Aᵀ·B`).
    #[must_use]
    pub fn abundance(&self) -> f64 {
        if self.samples_drawn == 0 {
            0.0
        } else {
            self.anomalies.len() as f64 / self.samples_drawn as f64
        }
    }

    /// Fraction of anomalies with a time score above `time` or a FLOP score
    /// above `flop` (the paper reports 39.2% for 20%/30% on `A·Aᵀ·B`).
    #[must_use]
    pub fn severe_fraction(&self, time: f64, flop: f64) -> f64 {
        if self.anomalies.is_empty() {
            return 0.0;
        }
        let severe = self
            .anomalies
            .iter()
            .filter(|a| a.time_score > time || a.flop_score > flop)
            .count();
        severe as f64 / self.anomalies.len() as f64
    }

    /// The `(flop_score, time_score)` pairs of all anomalies — the scatter
    /// data of the paper's Figures 6 and 9.
    #[must_use]
    pub fn scatter(&self) -> Vec<(f64, f64)> {
        self.anomalies
            .iter()
            .map(|a| (a.flop_score, a.time_score))
            .collect()
    }
}

/// Sample one instance uniformly from the search box.
pub(crate) fn sample_dims(rng: &mut StdRng, num_dims: usize, config: &SearchConfig) -> Vec<usize> {
    (0..num_dims)
        .map(|_| rng.random_range(config.box_min..=config.box_max))
        .collect()
}

/// The experiment pipeline for `expr` at `threshold`: plan, execute, judge —
/// with prediction scoring disabled (classification needs only executions).
pub(crate) fn pipeline(expr: &dyn Expression, threshold: f64) -> Planner<'_> {
    Planner::for_expression(expr)
        .threshold(threshold)
        .score_predictions(false)
}

/// Classify one instance by timing every algorithm with `executor`, routed
/// through the [`Planner`] pipeline.
pub fn classify_instance(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    dims: &[usize],
    threshold: f64,
) -> Classification {
    pipeline(expr, threshold)
        .plan_with(dims, executor)
        .unwrap_or_else(|e| panic!("cannot classify instance {dims:?}: {e}"))
        .execute_with(executor)
        .verdict
}

/// Run Experiment 1.
pub fn run_random_search(
    expr: &dyn Expression,
    executor: &mut dyn Executor,
    config: &SearchConfig,
) -> SearchResult {
    let planner = pipeline(expr, config.time_score_threshold);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut anomalies = Vec::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut samples_drawn = 0;
    while anomalies.len() < config.target_anomalies && samples_drawn < config.max_samples {
        let dims = sample_dims(&mut rng, expr.num_dims(), config);
        samples_drawn += 1;
        let classification = planner
            .plan_with(&dims, executor)
            .unwrap_or_else(|e| panic!("cannot classify instance {dims:?}: {e}"))
            .execute_with(executor)
            .verdict;
        if classification.is_anomaly && !seen.contains(&dims) {
            seen.insert(dims.clone());
            anomalies.push(AnomalyRecord {
                dims,
                time_score: classification.time_score,
                flop_score: classification.flop_score,
                cheapest: classification.cheapest,
                fastest: classification.fastest,
            });
        }
    }
    SearchResult {
        expression: expr.name(),
        executor: executor.name(),
        threshold: config.time_score_threshold,
        samples_drawn,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_expr::{AatbExpression, MatrixChainExpression};
    use lamb_perfmodel::SimulatedExecutor;

    fn quick_config(target: usize, samples: usize) -> SearchConfig {
        SearchConfig {
            box_min: 20,
            box_max: 1200,
            target_anomalies: target,
            max_samples: samples,
            time_score_threshold: 0.10,
            seed: 7,
        }
    }

    #[test]
    fn sampling_respects_the_box() {
        let config = quick_config(1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let dims = sample_dims(&mut rng, 5, &config);
            assert_eq!(dims.len(), 5);
            assert!(dims.iter().all(|&d| (20..=1200).contains(&d)));
        }
    }

    #[test]
    fn aatb_search_finds_anomalies_quickly_on_the_simulator() {
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let result = run_random_search(&expr, &mut exec, &quick_config(10, 3000));
        assert_eq!(
            result.anomalies.len(),
            10,
            "sampled {}",
            result.samples_drawn
        );
        assert!(
            result.abundance() > 0.01,
            "abundance {}",
            result.abundance()
        );
        for a in &result.anomalies {
            assert!(a.time_score > 0.10);
            assert!(a.flop_score > 0.0);
            assert!(a.cheapest.iter().all(|i| !a.fastest.contains(i)));
        }
    }

    #[test]
    fn chain_anomalies_are_rarer_than_aatb_anomalies() {
        // The qualitative headline of the paper's Experiment 1: anomalies are
        // much more abundant for A·Aᵀ·B than for the GEMM-only chain.
        let mut exec = SimulatedExecutor::paper_like();
        let chain_cfg = SearchConfig {
            target_anomalies: usize::MAX,
            max_samples: 400,
            ..quick_config(0, 0)
        };
        let chain = run_random_search(&MatrixChainExpression::abcd(), &mut exec, &chain_cfg);
        let aatb = run_random_search(&AatbExpression::new(), &mut exec, &chain_cfg);
        assert!(
            aatb.abundance() > chain.abundance(),
            "aatb {} vs chain {}",
            aatb.abundance(),
            chain.abundance()
        );
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let expr = AatbExpression::new();
        let mut e1 = SimulatedExecutor::paper_like();
        let mut e2 = SimulatedExecutor::paper_like();
        let cfg = quick_config(5, 2000);
        let r1 = run_random_search(&expr, &mut e1, &cfg);
        let r2 = run_random_search(&expr, &mut e2, &cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    fn sample_cap_is_honoured() {
        let expr = MatrixChainExpression::abcd();
        let mut exec = SimulatedExecutor::paper_like();
        let result = run_random_search(&expr, &mut exec, &quick_config(1_000_000, 50));
        assert_eq!(result.samples_drawn, 50);
    }

    #[test]
    fn scatter_and_severity_summaries() {
        let expr = AatbExpression::new();
        let mut exec = SimulatedExecutor::paper_like();
        let result = run_random_search(&expr, &mut exec, &quick_config(8, 3000));
        let scatter = result.scatter();
        assert_eq!(scatter.len(), result.anomalies.len());
        assert!(result.severe_fraction(0.0, 0.0) >= result.severe_fraction(0.2, 0.3));
        assert!(result.severe_fraction(2.0, 2.0) == 0.0);
    }
}
