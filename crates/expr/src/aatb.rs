//! The expression `X := A·Aᵀ·B` (Section 3.2.2 of the paper) and its five
//! algorithms built from GEMM, SYRK and SYMM.
//!
//! With `A ∈ R^{d0×d1}` and `B ∈ R^{d0×d2}`, the paper's algorithm set is:
//!
//! | # | first product | second product | FLOP count |
//! |---|---------------|----------------|------------|
//! | 1 | SYRK `M := A·Aᵀ` | SYMM `X := M·B` | `d0((d0+1)d1 + 2·d0·d2)` |
//! | 2 | SYRK `M := A·Aᵀ`, copy triangle to full | GEMM `X := M·B` | same as 1 |
//! | 3 | GEMM `M := A·Aᵀ` | SYMM `X := M·B` | `2·d0²(d1 + d2)` |
//! | 4 | GEMM `M := A·Aᵀ` | GEMM `X := M·B` | same as 3 |
//! | 5 | GEMM `M := Aᵀ·B` | GEMM `X := A·M` | `4·d0·d1·d2` |

use crate::algorithm::{Algorithm, OperandInfo, OperandRole};
use crate::enumerate::enumerate_expr_algorithms_pruned;
use crate::expr::Expr;
use crate::expression::Expression;
use crate::generator::GenerateError;
use crate::kernel_call::{KernelCall, KernelOp};
use crate::operand::OperandId;
use lamb_matrix::{Side, Trans, Uplo};

const A: OperandId = OperandId(0);
const B: OperandId = OperandId(1);
const M: OperandId = OperandId(2);
const X: OperandId = OperandId(3);

fn base_operands(
    d0: usize,
    d1: usize,
    d2: usize,
    m_rows: usize,
    m_cols: usize,
) -> Vec<OperandInfo> {
    vec![
        OperandInfo {
            id: A,
            rows: d0,
            cols: d1,
            role: OperandRole::Input,
            structure: lamb_matrix::Structure::General,
            name: "A".into(),
        },
        OperandInfo {
            id: B,
            rows: d0,
            cols: d2,
            role: OperandRole::Input,
            structure: lamb_matrix::Structure::General,
            name: "B".into(),
        },
        OperandInfo {
            id: M,
            rows: m_rows,
            cols: m_cols,
            role: OperandRole::Intermediate,
            structure: lamb_matrix::Structure::General,
            name: "M".into(),
        },
        OperandInfo {
            id: X,
            rows: d0,
            cols: d2,
            role: OperandRole::Output,
            structure: lamb_matrix::Structure::General,
            name: "X".into(),
        },
    ]
}

/// Enumerate the five algorithms for `X := A·Aᵀ·B` with `A ∈ R^{d0×d1}` and
/// `B ∈ R^{d0×d2}`, in the paper's order.
///
/// This is the hand-written reference table kept for parity testing; the
/// general engine in [`crate::enumerate`] derives the same five algorithms
/// from the `A·Aᵀ·B` expression tree, and [`AatbExpression`] routes through
/// the engine.
#[must_use]
pub fn enumerate_aatb_algorithms(d0: usize, d1: usize, d2: usize) -> Vec<Algorithm> {
    let uplo = Uplo::Lower;
    let syrk_m = KernelCall {
        op: KernelOp::Syrk {
            uplo,
            trans: Trans::No,
            n: d0,
            k: d1,
        },
        inputs: vec![A],
        output: M,
        label: "M := A*A^T (syrk)".into(),
    };
    let gemm_m_aat = KernelCall {
        op: KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::Yes,
            m: d0,
            n: d0,
            k: d1,
        },
        inputs: vec![A, A],
        output: M,
        label: "M := A*A^T (gemm)".into(),
    };
    let symm_x = KernelCall {
        op: KernelOp::Symm {
            side: Side::Left,
            uplo,
            m: d0,
            n: d2,
        },
        inputs: vec![M, B],
        output: X,
        label: "X := M*B (symm)".into(),
    };
    let gemm_x_mb = KernelCall {
        op: KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: d0,
            n: d2,
            k: d0,
        },
        inputs: vec![M, B],
        output: X,
        label: "X := M*B (gemm)".into(),
    };
    let copy_m = KernelCall {
        op: KernelOp::CopyTriangle { uplo, n: d0 },
        inputs: vec![M],
        output: M,
        label: "M := full(M) (copy triangle)".into(),
    };
    let gemm_m_atb = KernelCall {
        op: KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: d1,
            n: d2,
            k: d0,
        },
        inputs: vec![A, B],
        output: M,
        label: "M := A^T*B (gemm)".into(),
    };
    let gemm_x_am = KernelCall {
        op: KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: d0,
            n: d2,
            k: d1,
        },
        inputs: vec![A, M],
        output: X,
        label: "X := A*M (gemm)".into(),
    };

    vec![
        Algorithm {
            name: "AAtB algorithm 1: syrk+symm".into(),
            operands: base_operands(d0, d1, d2, d0, d0),
            calls: vec![syrk_m.clone(), symm_x.clone()],
        },
        Algorithm {
            name: "AAtB algorithm 2: syrk+copy+gemm".into(),
            operands: base_operands(d0, d1, d2, d0, d0),
            calls: vec![syrk_m, copy_m, gemm_x_mb.clone()],
        },
        Algorithm {
            name: "AAtB algorithm 3: gemm+symm".into(),
            operands: base_operands(d0, d1, d2, d0, d0),
            calls: vec![gemm_m_aat.clone(), symm_x],
        },
        Algorithm {
            name: "AAtB algorithm 4: gemm+gemm".into(),
            operands: base_operands(d0, d1, d2, d0, d0),
            calls: vec![gemm_m_aat, gemm_x_mb],
        },
        Algorithm {
            name: "AAtB algorithm 5: gemm(AtB)+gemm".into(),
            operands: base_operands(d0, d1, d2, d1, d2),
            calls: vec![gemm_m_atb, gemm_x_am],
        },
    ]
}

/// The FLOP counts of the five `A·Aᵀ·B` algorithms as closed-form formulas,
/// in the paper's order.
#[must_use]
pub fn aatb_flop_formulas(d0: usize, d1: usize, d2: usize) -> [u64; 5] {
    let (d0, d1, d2) = (d0 as u64, d1 as u64, d2 as u64);
    let alg12 = d0 * ((d0 + 1) * d1 + 2 * d0 * d2);
    let alg34 = 2 * d0 * d0 * (d1 + d2);
    let alg5 = 4 * d0 * d1 * d2;
    [alg12, alg12, alg34, alg34, alg5]
}

/// The expression `A·Aᵀ·B` as an [`Expression`] usable by the experiment
/// drivers; its instances are specified by the tuple `(d0, d1, d2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AatbExpression;

impl AatbExpression {
    /// Create the expression descriptor.
    #[must_use]
    pub fn new() -> Self {
        AatbExpression
    }

    /// The [`Expr`] tree of one instance: `A·Aᵀ·B` with `A ∈ d0×d1` and
    /// `B ∈ d0×d2`.
    #[must_use]
    pub fn expr(&self, dims: &[usize]) -> Expr {
        assert_eq!(dims.len(), 3, "A*A^T*B instances are (d0, d1, d2) tuples");
        let a = Expr::var("A", dims[0], dims[1]);
        let b = Expr::var("B", dims[0], dims[2]);
        a.clone().mul(a.t()).mul(b)
    }
}

impl Expression for AatbExpression {
    fn name(&self) -> String {
        "A*A^T*B".into()
    }

    fn num_dims(&self) -> usize {
        3
    }

    fn algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
        enumerate_expr_algorithms_pruned(&self.expr(dims), None)
    }

    fn algorithms_pruned(
        &self,
        dims: &[usize],
        top_k: Option<usize>,
    ) -> Result<Vec<Algorithm>, GenerateError> {
        enumerate_expr_algorithms_pruned(&self.expr(dims), top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_algorithms_with_paper_flop_counts() {
        let (d0, d1, d2) = (17, 29, 11);
        let algs = enumerate_aatb_algorithms(d0, d1, d2);
        assert_eq!(algs.len(), 5);
        let formulas = aatb_flop_formulas(d0, d1, d2);
        for (alg, expected) in algs.iter().zip(formulas) {
            assert!(alg.is_well_formed(), "{} malformed", alg.name);
            assert_eq!(alg.flops(), expected, "FLOP mismatch for {}", alg.name);
        }
    }

    #[test]
    fn flop_tie_structure_matches_paper() {
        let algs = enumerate_aatb_algorithms(100, 80, 60);
        // Algorithms 1 and 2 tie; 3 and 4 tie; 1/2 are strictly cheaper than 3/4.
        assert_eq!(algs[0].flops(), algs[1].flops());
        assert_eq!(algs[2].flops(), algs[3].flops());
        assert!(algs[0].flops() < algs[2].flops());
    }

    #[test]
    fn kernel_composition_matches_paper_figure5() {
        let algs = enumerate_aatb_algorithms(10, 10, 10);
        assert_eq!(algs[0].kernel_summary(), "syrk,symm");
        assert_eq!(algs[1].kernel_summary(), "syrk,copy,gemm");
        assert_eq!(algs[2].kernel_summary(), "gemm,symm");
        assert_eq!(algs[3].kernel_summary(), "gemm,gemm");
        assert_eq!(algs[4].kernel_summary(), "gemm,gemm");
        // Algorithm 5 contracts over d0 first: its intermediate is d1 x d2.
        let m5 = algs[4].operand(OperandId(2)).unwrap();
        assert_eq!((m5.rows, m5.cols), (10, 10));
    }

    #[test]
    fn intermediate_shapes_depend_on_the_algorithm() {
        let algs = enumerate_aatb_algorithms(50, 20, 30);
        // Algorithms 1-4 build the 50x50 symmetric intermediate.
        for alg in &algs[0..4] {
            let m = alg.operand(OperandId(2)).unwrap();
            assert_eq!((m.rows, m.cols), (50, 50));
        }
        // Algorithm 5 builds the 20x30 intermediate A^T*B.
        let m5 = algs[4].operand(OperandId(2)).unwrap();
        assert_eq!((m5.rows, m5.cols), (20, 30));
        // Output is always 50x30.
        for alg in &algs {
            let x = alg.output().unwrap();
            assert_eq!((x.rows, x.cols), (50, 30));
        }
    }

    #[test]
    fn algorithm5_is_cheapest_when_d0_is_large() {
        // 4 d0 d1 d2 < d0((d0+1)d1 + 2 d0 d2) when d0 >> d1, d2.
        let f = aatb_flop_formulas(1000, 20, 30);
        assert!(f[4] < f[0]);
        assert!(f[0] < f[2]);
    }

    #[test]
    fn algorithm1_is_cheapest_when_d1_d2_are_large() {
        let f = aatb_flop_formulas(50, 800, 900);
        assert!(f[0] < f[4]);
        assert!(f[0] < f[2]);
    }

    #[test]
    fn expression_trait_plumbing() {
        let e = AatbExpression::new();
        assert_eq!(e.num_dims(), 3);
        assert_eq!(e.name(), "A*A^T*B");
        assert_eq!(e.algorithms(&[5, 6, 7]).unwrap().len(), 5);
    }

    #[test]
    fn paper_headline_severity_example_is_representable() {
        // The paper reports extreme instances where 45% more FLOPs give 40%
        // lower time. Verify the FLOP-score side is achievable within the
        // paper's search box: FLOP score = 1 - F_cheap / F_fast.
        let f = aatb_flop_formulas(600, 1200, 300);
        let cheapest = *f.iter().min().unwrap() as f64;
        let most_expensive = *f.iter().max().unwrap() as f64;
        let flop_gap = 1.0 - cheapest / most_expensive;
        assert!(flop_gap > 0.30, "gap was {flop_gap}");
    }
}
