//! Algorithms: ordered sequences of kernel calls over symbolic operands.

use crate::kernel_call::KernelCall;
use crate::operand::OperandId;
use lamb_matrix::{Structure, Uplo};
use std::collections::HashSet;
use std::fmt;

/// The role an operand plays inside an algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandRole {
    /// An input matrix of the expression (`A`, `B`, ...).
    Input,
    /// An intermediate result produced by one call and consumed by another.
    Intermediate,
    /// The final result of the expression.
    Output,
}

/// Shape and bookkeeping information for one symbolic operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OperandInfo {
    /// Identifier used by the kernel calls.
    pub id: OperandId,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Whether the operand is an input, an intermediate, or the output.
    pub role: OperandRole,
    /// Human-readable name (`"A"`, `"M1"`, ...).
    pub name: String,
    /// The operand's known structure: triangular (elements outside the
    /// stored triangle are structurally zero), symmetric positive definite
    /// (stored in full), or general. Executors use this to materialise
    /// structured inputs consistently across every algorithm variant of an
    /// expression — a TRMM that reads only the triangle, a SYMM that reads
    /// one triangle of an SPD operand and a GEMM that reads the whole matrix
    /// must all see the same mathematical operand.
    pub structure: Structure,
}

impl OperandInfo {
    /// The stored triangle when the operand is triangular.
    #[must_use]
    pub fn triangle(&self) -> Option<Uplo> {
        self.structure.triangle()
    }

    /// Number of elements of the operand.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Size in bytes assuming `f64` storage.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.elements() * 8
    }
}

/// A mathematically complete evaluation strategy for an expression instance:
/// an ordered sequence of kernel calls plus the operand table they reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Algorithm {
    /// Human-readable name, e.g. `"Chain alg 1: ((AB)C)D"`.
    pub name: String,
    /// All operands referenced by the calls.
    pub operands: Vec<OperandInfo>,
    /// The kernel calls in execution order.
    pub calls: Vec<KernelCall>,
}

impl Algorithm {
    /// Total FLOP count: the sum of the per-call FLOP models (Section 3.1 of
    /// the paper).
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.calls.iter().map(KernelCall::flops).sum()
    }

    /// Look up an operand by id.
    #[must_use]
    pub fn operand(&self, id: OperandId) -> Option<&OperandInfo> {
        self.operands.iter().find(|o| o.id == id)
    }

    /// The operands that are inputs of the expression.
    pub fn inputs(&self) -> impl Iterator<Item = &OperandInfo> {
        self.operands
            .iter()
            .filter(|o| o.role == OperandRole::Input)
    }

    /// The operand holding the final result.
    #[must_use]
    pub fn output(&self) -> Option<&OperandInfo> {
        self.operands.iter().find(|o| o.role == OperandRole::Output)
    }

    /// Comma-separated list of kernel mnemonics, e.g. `"syrk,symm"`. This is
    /// the notation used in the per-algorithm rows of the paper's Figure 11.
    #[must_use]
    pub fn kernel_summary(&self) -> String {
        self.calls
            .iter()
            .map(|c| c.op.mnemonic())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Total number of elements written across all calls (a crude proxy for
    /// memory traffic, used by some time models).
    #[must_use]
    pub fn output_traffic_elements(&self) -> u64 {
        self.calls.iter().map(|c| c.op.output_elements()).sum()
    }

    /// Validate internal consistency: every call's inputs must be produced by
    /// an earlier call or be expression inputs, every call's output must be in
    /// the operand table, and exactly one operand must be the output.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        let mut produced: HashSet<OperandId> = self
            .operands
            .iter()
            .filter(|o| o.role == OperandRole::Input)
            .map(|o| o.id)
            .collect();
        for call in &self.calls {
            if self.operand(call.output).is_none() {
                return false;
            }
            for input in &call.inputs {
                if !produced.contains(input) {
                    return false;
                }
            }
            produced.insert(call.output);
        }
        let outputs = self
            .operands
            .iter()
            .filter(|o| o.role == OperandRole::Output)
            .count();
        outputs == 1
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} FLOPs)", self.name, self.flops())?;
        for call in &self.calls {
            writeln!(f, "  {call}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_call::KernelOp;
    use lamb_matrix::Trans;

    fn toy_algorithm() -> Algorithm {
        // M1 := A*B ; X := M1*C for A(2x3), B(3x4), C(4x5).
        Algorithm {
            name: "toy".into(),
            operands: vec![
                OperandInfo {
                    id: OperandId(0),
                    rows: 2,
                    cols: 3,
                    role: OperandRole::Input,
                    structure: lamb_matrix::Structure::General,
                    name: "A".into(),
                },
                OperandInfo {
                    id: OperandId(1),
                    rows: 3,
                    cols: 4,
                    role: OperandRole::Input,
                    structure: lamb_matrix::Structure::General,
                    name: "B".into(),
                },
                OperandInfo {
                    id: OperandId(2),
                    rows: 4,
                    cols: 5,
                    role: OperandRole::Input,
                    structure: lamb_matrix::Structure::General,
                    name: "C".into(),
                },
                OperandInfo {
                    id: OperandId(3),
                    rows: 2,
                    cols: 4,
                    role: OperandRole::Intermediate,
                    structure: lamb_matrix::Structure::General,
                    name: "M1".into(),
                },
                OperandInfo {
                    id: OperandId(4),
                    rows: 2,
                    cols: 5,
                    role: OperandRole::Output,
                    structure: lamb_matrix::Structure::General,
                    name: "X".into(),
                },
            ],
            calls: vec![
                KernelCall {
                    op: KernelOp::Gemm {
                        transa: Trans::No,
                        transb: Trans::No,
                        m: 2,
                        n: 4,
                        k: 3,
                    },
                    inputs: vec![OperandId(0), OperandId(1)],
                    output: OperandId(3),
                    label: "M1 := A*B".into(),
                },
                KernelCall {
                    op: KernelOp::Gemm {
                        transa: Trans::No,
                        transb: Trans::No,
                        m: 2,
                        n: 5,
                        k: 4,
                    },
                    inputs: vec![OperandId(3), OperandId(2)],
                    output: OperandId(4),
                    label: "X := M1*C".into(),
                },
            ],
        }
    }

    #[test]
    fn flops_sum_over_calls() {
        let alg = toy_algorithm();
        assert_eq!(alg.flops(), 2 * 2 * 4 * 3 + 2 * 2 * 5 * 4);
    }

    #[test]
    fn operand_lookup_and_roles() {
        let alg = toy_algorithm();
        assert_eq!(alg.operand(OperandId(3)).unwrap().name, "M1");
        assert_eq!(alg.inputs().count(), 3);
        assert_eq!(alg.output().unwrap().name, "X");
        assert_eq!(alg.operand(OperandId(3)).unwrap().elements(), 8);
        assert_eq!(alg.operand(OperandId(3)).unwrap().bytes(), 64);
    }

    #[test]
    fn well_formedness_checks_dataflow() {
        let mut alg = toy_algorithm();
        assert!(alg.is_well_formed());
        // Reading an operand that is never produced breaks well-formedness.
        alg.calls[0].inputs[0] = OperandId(99);
        assert!(!alg.is_well_formed());
    }

    #[test]
    fn well_formedness_requires_single_output() {
        let mut alg = toy_algorithm();
        alg.operands[3].role = OperandRole::Output;
        assert!(!alg.is_well_formed());
    }

    #[test]
    fn kernel_summary_and_display() {
        let alg = toy_algorithm();
        assert_eq!(alg.kernel_summary(), "gemm,gemm");
        let text = alg.to_string();
        assert!(text.contains("toy"));
        assert!(text.contains("M1 := A*B"));
    }

    #[test]
    fn output_traffic_counts_written_elements() {
        let alg = toy_algorithm();
        assert_eq!(alg.output_traffic_elements(), 8 + 10);
    }
}
