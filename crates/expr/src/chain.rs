//! The matrix chain expression `X := A·B·C·D` (Section 3.2.1 of the paper)
//! and, more generally, chains of any length.
//!
//! The algorithm set is "all (reasonable) sequences of calls to the BLAS
//! kernel GEMM that evaluate the expression": every order in which the
//! adjacent multiplications can be performed. For a chain of `p` matrices
//! there are `(p-1)!` such orders; for `A·B·C·D` that is `3! = 6`, matching
//! the paper's Algorithms 1–6 (and their FLOP-count formulas).
//!
//! [`enumerate_chain_algorithms`] is the paper's hand-written reference
//! table; the general engine in [`crate::enumerate`] derives the same
//! algorithms from the expression tree (parity tests assert they are
//! identical), and [`MatrixChainExpression`] routes through the engine.

use crate::algorithm::{Algorithm, OperandInfo, OperandRole};
use crate::enumerate::enumerate_expr_algorithms_pruned;
use crate::expr::Expr;
use crate::expression::Expression;
use crate::generator::GenerateError;
use crate::kernel_call::{KernelCall, KernelOp};
use crate::operand::OperandId;
use lamb_matrix::Trans;

/// Name of the `i`-th input matrix of a chain (`A`, `B`, ..., `Z`, `A26`, ...).
pub(crate) fn input_name(i: usize) -> String {
    if i < 26 {
        char::from(b'A' + i as u8).to_string()
    } else {
        format!("A{i}")
    }
}

/// A factor of the (partially evaluated) chain: either an original input or
/// an intermediate product, covering the half-open dimension range
/// `[start, end]` of the dimension tuple.
#[derive(Debug, Clone)]
struct Segment {
    id: OperandId,
    start: usize,
    end: usize,
    text: String,
}

/// Enumerate every multiplication order for the chain whose dimension tuple
/// is `dims = [d0, d1, ..., dp]` (so matrix `i` has shape `d_i x d_{i+1}` and
/// there are `p = dims.len() - 1` matrices).
///
/// The returned algorithms follow the same ordering convention as the paper's
/// Figure 3 / Section 3.2.1 (for `p = 4`: Algorithms 1–6).
///
/// This is the hand-written reference implementation kept for parity testing
/// against the general enumerator.
///
/// # Errors
///
/// Returns [`GenerateError::TooFewMatrices`] if fewer than two matrices are
/// described (`dims.len() < 3`).
pub fn enumerate_chain_algorithms(dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
    if dims.len() < 3 {
        return Err(GenerateError::TooFewMatrices {
            dims_len: dims.len(),
        });
    }
    let p = dims.len() - 1;
    let inputs: Vec<OperandInfo> = (0..p)
        .map(|i| OperandInfo {
            id: OperandId(i),
            rows: dims[i],
            cols: dims[i + 1],
            role: OperandRole::Input,
            structure: lamb_matrix::Structure::General,
            name: input_name(i),
        })
        .collect();
    let segments: Vec<Segment> = (0..p)
        .map(|i| Segment {
            id: OperandId(i),
            start: i,
            end: i + 1,
            text: input_name(i),
        })
        .collect();

    let mut out = Vec::new();
    recurse(dims, &inputs, segments, Vec::new(), Vec::new(), &mut out);
    for (idx, alg) in out.iter_mut().enumerate() {
        alg.name = format!("Chain algorithm {}: {}", idx + 1, alg.name);
    }
    Ok(out)
}

fn recurse(
    dims: &[usize],
    inputs: &[OperandInfo],
    segments: Vec<Segment>,
    calls: Vec<KernelCall>,
    intermediates: Vec<OperandInfo>,
    out: &mut Vec<Algorithm>,
) {
    if segments.len() == 1 {
        let mut operands = inputs.to_vec();
        let mut inters = intermediates;
        if let Some(last) = inters.last_mut() {
            last.role = OperandRole::Output;
            last.name = "X".into();
        }
        operands.extend(inters);
        out.push(Algorithm {
            name: segments[0].text.clone(),
            operands,
            calls,
        });
        return;
    }
    let p = dims.len() - 1;
    for i in 0..segments.len() - 1 {
        let left = &segments[i];
        let right = &segments[i + 1];
        let m = dims[left.start];
        let k = dims[left.end];
        let n = dims[right.end];
        let new_id = OperandId(p + calls.len());
        let inter_index = calls.len() + 1;
        let call = KernelCall {
            op: KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m,
                n,
                k,
            },
            inputs: vec![left.id, right.id],
            output: new_id,
            label: format!("M{inter_index} := {}*{}", left.text, right.text),
        };
        let info = OperandInfo {
            id: new_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: lamb_matrix::Structure::General,
            name: format!("M{inter_index}"),
        };
        let mut new_segments = segments.clone();
        let merged = Segment {
            id: new_id,
            start: left.start,
            end: right.end,
            text: format!("({} {})", left.text, right.text),
        };
        new_segments[i] = merged;
        new_segments.remove(i + 1);
        let mut new_calls = calls.clone();
        new_calls.push(call);
        let mut new_inters = intermediates.clone();
        new_inters.push(info);
        recurse(dims, inputs, new_segments, new_calls, new_inters, out);
    }
}

/// The FLOP counts of the six `A·B·C·D` algorithms as closed-form formulas,
/// in the paper's order. Used by tests and by symbolic-size reasoning.
#[must_use]
pub fn abcd_flop_formulas(d: &[usize; 5]) -> [u64; 6] {
    let d: Vec<u64> = d.iter().map(|&x| x as u64).collect();
    [
        2 * d[0] * (d[1] * d[2] + d[2] * d[3] + d[3] * d[4]),
        2 * d[2] * (d[0] * d[1] + d[0] * d[4] + d[3] * d[4]),
        2 * d[3] * (d[0] * d[1] + d[0] * d[4] + d[1] * d[2]),
        2 * d[1] * (d[0] * d[4] + d[2] * d[3] + d[3] * d[4]),
        2 * d[2] * (d[0] * d[1] + d[0] * d[4] + d[3] * d[4]),
        2 * d[4] * (d[0] * d[1] + d[1] * d[2] + d[2] * d[3]),
    ]
}

/// Classic dynamic-programming solution of the matrix chain ordering problem
/// under the `2·m·n·k` GEMM cost model: returns the minimum achievable FLOP
/// count together with a parenthesisation achieving it.
///
/// Note that the DP optimum always coincides with the cheapest enumerated
/// algorithm; it is provided as the scalable way of finding a FLOP-minimal
/// algorithm for long chains where full enumeration is factorial.
///
/// # Errors
///
/// Returns [`GenerateError::TooFewMatrices`] if fewer than two matrices are
/// described.
pub fn optimal_chain_order(dims: &[usize]) -> Result<(u64, String), GenerateError> {
    if dims.len() < 3 {
        return Err(GenerateError::TooFewMatrices {
            dims_len: dims.len(),
        });
    }
    let p = dims.len() - 1;
    let d: Vec<u64> = dims.iter().map(|&x| x as u64).collect();
    // cost[i][j]: minimal FLOPs to compute the product of matrices i..=j.
    let mut cost = vec![vec![0u64; p]; p];
    let mut split = vec![vec![0usize; p]; p];
    for len in 2..=p {
        for i in 0..=p - len {
            let j = i + len - 1;
            let mut best = u64::MAX;
            let mut best_k = i;
            for k in i..j {
                let c = cost[i][k] + cost[k + 1][j] + 2 * d[i] * d[k + 1] * d[j + 1];
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }
    fn paren(split: &[Vec<usize>], i: usize, j: usize) -> String {
        if i == j {
            input_name(i)
        } else {
            let k = split[i][j];
            format!("({} {})", paren(split, i, k), paren(split, k + 1, j))
        }
    }
    Ok((cost[0][p - 1], paren(&split, 0, p - 1)))
}

/// The matrix chain expression with a fixed number of matrices, as an
/// [`Expression`] usable by the experiment drivers. The paper's `A·B·C·D`
/// corresponds to `MatrixChainExpression::new(4)`.
///
/// This is a thin adapter over the general enumerator: each instance binds
/// its dimension tuple onto an [`Expr`] product tree and derives the
/// `(p-1)!` multiplication orders from the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixChainExpression {
    num_matrices: usize,
}

impl MatrixChainExpression {
    /// Chain of `num_matrices` matrices (at least two).
    ///
    /// # Panics
    ///
    /// Panics if `num_matrices < 2`.
    #[must_use]
    pub fn new(num_matrices: usize) -> Self {
        assert!(num_matrices >= 2, "a chain needs at least two matrices");
        MatrixChainExpression { num_matrices }
    }

    /// The paper's four-matrix chain `A·B·C·D`.
    #[must_use]
    pub fn abcd() -> Self {
        MatrixChainExpression::new(4)
    }

    /// Number of matrices in the chain.
    #[must_use]
    pub fn num_matrices(&self) -> usize {
        self.num_matrices
    }

    /// The [`Expr`] tree of one instance (left-associated product of
    /// `A, B, C, ...` with the given dimension tuple).
    #[must_use]
    pub fn expr(&self, dims: &[usize]) -> Expr {
        assert_eq!(
            dims.len(),
            self.num_dims(),
            "dimension tuple length mismatch"
        );
        Expr::product(
            (0..self.num_matrices)
                .map(|i| Expr::var(&input_name(i), dims[i], dims[i + 1]))
                .collect(),
        )
    }
}

impl Expression for MatrixChainExpression {
    fn name(&self) -> String {
        if self.num_matrices == 4 {
            "matrix chain ABCD".into()
        } else {
            format!("matrix chain of {} matrices", self.num_matrices)
        }
    }

    fn num_dims(&self) -> usize {
        self.num_matrices + 1
    }

    fn algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
        enumerate_expr_algorithms_pruned(&self.expr(dims), None)
    }

    fn algorithms_pruned(
        &self,
        dims: &[usize],
        top_k: Option<usize>,
    ) -> Result<Vec<Algorithm>, GenerateError> {
        enumerate_expr_algorithms_pruned(&self.expr(dims), top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abcd_has_six_algorithms_in_paper_order() {
        let dims = [13, 7, 11, 5, 3];
        let algs = enumerate_chain_algorithms(&dims).unwrap();
        assert_eq!(algs.len(), 6);
        let formulas = abcd_flop_formulas(&dims);
        for (alg, expected) in algs.iter().zip(formulas) {
            assert!(alg.is_well_formed(), "{} is malformed", alg.name);
            assert_eq!(alg.flops(), expected, "FLOP mismatch for {}", alg.name);
            assert_eq!(alg.calls.len(), 3);
            assert_eq!(alg.kernel_summary(), "gemm,gemm,gemm");
        }
        // Algorithms 2 and 5 have identical FLOP counts (paper Section 3.2.1).
        assert_eq!(algs[1].flops(), algs[4].flops());
        // Their first multiplications differ (AB vs CD), so they are distinct
        // algorithms nonetheless.
        assert_ne!(algs[1].calls[0].label, algs[4].calls[0].label);
    }

    #[test]
    fn paper_ordering_of_first_multiplications() {
        let algs = enumerate_chain_algorithms(&[2, 3, 4, 5, 6]).unwrap();
        let firsts: Vec<&str> = algs.iter().map(|a| a.calls[0].label.as_str()).collect();
        assert_eq!(
            firsts,
            vec![
                "M1 := A*B",
                "M1 := A*B",
                "M1 := B*C",
                "M1 := B*C",
                "M1 := C*D",
                "M1 := C*D"
            ]
        );
    }

    #[test]
    fn two_matrix_chain_has_single_algorithm() {
        let algs = enumerate_chain_algorithms(&[4, 5, 6]).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(algs[0].flops(), 2 * 4 * 5 * 6);
        assert_eq!(algs[0].calls.len(), 1);
    }

    #[test]
    fn three_matrix_chain_has_two_algorithms() {
        let algs = enumerate_chain_algorithms(&[4, 5, 6, 7]).unwrap();
        assert_eq!(algs.len(), 2);
        // (AB)C and A(BC).
        assert_eq!(algs[0].flops(), 2 * (4 * 5 * 6 + 4 * 6 * 7) as u64);
        assert_eq!(algs[1].flops(), 2 * (5 * 6 * 7 + 4 * 5 * 7) as u64);
    }

    #[test]
    fn five_matrix_chain_has_factorial_many_algorithms() {
        let algs = enumerate_chain_algorithms(&[3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(algs.len(), 24); // 4!
        for alg in &algs {
            assert!(alg.is_well_formed());
            assert_eq!(alg.calls.len(), 4);
        }
    }

    #[test]
    fn dp_optimum_matches_cheapest_enumerated() {
        for dims in [
            vec![10, 30, 5, 60],
            vec![40, 20, 30, 10, 30],
            vec![7, 13, 5, 89, 3, 21],
            vec![1200, 20, 1200, 20, 1200],
        ] {
            let algs = enumerate_chain_algorithms(&dims).unwrap();
            let cheapest = algs.iter().map(Algorithm::flops).min().unwrap();
            let (dp, paren) = optimal_chain_order(&dims).unwrap();
            assert_eq!(dp, cheapest, "dims {dims:?}");
            assert!(!paren.is_empty());
        }
    }

    #[test]
    fn dp_reproduces_textbook_example() {
        // Classic CLRS example (scaled by the factor 2 of the GEMM flop model):
        // dims 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 -> 15125 multiplications.
        let (flops, paren) = optimal_chain_order(&[30, 35, 15, 5, 10, 20, 25]).unwrap();
        assert_eq!(flops, 2 * 15125);
        assert_eq!(paren, "((A (B C)) ((D E) F))");
    }

    #[test]
    fn expression_trait_plumbing() {
        let expr = MatrixChainExpression::abcd();
        assert_eq!(expr.num_dims(), 5);
        assert_eq!(expr.num_matrices(), 4);
        assert!(expr.name().contains("ABCD"));
        let algs = expr.algorithms(&[10, 10, 10, 10, 10]).unwrap();
        assert_eq!(algs.len(), 6);
        // All algorithms tie on a homogeneous square chain.
        let flops: Vec<u64> = algs.iter().map(Algorithm::flops).collect();
        assert!(flops.iter().all(|&f| f == flops[0]));
    }

    #[test]
    fn single_matrix_chain_is_rejected_as_an_error() {
        assert_eq!(
            enumerate_chain_algorithms(&[4, 5]).unwrap_err(),
            GenerateError::TooFewMatrices { dims_len: 2 }
        );
        assert_eq!(
            optimal_chain_order(&[4]).unwrap_err(),
            GenerateError::TooFewMatrices { dims_len: 1 }
        );
    }

    #[test]
    fn intermediate_operands_have_correct_shapes() {
        let dims = [9, 8, 7, 6, 5];
        let algs = enumerate_chain_algorithms(&dims).unwrap();
        // Algorithm 1 is ((AB)C)D: M1 is 9x7, M2 is 9x6, X is 9x5.
        let alg1 = &algs[0];
        let m1 = alg1.operand(OperandId(4)).unwrap();
        assert_eq!((m1.rows, m1.cols), (9, 7));
        let m2 = alg1.operand(OperandId(5)).unwrap();
        assert_eq!((m2.rows, m2.cols), (9, 6));
        let x = alg1.output().unwrap();
        assert_eq!((x.rows, x.cols), (9, 5));
    }
}
