//! Common-subexpression elimination over the kernel-call IR.
//!
//! The enumerator emits *tree-shaped* algorithms: every occurrence of a
//! subcomputation gets its own kernel call, even when two occurrences are
//! mathematically identical — the same POTRF of one SPD operand, the same
//! SYRK Gram product, the same TRSM half-solve. This module turns the call
//! sequence into a DAG by value numbering: identical `(operation, inputs)`
//! pairs are computed once, later occurrences are rewritten to read the first
//! result, and the eliminated calls (and their FLOPs) are reported.
//!
//! Three IR-specific rules keep the transform sound:
//!
//! * The **in-place triangle copy** (`inputs == [x]`, `output == x`) *updates*
//!   its operand rather than defining a new value. A second completion of the
//!   same representative operand is dropped (it would re-write bytes that are
//!   already there); a completion of a merged-away operand is redirected to
//!   the surviving representative.
//! * A duplicate call that writes the **output operand** is kept (and its
//!   FLOPs stay charged): the IR contract — relied on by every executor and
//!   by the def-use pass — is that the final call materialises the output
//!   operand. Sharing it away would leave the output unproduced.
//! * Operands merged away are removed from the operand table, so the result
//!   verifies cleanly (no dead intermediates).
//!
//! [`shared_flops`] is the DAG-aware cost model derived from the same value
//! numbering: the FLOP total an algorithm costs when each distinct value is
//! charged once. For a CSE-transformed algorithm it coincides with
//! [`Algorithm::flops`].
//!
//! [`node_identities`] assigns every operand a *canonical identity string*
//! that is stable across algorithms and across planner requests: leaves are
//! identified by name, id, shape and structure (executors seed input contents
//! from the operand id, so the id is part of the bytes-level identity), and
//! computed operands by their operation applied to the identities of its
//! inputs. Two operands with equal identity strings hold bit-identical
//! values under the deterministic executors, which is exactly the keying the
//! cross-request factor cache needs.

use crate::algorithm::{Algorithm, OperandRole};
use crate::kernel_call::{KernelCall, KernelOp};
use crate::operand::OperandId;
use std::collections::{HashMap, HashSet};

/// The result of [`eliminate_common_subexpressions`].
#[derive(Debug, Clone)]
pub struct CseOutcome {
    /// The transformed algorithm, with duplicate calls removed and their
    /// readers rewired to the surviving representative.
    pub algorithm: Algorithm,
    /// Number of kernel calls eliminated.
    pub eliminated_calls: usize,
    /// FLOPs of the eliminated calls (the saving over the tree-shaped form).
    pub eliminated_flops: u64,
}

/// Whether `call` is the in-place spelling of the triangle copy (an *update*
/// of an existing operand, not a definition of a new one).
fn is_in_place_copy(call: &KernelCall) -> bool {
    matches!(call.op, KernelOp::CopyTriangle { .. }) && call.inputs.first() == Some(&call.output)
}

/// Resolve `id` through the representative map (one level deep is enough:
/// the map always points at surviving operands, never at eliminated ones).
fn resolve(repr: &HashMap<OperandId, OperandId>, id: OperandId) -> OperandId {
    *repr.get(&id).unwrap_or(&id)
}

/// Eliminate common subexpressions from `alg` by forward value numbering.
///
/// Call order is preserved (the kept calls appear in their original order),
/// so def-use discipline is preserved too. The transform is idempotent:
/// running it on its own result eliminates nothing further.
#[must_use]
pub fn eliminate_common_subexpressions(alg: &Algorithm) -> CseOutcome {
    let mut repr: HashMap<OperandId, OperandId> = HashMap::new();
    let mut table: HashMap<(KernelOp, Vec<OperandId>), OperandId> = HashMap::new();
    let mut eliminated: HashSet<OperandId> = HashSet::new();
    let mut calls: Vec<KernelCall> = Vec::with_capacity(alg.calls.len());
    let mut eliminated_calls = 0usize;
    let mut eliminated_flops = 0u64;

    for call in &alg.calls {
        if is_in_place_copy(call) {
            // An update of an existing value: redirect it to the surviving
            // representative, and drop it when that representative has
            // already been completed by an identical copy.
            let target = resolve(&repr, call.output);
            let key = (call.op.clone(), vec![target]);
            if table.contains_key(&key) {
                eliminated_calls += 1; // zero FLOPs — only the call count moves
                continue;
            }
            table.insert(key, target);
            calls.push(KernelCall {
                op: call.op.clone(),
                inputs: vec![target],
                output: target,
                label: call.label.clone(),
            });
            continue;
        }

        let inputs: Vec<OperandId> = call.inputs.iter().map(|&id| resolve(&repr, id)).collect();
        let key = (call.op.clone(), inputs.clone());
        match table.get(&key) {
            Some(&existing)
                if alg.operand(call.output).map(|o| o.role) != Some(OperandRole::Output) =>
            {
                // A duplicate definition of a value we already hold: drop the
                // call, remember the representative, forget the operand.
                repr.insert(call.output, existing);
                eliminated.insert(call.output);
                eliminated_calls += 1;
                eliminated_flops += call.flops();
            }
            _ => {
                // First occurrence — or a duplicate that materialises the
                // output operand, which must stay (the output is produced by
                // the final call; executors and the def-use pass rely on it).
                table.entry(key).or_insert(call.output);
                calls.push(KernelCall {
                    op: call.op.clone(),
                    inputs,
                    output: call.output,
                    label: call.label.clone(),
                });
            }
        }
    }

    let operands = alg
        .operands
        .iter()
        .filter(|o| !eliminated.contains(&o.id))
        .cloned()
        .collect();
    CseOutcome {
        algorithm: Algorithm {
            name: alg.name.clone(),
            operands,
            calls,
        },
        eliminated_calls,
        eliminated_flops,
    }
}

/// The DAG-aware FLOP count of `alg`: each distinct `(operation, inputs)`
/// value is charged once, with the same rules as
/// [`eliminate_common_subexpressions`] (duplicate productions of the output
/// operand stay charged). Always `<= alg.flops()`, and equal for algorithms
/// with no common subexpressions.
#[must_use]
pub fn shared_flops(alg: &Algorithm) -> u64 {
    alg.flops() - eliminate_common_subexpressions(alg).eliminated_flops
}

impl Algorithm {
    /// The DAG-aware FLOP count: see [`shared_flops`].
    #[must_use]
    pub fn shared_flops(&self) -> u64 {
        shared_flops(self)
    }
}

/// Canonical identity strings for every operand of `alg`, keyed by operand
/// id. Leaves are identified by `name # raw-id shape structure` — the raw id
/// participates because the deterministic executors seed an input's contents
/// from its id, so equal names with different ids hold different bytes.
/// Computed operands are identified by their producing operation applied to
/// the identities of its inputs; an in-place triangle copy *advances* the
/// identity of its operand (completed storage holds different bytes than the
/// triangle-only value it came from).
#[must_use]
pub fn node_identities(alg: &Algorithm) -> HashMap<OperandId, String> {
    let mut ids: HashMap<OperandId, String> = alg
        .operands
        .iter()
        .filter(|o| o.role == OperandRole::Input)
        .map(|o| {
            (
                o.id,
                format!(
                    "leaf:{}#{}:{}x{}:{:?}",
                    o.name,
                    o.id.index(),
                    o.rows,
                    o.cols,
                    o.structure
                ),
            )
        })
        .collect();
    for call in &alg.calls {
        let inputs: Vec<String> = call
            .inputs
            .iter()
            .map(|id| {
                ids.get(id)
                    .cloned()
                    .unwrap_or_else(|| format!("raw:{}", id.index()))
            })
            .collect();
        // The op Display carries the kernel, its flags and its logical
        // dimensions, so the identity pins down the exact computation.
        ids.insert(call.output, format!("{}({})", call.op, inputs.join(",")));
    }
    ids
}

/// Whether a kernel operation produces a *reusable factor*: a value worth
/// caching across requests because later algorithms can skip recomputing it.
/// Cholesky/LU/QR factors, Gram products and triangular half-solves are the
/// factor-once/solve-many values of the paper's solve pipelines.
#[must_use]
pub fn is_cacheable_op(op: &KernelOp) -> bool {
    matches!(
        op,
        KernelOp::Potrf { .. }
            | KernelOp::Getrf { .. }
            | KernelOp::Qr { .. }
            | KernelOp::Syrk { .. }
            | KernelOp::Trsm { .. }
    )
}

/// The cacheable values `alg` produces: `(call index, operand id, identity)`
/// for every call whose operation is [cacheable](is_cacheable_op) and whose
/// result is *final* — not mutated afterwards by an in-place triangle copy
/// (a later copy advances the operand's identity, so caching the pre-copy
/// snapshot under the pre-copy identity stays correct; the tuple reports the
/// identity at production time).
#[must_use]
pub fn cacheable_identities(alg: &Algorithm) -> Vec<(usize, OperandId, String)> {
    let mut ids: HashMap<OperandId, String> = alg
        .operands
        .iter()
        .filter(|o| o.role == OperandRole::Input)
        .map(|o| {
            (
                o.id,
                format!(
                    "leaf:{}#{}:{}x{}:{:?}",
                    o.name,
                    o.id.index(),
                    o.rows,
                    o.cols,
                    o.structure
                ),
            )
        })
        .collect();
    let mut out = Vec::new();
    for (i, call) in alg.calls.iter().enumerate() {
        let inputs: Vec<String> = call
            .inputs
            .iter()
            .map(|id| {
                ids.get(id)
                    .cloned()
                    .unwrap_or_else(|| format!("raw:{}", id.index()))
            })
            .collect();
        let identity = format!("{}({})", call.op, inputs.join(","));
        ids.insert(call.output, identity.clone());
        if is_cacheable_op(&call.op) {
            out.push((i, call.output, identity));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::OperandInfo;
    use lamb_matrix::{Side, Structure, Trans, Uplo};

    fn op_gemm(m: usize, n: usize, k: usize) -> KernelOp {
        KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m,
            n,
            k,
        }
    }

    fn operand(id: usize, rows: usize, cols: usize, role: OperandRole, name: &str) -> OperandInfo {
        OperandInfo {
            id: OperandId(id),
            rows,
            cols,
            role,
            name: name.into(),
            structure: Structure::General,
        }
    }

    /// `X := (A·B) + nothing`-style doubled product: M1 := A·B, M2 := A·B,
    /// X := M1·M2 — the classic duplicate pair.
    fn doubled_product() -> Algorithm {
        Algorithm {
            name: "doubled".into(),
            operands: vec![
                operand(0, 8, 8, OperandRole::Input, "A"),
                operand(1, 8, 8, OperandRole::Input, "B"),
                operand(2, 8, 8, OperandRole::Intermediate, "M1"),
                operand(3, 8, 8, OperandRole::Intermediate, "M2"),
                operand(4, 8, 8, OperandRole::Output, "X"),
            ],
            calls: vec![
                KernelCall {
                    op: op_gemm(8, 8, 8),
                    inputs: vec![OperandId(0), OperandId(1)],
                    output: OperandId(2),
                    label: "M1 := A*B".into(),
                },
                KernelCall {
                    op: op_gemm(8, 8, 8),
                    inputs: vec![OperandId(0), OperandId(1)],
                    output: OperandId(3),
                    label: "M2 := A*B".into(),
                },
                KernelCall {
                    op: op_gemm(8, 8, 8),
                    inputs: vec![OperandId(2), OperandId(3)],
                    output: OperandId(4),
                    label: "X := M1*M2".into(),
                },
            ],
        }
    }

    #[test]
    fn duplicate_definitions_are_merged() {
        let outcome = eliminate_common_subexpressions(&doubled_product());
        assert_eq!(outcome.eliminated_calls, 1);
        assert_eq!(outcome.eliminated_flops, 2 * 8 * 8 * 8);
        let alg = &outcome.algorithm;
        assert_eq!(alg.calls.len(), 2);
        // The final call now reads the surviving representative twice.
        assert_eq!(
            alg.calls[1].inputs,
            vec![OperandId(2), OperandId(2)],
            "{alg}"
        );
        // The merged-away operand left the table; the algorithm verifies as a DAG.
        assert!(alg.operand(OperandId(3)).is_none());
        assert!(alg.is_well_formed());
        assert_eq!(alg.flops(), doubled_product().shared_flops());
    }

    #[test]
    fn cse_is_idempotent() {
        let once = eliminate_common_subexpressions(&doubled_product()).algorithm;
        let twice = eliminate_common_subexpressions(&once);
        assert_eq!(twice.eliminated_calls, 0);
        assert_eq!(twice.algorithm, once);
    }

    #[test]
    fn algorithms_without_duplicates_are_untouched() {
        let alg = Algorithm {
            name: "plain".into(),
            operands: vec![
                operand(0, 4, 4, OperandRole::Input, "A"),
                operand(1, 4, 4, OperandRole::Input, "B"),
                operand(2, 4, 4, OperandRole::Output, "X"),
            ],
            calls: vec![KernelCall {
                op: op_gemm(4, 4, 4),
                inputs: vec![OperandId(0), OperandId(1)],
                output: OperandId(2),
                label: "X := A*B".into(),
            }],
        };
        let outcome = eliminate_common_subexpressions(&alg);
        assert_eq!(outcome.eliminated_calls, 0);
        assert_eq!(outcome.eliminated_flops, 0);
        assert_eq!(outcome.algorithm, alg);
        assert_eq!(alg.shared_flops(), alg.flops());
    }

    #[test]
    fn duplicate_output_production_is_kept_and_charged() {
        // M1 := A·B, X := A·B — the second call writes the output, so it must
        // survive (the output is produced by the final call) and stay charged.
        let alg = Algorithm {
            name: "dup-out".into(),
            operands: vec![
                operand(0, 4, 4, OperandRole::Input, "A"),
                operand(1, 4, 4, OperandRole::Input, "B"),
                operand(2, 4, 4, OperandRole::Intermediate, "M1"),
                operand(3, 4, 4, OperandRole::Output, "X"),
            ],
            calls: vec![
                KernelCall {
                    op: op_gemm(4, 4, 4),
                    inputs: vec![OperandId(0), OperandId(1)],
                    output: OperandId(2),
                    label: "M1 := A*B".into(),
                },
                KernelCall {
                    op: op_gemm(4, 4, 4),
                    inputs: vec![OperandId(2), OperandId(2)],
                    output: OperandId(3),
                    label: "X := M1*M1".into(),
                },
            ],
        };
        // No duplicates here, but force the boundary: a direct duplicate of
        // the output write.
        let mut dup = alg.clone();
        dup.calls.push(dup.calls[1].clone());
        let outcome = eliminate_common_subexpressions(&dup);
        assert_eq!(outcome.algorithm.calls.len(), 3);
        assert_eq!(outcome.eliminated_flops, 0);
        assert_eq!(
            outcome.algorithm.calls.last().unwrap().output,
            OperandId(3),
            "the output stays produced last"
        );
    }

    #[test]
    fn in_place_copies_are_deduplicated_via_their_representative() {
        // SYRK → M1 (triangle), complete M1; SYRK → M2 (same value),
        // complete M2; X := M1·M2. CSE merges the SYRKs *and* the copies.
        let syrk = KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n: 6,
            k: 3,
        };
        let copy = KernelOp::CopyTriangle {
            uplo: Uplo::Lower,
            n: 6,
        };
        let alg = Algorithm {
            name: "gram-twice".into(),
            operands: vec![
                operand(0, 6, 3, OperandRole::Input, "A"),
                operand(1, 6, 6, OperandRole::Intermediate, "M1"),
                operand(2, 6, 6, OperandRole::Intermediate, "M2"),
                operand(3, 6, 6, OperandRole::Output, "X"),
            ],
            calls: vec![
                KernelCall {
                    op: syrk.clone(),
                    inputs: vec![OperandId(0)],
                    output: OperandId(1),
                    label: "M1 := A*A^T".into(),
                },
                KernelCall {
                    op: copy.clone(),
                    inputs: vec![OperandId(1)],
                    output: OperandId(1),
                    label: "M1 full".into(),
                },
                KernelCall {
                    op: syrk.clone(),
                    inputs: vec![OperandId(0)],
                    output: OperandId(2),
                    label: "M2 := A*A^T".into(),
                },
                KernelCall {
                    op: copy.clone(),
                    inputs: vec![OperandId(2)],
                    output: OperandId(2),
                    label: "M2 full".into(),
                },
                KernelCall {
                    op: op_gemm(6, 6, 6),
                    inputs: vec![OperandId(1), OperandId(2)],
                    output: OperandId(3),
                    label: "X := M1*M2".into(),
                },
            ],
        };
        let outcome = eliminate_common_subexpressions(&alg);
        assert_eq!(outcome.eliminated_calls, 2, "{}", outcome.algorithm);
        assert_eq!(outcome.eliminated_flops, syrk.flops());
        assert_eq!(outcome.algorithm.calls.len(), 3);
        assert!(outcome.algorithm.is_well_formed());
        assert_eq!(
            outcome.algorithm.calls[2].inputs,
            vec![OperandId(1), OperandId(1)]
        );
    }

    #[test]
    fn node_identities_distinguish_leaves_by_id_and_advance_on_copy() {
        let alg = doubled_product();
        let ids = node_identities(&alg);
        // Duplicate computations share an identity string.
        assert_eq!(ids[&OperandId(2)], ids[&OperandId(3)]);
        // Different leaves never share one.
        assert_ne!(ids[&OperandId(0)], ids[&OperandId(1)]);
        // The in-place copy advances the identity.
        let syrk = KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n: 4,
            k: 2,
        };
        let copy = KernelOp::CopyTriangle {
            uplo: Uplo::Lower,
            n: 4,
        };
        let gram = Algorithm {
            name: "gram".into(),
            operands: vec![
                operand(0, 4, 2, OperandRole::Input, "A"),
                operand(1, 4, 4, OperandRole::Output, "X"),
            ],
            calls: vec![
                KernelCall {
                    op: syrk,
                    inputs: vec![OperandId(0)],
                    output: OperandId(1),
                    label: "X := A*A^T".into(),
                },
                KernelCall {
                    op: copy,
                    inputs: vec![OperandId(1)],
                    output: OperandId(1),
                    label: "X full".into(),
                },
            ],
        };
        let before = {
            let mut partial = gram.clone();
            partial.calls.truncate(1);
            node_identities(&partial)[&OperandId(1)].clone()
        };
        let after = node_identities(&gram)[&OperandId(1)].clone();
        assert_ne!(before, after, "completion must advance the identity");
        assert!(after.contains("copy"));
    }

    #[test]
    fn cacheable_identities_report_factor_producing_calls() {
        let potrf = KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 5,
        };
        let trsm = KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 5,
            n: 2,
        };
        let alg = Algorithm {
            name: "solve".into(),
            operands: vec![
                OperandInfo {
                    id: OperandId(0),
                    rows: 5,
                    cols: 5,
                    role: OperandRole::Input,
                    name: "S".into(),
                    structure: Structure::Spd,
                },
                operand(1, 5, 2, OperandRole::Input, "B"),
                OperandInfo {
                    id: OperandId(2),
                    rows: 5,
                    cols: 5,
                    role: OperandRole::Intermediate,
                    name: "L".into(),
                    structure: Structure::Triangular(Uplo::Lower),
                },
                operand(3, 5, 2, OperandRole::Output, "X"),
            ],
            calls: vec![
                KernelCall {
                    op: potrf,
                    inputs: vec![OperandId(0)],
                    output: OperandId(2),
                    label: "L := chol(S)".into(),
                },
                KernelCall {
                    op: trsm,
                    inputs: vec![OperandId(2), OperandId(1)],
                    output: OperandId(3),
                    label: "X := L\\B".into(),
                },
            ],
        };
        let cacheable = cacheable_identities(&alg);
        assert_eq!(cacheable.len(), 2);
        assert_eq!(cacheable[0].1, OperandId(2));
        assert!(cacheable[0].2.contains("potrf"));
        assert!(cacheable[1].2.contains("trsm"));
        // The TRSM identity nests the POTRF identity: reuse keys are
        // whole-subtree canonical.
        assert!(cacheable[1].2.contains(&cacheable[0].2));
        // GEMM is not a factor-producing op.
        assert!(!is_cacheable_op(&op_gemm(3, 3, 3)));
    }
}
