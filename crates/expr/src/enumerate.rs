//! The general algorithm enumerator: from an arbitrary [`Expr`] tree to the
//! set of mathematically equivalent kernel-call algorithms.
//!
//! This is the engine behind every [`Expression`](crate::Expression) in the
//! workspace. It generalises the hand-written enumerators of
//! [`crate::chain`] and [`crate::aatb`]:
//!
//! 1. the tree is flattened into a list of (possibly transposed) leaf
//!    factors, pushing transposes down with `(A·B)ᵀ = Bᵀ·Aᵀ`;
//! 2. a recursive merge search enumerates every *order* in which adjacent
//!    factors can be multiplied — `(p-1)!` orders for `p` factors, exactly
//!    the algorithm set of the paper's Section 3.2.1;
//! 3. at each merge the rewrite rules of [`crate::rewrite`] contribute the
//!    kernel variants (SYRK for Gram products `X·Xᵀ`, SYMM and triangle
//!    copies for symmetric intermediates), which is how the five `A·Aᵀ·B`
//!    algorithms of Section 3.2.2 fall out of the same engine.
//!
//! A memoized parenthesization lower bound (the generalisation of the matrix
//! chain DP in [`crate::chain::optimal_chain_order`]) powers the optional
//! **top-k FLOPs pruning**: with [`EnumerateOptions::top_k`] set, branches
//! that provably cannot reach the k cheapest algorithms are cut, which keeps
//! planning tractable for chains of length 8–10 where full enumeration is
//! factorial.
//!
//! ```
//! use lamb_expr::enumerate::enumerate_expr_algorithms;
//! use lamb_expr::expr::Expr;
//!
//! let a = Expr::var("A", 80, 514);
//! let b = Expr::var("B", 80, 768);
//! let aatb = a.clone().mul(a.t()).mul(b);
//! let algorithms = enumerate_expr_algorithms(&aatb).unwrap();
//! assert_eq!(algorithms.len(), 5); // the paper's five A*A^T*B algorithms
//! ```

use crate::algorithm::{Algorithm, OperandInfo, OperandRole};
use crate::expr::{Expr, Factor, ShapeError};
use crate::generator::GenerateError;
use crate::kernel_call::{KernelCall, KernelOp};
use crate::operand::OperandId;
use crate::rewrite::{merge_variants, MergeKind, MergeOperand, Storage};
use lamb_matrix::{Side, Structure, Trans, Uplo};
use std::collections::{BinaryHeap, HashMap};

/// Knobs of the general enumerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerateOptions {
    /// Keep only the `k` algorithms with the smallest FLOP counts, pruning
    /// provably-too-expensive branches during the search (`None` enumerates
    /// everything). The surviving algorithms are returned sorted by
    /// ascending FLOP count (ties keep enumeration order).
    pub top_k: Option<usize>,
    /// Whether the structural rewrites (SYRK, SYMM, triangle copies) are
    /// applied. With `false` every merge lowers to plain GEMM, which is
    /// useful for ablations.
    pub rewrites: bool,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            top_k: None,
            rewrites: true,
        }
    }
}

/// One factor of the partially evaluated product: an original (possibly
/// transposed, possibly inverse-marked) leaf or an intermediate, covering
/// the factor range `[start, end)` of the flattened expression.
#[derive(Debug, Clone)]
struct Segment {
    id: OperandId,
    /// Logical number of rows (after leaf transposition).
    rows: usize,
    /// Logical number of columns (after leaf transposition).
    cols: usize,
    /// Leaf transposition; `Trans::No` for intermediates.
    trans: Trans,
    /// Index of the distinct leaf (for Gram-pair detection).
    leaf: Option<usize>,
    storage: Storage,
    /// The *stored* triangle when the segment is known triangular
    /// (`trans` still applies on top of it for leaves).
    tri: Option<Uplo>,
    /// Whether the segment is a symmetric positive-definite leaf.
    spd: bool,
    /// Whether the segment is inverse-marked (a leaf used as `L⁻¹`, `S⁻¹`
    /// or general `A⁻¹`); intermediates are never inverse-marked.
    inv: bool,
    /// Whether the segment is pseudo-inverse-marked (a leaf used as `A⁺`);
    /// intermediates are never pseudo-inverse-marked.
    pinv: bool,
    /// First flattened-factor index covered by this segment.
    start: usize,
    /// One past the last flattened-factor index covered.
    end: usize,
    /// Parenthesised text, e.g. `"(A B)"`.
    text: String,
    /// Operand name, e.g. `"A"` or `"M1"`.
    name: String,
}

impl Segment {
    /// The triangle this segment's values effectively occupy (transposition
    /// applied).
    fn effective_tri(&self) -> Option<Uplo> {
        self.tri.map(|u| u.under(self.trans))
    }

    fn merge_operand(&self) -> MergeOperand {
        MergeOperand {
            leaf: self.leaf,
            trans: self.trans,
            storage: self.storage,
            tri: self.effective_tri(),
            spd: self.spd,
            inv: self.inv,
            pinv: self.pinv,
        }
    }
}

/// Enumerate every algorithm for `expr` with the default options (full
/// enumeration, rewrites enabled).
///
/// # Errors
///
/// Returns [`GenerateError`] if the expression is shape-inconsistent, has no
/// factors, or reuses an operand name with two different shapes.
pub fn enumerate_expr_algorithms(expr: &Expr) -> Result<Vec<Algorithm>, GenerateError> {
    enumerate_expr_algorithms_with(expr, &EnumerateOptions::default())
}

/// Enumerate with an optional top-k FLOPs cap and rewrites enabled — the
/// convenience the [`Expression`](crate::Expression) adapters build their
/// `algorithms` / `algorithms_pruned` methods on.
///
/// # Errors
///
/// See [`enumerate_expr_algorithms`].
pub fn enumerate_expr_algorithms_pruned(
    expr: &Expr,
    top_k: Option<usize>,
) -> Result<Vec<Algorithm>, GenerateError> {
    enumerate_expr_algorithms_with(
        expr,
        &EnumerateOptions {
            top_k,
            ..EnumerateOptions::default()
        },
    )
}

/// Enumerate the algorithms for `expr` under `options`.
///
/// # Errors
///
/// See [`enumerate_expr_algorithms`].
pub fn enumerate_expr_algorithms_with(
    expr: &Expr,
    options: &EnumerateOptions,
) -> Result<Vec<Algorithm>, GenerateError> {
    expr.shape()?;
    let factors = expr.factors();
    if factors.is_empty() {
        return Err(GenerateError::Empty);
    }
    // Every inverse now has a realisation — TRSM for triangular leaves,
    // POTRF + two TRSMs for SPD leaves, GETRF + pivot + two TRSMs for
    // general square leaves — but a handful of flag combinations remain
    // unrealisable and are diagnosed up front.
    for f in &factors {
        if f.inv && f.pinv {
            // e.g. `(A^+)^-1`: the leaf's values are neither A nor A⁻¹.
            return Err(GenerateError::InversePseudoInverseMix {
                name: f.var.name.clone(),
            });
        }
        if f.inv && f.var.rows != f.var.cols {
            // Flattening `(A·B)⁻¹` can push an inverse onto a non-square
            // leaf even when the product itself is square.
            return Err(GenerateError::Shape(ShapeError::InverseNotSquare {
                shape: (f.var.rows, f.var.cols),
            }));
        }
        if f.pinv {
            // The QR realisation factors the operand as used (after
            // transposition), which must be tall or square.
            let (r, c) = if f.trans {
                (f.var.cols, f.var.rows)
            } else {
                (f.var.rows, f.var.cols)
            };
            if r < c {
                return Err(GenerateError::PseudoInverseWide {
                    name: f.var.name.clone(),
                });
            }
        }
    }
    let inputs = distinct_inputs(&factors)?;

    if factors.len() == 1 {
        // A single leaf: a call-free algorithm whose output is the operand
        // itself. A single *inverted* leaf cannot be represented (a solve
        // needs a right-hand side), and neither can a single *transposed*
        // one (no kernel performs a standalone transpose) — each is rejected
        // with its own diagnosis rather than silently returning the plain
        // operand.
        let f = &factors[0];
        if f.inv {
            return Err(GenerateError::BareInverse {
                name: f.var.name.clone(),
            });
        }
        if f.pinv {
            return Err(GenerateError::BarePseudoInverse {
                name: f.var.name.clone(),
            });
        }
        if f.trans {
            return Err(GenerateError::BareTranspose {
                name: f.var.name.clone(),
            });
        }
        let mut operand = inputs[0].clone();
        operand.role = OperandRole::Output;
        return Ok(vec![Algorithm {
            name: format!("Algorithm 1: {}", f.var.name),
            operands: vec![operand],
            calls: Vec::new(),
        }]);
    }

    let leaf_index: HashMap<&str, usize> = inputs
        .iter()
        .enumerate()
        .map(|(i, info)| (info.name.as_str(), i))
        .collect();
    let segments: Vec<Segment> = factors
        .iter()
        .enumerate()
        .map(|(pos, f)| {
            let leaf = leaf_index[f.var.name.as_str()];
            // Transposition and pseudo-inversion each swap the logical
            // shape; applied together they cancel ((Aᵀ)⁺ is m×n again).
            let (rows, cols) = if f.trans != f.pinv {
                (f.var.cols, f.var.rows)
            } else {
                (f.var.rows, f.var.cols)
            };
            let text = format!(
                "{}{}{}{}",
                f.var.name,
                if f.trans { "^T" } else { "" },
                if f.inv { "^-1" } else { "" },
                if f.pinv { "^+" } else { "" }
            );
            Segment {
                id: inputs[leaf].id,
                rows,
                cols,
                trans: if f.trans { Trans::Yes } else { Trans::No },
                leaf: Some(leaf),
                // SPD leaves are symmetric values stored in full, which is
                // what unlocks the SYMM variants for plain products.
                storage: if f.var.structure.is_spd() {
                    Storage::SymmetricFull
                } else {
                    Storage::General
                },
                tri: f.var.triangle(),
                spd: f.var.structure.is_spd(),
                inv: f.inv,
                pinv: f.pinv,
                start: pos,
                end: pos + 1,
                name: f.var.name.clone(),
                text,
            }
        })
        .collect();

    // How often the most-repeated leaf appears. With repeated leaves the
    // same subcomputation can occur up to this many times in one algorithm,
    // so CSE can shrink an algorithm's *shared* cost by at most this factor
    // — the scaling that keeps branch-and-bound pruning admissible below.
    let max_leaf_multiplicity = {
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for f in &factors {
            *counts.entry(f.var.name.as_str()).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap_or(1)
    };

    let mut ctx = Ctx {
        options,
        inputs: &inputs,
        max_leaf_multiplicity,
        best: BinaryHeap::new(),
        lb_memo: HashMap::new(),
        out: Vec::new(),
    };
    recurse(&mut ctx, &segments, &[], &[], 0);
    if ctx.out.is_empty() {
        // Every merge order hit a variant-free merge. Inverses realise from
        // either side now (left- and right-side TRSM/Cholesky/LU lowerings),
        // so the remaining dead ends are: a solve whose rectangular partner
        // is transposed or triangle-stored in every order (`L^-1 * B^T`),
        // two inverses meeting in one merge (`L^-1 * M^-1`), a transposed
        // general inverse (`A^-T` — GETRF carries no transposition flag),
        // or a pseudo-inverse on the right of every split (`b * A^+` —
        // ORMQR applies Q₁ᵀ from the left only).
        return Err(GenerateError::NoRealisation {
            expression: expr.to_string(),
        });
    }
    let mut out = ctx.out;
    if let Some(k) = options.top_k {
        // Rank by the *shared* (CSE-deduplicated) FLOP count — what the
        // algorithm pays once repeated subcomputations are computed only
        // once — with the raw total as tie-break. For expressions without
        // repeated leaves the two coincide and this is the plain FLOP sort.
        out.sort_by_key(|a| (a.shared_flops(), a.flops())); // stable
        out.truncate(k.max(1));
    }
    for (idx, alg) in out.iter_mut().enumerate() {
        // The kernel composition disambiguates rewrite variants that share a
        // parenthesization (e.g. syrk,symm vs gemm,gemm for (A A^T) B).
        alg.name = format!(
            "Algorithm {}: {} [{}]",
            idx + 1,
            alg.name,
            alg.kernel_summary()
        );
    }
    Ok(out)
}

/// Build the deduplicated input-operand table (one entry per distinct leaf
/// name, in order of first appearance). Reuse must be consistent in both
/// shape and declared triangular structure.
fn distinct_inputs(factors: &[Factor]) -> Result<Vec<OperandInfo>, GenerateError> {
    let mut inputs: Vec<OperandInfo> = Vec::new();
    for f in factors {
        let v = &f.var;
        if let Some(existing) = inputs.iter().find(|i| i.name == v.name) {
            if (existing.rows, existing.cols) != (v.rows, v.cols)
                || existing.structure != v.structure
            {
                return Err(GenerateError::InconsistentOperand {
                    name: v.name.clone(),
                });
            }
        } else {
            inputs.push(OperandInfo {
                id: OperandId(inputs.len()),
                rows: v.rows,
                cols: v.cols,
                role: OperandRole::Input,
                structure: v.structure,
                name: v.name.clone(),
            });
        }
    }
    Ok(inputs)
}

struct Ctx<'a> {
    options: &'a EnumerateOptions,
    inputs: &'a [OperandInfo],
    /// Multiplicity of the most-repeated leaf (1 for all-distinct leaves).
    max_leaf_multiplicity: u64,
    /// Max-heap of the *shared* (CSE-deduplicated) FLOP totals of the best
    /// `top_k` complete algorithms found so far (used only for pruning).
    best: BinaryHeap<u64>,
    /// Lower-bound memo keyed by the partition boundaries of a state.
    lb_memo: HashMap<Vec<usize>, u64>,
    out: Vec<Algorithm>,
}

fn recurse(
    ctx: &mut Ctx<'_>,
    segments: &[Segment],
    calls: &[KernelCall],
    intermediates: &[OperandInfo],
    partial_flops: u64,
) {
    if segments.len() == 1 {
        let mut operands = ctx.inputs.to_vec();
        let mut inters = intermediates.to_vec();
        if let Some(last) = inters.last_mut() {
            last.role = OperandRole::Output;
            last.name = "X".into();
        }
        operands.extend(inters);
        let alg = Algorithm {
            name: segments[0].text.clone(),
            operands,
            calls: calls.to_vec(),
        };
        if let Some(k) = ctx.options.top_k {
            // The heap ranks completed algorithms by what they cost under
            // sharing: their CSE-deduplicated FLOP total. For all-distinct
            // leaves this equals `partial_flops` exactly.
            let shared = if ctx.max_leaf_multiplicity > 1 {
                alg.shared_flops()
            } else {
                partial_flops
            };
            ctx.best.push(shared);
            if ctx.best.len() > k.max(1) {
                ctx.best.pop();
            }
        }
        ctx.out.push(alg);
        return;
    }
    if let Some(k) = ctx.options.top_k {
        if ctx.best.len() >= k.max(1) {
            // With repeated leaves, CSE can shrink a completion's shared
            // cost to as little as 1/m of its raw total (m = multiplicity of
            // the most-repeated leaf), so the raw lower bound must be scaled
            // down by m to stay admissible against the shared-cost heap.
            // For m == 1 this is exactly the classic FLOP bound.
            let bound = (partial_flops + lower_bound(&mut ctx.lb_memo, segments))
                / ctx.max_leaf_multiplicity;
            if bound >= *ctx.best.peek().expect("heap is non-empty") {
                return;
            }
        }
    }
    for i in 0..segments.len() - 1 {
        let left = &segments[i];
        let right = &segments[i + 1];
        let variants = merge_variants(
            &left.merge_operand(),
            &right.merge_operand(),
            segments.len() == 2,
            ctx.options.rewrites,
        );
        let ambiguous = variants.len() > 1;
        for kind in variants {
            let base_id = ctx.inputs.len() + intermediates.len();
            let base_m = intermediates.len() + 1;
            let (new_calls, merged, new_infos) =
                build_merge(left, right, kind, base_id, base_m, ambiguous);
            let added_flops: u64 = new_calls.iter().map(KernelCall::flops).sum();
            let mut next_segments = segments.to_vec();
            next_segments[i] = merged;
            next_segments.remove(i + 1);
            let mut next_calls = calls.to_vec();
            next_calls.extend(new_calls);
            let mut next_inters = intermediates.to_vec();
            next_inters.extend(new_infos);
            recurse(
                ctx,
                &next_segments,
                &next_calls,
                &next_inters,
                partial_flops + added_flops,
            );
        }
    }
}

/// Build the kernel calls of one merge variant together with the merged
/// segment and the new intermediates' operand entries. Most variants
/// introduce exactly one intermediate (the merge result); the Cholesky
/// realisation of an SPD inverse introduces three, the QR realisation of a
/// pseudo-inverse four, and the pivoted LU realisation of a general inverse
/// six. The *last* entry of the returned operand list is always the merge
/// result — `recurse` relies on this when it promotes the final intermediate
/// to the algorithm's output.
///
/// `base_id`/`base_m` are the next free operand id and `M{..}` name index.
fn build_merge(
    left: &Segment,
    right: &Segment,
    kind: MergeKind,
    base_id: usize,
    base_m: usize,
    ambiguous: bool,
) -> (Vec<KernelCall>, Segment, Vec<OperandInfo>) {
    let uplo = Uplo::Lower;
    let (m, k, n) = (left.rows, left.cols, right.cols);
    debug_assert_eq!(left.cols, right.rows, "validated by Expr::shape");
    if kind == MergeKind::CholeskySolve {
        return build_cholesky_solve(left, right, base_id, base_m);
    }
    if kind == MergeKind::CholeskySolveRight {
        return build_cholesky_solve_right(left, right, base_id, base_m);
    }
    if kind == MergeKind::LuSolve {
        return build_lu_solve(left, right, base_id, base_m);
    }
    if kind == MergeKind::LuSolveRight {
        return build_lu_solve_right(left, right, base_id, base_m);
    }
    if kind == MergeKind::QrSolve {
        return build_qr_solve(left, right, base_id, base_m);
    }
    let out_id = OperandId(base_id);
    let out_name = &format!("M{base_m}");
    let product_label = |kernel: &str| {
        if ambiguous {
            format!("{out_name} := {}*{} ({kernel})", left.text, right.text)
        } else {
            format!("{out_name} := {}*{}", left.text, right.text)
        }
    };
    let copy_call = |seg: &Segment| KernelCall {
        op: KernelOp::CopyTriangle { uplo, n: seg.rows },
        inputs: vec![seg.id],
        output: seg.id,
        label: format!("{0} := full({0}) (copy triangle)", seg.name),
    };
    let gemm_call = |transa: Trans, transb: Trans, label: String| KernelCall {
        op: KernelOp::Gemm {
            transa,
            transb,
            m,
            n,
            k,
        },
        inputs: vec![left.id, right.id],
        output: out_id,
        label,
    };
    let symm_call = |side: Side| {
        let inputs = match side {
            Side::Left => vec![left.id, right.id],
            Side::Right => vec![right.id, left.id],
        };
        KernelCall {
            op: KernelOp::Symm { side, uplo, m, n },
            inputs,
            output: out_id,
            label: product_label("symm"),
        }
    };
    let syrk_call = || KernelCall {
        op: KernelOp::Syrk {
            uplo,
            trans: left.trans,
            n: m,
            k,
        },
        inputs: vec![left.id],
        output: out_id,
        label: product_label("syrk"),
    };
    // The triangular operand leads the input list for both sides, matching
    // the kernel argument order (triangle, then the rectangular operand).
    let trmm_call = |side: Side| {
        let (tri_seg, rect_seg) = match side {
            Side::Left => (left, right),
            Side::Right => (right, left),
        };
        KernelCall {
            op: KernelOp::Trmm {
                side,
                uplo: tri_seg.tri.expect("TRMM requires a triangular operand"),
                trans: tri_seg.trans,
                m,
                n,
            },
            inputs: vec![tri_seg.id, rect_seg.id],
            output: out_id,
            label: product_label("trmm"),
        }
    };
    let trsm_call = |side: Side| {
        let (tri_seg, rect_seg) = match side {
            Side::Left => (left, right),
            Side::Right => (right, left),
        };
        KernelCall {
            op: KernelOp::Trsm {
                side,
                uplo: tri_seg.tri.expect("TRSM requires a triangular operand"),
                trans: tri_seg.trans,
                m,
                n,
            },
            inputs: vec![tri_seg.id, rect_seg.id],
            output: out_id,
            label: product_label("trsm"),
        }
    };

    let calls = match kind {
        MergeKind::Gemm => {
            let label = product_label("gemm");
            vec![gemm_call(left.trans, right.trans, label)]
        }
        MergeKind::GemmSymmetric => {
            vec![gemm_call(left.trans, right.trans, product_label("gemm"))]
        }
        MergeKind::SyrkTriangle => vec![syrk_call()],
        MergeKind::SyrkThenCopy => vec![
            syrk_call(),
            KernelCall {
                op: KernelOp::CopyTriangle { uplo, n: m },
                inputs: vec![out_id],
                output: out_id,
                label: format!("{out_name} := full({out_name}) (copy triangle)"),
            },
        ],
        MergeKind::SymmLeft => vec![symm_call(Side::Left)],
        MergeKind::SymmRight => vec![symm_call(Side::Right)],
        MergeKind::CopyLeftThenGemm => vec![
            copy_call(left),
            gemm_call(Trans::No, right.trans, product_label("gemm")),
        ],
        MergeKind::CopyRightThenGemm => vec![
            copy_call(right),
            gemm_call(left.trans, Trans::No, product_label("gemm")),
        ],
        MergeKind::CopyBothThenGemm => vec![
            copy_call(left),
            copy_call(right),
            gemm_call(Trans::No, Trans::No, product_label("gemm")),
        ],
        MergeKind::CopyRightThenSymmLeft => vec![copy_call(right), symm_call(Side::Left)],
        MergeKind::CopyLeftThenSymmRight => vec![copy_call(left), symm_call(Side::Right)],
        MergeKind::Trmm => vec![trmm_call(Side::Left)],
        MergeKind::TrmmRight => vec![trmm_call(Side::Right)],
        MergeKind::Trsm => vec![trsm_call(Side::Left)],
        MergeKind::TrsmRight => vec![trsm_call(Side::Right)],
        MergeKind::CholeskySolve
        | MergeKind::CholeskySolveRight
        | MergeKind::LuSolve
        | MergeKind::LuSolveRight
        | MergeKind::QrSolve => {
            unreachable!("handled above")
        }
    };

    // Triangularity is closed under same-triangle products and solves: the
    // intermediate then carries the structure forward (e.g. chained TRMMs in
    // `L1[lower]*L2[lower]*B`).
    let result_tri = if kind.preserves_triangle() {
        match (left.effective_tri(), right.effective_tri()) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    } else {
        None
    };
    let merged = Segment {
        id: out_id,
        rows: m,
        cols: n,
        trans: Trans::No,
        leaf: None,
        storage: kind.result_storage(),
        tri: result_tri,
        spd: false,
        inv: false,
        pinv: false,
        start: left.start,
        end: right.end,
        text: format!("({} {})", left.text, right.text),
        name: out_name.to_string(),
    };
    let info = OperandInfo {
        id: out_id,
        rows: m,
        cols: n,
        role: OperandRole::Intermediate,
        structure: result_tri.map_or(Structure::General, Structure::Triangular),
        name: out_name.to_string(),
    };
    (calls, merged, vec![info])
}

/// Build the three-call Cholesky realisation of an SPD inverse merge
/// `S⁻¹·B`: `L := POTRF(S)`, `Y := L⁻¹·B`, `X := L⁻ᵀ·Y`. Introduces three
/// intermediates (the explicitly triangular factor, the half-solved
/// right-hand side, and the result — in that order, result last).
fn build_cholesky_solve(
    left: &Segment,
    right: &Segment,
    base_id: usize,
    base_m: usize,
) -> (Vec<KernelCall>, Segment, Vec<OperandInfo>) {
    let (m, n) = (left.rows, right.cols);
    debug_assert_eq!(left.rows, left.cols, "SPD operands are square");
    let l_id = OperandId(base_id);
    let y_id = OperandId(base_id + 1);
    let out_id = OperandId(base_id + 2);
    let l_name = format!("M{base_m}");
    let y_name = format!("M{}", base_m + 1);
    let out_name = format!("M{}", base_m + 2);
    let calls = vec![
        KernelCall {
            op: KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: m,
            },
            inputs: vec![left.id],
            output: l_id,
            label: format!("{l_name} := chol({}) (potrf)", left.name),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m,
                n,
            },
            inputs: vec![l_id, right.id],
            output: y_id,
            label: format!("{y_name} := {l_name}^-1*{} (trsm)", right.text),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                m,
                n,
            },
            inputs: vec![l_id, y_id],
            output: out_id,
            label: format!("{out_name} := {l_name}^-T*{y_name} (trsm)"),
        },
    ];
    let infos = vec![
        OperandInfo {
            id: l_id,
            rows: m,
            cols: m,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Lower),
            name: l_name,
        },
        OperandInfo {
            id: y_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: y_name,
        },
        OperandInfo {
            id: out_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: out_name.clone(),
        },
    ];
    let merged = Segment {
        id: out_id,
        rows: m,
        cols: n,
        trans: Trans::No,
        leaf: None,
        storage: Storage::General,
        tri: None,
        spd: false,
        inv: false,
        pinv: false,
        start: left.start,
        end: right.end,
        text: format!("({} {})", left.text, right.text),
        name: out_name,
    };
    (calls, merged, infos)
}

/// Build the six-call pivoted LU realisation of a general inverse merge
/// `A⁻¹·B`: `F := GETRF(A)` (the packed `L\U` factor with the pivot column),
/// `L := tril(F)` and `U := triu(F)` (zero-FLOP triangle extractions),
/// `Bₚ := P·B` (the pivot application), `Y := L⁻¹·Bₚ`, `X := U⁻¹·Y`.
/// Introduces six intermediates, result last.
fn build_lu_solve(
    left: &Segment,
    right: &Segment,
    base_id: usize,
    base_m: usize,
) -> (Vec<KernelCall>, Segment, Vec<OperandInfo>) {
    let (m, n) = (left.rows, right.cols);
    debug_assert_eq!(left.rows, left.cols, "general inverses are square");
    let f_id = OperandId(base_id);
    let l_id = OperandId(base_id + 1);
    let u_id = OperandId(base_id + 2);
    let bp_id = OperandId(base_id + 3);
    let y_id = OperandId(base_id + 4);
    let out_id = OperandId(base_id + 5);
    let f_name = format!("M{base_m}");
    let l_name = format!("M{}", base_m + 1);
    let u_name = format!("M{}", base_m + 2);
    let bp_name = format!("M{}", base_m + 3);
    let y_name = format!("M{}", base_m + 4);
    let out_name = format!("M{}", base_m + 5);
    let calls = vec![
        KernelCall {
            op: KernelOp::Getrf { n: m },
            inputs: vec![left.id],
            output: f_id,
            label: format!("{f_name} := lu({}) (getrf)", left.name),
        },
        KernelCall {
            op: KernelOp::FactorTri {
                uplo: Uplo::Lower,
                n: m,
            },
            inputs: vec![f_id],
            output: l_id,
            label: format!("{l_name} := tril({f_name}) (factortri)"),
        },
        KernelCall {
            op: KernelOp::FactorTri {
                uplo: Uplo::Upper,
                n: m,
            },
            inputs: vec![f_id],
            output: u_id,
            label: format!("{u_name} := triu({f_name}) (factortri)"),
        },
        KernelCall {
            op: KernelOp::PivotApply {
                side: Side::Left,
                m,
                n,
            },
            inputs: vec![f_id, right.id],
            output: bp_id,
            label: format!("{bp_name} := P*{} (laswp)", right.text),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m,
                n,
            },
            inputs: vec![l_id, bp_id],
            output: y_id,
            label: format!("{y_name} := {l_name}^-1*{bp_name} (trsm)"),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m,
                n,
            },
            inputs: vec![u_id, y_id],
            output: out_id,
            label: format!("{out_name} := {u_name}^-1*{y_name} (trsm)"),
        },
    ];
    let infos = vec![
        OperandInfo {
            id: f_id,
            rows: m,
            cols: m + 1,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: f_name,
        },
        OperandInfo {
            id: l_id,
            rows: m,
            cols: m,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Lower),
            name: l_name,
        },
        OperandInfo {
            id: u_id,
            rows: m,
            cols: m,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Upper),
            name: u_name,
        },
        OperandInfo {
            id: bp_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: bp_name,
        },
        OperandInfo {
            id: y_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: y_name,
        },
        OperandInfo {
            id: out_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: out_name.clone(),
        },
    ];
    let merged = Segment {
        id: out_id,
        rows: m,
        cols: n,
        trans: Trans::No,
        leaf: None,
        storage: Storage::General,
        tri: None,
        spd: false,
        inv: false,
        pinv: false,
        start: left.start,
        end: right.end,
        text: format!("({} {})", left.text, right.text),
        name: out_name,
    };
    (calls, merged, infos)
}

/// Build the three-call Cholesky realisation of a *right-side* SPD inverse
/// merge `B·S⁻¹`: `L := POTRF(S)`, `Y := B·L⁻ᵀ`, `X := Y·L⁻¹` (from
/// `S⁻¹ = L⁻ᵀ·L⁻¹`) — both solves right-side TRSMs, never a transpose
/// round-trip. Introduces three intermediates, result last.
fn build_cholesky_solve_right(
    left: &Segment,
    right: &Segment,
    base_id: usize,
    base_m: usize,
) -> (Vec<KernelCall>, Segment, Vec<OperandInfo>) {
    let (m, n) = (left.rows, right.cols);
    debug_assert_eq!(right.rows, right.cols, "SPD operands are square");
    let l_id = OperandId(base_id);
    let y_id = OperandId(base_id + 1);
    let out_id = OperandId(base_id + 2);
    let l_name = format!("M{base_m}");
    let y_name = format!("M{}", base_m + 1);
    let out_name = format!("M{}", base_m + 2);
    let calls = vec![
        KernelCall {
            op: KernelOp::Potrf {
                uplo: Uplo::Lower,
                n,
            },
            inputs: vec![right.id],
            output: l_id,
            label: format!("{l_name} := chol({}) (potrf)", right.name),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                m,
                n,
            },
            inputs: vec![l_id, left.id],
            output: y_id,
            label: format!("{y_name} := {}*{l_name}^-T (trsm)", left.text),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m,
                n,
            },
            inputs: vec![l_id, y_id],
            output: out_id,
            label: format!("{out_name} := {y_name}*{l_name}^-1 (trsm)"),
        },
    ];
    let infos = vec![
        OperandInfo {
            id: l_id,
            rows: n,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Lower),
            name: l_name,
        },
        OperandInfo {
            id: y_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: y_name,
        },
        OperandInfo {
            id: out_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: out_name.clone(),
        },
    ];
    let merged = Segment {
        id: out_id,
        rows: m,
        cols: n,
        trans: Trans::No,
        leaf: None,
        storage: Storage::General,
        tri: None,
        spd: false,
        inv: false,
        pinv: false,
        start: left.start,
        end: right.end,
        text: format!("({} {})", left.text, right.text),
        name: out_name,
    };
    (calls, merged, infos)
}

/// Build the six-call pivoted LU realisation of a *right-side* general
/// inverse merge `B·A⁻¹`: from `P·A = L·U` follows
/// `A⁻¹ = U⁻¹·L⁻¹·P`, so `F := GETRF(A)`, `L := tril(F)`, `U := triu(F)`,
/// `Y := B·U⁻¹`, `Z := Y·L⁻¹` (both right-side TRSMs), and last
/// `X := Z·P` — the pivot application as *column* swaps. Introduces six
/// intermediates, result last.
fn build_lu_solve_right(
    left: &Segment,
    right: &Segment,
    base_id: usize,
    base_m: usize,
) -> (Vec<KernelCall>, Segment, Vec<OperandInfo>) {
    let (m, n) = (left.rows, right.cols);
    debug_assert_eq!(right.rows, right.cols, "general inverses are square");
    let f_id = OperandId(base_id);
    let l_id = OperandId(base_id + 1);
    let u_id = OperandId(base_id + 2);
    let y_id = OperandId(base_id + 3);
    let z_id = OperandId(base_id + 4);
    let out_id = OperandId(base_id + 5);
    let f_name = format!("M{base_m}");
    let l_name = format!("M{}", base_m + 1);
    let u_name = format!("M{}", base_m + 2);
    let y_name = format!("M{}", base_m + 3);
    let z_name = format!("M{}", base_m + 4);
    let out_name = format!("M{}", base_m + 5);
    let calls = vec![
        KernelCall {
            op: KernelOp::Getrf { n },
            inputs: vec![right.id],
            output: f_id,
            label: format!("{f_name} := lu({}) (getrf)", right.name),
        },
        KernelCall {
            op: KernelOp::FactorTri {
                uplo: Uplo::Lower,
                n,
            },
            inputs: vec![f_id],
            output: l_id,
            label: format!("{l_name} := tril({f_name}) (factortri)"),
        },
        KernelCall {
            op: KernelOp::FactorTri {
                uplo: Uplo::Upper,
                n,
            },
            inputs: vec![f_id],
            output: u_id,
            label: format!("{u_name} := triu({f_name}) (factortri)"),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m,
                n,
            },
            inputs: vec![u_id, left.id],
            output: y_id,
            label: format!("{y_name} := {}*{u_name}^-1 (trsm)", left.text),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m,
                n,
            },
            inputs: vec![l_id, y_id],
            output: z_id,
            label: format!("{z_name} := {y_name}*{l_name}^-1 (trsm)"),
        },
        KernelCall {
            op: KernelOp::PivotApply {
                side: Side::Right,
                m,
                n,
            },
            inputs: vec![f_id, z_id],
            output: out_id,
            label: format!("{out_name} := {z_name}*P (laswp)"),
        },
    ];
    let infos = vec![
        OperandInfo {
            id: f_id,
            rows: n,
            cols: n + 1,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: f_name,
        },
        OperandInfo {
            id: l_id,
            rows: n,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Lower),
            name: l_name,
        },
        OperandInfo {
            id: u_id,
            rows: n,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Upper),
            name: u_name,
        },
        OperandInfo {
            id: y_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: y_name,
        },
        OperandInfo {
            id: z_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: z_name,
        },
        OperandInfo {
            id: out_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: out_name.clone(),
        },
    ];
    let merged = Segment {
        id: out_id,
        rows: m,
        cols: n,
        trans: Trans::No,
        leaf: None,
        storage: Storage::General,
        tri: None,
        spd: false,
        inv: false,
        pinv: false,
        start: left.start,
        end: right.end,
        text: format!("({} {})", left.text, right.text),
        name: out_name,
    };
    (calls, merged, infos)
}

/// Build the four-call QR realisation of a pseudo-inverse merge `A⁺·B` (the
/// least-squares solve `argmin‖A·X − B‖₂` for a tall `A`): `F := QR(A)` (the
/// packed Householder factor with the tau column), `R := triu(F)` (zero-FLOP
/// triangle extraction), `C := Q₁ᵀ·B` (ORMQR), `X := R⁻¹·C`. Introduces four
/// intermediates, result last.
fn build_qr_solve(
    left: &Segment,
    right: &Segment,
    base_id: usize,
    base_m: usize,
) -> (Vec<KernelCall>, Segment, Vec<OperandInfo>) {
    // The pinv-marked segment's logical shape is A⁺'s (cols × rows of the
    // stored operand): the factored matrix A itself is `mm × nn`.
    let (nn, mm, k) = (left.rows, left.cols, right.cols);
    debug_assert!(mm >= nn, "validated before enumeration starts");
    debug_assert_eq!(left.cols, right.rows, "validated by Expr::shape");
    let f_id = OperandId(base_id);
    let r_id = OperandId(base_id + 1);
    let c_id = OperandId(base_id + 2);
    let out_id = OperandId(base_id + 3);
    let f_name = format!("M{base_m}");
    let r_name = format!("M{}", base_m + 1);
    let c_name = format!("M{}", base_m + 2);
    let out_name = format!("M{}", base_m + 3);
    let calls = vec![
        KernelCall {
            op: KernelOp::Qr { m: mm, n: nn },
            inputs: vec![left.id],
            output: f_id,
            label: format!("{f_name} := qr({}) (qr)", left.name),
        },
        KernelCall {
            op: KernelOp::FactorTri {
                uplo: Uplo::Upper,
                n: nn,
            },
            inputs: vec![f_id],
            output: r_id,
            label: format!("{r_name} := triu({f_name}) (factortri)"),
        },
        KernelCall {
            op: KernelOp::Ormqr { m: mm, n: nn, k },
            inputs: vec![f_id, right.id],
            output: c_id,
            label: format!("{c_name} := Q^T*{} (ormqr)", right.text),
        },
        KernelCall {
            op: KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: nn,
                n: k,
            },
            inputs: vec![r_id, c_id],
            output: out_id,
            label: format!("{out_name} := {r_name}^-1*{c_name} (trsm)"),
        },
    ];
    let infos = vec![
        OperandInfo {
            id: f_id,
            rows: mm,
            cols: nn + 1,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: f_name,
        },
        OperandInfo {
            id: r_id,
            rows: nn,
            cols: nn,
            role: OperandRole::Intermediate,
            structure: Structure::Triangular(Uplo::Upper),
            name: r_name,
        },
        OperandInfo {
            id: c_id,
            rows: nn,
            cols: k,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: c_name,
        },
        OperandInfo {
            id: out_id,
            rows: nn,
            cols: k,
            role: OperandRole::Intermediate,
            structure: Structure::General,
            name: out_name.clone(),
        },
    ];
    let merged = Segment {
        id: out_id,
        rows: nn,
        cols: k,
        trans: Trans::No,
        leaf: None,
        storage: Storage::General,
        tri: None,
        spd: false,
        inv: false,
        pinv: false,
        start: left.start,
        end: right.end,
        text: format!("({} {})", left.text, right.text),
        name: out_name,
    };
    (calls, merged, infos)
}

/// A memoized lower bound on the FLOPs still needed to merge `segments` into
/// one result: the classic parenthesization DP over the current segment
/// list, costing each product `2·m·n·k` except
///
/// * adjacent Gram leaf pairs, which may use the cheaper SYRK count
///   `(n+1)·n·k`, and
/// * merges whose left span starts — or whose right span ends — with a
///   triangular or inverse-marked segment, which may reach the sided
///   TRMM/TRSM count `m·n·k` (half of GEMM).
///
/// The triangular discount is applied whenever the *leftmost* segment of the
/// left span is structured — a necessary condition for the merged left side
/// to be structured — or, symmetrically, whenever the *rightmost* segment of
/// the right span is structured (necessary for the merged right side to
/// drive a right-side TRMM/TRSM), so the bound never overestimates; triangle
/// copies cost 0 FLOPs and SYMM ties GEMM, so no completion can beat this
/// bound. The Cholesky realisation of an SPD inverse costs
/// `m³/3 + 2·m²·n ≥ m·n·k` (SPD operands are square, `k = m`), so the same
/// `m·n·k` discount remains a valid lower bound for inverse-marked SPD
/// segments on either side. The LU realisation of a general inverse costs
/// `2·m³/3 + 2·m²·n ≥ m·n·k` and the QR realisation of a pseudo-inverse
/// costs at least `2·nn·mm·k ≥ nn·mm·k` (ORMQR alone), so the discount stays
/// admissible for those too.
fn lower_bound(memo: &mut HashMap<Vec<usize>, u64>, segments: &[Segment]) -> u64 {
    let t = segments.len();
    if t <= 1 {
        return 0;
    }
    let key: Vec<usize> = segments
        .iter()
        .map(|s| s.start)
        .chain([segments[t - 1].end])
        .collect();
    if let Some(&cached) = memo.get(&key) {
        return cached;
    }
    let d: Vec<u64> = std::iter::once(segments[0].rows as u64)
        .chain(segments.iter().map(|s| s.cols as u64))
        .collect();
    let gram: Vec<bool> = segments
        .windows(2)
        .map(|w| crate::rewrite::is_gram_pair(&w[0].merge_operand(), &w[1].merge_operand()))
        .collect();
    let structured: Vec<bool> = segments
        .iter()
        .map(|s| s.tri.is_some() || s.inv || s.pinv)
        .collect();
    let mut cost = vec![vec![0u64; t]; t];
    for len in 2..=t {
        for i in 0..=t - len {
            let j = i + len - 1;
            let mut best = u64::MAX;
            for s in i..j {
                // The sided structured discount: a structured merged left
                // side needs structured[i], a structured merged right side
                // needs structured[j] — either way the cost can halve, and
                // both discounts share the `d[i]·d[s+1]·d[j+1]` form
                // (triangular operands are square, so order²·other equals
                // the dimension product on whichever side the triangle is).
                let merge = if structured[i] || structured[j] {
                    d[i] * d[s + 1] * d[j + 1]
                } else if len == 2 && gram[i] {
                    (d[i] + 1) * d[i] * d[i + 1]
                } else {
                    2 * d[i] * d[s + 1] * d[j + 1]
                };
                best = best.min(cost[i][s] + cost[s + 1][j] + merge);
            }
            cost[i][j] = best;
        }
    }
    memo.insert(key, cost[0][t - 1]);
    cost[0][t - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aatb::enumerate_aatb_algorithms;
    use crate::chain::enumerate_chain_algorithms;

    fn chain_expr(dims: &[usize]) -> Expr {
        let factors: Vec<Expr> = (0..dims.len() - 1)
            .map(|i| {
                Expr::var(
                    &char::from(b'A' + u8::try_from(i).unwrap()).to_string(),
                    dims[i],
                    dims[i + 1],
                )
            })
            .collect();
        Expr::product(factors)
    }

    #[test]
    fn chain_enumeration_matches_the_legacy_reference_bit_for_bit() {
        let dims = [13, 7, 11, 5, 3];
        let engine = enumerate_expr_algorithms(&chain_expr(&dims)).unwrap();
        let reference = enumerate_chain_algorithms(&dims).unwrap();
        assert_eq!(engine.len(), reference.len());
        for (e, r) in engine.iter().zip(&reference) {
            assert_eq!(e.calls, r.calls, "call sequences must be identical");
            assert_eq!(e.operands, r.operands, "operand tables must be identical");
            assert_eq!(e.flops(), r.flops());
        }
    }

    #[test]
    fn aatb_enumeration_derives_the_five_paper_algorithms() {
        let (d0, d1, d2) = (17, 29, 11);
        let a = Expr::var("A", d0, d1);
        let b = Expr::var("B", d0, d2);
        let engine = enumerate_expr_algorithms(&a.clone().mul(a.t()).mul(b)).unwrap();
        let reference = enumerate_aatb_algorithms(d0, d1, d2);
        assert_eq!(engine.len(), 5);
        for (e, r) in engine.iter().zip(&reference) {
            assert_eq!(e.calls.len(), r.calls.len(), "{}", r.name);
            for (ec, rc) in e.calls.iter().zip(&r.calls) {
                assert_eq!(ec.op, rc.op, "{}", r.name);
                assert_eq!(ec.inputs, rc.inputs, "{}", r.name);
                assert_eq!(ec.output, rc.output, "{}", r.name);
            }
            assert_eq!(e.flops(), r.flops(), "{}", r.name);
        }
    }

    #[test]
    fn transposed_factors_are_enumerated_with_all_orders() {
        // X := A^T * B * A has two multiplication orders, both plain GEMM.
        let a = Expr::var("A", 10, 6);
        let b = Expr::var("B", 10, 10);
        let algs = enumerate_expr_algorithms(&a.clone().t().mul(b).mul(a)).unwrap();
        assert_eq!(algs.len(), 2);
        for alg in &algs {
            assert!(alg.is_well_formed());
            assert_eq!(alg.kernel_summary(), "gemm,gemm");
            let out = alg.output().unwrap();
            assert_eq!((out.rows, out.cols), (6, 6));
        }
        // The two orders contract the dimensions differently.
        assert_ne!(algs[0].calls[0].op, algs[1].calls[0].op);
    }

    #[test]
    fn final_gram_product_is_completed_to_full_storage() {
        let a = Expr::var("A", 6, 9);
        let algs = enumerate_expr_algorithms(&a.clone().mul(a.t())).unwrap();
        assert_eq!(algs.len(), 2);
        assert_eq!(algs[0].kernel_summary(), "syrk,copy");
        assert_eq!(algs[1].kernel_summary(), "gemm");
        assert!(algs.iter().all(Algorithm::is_well_formed));
    }

    #[test]
    fn double_gram_expression_mixes_symm_and_copies() {
        // X := A*A^T*B*B^T with A 8x5 and B 8x6.
        let a = Expr::var("A", 8, 5);
        let b = Expr::var("B", 8, 6);
        let expr = a.clone().mul(a.t()).mul(b.clone()).mul(b.t());
        let algs = enumerate_expr_algorithms(&expr).unwrap();
        assert!(algs.len() > 5, "got {}", algs.len());
        assert!(algs.iter().all(Algorithm::is_well_formed));
        assert!(algs.iter().any(|a| a.kernel_summary().contains("syrk")));
        assert!(algs.iter().any(|a| a.kernel_summary().contains("symm")));
        for alg in &algs {
            let out = alg.output().unwrap();
            assert_eq!((out.rows, out.cols), (8, 8));
        }
    }

    #[test]
    fn disabling_rewrites_keeps_only_gemm_orders() {
        let a = Expr::var("A", 10, 20);
        let b = Expr::var("B", 10, 30);
        let expr = a.clone().mul(a.t()).mul(b);
        let opts = EnumerateOptions {
            rewrites: false,
            ..EnumerateOptions::default()
        };
        let algs = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
        assert_eq!(algs.len(), 2); // (A A^T) B and A (A^T B)
        assert!(algs.iter().all(|a| a.kernel_summary() == "gemm,gemm"));
    }

    #[test]
    fn top_k_pruning_returns_the_cheapest_algorithms_sorted() {
        let dims = [40, 20, 30, 10, 30, 25];
        let expr = chain_expr(&dims);
        let full = enumerate_expr_algorithms(&expr).unwrap();
        assert_eq!(full.len(), 24);
        let mut cheapest: Vec<u64> = full.iter().map(Algorithm::flops).collect();
        cheapest.sort_unstable();
        for k in [1, 3, 24, 100] {
            let opts = EnumerateOptions {
                top_k: Some(k),
                ..EnumerateOptions::default()
            };
            let pruned = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
            assert_eq!(pruned.len(), k.min(24));
            let got: Vec<u64> = pruned.iter().map(Algorithm::flops).collect();
            assert_eq!(got, cheapest[..k.min(24)].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn top_k_pruning_agrees_with_full_enumeration_on_gram_expressions() {
        let a = Expr::var("A", 30, 7);
        let b = Expr::var("B", 30, 11);
        let expr = a.clone().mul(a.t()).mul(b);
        let full = enumerate_expr_algorithms(&expr).unwrap();
        let mut flops: Vec<u64> = full.iter().map(Algorithm::flops).collect();
        flops.sort_unstable();
        let opts = EnumerateOptions {
            top_k: Some(2),
            ..EnumerateOptions::default()
        };
        let pruned = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
        let got: Vec<u64> = pruned.iter().map(Algorithm::flops).collect();
        assert_eq!(got, flops[..2].to_vec());
    }

    #[test]
    fn top_k_pruning_stays_admissible_under_sharing_with_repeated_leaves() {
        // (A A^T)(A A^T) B: some orderings compute the Gram product twice,
        // and CSE collapses the repeat — so ranking and pruning must use the
        // *shared* FLOP count, and the bound must not prune a completion
        // whose shared cost beats the raw-FLOP frontrunners.
        let a = Expr::var("A", 12, 5);
        let b = Expr::var("B", 12, 9);
        let expr = a
            .clone()
            .mul(a.clone().t())
            .mul(a.clone())
            .mul(a.t())
            .mul(b);
        let full = enumerate_expr_algorithms(&expr).unwrap();
        assert!(
            full.iter().any(|alg| alg.shared_flops() < alg.flops()),
            "at least one ordering repeats a subcomputation"
        );
        let mut keys: Vec<(u64, u64)> = full
            .iter()
            .map(|alg| (alg.shared_flops(), alg.flops()))
            .collect();
        keys.sort_unstable();
        for k in [1, 2, 4, 8] {
            let opts = EnumerateOptions {
                top_k: Some(k),
                ..EnumerateOptions::default()
            };
            let pruned = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
            let got: Vec<(u64, u64)> = pruned
                .iter()
                .map(|alg| (alg.shared_flops(), alg.flops()))
                .collect();
            assert_eq!(got, keys[..k.min(keys.len())].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn single_leaf_expressions_lower_to_a_call_free_algorithm() {
        let algs = enumerate_expr_algorithms(&Expr::var("A", 3, 4)).unwrap();
        assert_eq!(algs.len(), 1);
        assert!(algs[0].calls.is_empty());
        assert_eq!(algs[0].flops(), 0);
        assert_eq!(algs[0].output().unwrap().name, "A");
    }

    #[test]
    fn a_lone_transposed_leaf_is_rejected() {
        // No kernel performs a standalone transpose; returning the stored
        // operand would silently compute A instead of A^T.
        let err = enumerate_expr_algorithms(&Expr::var("A", 3, 4).t()).unwrap_err();
        assert_eq!(err, GenerateError::BareTranspose { name: "A".into() });
        assert!(err.to_string().contains("transpose"));
        // A cancelled double transpose is fine.
        let algs = enumerate_expr_algorithms(&Expr::var("A", 3, 4).t().t()).unwrap();
        assert_eq!(algs.len(), 1);
    }

    #[test]
    fn inconsistent_operand_reuse_is_an_error() {
        // "A" used with two different shapes (but shape-consistent as a
        // product: 2x3 times 3x4).
        let expr = Expr::var("A", 2, 3).mul(Expr::var("A", 3, 4));
        assert!(matches!(
            enumerate_expr_algorithms(&expr),
            Err(GenerateError::InconsistentOperand { .. })
        ));
    }

    #[test]
    fn shape_errors_propagate() {
        let expr = Expr::var("A", 2, 3).mul(Expr::var("B", 4, 5));
        assert!(matches!(
            enumerate_expr_algorithms(&expr),
            Err(GenerateError::Shape(_))
        ));
    }

    #[test]
    fn repeated_same_orientation_operand_is_a_plain_product() {
        let a = Expr::var("A", 8, 8);
        let algs = enumerate_expr_algorithms(&a.clone().mul(a)).unwrap();
        assert_eq!(algs.len(), 1, "A*A is not a Gram product");
        assert_eq!(algs[0].kernel_summary(), "gemm");
        assert_eq!(algs[0].flops(), 2 * 8 * 8 * 8);
        // The single input operand is referenced twice by the call.
        assert_eq!(algs[0].calls[0].inputs, vec![OperandId(0), OperandId(0)]);
        assert_eq!(algs[0].inputs().count(), 1);
    }

    #[test]
    fn triangular_left_operand_enumerates_trmm_and_gemm() {
        let l = Expr::tri_var("L", 10, Uplo::Lower);
        let b = Expr::var("B", 10, 7);
        let algs = enumerate_expr_algorithms(&l.mul(b)).unwrap();
        assert_eq!(algs.len(), 2);
        assert_eq!(algs[0].kernel_summary(), "trmm");
        assert_eq!(algs[1].kernel_summary(), "gemm");
        assert!(algs.iter().all(Algorithm::is_well_formed));
        // TRMM performs exactly half the FLOPs of the GEMM variant.
        assert_eq!(algs[0].flops() * 2, algs[1].flops());
        // The triangular input is declared in the operand table.
        let l_info = algs[0].inputs().find(|o| o.name == "L").unwrap();
        assert_eq!(l_info.triangle(), Some(Uplo::Lower));
    }

    #[test]
    fn transposed_triangular_operand_keeps_its_stored_uplo_in_the_call() {
        let l = Expr::tri_var("L", 8, Uplo::Lower);
        let b = Expr::var("B", 8, 5);
        let algs = enumerate_expr_algorithms(&l.t().mul(b)).unwrap();
        let trmm = algs
            .iter()
            .find(|a| a.kernel_summary() == "trmm")
            .expect("TRMM variant exists for L^T*B");
        match trmm.calls[0].op {
            KernelOp::Trmm {
                side,
                uplo,
                trans,
                m,
                n,
            } => {
                assert_eq!(side, Side::Left);
                assert_eq!(uplo, Uplo::Lower, "the call records the stored triangle");
                assert_eq!(trans, Trans::Yes);
                assert_eq!((m, n), (8, 5));
            }
            ref other => panic!("expected TRMM, got {other}"),
        }
    }

    #[test]
    fn triangular_chain_mixes_trmm_into_every_order() {
        // L*A*B: two merge orders, each with a TRMM and a GEMM realisation of
        // the structured product.
        let l = Expr::tri_var("L", 12, Uplo::Lower);
        let a = Expr::var("A", 12, 9);
        let b = Expr::var("B", 9, 6);
        let algs = enumerate_expr_algorithms(&l.mul(a).mul(b)).unwrap();
        assert_eq!(algs.len(), 4);
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert!(summaries.iter().any(|s| s == "trmm,gemm"));
        assert!(summaries.iter().any(|s| s == "gemm,trmm"));
        assert!(summaries.iter().any(|s| s == "gemm,gemm"));
        assert!(algs.iter().all(Algorithm::is_well_formed));
    }

    #[test]
    fn same_triangle_products_propagate_structure() {
        // L1*L2*B with both lower triangular: the intermediate L1·L2 is
        // itself lower triangular, so the final merge still offers TRMM —
        // including the all-TRMM algorithm.
        let l1 = Expr::tri_var("L1", 10, Uplo::Lower);
        let l2 = Expr::tri_var("L2", 10, Uplo::Lower);
        let b = Expr::var("B", 10, 4);
        let algs = enumerate_expr_algorithms(&l1.mul(l2).mul(b)).unwrap();
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert!(
            summaries.iter().any(|s| s == "trmm,trmm"),
            "expected an all-TRMM algorithm, got {summaries:?}"
        );
        // The propagated TRMM reads the *intermediate* as its triangular
        // operand: its first call is the square 10x10 product.
        let propagated = algs
            .iter()
            .find(|a| a.kernel_summary() == "trmm,trmm")
            .unwrap();
        assert!(matches!(
            propagated.calls[0].op,
            KernelOp::Trmm { m: 10, n: 10, .. }
        ));
        let m1 = propagated.operand(propagated.calls[1].inputs[0]).unwrap();
        assert_eq!(m1.name, "M1");
        assert_eq!(m1.triangle(), Some(Uplo::Lower));

        // Opposite triangles (L·U) do not stay triangular: the merge order
        // that forms the square L·U product first loses the structure, so
        // its second step cannot be a TRMM reading the intermediate.
        let u = Expr::tri_var("U", 10, Uplo::Upper);
        let l1b = Expr::tri_var("L1", 10, Uplo::Lower);
        let algs_lu = enumerate_expr_algorithms(&l1b.mul(u).mul(Expr::var("B", 10, 4))).unwrap();
        for alg in &algs_lu {
            if alg.kernel_summary() == "trmm,trmm" {
                // Legal only as U*B first (n = 4), then L*(U B): both TRMMs
                // read leaf operands, never the square L·U intermediate.
                assert!(matches!(alg.calls[0].op, KernelOp::Trmm { n: 4, .. }));
            }
            let mixed = alg
                .operands
                .iter()
                .find(|o| o.name == "M1" && o.rows == 10 && o.cols == 10);
            if let Some(m1) = mixed {
                assert_eq!(m1.triangle(), None, "L·U must not be marked triangular");
            }
        }
    }

    #[test]
    fn triangular_inverse_lowers_to_trsm() {
        let l = Expr::tri_var("L", 9, Uplo::Lower);
        let b = Expr::var("B", 9, 5);
        let algs = enumerate_expr_algorithms(&l.inv().mul(b)).unwrap();
        assert_eq!(algs.len(), 1, "a solve has exactly one realisation");
        assert_eq!(algs[0].kernel_summary(), "trsm");
        match algs[0].calls[0].op {
            KernelOp::Trsm {
                side,
                uplo,
                trans,
                m,
                n,
            } => {
                assert_eq!(side, Side::Left);
                assert_eq!(uplo, Uplo::Lower);
                assert_eq!(trans, Trans::No);
                assert_eq!((m, n), (9, 5));
            }
            ref other => panic!("expected TRSM, got {other}"),
        }
    }

    #[test]
    fn triangular_right_operand_enumerates_right_trmm_and_gemm() {
        // B*L: the triangle on the right multiplies through the sided TRMM.
        let b = Expr::var("B", 7, 10);
        let l = Expr::tri_var("L", 10, Uplo::Lower);
        let algs = enumerate_expr_algorithms(&b.mul(l)).unwrap();
        assert_eq!(algs.len(), 2);
        assert_eq!(algs[0].kernel_summary(), "trmm");
        assert_eq!(algs[1].kernel_summary(), "gemm");
        match algs[0].calls[0].op {
            KernelOp::Trmm {
                side,
                uplo,
                trans,
                m,
                n,
            } => {
                assert_eq!(side, Side::Right);
                assert_eq!(uplo, Uplo::Lower);
                assert_eq!(trans, Trans::No);
                assert_eq!((m, n), (7, 10));
            }
            ref other => panic!("expected right-side TRMM, got {other}"),
        }
        // The triangle leads the input list (kernel argument order).
        let l_info = algs[0].inputs().find(|o| o.name == "L").unwrap();
        assert_eq!(algs[0].calls[0].inputs[0], l_info.id);
        // n²·m FLOPs: half the GEMM variant.
        assert_eq!(algs[0].flops() * 2, algs[1].flops());
    }

    #[test]
    fn triangular_right_inverse_lowers_to_right_trsm() {
        // B*L^-1 realises directly as one right-side TRSM — never via a
        // transpose round-trip.
        let b = Expr::var("B", 7, 9);
        let l = Expr::tri_var("L", 9, Uplo::Lower);
        let algs = enumerate_expr_algorithms(&b.mul(l.inv())).unwrap();
        assert_eq!(algs.len(), 1, "a right solve has exactly one realisation");
        assert_eq!(algs[0].kernel_summary(), "trsm");
        match algs[0].calls[0].op {
            KernelOp::Trsm {
                side,
                uplo,
                trans,
                m,
                n,
            } => {
                assert_eq!(side, Side::Right);
                assert_eq!(uplo, Uplo::Lower);
                assert_eq!(trans, Trans::No);
                assert_eq!((m, n), (7, 9));
            }
            ref other => panic!("expected right-side TRSM, got {other}"),
        }
        assert!(algs[0].is_well_formed());
        assert_eq!(algs[0].flops(), 9 * 9 * 7);
    }

    #[test]
    fn spd_right_inverse_lowers_to_potrf_and_two_right_trsms() {
        let b = Expr::var("B", 5, 12);
        let s = Expr::spd_var("S", 12);
        let algs = enumerate_expr_algorithms(&b.mul(s.inv())).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(algs[0].kernel_summary(), "potrf,trsm,trsm");
        assert!(algs[0].is_well_formed());
        // B·S⁻¹ = (B·L⁻ᵀ)·L⁻¹: transposed solve first, then plain.
        match (&algs[0].calls[1].op, &algs[0].calls[2].op) {
            (
                KernelOp::Trsm {
                    side: Side::Right,
                    trans: Trans::Yes,
                    ..
                },
                KernelOp::Trsm {
                    side: Side::Right,
                    trans: Trans::No,
                    ..
                },
            ) => {}
            other => panic!("expected two right-side TRSMs, got {other:?}"),
        }
        // Same FLOP model as the left-side solve: n³/3 + 2·n²·m.
        assert_eq!(algs[0].flops(), 12u64.pow(3) / 3 + 2 * 12 * 12 * 5);
        assert_eq!(algs[0].output().unwrap().name, "X");
    }

    #[test]
    fn general_right_inverse_lowers_to_the_mirrored_lu_realisation() {
        let b = Expr::var("B", 5, 12);
        let a = Expr::var("A", 12, 12);
        let algs = enumerate_expr_algorithms(&b.mul(a.inv())).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(
            algs[0].kernel_summary(),
            "getrf,factortri,factortri,trsm,trsm,laswp"
        );
        assert!(algs[0].is_well_formed());
        // B·A⁻¹ = ((B·U⁻¹)·L⁻¹)·P: upper solve, lower solve, column pivots
        // last.
        match (&algs[0].calls[3].op, &algs[0].calls[4].op) {
            (
                KernelOp::Trsm {
                    side: Side::Right,
                    uplo: Uplo::Upper,
                    ..
                },
                KernelOp::Trsm {
                    side: Side::Right,
                    uplo: Uplo::Lower,
                    ..
                },
            ) => {}
            other => panic!("expected upper then lower right TRSM, got {other:?}"),
        }
        match algs[0].calls[5].op {
            KernelOp::PivotApply { side, m, n } => {
                assert_eq!(side, Side::Right);
                assert_eq!((m, n), (5, 12));
            }
            ref other => panic!("expected right-side pivot application, got {other}"),
        }
        assert_eq!(algs[0].flops(), 2 * 12u64.pow(3) / 3 + 2 * 12 * 12 * 5);
        assert_eq!(algs[0].output().unwrap().name, "X");
    }

    #[test]
    fn right_solve_chains_enumerate_competing_orders() {
        // A*B*L^-1: multiply-then-solve versus solve-then-multiply, the
        // right-side mirror of the left solve chain test.
        let a = Expr::var("A", 6, 8);
        let b = Expr::var("B", 8, 10);
        let l = Expr::tri_var("L", 10, Uplo::Upper);
        let algs = enumerate_expr_algorithms(&a.mul(b).mul(l.inv())).unwrap();
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert!(summaries.iter().any(|s| s == "gemm,trsm"));
        assert!(summaries.iter().any(|s| s == "trsm,gemm"));
        assert!(algs.iter().all(Algorithm::is_well_formed));
    }

    #[test]
    fn top_k_pruning_agrees_with_full_enumeration_on_right_side_chains() {
        // The admissibility of the rightmost-segment structured discount:
        // pruned enumeration must return exactly the cheapest algorithms.
        let a = Expr::var("A", 18, 14);
        let b = Expr::var("B", 14, 40);
        let l = Expr::tri_var("L", 40, Uplo::Lower);
        let expr = a.mul(b).mul(l.inv());
        let full = enumerate_expr_algorithms(&expr).unwrap();
        let mut flops: Vec<u64> = full.iter().map(Algorithm::flops).collect();
        flops.sort_unstable();
        for k in [1, 2, 3] {
            let opts = EnumerateOptions {
                top_k: Some(k),
                ..EnumerateOptions::default()
            };
            let pruned = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
            let got: Vec<u64> = pruned.iter().map(Algorithm::flops).collect();
            assert_eq!(got, flops[..k.min(flops.len())].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn inverse_in_longer_products_enumerates_both_orders() {
        // L^-1*A*B: solve-then-multiply or multiply-then-solve.
        let l = Expr::tri_var("L", 10, Uplo::Lower);
        let a = Expr::var("A", 10, 8);
        let b = Expr::var("B", 8, 3);
        let algs = enumerate_expr_algorithms(&l.inv().mul(a).mul(b)).unwrap();
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert!(summaries.iter().any(|s| s == "trsm,gemm"));
        assert!(summaries.iter().any(|s| s == "gemm,trsm"));
        assert!(algs.iter().all(Algorithm::is_well_formed));
    }

    #[test]
    fn unrealisable_inverses_are_rejected() {
        // Inverse of a general square operand now realises through LU.
        let a = Expr::var("A", 5, 5);
        let b = Expr::var("B", 5, 3);
        assert!(enumerate_expr_algorithms(&a.clone().inv().mul(b.clone())).is_ok());
        // An inverse on the right of every split realises too, through the
        // right-side TRSM — no longer a dead end.
        let l = Expr::tri_var("L", 3, Uplo::Lower);
        let c = Expr::var("C", 5, 3);
        assert!(enumerate_expr_algorithms(&c.mul(l.clone().inv())).is_ok());
        // A solve whose rectangular partner is transposed everywhere still
        // has no realisation (the sided TRSMs read their rectangular operand
        // as stored).
        let bt = Expr::var("B", 5, 3);
        let err = enumerate_expr_algorithms(&l.clone().inv().mul(bt.t())).unwrap_err();
        assert!(matches!(err, GenerateError::NoRealisation { .. }));
        assert!(err.to_string().contains("solve"));
        // Two inverses meeting in one merge have no realisation either: each
        // solve needs a plain rectangular partner.
        let l5 = Expr::tri_var("L5", 5, Uplo::Lower);
        let m5 = Expr::tri_var("M5", 5, Uplo::Upper);
        assert!(matches!(
            enumerate_expr_algorithms(&l5.inv().mul(m5.inv())),
            Err(GenerateError::NoRealisation { .. })
        ));
        // A bare inverse gets its own diagnosis (not the transpose message).
        let bare = enumerate_expr_algorithms(&l.inv()).unwrap_err();
        assert!(matches!(bare, GenerateError::BareInverse { .. }));
        assert!(bare.to_string().contains("right-hand side"));
    }

    #[test]
    fn general_inverse_lowers_to_getrf_pivot_and_two_trsms() {
        let a = Expr::var("A", 12, 12);
        let b = Expr::var("B", 12, 5);
        let algs = enumerate_expr_algorithms(&a.inv().mul(b)).unwrap();
        assert_eq!(algs.len(), 1, "a general solve has exactly one realisation");
        assert_eq!(
            algs[0].kernel_summary(),
            "getrf,factortri,factortri,laswp,trsm,trsm"
        );
        assert!(algs[0].is_well_formed());
        match algs[0].calls[0].op {
            KernelOp::Getrf { n } => assert_eq!(n, 12),
            ref other => panic!("expected GETRF, got {other}"),
        }
        // The packed factor feeds both triangle extractions and the pivot
        // application; the extracted triangles feed the two solves.
        let f = algs[0].operand(algs[0].calls[0].output).unwrap();
        assert_eq!((f.rows, f.cols), (12, 13), "packed L\\U with pivot column");
        assert!(algs[0].calls[1].reads(f.id));
        assert!(algs[0].calls[2].reads(f.id));
        assert!(algs[0].calls[3].reads(f.id));
        let l = algs[0].operand(algs[0].calls[1].output).unwrap();
        let u = algs[0].operand(algs[0].calls[2].output).unwrap();
        assert_eq!(l.triangle(), Some(Uplo::Lower));
        assert_eq!(u.triangle(), Some(Uplo::Upper));
        match (&algs[0].calls[4].op, &algs[0].calls[5].op) {
            (
                KernelOp::Trsm {
                    uplo: Uplo::Lower,
                    trans: Trans::No,
                    ..
                },
                KernelOp::Trsm {
                    uplo: Uplo::Upper,
                    trans: Trans::No,
                    ..
                },
            ) => {}
            other => panic!("expected lower then upper TRSM, got {other:?}"),
        }
        // FLOPs follow the 2·n³/3 + 2·n²·m model (triangle extraction and
        // pivot application are zero-FLOP data movement).
        assert_eq!(
            algs[0].flops(),
            2 * 12u64.pow(3) / 3 + 2 * 12 * 12 * 5,
            "{}",
            algs[0].name
        );
        assert_eq!(algs[0].output().unwrap().name, "X");
    }

    #[test]
    fn pseudo_inverse_lowers_to_qr_ormqr_and_a_trsm() {
        let a = Expr::var("A", 15, 6);
        let b = Expr::var("b", 15, 2);
        let algs = enumerate_expr_algorithms(&a.pinv().mul(b)).unwrap();
        assert_eq!(
            algs.len(),
            1,
            "a least-squares solve has exactly one realisation"
        );
        assert_eq!(algs[0].kernel_summary(), "qr,factortri,ormqr,trsm");
        assert!(algs[0].is_well_formed());
        match algs[0].calls[0].op {
            KernelOp::Qr { m, n } => assert_eq!((m, n), (15, 6)),
            ref other => panic!("expected QR, got {other}"),
        }
        let f = algs[0].operand(algs[0].calls[0].output).unwrap();
        assert_eq!((f.rows, f.cols), (15, 7), "packed V\\R with tau column");
        let r = algs[0].operand(algs[0].calls[1].output).unwrap();
        assert_eq!((r.rows, r.cols), (6, 6));
        assert_eq!(r.triangle(), Some(Uplo::Upper));
        match algs[0].calls[2].op {
            KernelOp::Ormqr { m, n, k } => assert_eq!((m, n, k), (15, 6, 2)),
            ref other => panic!("expected ORMQR, got {other}"),
        }
        let out = algs[0].output().unwrap();
        assert_eq!((out.rows, out.cols), (6, 2));
        assert_eq!(out.name, "X");
    }

    #[test]
    fn unrealisable_pseudo_inverses_are_diagnosed() {
        // Wide operands cannot take the QR realisation.
        let wide = Expr::var("A", 3, 8);
        let b = Expr::var("b", 3, 1);
        let err = enumerate_expr_algorithms(&wide.pinv().mul(b.clone())).unwrap_err();
        assert!(matches!(err, GenerateError::PseudoInverseWide { .. }));
        assert!(err.to_string().contains("rows"));
        // A bare pseudo-inverse has no right-hand side.
        let a = Expr::var("A", 8, 3);
        let bare = enumerate_expr_algorithms(&a.clone().pinv()).unwrap_err();
        assert!(matches!(bare, GenerateError::BarePseudoInverse { .. }));
        // A transposed pseudo-inverse has no kernel (QR carries no
        // transposition flag): (A^T)^+ for a tall A is a wide pinv...
        let tall_t = enumerate_expr_algorithms(&a.clone().t().pinv().mul(Expr::var("c", 3, 1)));
        assert!(matches!(
            tall_t,
            Err(GenerateError::PseudoInverseWide { .. })
        ));
        // ...while (A^+)^-1 mixes the two solve flavours.
        let sq = Expr::var("S", 4, 4);
        let mixed = enumerate_expr_algorithms(&sq.pinv().inv().mul(Expr::var("d", 4, 1)));
        assert!(matches!(
            mixed,
            Err(GenerateError::InversePseudoInverseMix { .. })
        ));
        // A pseudo-inverse on the right of every split has no realisation.
        let c = Expr::var("C", 2, 3);
        assert!(matches!(
            enumerate_expr_algorithms(&c.mul(Expr::var("A", 8, 3).pinv())),
            Err(GenerateError::NoRealisation { .. })
        ));
    }

    #[test]
    fn general_solve_chains_enumerate_competing_orders() {
        // A^-1*B*C: solve-then-multiply versus multiply-then-solve, the LU
        // mirror of the SPD chain test.
        let a = Expr::var("A", 10, 10);
        let b = Expr::var("B", 10, 8);
        let c = Expr::var("C", 8, 3);
        let algs = enumerate_expr_algorithms(&a.inv().mul(b).mul(c)).unwrap();
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert!(
            summaries
                .iter()
                .any(|s| s == "getrf,factortri,factortri,laswp,trsm,trsm,gemm"),
            "solve first: {summaries:?}"
        );
        assert!(
            summaries
                .iter()
                .any(|s| s == "gemm,getrf,factortri,factortri,laswp,trsm,trsm"),
            "multiply first: {summaries:?}"
        );
        assert!(algs.iter().all(Algorithm::is_well_formed));
        let flops: Vec<u64> = algs.iter().map(Algorithm::flops).collect();
        assert_ne!(flops[0], flops[1]);
    }

    #[test]
    fn non_square_leaf_under_a_distributed_inverse_is_rejected() {
        // (A·B)^-1 is square as a product, but flattening pushes the inverse
        // onto the non-square leaves — which no factorisation kernel takes.
        let a = Expr::var("A", 4, 7);
        let b = Expr::var("B", 7, 4);
        let rhs = Expr::var("C", 4, 2);
        assert!(matches!(
            enumerate_expr_algorithms(&a.mul(b).inv().mul(rhs)),
            Err(GenerateError::Shape(ShapeError::InverseNotSquare { .. }))
        ));
    }

    #[test]
    fn spd_inverse_lowers_to_potrf_and_two_trsms() {
        let s = Expr::spd_var("S", 12);
        let b = Expr::var("B", 12, 5);
        let algs = enumerate_expr_algorithms(&s.inv().mul(b)).unwrap();
        assert_eq!(algs.len(), 1, "an SPD solve has exactly one realisation");
        assert_eq!(algs[0].kernel_summary(), "potrf,trsm,trsm");
        assert!(algs[0].is_well_formed());
        // The call sequence: factor S, forward solve, backward solve.
        match algs[0].calls[0].op {
            KernelOp::Potrf { uplo, n } => {
                assert_eq!(uplo, Uplo::Lower);
                assert_eq!(n, 12);
            }
            ref other => panic!("expected POTRF, got {other}"),
        }
        match (&algs[0].calls[1].op, &algs[0].calls[2].op) {
            (
                KernelOp::Trsm {
                    trans: Trans::No, ..
                },
                KernelOp::Trsm {
                    trans: Trans::Yes, ..
                },
            ) => {}
            other => panic!("expected forward then backward TRSM, got {other:?}"),
        }
        // The factor intermediate is declared triangular, and both solves
        // read it.
        let l = algs[0].operand(algs[0].calls[0].output).unwrap();
        assert_eq!(l.triangle(), Some(Uplo::Lower));
        assert!(algs[0].calls[1].reads(l.id));
        assert!(algs[0].calls[2].reads(l.id));
        // FLOPs follow the n³/3 + 2·n²·m model.
        assert_eq!(algs[0].flops(), 12u64.pow(3) / 3 + 2 * 12 * 12 * 5);
        // The output is the last intermediate, named X.
        assert_eq!(algs[0].output().unwrap().name, "X");
    }

    #[test]
    fn spd_solve_chains_enumerate_competing_orders() {
        // S^-1*B*C: solve-then-multiply versus multiply-then-solve — the
        // competing realisations the SPD family contributes.
        let s = Expr::spd_var("S", 10);
        let b = Expr::var("B", 10, 8);
        let c = Expr::var("C", 8, 3);
        let algs = enumerate_expr_algorithms(&s.inv().mul(b).mul(c)).unwrap();
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert!(
            summaries.iter().any(|s| s == "potrf,trsm,trsm,gemm"),
            "solve first: {summaries:?}"
        );
        assert!(
            summaries.iter().any(|s| s == "gemm,potrf,trsm,trsm"),
            "multiply first: {summaries:?}"
        );
        assert!(algs.iter().all(Algorithm::is_well_formed));
        // The two orders have different FLOP counts (3 versus 8 right-hand
        // sides for the solve), so FLOP-based selection has a real choice.
        let flops: Vec<u64> = algs.iter().map(Algorithm::flops).collect();
        assert_ne!(flops[0], flops[1]);
    }

    #[test]
    fn plain_spd_products_offer_symm_and_gemm() {
        let s = Expr::spd_var("S", 9);
        let b = Expr::var("B", 9, 4);
        let algs = enumerate_expr_algorithms(&s.mul(b)).unwrap();
        let summaries: Vec<String> = algs.iter().map(Algorithm::kernel_summary).collect();
        assert_eq!(summaries, vec!["symm", "gemm"]);
        // Equal FLOPs: SYMM on a full-stored symmetric operand saves time at
        // large orders, not operations.
        assert_eq!(algs[0].flops(), algs[1].flops());
        // The SPD input is declared in the operand table.
        let s_info = algs[0].inputs().find(|o| o.name == "S").unwrap();
        assert!(s_info.structure.is_spd());
    }

    #[test]
    fn spd_inverse_without_right_hand_side_is_rejected() {
        let s = Expr::spd_var("S", 6);
        // Bare inverse.
        assert!(matches!(
            enumerate_expr_algorithms(&s.clone().inv()),
            Err(GenerateError::BareInverse { .. })
        ));
        // An SPD inverse on the right of every split realises now, through
        // POTRF and two right-side TRSMs.
        let a = Expr::var("A", 4, 6);
        let algs = enumerate_expr_algorithms(&a.mul(s.inv())).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(algs[0].kernel_summary(), "potrf,trsm,trsm");
    }

    #[test]
    fn top_k_pruning_agrees_with_full_enumeration_on_spd_solve_chains() {
        let s = Expr::spd_var("S", 30);
        let b = Expr::var("B", 30, 14);
        let c = Expr::var("C", 14, 22);
        let expr = s.inv().mul(b).mul(c);
        let full = enumerate_expr_algorithms(&expr).unwrap();
        let mut flops: Vec<u64> = full.iter().map(Algorithm::flops).collect();
        flops.sort_unstable();
        for k in [1, 2] {
            let opts = EnumerateOptions {
                top_k: Some(k),
                ..EnumerateOptions::default()
            };
            let pruned = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
            let got: Vec<u64> = pruned.iter().map(Algorithm::flops).collect();
            assert_eq!(got, flops[..k].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn cholesky_gram_product_stays_on_syrk() {
        // L*L^T (the Cholesky reconstruction) enumerates through the Gram
        // rule: SYRK-based first, GEMM second — not through TRMM.
        let l = Expr::tri_var("L", 7, Uplo::Lower);
        let algs = enumerate_expr_algorithms(&l.clone().mul(l.t())).unwrap();
        assert_eq!(algs[0].kernel_summary(), "syrk,copy");
        assert_eq!(algs[1].kernel_summary(), "gemm");
    }

    #[test]
    fn top_k_pruning_agrees_with_full_enumeration_on_triangular_chains() {
        let l = Expr::tri_var("L", 40, Uplo::Lower);
        let a = Expr::var("A", 40, 12);
        let b = Expr::var("B", 12, 30);
        let expr = l.mul(a).mul(b);
        let full = enumerate_expr_algorithms(&expr).unwrap();
        let mut flops: Vec<u64> = full.iter().map(Algorithm::flops).collect();
        flops.sort_unstable();
        for k in [1, 2, 3] {
            let opts = EnumerateOptions {
                top_k: Some(k),
                ..EnumerateOptions::default()
            };
            let pruned = enumerate_expr_algorithms_with(&expr, &opts).unwrap();
            let got: Vec<u64> = pruned.iter().map(Algorithm::flops).collect();
            assert_eq!(got, flops[..k].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn lower_bound_matches_the_chain_dp_on_plain_chains() {
        use crate::chain::optimal_chain_order;
        let dims = [30, 35, 15, 5, 10, 20, 25];
        let expr = chain_expr(&dims);
        let factors = expr.factors();
        let inputs = distinct_inputs(&factors).unwrap();
        let segments: Vec<Segment> = factors
            .iter()
            .enumerate()
            .map(|(pos, f)| Segment {
                id: OperandId(pos),
                rows: f.var.rows,
                cols: f.var.cols,
                trans: Trans::No,
                leaf: Some(pos),
                storage: Storage::General,
                tri: None,
                spd: false,
                inv: false,
                pinv: false,
                start: pos,
                end: pos + 1,
                text: f.var.name.clone(),
                name: f.var.name.clone(),
            })
            .collect();
        let _ = inputs;
        let mut memo = HashMap::new();
        let lb = lower_bound(&mut memo, &segments);
        let (dp, _) = optimal_chain_order(&dims).unwrap();
        assert_eq!(lb, dp);
        // The memo caches the full-range entry.
        assert!(memo.len() == 1);
    }
}
