//! A small symbolic expression AST for matrix products.
//!
//! This is the front end of the mini-LAMP pipeline: users (and the examples)
//! write an expression tree such as `A * Aᵀ * B`, the
//! [`generator`](crate::generator) recognises which algorithm family applies,
//! and the enumerators produce the candidate algorithm set.

use std::fmt;

/// Errors produced by shape inference over expression trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Two factors cannot be multiplied because the inner dimensions differ.
    IncompatibleProduct {
        /// Shape of the left factor.
        left: (usize, usize),
        /// Shape of the right factor.
        right: (usize, usize),
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::IncompatibleProduct { left, right } => write!(
                f,
                "cannot multiply a {}x{} matrix by a {}x{} matrix",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A named symbolic matrix operand with a concrete shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Var {
    /// Operand name, e.g. `"A"`.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

/// A symbolic matrix expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A leaf operand.
    Operand(Var),
    /// The transpose of a sub-expression.
    Transpose(Box<Expr>),
    /// The product of two sub-expressions.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Create a leaf operand.
    #[must_use]
    pub fn var(name: &str, rows: usize, cols: usize) -> Expr {
        Expr::Operand(Var {
            name: name.to_string(),
            rows,
            cols,
        })
    }

    /// Transpose this expression.
    #[must_use]
    pub fn t(self) -> Expr {
        Expr::Transpose(Box::new(self))
    }

    /// Multiply this expression by `rhs`.
    // Not `std::ops::Mul`: builders chain more readably as `a.mul(b).mul(c)`
    // and the operator form would force reference gymnastics on `Box`ed trees.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Build the product of a sequence of expressions, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty.
    #[must_use]
    pub fn product(factors: Vec<Expr>) -> Expr {
        let mut it = factors.into_iter();
        let first = it.next().expect("product of at least one factor");
        it.fold(first, |acc, x| acc.mul(x))
    }

    /// Infer the shape of the expression.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if a product has mismatched inner dimensions.
    pub fn shape(&self) -> Result<(usize, usize), ShapeError> {
        match self {
            Expr::Operand(v) => Ok((v.rows, v.cols)),
            Expr::Transpose(inner) => {
                let (r, c) = inner.shape()?;
                Ok((c, r))
            }
            Expr::Mul(l, r) => {
                let ls = l.shape()?;
                let rs = r.shape()?;
                if ls.1 != rs.0 {
                    return Err(ShapeError::IncompatibleProduct {
                        left: ls,
                        right: rs,
                    });
                }
                Ok((ls.0, rs.1))
            }
        }
    }

    /// Flatten the expression into an ordered list of product factors,
    /// pushing transposes down to the leaves where possible
    /// (`(X·Y)ᵀ = Yᵀ·Xᵀ`). Each factor is reported as `(Var, transposed)`.
    ///
    /// Returns `None` if a transpose is applied to something other than a
    /// leaf or a product (cannot happen with the current AST) or if the tree
    /// contains nested transposes that do not cancel; in practice this always
    /// succeeds and the `Option` simply mirrors future extensibility.
    #[must_use]
    pub fn factors(&self) -> Vec<(Var, bool)> {
        fn go(e: &Expr, transposed: bool, out: &mut Vec<(Var, bool)>) {
            match e {
                Expr::Operand(v) => out.push((v.clone(), transposed)),
                Expr::Transpose(inner) => go(inner, !transposed, out),
                Expr::Mul(l, r) => {
                    if transposed {
                        // (L·R)^T = R^T · L^T
                        go(r, true, out);
                        go(l, true, out);
                    } else {
                        go(l, false, out);
                        go(r, false, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, false, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Operand(v) => write!(f, "{}", v.name),
            Expr::Transpose(inner) => write!(f, "{inner}^T"),
            Expr::Mul(l, r) => write!(f, "({l} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_for_products_and_transposes() {
        let a = Expr::var("A", 3, 4);
        let b = Expr::var("B", 4, 5);
        let ab = a.clone().mul(b);
        assert_eq!(ab.shape().unwrap(), (3, 5));
        assert_eq!(a.clone().t().shape().unwrap(), (4, 3));
        let aat = a.clone().mul(a.t());
        assert_eq!(aat.shape().unwrap(), (3, 3));
    }

    #[test]
    fn incompatible_product_is_an_error() {
        let a = Expr::var("A", 3, 4);
        let b = Expr::var("B", 5, 6);
        let err = a.mul(b).shape().unwrap_err();
        assert!(err.to_string().contains("3x4"));
        assert!(err.to_string().contains("5x6"));
    }

    #[test]
    fn product_builder_associates_left() {
        let factors = vec![
            Expr::var("A", 2, 3),
            Expr::var("B", 3, 4),
            Expr::var("C", 4, 5),
        ];
        let p = Expr::product(factors);
        assert_eq!(p.shape().unwrap(), (2, 5));
        assert_eq!(p.to_string(), "((A B) C)");
    }

    #[test]
    fn factors_flatten_plain_chain() {
        let p = Expr::product(vec![
            Expr::var("A", 2, 3),
            Expr::var("B", 3, 4),
            Expr::var("C", 4, 5),
        ]);
        let fs = p.factors();
        let names: Vec<_> = fs.iter().map(|(v, t)| (v.name.as_str(), *t)).collect();
        assert_eq!(names, vec![("A", false), ("B", false), ("C", false)]);
    }

    #[test]
    fn factors_push_transpose_to_leaves() {
        // (A B)^T = B^T A^T.
        let a = Expr::var("A", 2, 3);
        let b = Expr::var("B", 3, 4);
        let expr = a.mul(b).t();
        let fs = expr.factors();
        let names: Vec<_> = fs.iter().map(|(v, t)| (v.name.as_str(), *t)).collect();
        assert_eq!(names, vec![("B", true), ("A", true)]);
    }

    #[test]
    fn double_transpose_cancels_in_factors() {
        let a = Expr::var("A", 2, 3);
        let expr = a.t().t();
        let fs = expr.factors();
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].1);
    }

    #[test]
    fn display_is_parenthesised() {
        let a = Expr::var("A", 2, 3);
        let b = Expr::var("B", 3, 2);
        assert_eq!(a.clone().mul(b).t().to_string(), "(A B)^T");
    }
}
