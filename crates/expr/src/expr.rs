//! A small symbolic expression AST for matrix products.
//!
//! This is the front end of the mini-LAMP pipeline: users (and the examples)
//! write an expression tree such as `A * Aᵀ * B` or `L⁻¹ * B` with `L`
//! triangular, the [`generator`](crate::generator) recognises which algorithm
//! family applies, and the enumerators produce the candidate algorithm set.

use lamb_matrix::{Structure, Trans, Uplo};
use std::fmt;

/// Errors produced by shape inference over expression trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Two factors cannot be multiplied because the inner dimensions differ.
    IncompatibleProduct {
        /// Shape of the left factor.
        left: (usize, usize),
        /// Shape of the right factor.
        right: (usize, usize),
    },
    /// An inverse was applied to a non-square sub-expression.
    InverseNotSquare {
        /// Shape of the inverted sub-expression.
        shape: (usize, usize),
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::IncompatibleProduct { left, right } => write!(
                f,
                "cannot multiply a {}x{} matrix by a {}x{} matrix",
                left.0, left.1, right.0, right.1
            ),
            ShapeError::InverseNotSquare { shape } => write!(
                f,
                "cannot invert a non-square {}x{} matrix",
                shape.0, shape.1
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A named symbolic matrix operand with a concrete shape and (optionally)
/// known structure — triangular or symmetric positive definite.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Var {
    /// Operand name, e.g. `"A"`.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Declared structure of the operand: [`Structure::Triangular`] operands
    /// store one triangle (the opposite one is structurally zero) and unlock
    /// TRMM/TRSM; [`Structure::Spd`] operands are symmetric positive
    /// definite, stored in full, and unlock SYMM and the Cholesky (POTRF)
    /// realisation of their inverses. Structured operands are necessarily
    /// square.
    pub structure: Structure,
}

impl Var {
    /// The stored triangle when the operand is triangular.
    #[must_use]
    pub fn triangle(&self) -> Option<Uplo> {
        self.structure.triangle()
    }
}

/// One factor of a flattened product: a leaf with its accumulated
/// transposition, inversion and pseudo-inversion flags (see
/// [`Expr::factors`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factor {
    /// The leaf operand.
    pub var: Var,
    /// Whether the leaf is used transposed.
    pub trans: bool,
    /// Whether the leaf is used inverted: triangular leaves lower to TRSM,
    /// SPD leaves to POTRF plus two TRSMs, and general square leaves to the
    /// pivoted LU realisation (GETRF, pivot application, two TRSMs).
    pub inv: bool,
    /// Whether the leaf is used pseudo-inverted (`A⁺`, the least-squares
    /// solve operator); realised through the QR factorisation for tall
    /// (`rows >= cols`) leaves.
    pub pinv: bool,
}

impl Factor {
    /// The triangle the factor effectively occupies after transposition
    /// (`None` for general and SPD leaves). Inversion preserves
    /// triangularity, so `L⁻¹` of a lower-triangular `L` is still effectively
    /// lower.
    #[must_use]
    pub fn effective_triangle(&self) -> Option<Uplo> {
        let trans = if self.trans { Trans::Yes } else { Trans::No };
        self.var.triangle().map(|u| u.under(trans))
    }
}

/// A symbolic matrix expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A leaf operand.
    Operand(Var),
    /// The transpose of a sub-expression.
    Transpose(Box<Expr>),
    /// The inverse of a sub-expression (realisable by kernels when it lands
    /// on a leaf: TRSM for triangular leaves, a Cholesky factorisation plus
    /// two TRSMs for SPD leaves, and a pivoted LU factorisation for general
    /// square leaves).
    Inverse(Box<Expr>),
    /// The Moore–Penrose pseudo-inverse of a sub-expression: `A⁺·b` is the
    /// least-squares solution `argmin‖A·x − b‖₂`, realised through a
    /// Householder QR factorisation when it lands on a tall leaf.
    PseudoInverse(Box<Expr>),
    /// The product of two sub-expressions.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Create a leaf operand.
    #[must_use]
    pub fn var(name: &str, rows: usize, cols: usize) -> Expr {
        Expr::Operand(Var {
            name: name.to_string(),
            rows,
            cols,
            structure: Structure::General,
        })
    }

    /// Create a square, triangular leaf operand storing the `uplo` triangle.
    #[must_use]
    pub fn tri_var(name: &str, n: usize, uplo: Uplo) -> Expr {
        Expr::Operand(Var {
            name: name.to_string(),
            rows: n,
            cols: n,
            structure: Structure::Triangular(uplo),
        })
    }

    /// Create a square, symmetric positive-definite leaf operand (stored in
    /// full). SPD structure unlocks the SYMM rewrite for plain products and
    /// the Cholesky realisation (`POTRF` + two `TRSM`s) of `S⁻¹·B`.
    #[must_use]
    pub fn spd_var(name: &str, n: usize) -> Expr {
        Expr::Operand(Var {
            name: name.to_string(),
            rows: n,
            cols: n,
            structure: Structure::Spd,
        })
    }

    /// Transpose this expression.
    #[must_use]
    pub fn t(self) -> Expr {
        Expr::Transpose(Box::new(self))
    }

    /// Invert this expression.
    #[must_use]
    pub fn inv(self) -> Expr {
        Expr::Inverse(Box::new(self))
    }

    /// Pseudo-invert this expression (the least-squares solve operator).
    #[must_use]
    pub fn pinv(self) -> Expr {
        Expr::PseudoInverse(Box::new(self))
    }

    /// Multiply this expression by `rhs`.
    // Not `std::ops::Mul`: builders chain more readably as `a.mul(b).mul(c)`
    // and the operator form would force reference gymnastics on `Box`ed trees.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Build the product of a sequence of expressions, left to right.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty.
    #[must_use]
    pub fn product(factors: Vec<Expr>) -> Expr {
        let mut it = factors.into_iter();
        let first = it.next().expect("product of at least one factor");
        it.fold(first, |acc, x| acc.mul(x))
    }

    /// Infer the shape of the expression.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if a product has mismatched inner dimensions.
    pub fn shape(&self) -> Result<(usize, usize), ShapeError> {
        match self {
            Expr::Operand(v) => Ok((v.rows, v.cols)),
            Expr::Transpose(inner) => {
                let (r, c) = inner.shape()?;
                Ok((c, r))
            }
            Expr::Inverse(inner) => {
                let shape = inner.shape()?;
                if shape.0 != shape.1 {
                    return Err(ShapeError::InverseNotSquare { shape });
                }
                Ok(shape)
            }
            Expr::PseudoInverse(inner) => {
                // A⁺ of an m×n matrix is n×m; no squareness requirement
                // (tallness is a realisability question, not a shape one).
                let (r, c) = inner.shape()?;
                Ok((c, r))
            }
            Expr::Mul(l, r) => {
                let ls = l.shape()?;
                let rs = r.shape()?;
                if ls.1 != rs.0 {
                    return Err(ShapeError::IncompatibleProduct {
                        left: ls,
                        right: rs,
                    });
                }
                Ok((ls.0, rs.1))
            }
        }
    }

    /// Flatten the expression into an ordered list of product [`Factor`]s,
    /// pushing transposes, inverses and pseudo-inverses down to the leaves
    /// where possible: `(X·Y)ᵀ = Yᵀ·Xᵀ`, `(X·Y)⁻¹ = Y⁻¹·X⁻¹` and
    /// `(X·Y)⁺ = Y⁺·X⁺` (the latter under the full-rank assumptions the
    /// whole vocabulary already makes) all reverse the factor order, so the
    /// reversal happens exactly when an odd number of the accumulated flags
    /// is outstanding; nested applications cancel pairwise and commute.
    #[must_use]
    pub fn factors(&self) -> Vec<Factor> {
        fn go(e: &Expr, trans: bool, inv: bool, pinv: bool, out: &mut Vec<Factor>) {
            match e {
                Expr::Operand(v) => out.push(Factor {
                    var: v.clone(),
                    trans,
                    inv,
                    pinv,
                }),
                Expr::Transpose(inner) => go(inner, !trans, inv, pinv, out),
                Expr::Inverse(inner) => go(inner, trans, !inv, pinv, out),
                Expr::PseudoInverse(inner) => go(inner, trans, inv, !pinv, out),
                Expr::Mul(l, r) => {
                    if trans ^ inv ^ pinv {
                        // (L·R)^T = R^T·L^T, (L·R)^-1 = R^-1·L^-1 and
                        // (L·R)^+ = R^+·L^+: an odd number of pending order
                        // reversals is outstanding.
                        go(r, trans, inv, pinv, out);
                        go(l, trans, inv, pinv, out);
                    } else {
                        go(l, trans, inv, pinv, out);
                        go(r, trans, inv, pinv, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, false, false, false, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Operand(v) => write!(f, "{}", v.name),
            Expr::Transpose(inner) => write!(f, "{inner}^T"),
            Expr::Inverse(inner) => write!(f, "{inner}^-1"),
            Expr::PseudoInverse(inner) => write!(f, "{inner}^+"),
            Expr::Mul(l, r) => write!(f, "({l} {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_for_products_and_transposes() {
        let a = Expr::var("A", 3, 4);
        let b = Expr::var("B", 4, 5);
        let ab = a.clone().mul(b);
        assert_eq!(ab.shape().unwrap(), (3, 5));
        assert_eq!(a.clone().t().shape().unwrap(), (4, 3));
        let aat = a.clone().mul(a.t());
        assert_eq!(aat.shape().unwrap(), (3, 3));
    }

    #[test]
    fn incompatible_product_is_an_error() {
        let a = Expr::var("A", 3, 4);
        let b = Expr::var("B", 5, 6);
        let err = a.mul(b).shape().unwrap_err();
        assert!(err.to_string().contains("3x4"));
        assert!(err.to_string().contains("5x6"));
    }

    #[test]
    fn product_builder_associates_left() {
        let factors = vec![
            Expr::var("A", 2, 3),
            Expr::var("B", 3, 4),
            Expr::var("C", 4, 5),
        ];
        let p = Expr::product(factors);
        assert_eq!(p.shape().unwrap(), (2, 5));
        assert_eq!(p.to_string(), "((A B) C)");
    }

    #[test]
    fn factors_flatten_plain_chain() {
        let p = Expr::product(vec![
            Expr::var("A", 2, 3),
            Expr::var("B", 3, 4),
            Expr::var("C", 4, 5),
        ]);
        let fs = p.factors();
        let names: Vec<_> = fs.iter().map(|f| (f.var.name.as_str(), f.trans)).collect();
        assert_eq!(names, vec![("A", false), ("B", false), ("C", false)]);
        assert!(fs.iter().all(|f| !f.inv));
    }

    #[test]
    fn factors_push_transpose_to_leaves() {
        // (A B)^T = B^T A^T.
        let a = Expr::var("A", 2, 3);
        let b = Expr::var("B", 3, 4);
        let expr = a.mul(b).t();
        let fs = expr.factors();
        let names: Vec<_> = fs.iter().map(|f| (f.var.name.as_str(), f.trans)).collect();
        assert_eq!(names, vec![("B", true), ("A", true)]);
    }

    #[test]
    fn double_transpose_cancels_in_factors() {
        let a = Expr::var("A", 2, 3);
        let expr = a.t().t();
        let fs = expr.factors();
        assert_eq!(fs.len(), 1);
        assert!(!fs[0].trans);
    }

    #[test]
    fn factors_push_inverse_to_leaves() {
        use lamb_matrix::Uplo;
        // (L U)^-1 = U^-1 L^-1.
        let l = Expr::tri_var("L", 4, Uplo::Lower);
        let u = Expr::tri_var("U", 4, Uplo::Upper);
        let fs = l.clone().mul(u.clone()).inv().factors();
        let names: Vec<_> = fs.iter().map(|f| (f.var.name.as_str(), f.inv)).collect();
        assert_eq!(names, vec![("U", true), ("L", true)]);
        // ((L U)^T)^-1 = L^-T U^-T: both reversals cancel.
        let fs2 = l.clone().mul(u).t().inv().factors();
        let names2: Vec<_> = fs2
            .iter()
            .map(|f| (f.var.name.as_str(), f.trans, f.inv))
            .collect();
        assert_eq!(names2, vec![("L", true, true), ("U", true, true)]);
        // Double inverse cancels.
        let fs3 = l.inv().inv().factors();
        assert!(!fs3[0].inv);
    }

    #[test]
    fn effective_triangle_follows_transposition() {
        use lamb_matrix::Uplo;
        let fs = Expr::tri_var("L", 3, Uplo::Lower).t().factors();
        assert_eq!(fs[0].effective_triangle(), Some(Uplo::Upper));
        assert_eq!(fs[0].var.triangle(), Some(Uplo::Lower));
        let plain = Expr::var("A", 3, 3).factors();
        assert_eq!(plain[0].effective_triangle(), None);
    }

    #[test]
    fn spd_vars_are_square_symmetric_and_transpose_invariant() {
        let s = Expr::spd_var("S", 6);
        assert_eq!(s.shape().unwrap(), (6, 6));
        let fs = s.clone().factors();
        assert_eq!(fs[0].var.structure, Structure::Spd);
        assert_eq!(fs[0].effective_triangle(), None, "SPD is not triangular");
        // The transpose of an SPD operand is still SPD (and still square).
        let ft = s.clone().t().factors();
        assert_eq!(ft[0].var.structure.under(Trans::Yes), Structure::Spd);
        // S^-1 keeps the structure on the flattened factor.
        let fi = s.inv().factors();
        assert!(fi[0].inv);
        assert_eq!(fi[0].var.structure, Structure::Spd);
    }

    #[test]
    fn inverse_shape_requires_square() {
        use lamb_matrix::Uplo;
        let l = Expr::tri_var("L", 5, Uplo::Lower);
        assert_eq!(l.clone().inv().shape().unwrap(), (5, 5));
        let a = Expr::var("A", 3, 4);
        let err = a.inv().shape().unwrap_err();
        assert!(err.to_string().contains("3x4"));
    }

    #[test]
    fn pseudo_inverse_swaps_the_shape_and_flattens_to_a_flag() {
        let a = Expr::var("A", 7, 3);
        assert_eq!(a.clone().pinv().shape().unwrap(), (3, 7));
        let b = Expr::var("b", 7, 1);
        let expr = a.clone().pinv().mul(b);
        assert_eq!(expr.shape().unwrap(), (3, 1));
        let fs = expr.factors();
        assert!(fs[0].pinv && !fs[0].inv && !fs[0].trans);
        assert!(!fs[1].pinv);
        // (A^T)^+ swaps twice; (A^+)^+ cancels (full-rank assumption).
        let ft = a.clone().t().pinv().factors();
        assert!(ft[0].pinv && ft[0].trans);
        let fc = a.clone().pinv().pinv().factors();
        assert!(!fc[0].pinv);
        // (X·Y)^+ reverses the factor order like transpose and inverse.
        let x = Expr::var("X", 5, 4);
        let y = Expr::var("Y", 4, 2);
        let fm = x.mul(y).pinv().factors();
        let names: Vec<_> = fm.iter().map(|f| (f.var.name.as_str(), f.pinv)).collect();
        assert_eq!(names, vec![("Y", true), ("X", true)]);
        assert_eq!(a.pinv().to_string(), "A^+");
    }

    #[test]
    fn display_is_parenthesised() {
        let a = Expr::var("A", 2, 3);
        let b = Expr::var("B", 3, 2);
        assert_eq!(a.clone().mul(b).t().to_string(), "(A B)^T");
        assert_eq!(
            Expr::tri_var("L", 2, lamb_matrix::Uplo::Lower)
                .inv()
                .to_string(),
            "L^-1"
        );
    }
}
