//! The [`Expression`] abstraction used by the experiment drivers.
//!
//! An expression (matrix chain, `A·Aᵀ·B`, ...) defines a *problem-instance
//! space*: every instance is a tuple of dimension sizes, and for each instance
//! the expression enumerates its set of mathematically equivalent algorithms.
//! This is exactly the structure the paper's three experiments operate on.

use crate::algorithm::Algorithm;

/// A linear-algebra expression whose instances are dimension-size tuples.
pub trait Expression: Send + Sync {
    /// Human-readable name, e.g. `"matrix chain ABCD"`.
    fn name(&self) -> String;

    /// Number of dimension sizes that specify one instance
    /// (5 for `A·B·C·D`: `d0..d4`; 3 for `A·Aᵀ·B`: `d0..d2`).
    fn num_dims(&self) -> usize;

    /// Enumerate the mathematically equivalent algorithms for the instance
    /// `dims` (whose length must equal [`Expression::num_dims`]).
    fn algorithms(&self, dims: &[usize]) -> Vec<Algorithm>;

    /// Labels of the dimensions (`d0`, `d1`, ...). The defaults match the
    /// notation of the paper.
    fn dim_labels(&self) -> Vec<String> {
        (0..self.num_dims()).map(|i| format!("d{i}")).collect()
    }

    /// The minimum FLOP count over all algorithms for this instance.
    fn min_flops(&self, dims: &[usize]) -> u64 {
        self.algorithms(dims)
            .iter()
            .map(Algorithm::flops)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aatb::AatbExpression;
    use crate::chain::MatrixChainExpression;

    #[test]
    fn dim_labels_follow_paper_notation() {
        let chain = MatrixChainExpression::abcd();
        assert_eq!(chain.dim_labels(), vec!["d0", "d1", "d2", "d3", "d4"]);
        let aatb = AatbExpression::new();
        assert_eq!(aatb.dim_labels(), vec!["d0", "d1", "d2"]);
    }

    #[test]
    fn min_flops_is_a_lower_bound_over_algorithms() {
        let chain = MatrixChainExpression::abcd();
        let dims = [200, 30, 400, 50, 600];
        let min = chain.min_flops(&dims);
        for alg in chain.algorithms(&dims) {
            assert!(alg.flops() >= min);
        }
    }

    #[test]
    fn expressions_are_object_safe() {
        let exprs: Vec<Box<dyn Expression>> = vec![
            Box::new(MatrixChainExpression::abcd()),
            Box::new(AatbExpression::new()),
        ];
        let counts: Vec<usize> = exprs
            .iter()
            .map(|e| {
                let dims = vec![16; e.num_dims()];
                e.algorithms(&dims).len()
            })
            .collect();
        assert_eq!(counts, vec![6, 5]);
    }
}
