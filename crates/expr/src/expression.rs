//! The [`Expression`] abstraction used by the planner and experiment drivers.
//!
//! An expression (matrix chain, `A·Aᵀ·B`, a parsed
//! [`TreeExpression`](crate::parse::TreeExpression), ...) defines a
//! *problem-instance space*: every instance is a tuple of dimension sizes,
//! and for each instance the expression enumerates its set of mathematically
//! equivalent algorithms. This is exactly the structure the paper's three
//! experiments operate on. Since the general enumerator landed, every
//! built-in implementation is a thin adapter that binds the dimension tuple
//! onto an [`Expr`](crate::expr::Expr) tree and runs
//! [`enumerate_expr_algorithms`](crate::enumerate::enumerate_expr_algorithms).

use crate::algorithm::Algorithm;
use crate::generator::GenerateError;

/// A linear-algebra expression whose instances are dimension-size tuples.
pub trait Expression: Send + Sync {
    /// Human-readable name, e.g. `"matrix chain ABCD"`.
    fn name(&self) -> String;

    /// Number of dimension sizes that specify one instance
    /// (5 for `A·B·C·D`: `d0..d4`; 3 for `A·Aᵀ·B`: `d0..d2`).
    fn num_dims(&self) -> usize;

    /// Enumerate the mathematically equivalent algorithms for the instance
    /// `dims` (whose length must equal [`Expression::num_dims`]).
    ///
    /// # Errors
    ///
    /// Returns [`GenerateError`] when the instance admits no valid
    /// enumeration (shape inconsistency, degenerate chain, ...).
    fn algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError>;

    /// Enumerate at most `top_k` algorithms, keeping those with the smallest
    /// FLOP counts (sorted ascending, ties in enumeration order). `None`
    /// enumerates everything in the expression's natural order.
    ///
    /// The default implementation enumerates fully and truncates;
    /// implementations backed by the general enumerator override this with
    /// branch-and-bound pruning so long chains stay tractable.
    ///
    /// # Errors
    ///
    /// See [`Expression::algorithms`].
    fn algorithms_pruned(
        &self,
        dims: &[usize],
        top_k: Option<usize>,
    ) -> Result<Vec<Algorithm>, GenerateError> {
        let mut algorithms = self.algorithms(dims)?;
        if let Some(k) = top_k {
            algorithms.sort_by_key(Algorithm::flops); // stable sort keeps order on ties
            algorithms.truncate(k.max(1));
        }
        Ok(algorithms)
    }

    /// Labels of the dimensions (`d0`, `d1`, ...). The defaults match the
    /// notation of the paper.
    fn dim_labels(&self) -> Vec<String> {
        (0..self.num_dims()).map(|i| format!("d{i}")).collect()
    }

    /// The minimum FLOP count over all algorithms for this instance, or
    /// `None` when enumeration fails or produces no algorithms.
    fn min_flops(&self, dims: &[usize]) -> Option<u64> {
        self.algorithms(dims)
            .ok()?
            .iter()
            .map(Algorithm::flops)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aatb::AatbExpression;
    use crate::chain::MatrixChainExpression;

    #[test]
    fn dim_labels_follow_paper_notation() {
        let chain = MatrixChainExpression::abcd();
        assert_eq!(chain.dim_labels(), vec!["d0", "d1", "d2", "d3", "d4"]);
        let aatb = AatbExpression::new();
        assert_eq!(aatb.dim_labels(), vec!["d0", "d1", "d2"]);
    }

    #[test]
    fn min_flops_is_a_lower_bound_over_algorithms() {
        let chain = MatrixChainExpression::abcd();
        let dims = [200, 30, 400, 50, 600];
        let min = chain.min_flops(&dims).expect("enumeration succeeds");
        for alg in chain.algorithms(&dims).unwrap() {
            assert!(alg.flops() >= min);
        }
    }

    #[test]
    fn min_flops_reports_failures_as_none() {
        struct Broken;
        impl Expression for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn num_dims(&self) -> usize {
                1
            }
            fn algorithms(&self, _dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
                Err(GenerateError::Empty)
            }
        }
        assert_eq!(Broken.min_flops(&[10]), None);

        struct NoAlgorithms;
        impl Expression for NoAlgorithms {
            fn name(&self) -> String {
                "empty set".into()
            }
            fn num_dims(&self) -> usize {
                1
            }
            fn algorithms(&self, _dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
                Ok(Vec::new())
            }
        }
        assert_eq!(NoAlgorithms.min_flops(&[10]), None);
    }

    #[test]
    fn default_pruning_keeps_the_cheapest_algorithms() {
        let chain = MatrixChainExpression::abcd();
        let dims = [100, 20, 300, 20, 500];
        let all = chain.algorithms(&dims).unwrap();
        let mut flops: Vec<u64> = all.iter().map(Algorithm::flops).collect();
        flops.sort_unstable();
        let pruned = chain.algorithms_pruned(&dims, Some(2)).unwrap();
        assert_eq!(pruned.len(), 2);
        assert_eq!(
            pruned.iter().map(Algorithm::flops).collect::<Vec<_>>(),
            flops[..2].to_vec()
        );
        // And `None` keeps everything in natural order.
        let unpruned = chain.algorithms_pruned(&dims, None).unwrap();
        assert_eq!(unpruned.len(), all.len());
    }

    #[test]
    fn expressions_are_object_safe() {
        let exprs: Vec<Box<dyn Expression>> = vec![
            Box::new(MatrixChainExpression::abcd()),
            Box::new(AatbExpression::new()),
        ];
        let counts: Vec<usize> = exprs
            .iter()
            .map(|e| {
                let dims = vec![16; e.num_dims()];
                e.algorithms(&dims).unwrap().len()
            })
            .collect();
        assert_eq!(counts, vec![6, 5]);
    }
}
