//! From expression trees to candidate algorithm sets (the "generate all
//! mathematically equivalent algorithms" step that tools like Linnea perform
//! before selecting one).
//!
//! Enumeration is handled uniformly by the general engine in
//! [`crate::enumerate`]: every multiplication order of the flattened factor
//! list, expanded by the rewrite rules of [`crate::rewrite`] (SYRK for Gram
//! products, SYMM and triangle copies for symmetric intermediates). The
//! pattern classification returned alongside the algorithms is purely
//! informational — it reports which of the paper's studied shapes the
//! expression matches, but no longer decides *how* enumeration happens.

use crate::algorithm::Algorithm;
use crate::enumerate::{enumerate_expr_algorithms_with, EnumerateOptions};
use crate::expr::{Expr, Factor, ShapeError};
use lamb_matrix::Structure;
use std::fmt;

/// Errors produced while generating algorithms from an expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The expression tree contains a shape inconsistency.
    Shape(ShapeError),
    /// The expression has no factors (cannot happen with the public builders).
    Empty,
    /// A matrix chain was described with fewer than two matrices.
    TooFewMatrices {
        /// Length of the offending dimension tuple.
        dims_len: usize,
    },
    /// The same operand name is used with two different shapes.
    InconsistentOperand {
        /// The offending operand name.
        name: String,
    },
    /// The expression is a single transposed operand, which no kernel in the
    /// paper's set can realise (there is no standalone transpose kernel).
    BareTranspose {
        /// The transposed operand's name.
        name: String,
    },
    /// The expression is a single inverted operand; a solve has no
    /// right-hand side to apply the inverse to.
    BareInverse {
        /// The inverted operand's name.
        name: String,
    },
    /// The expression is a single pseudo-inverted operand; a least-squares
    /// solve has no right-hand side to apply the pseudo-inverse to.
    BarePseudoInverse {
        /// The pseudo-inverted operand's name.
        name: String,
    },
    /// A pseudo-inverse was applied to a wide operand; the QR realisation
    /// requires the operand (as used, after transposition) to be tall or
    /// square (`rows >= cols`).
    PseudoInverseWide {
        /// The pseudo-inverted operand's name.
        name: String,
    },
    /// An operand is used as both an inverse and a pseudo-inverse in the
    /// same factor (e.g. `(A^+)^-1`), which no kernel sequence realises.
    InversePseudoInverseMix {
        /// The offending operand's name.
        name: String,
    },
    /// No merge order of the expression reaches a complete kernel sequence.
    /// Inverses realise from either side (left- and right-side solves), so
    /// this now means: a solve's rectangular partner is transposed or
    /// triangle-stored in every order (as in `L^-1 * B^T`), two inverses
    /// meet in every merge (`L^-1 * M^-1`), a general inverse is transposed
    /// (`A^-T` — GETRF carries no transposition flag), or a pseudo-inverse
    /// sits on the right of every split (`b * A^+` — ORMQR applies `Q₁ᵀ`
    /// from the left only).
    NoRealisation {
        /// Display form of the unrealisable expression.
        expression: String,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Shape(e) => write!(f, "shape error: {e}"),
            GenerateError::Empty => write!(f, "expression has no factors"),
            GenerateError::TooFewMatrices { dims_len } => write!(
                f,
                "a matrix chain needs at least two matrices ({dims_len} dims given)"
            ),
            GenerateError::InconsistentOperand { name } => {
                write!(f, "operand `{name}` is used with two different shapes")
            }
            GenerateError::BareTranspose { name } => {
                write!(
                    f,
                    "`{name}^T` alone has no kernel realisation (no standalone transpose kernel)"
                )
            }
            GenerateError::BareInverse { name } => {
                write!(
                    f,
                    "`{name}^-1` alone has no kernel realisation (a triangular solve \
                     needs a right-hand side to apply the inverse to)"
                )
            }
            GenerateError::BarePseudoInverse { name } => {
                write!(
                    f,
                    "`{name}^+` alone has no kernel realisation (a least-squares solve \
                     needs a right-hand side to apply the pseudo-inverse to)"
                )
            }
            GenerateError::PseudoInverseWide { name } => {
                write!(
                    f,
                    "`{name}^+` has no kernel realisation: the QR-based least-squares \
                     solve requires `{name}` (as used) to have at least as many rows \
                     as columns"
                )
            }
            GenerateError::InversePseudoInverseMix { name } => {
                write!(
                    f,
                    "`{name}` is used under both an inverse and a pseudo-inverse, \
                     which no kernel sequence realises"
                )
            }
            GenerateError::NoRealisation { expression } => {
                write!(
                    f,
                    "no kernel sequence realises `{expression}`: in every multiplication \
                     order a solve lacks a legal position — solves run from either side \
                     but need an untransposed, fully-stored rectangular partner (and a \
                     pseudo-inverse applies from the left only)"
                )
            }
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<ShapeError> for GenerateError {
    fn from(e: ShapeError) -> Self {
        GenerateError::Shape(e)
    }
}

/// Which of the paper's studied shapes [`generate_algorithms`] recognised
/// (informational; enumeration is the same general engine either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecognisedPattern {
    /// A plain matrix chain of `p` distinct, untransposed operands.
    Chain(usize),
    /// The paper's `A·Aᵀ·B` expression.
    Aatb,
    /// A product involving triangular-structured (or inverse-marked
    /// triangular) operands — the TRMM/TRSM extension family.
    Triangular,
    /// A product involving symmetric positive-definite operands — the
    /// SYMM/POTRF extension family (SPD solves realise through Cholesky).
    Spd,
    /// A product involving a general-matrix solve: an inverse of an
    /// unstructured square operand (realised through pivoted LU) or a
    /// pseudo-inverse (realised through QR) — the GETRF/QR extension family.
    GeneralSolve,
    /// Any other product of (possibly transposed, possibly repeated) leaves.
    GenericProduct,
}

/// Generate the candidate algorithm set for an expression tree and report
/// which of the paper's patterns it matches.
///
/// # Errors
///
/// Returns [`GenerateError`] if the expression is shape-inconsistent, empty,
/// or reuses an operand name with different shapes.
pub fn generate_algorithms(
    expr: &Expr,
) -> Result<(RecognisedPattern, Vec<Algorithm>), GenerateError> {
    generate_algorithms_with(expr, &EnumerateOptions::default())
}

/// [`generate_algorithms`] with explicit enumerator options (top-k FLOPs
/// pruning, rewrite toggling).
///
/// # Errors
///
/// See [`generate_algorithms`].
pub fn generate_algorithms_with(
    expr: &Expr,
    options: &EnumerateOptions,
) -> Result<(RecognisedPattern, Vec<Algorithm>), GenerateError> {
    let algorithms = enumerate_expr_algorithms_with(expr, options)?;
    Ok((classify(expr), algorithms))
}

/// Classify the expression against the paper's studied shapes.
fn classify(expr: &Expr) -> RecognisedPattern {
    let factors = expr.factors();
    if factors
        .iter()
        .any(|f| f.pinv || (f.inv && f.var.structure == Structure::General))
    {
        RecognisedPattern::GeneralSolve
    } else if factors.iter().any(|f| f.var.structure.is_spd()) {
        RecognisedPattern::Spd
    } else if factors.iter().any(|f| f.var.triangle().is_some() || f.inv) {
        RecognisedPattern::Triangular
    } else if factors.len() >= 2 && is_plain_chain(&factors) {
        RecognisedPattern::Chain(factors.len())
    } else if is_aatb(&factors) {
        RecognisedPattern::Aatb
    } else {
        RecognisedPattern::GenericProduct
    }
}

/// Whether every factor is a distinct untransposed operand.
fn is_plain_chain(factors: &[Factor]) -> bool {
    if factors.iter().any(|f| f.trans) {
        return false;
    }
    let mut names: Vec<&str> = factors.iter().map(|f| f.var.name.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    names.len() == before
}

/// Whether the factor list matches `A, Aᵀ, B`.
fn is_aatb(factors: &[Factor]) -> bool {
    if factors.len() != 3 {
        return false;
    }
    let (a, at, b) = (&factors[0], &factors[1], &factors[2]);
    a.var.name == at.var.name && !a.trans && at.trans && !b.trans && a.var.name != b.var.name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognises_abcd_chain() {
        let expr = Expr::product(vec![
            Expr::var("A", 10, 20),
            Expr::var("B", 20, 30),
            Expr::var("C", 30, 40),
            Expr::var("D", 40, 50),
        ]);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::Chain(4));
        assert_eq!(algs.len(), 6);
    }

    #[test]
    fn recognises_aatb() {
        let a = Expr::var("A", 10, 20);
        let b = Expr::var("B", 10, 30);
        let expr = a.clone().mul(a.t()).mul(b);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::Aatb);
        assert_eq!(algs.len(), 5);
        for alg in &algs {
            assert!(alg.is_well_formed());
            let out = alg.output().unwrap();
            assert_eq!((out.rows, out.cols), (10, 30));
        }
    }

    #[test]
    fn generic_products_now_enumerate_every_order() {
        // X := A^T * B * A is not one of the studied patterns, but the
        // general engine still enumerates both multiplication orders (the
        // legacy generator lowered this to a single left-to-right sequence).
        let a = Expr::var("A", 10, 6);
        let b = Expr::var("B", 10, 10);
        let expr = a.clone().t().mul(b).mul(a);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
        assert_eq!(algs.len(), 2);
        for alg in &algs {
            assert!(alg.is_well_formed());
            assert_eq!(alg.calls.len(), 2);
            let out = alg.output().unwrap();
            assert_eq!((out.rows, out.cols), (6, 6));
        }
        // Left-to-right order: (A^T B) then (.. A):
        // step1: A^T(6x10) * B(10x10) -> 6x10, 2*6*10*10 = 1200
        // step2: M1(6x10) * A(10x6) -> 6x6, 2*6*6*10 = 720
        assert_eq!(algs[0].flops(), 1200 + 720);
    }

    #[test]
    fn repeated_untransposed_operands_are_not_a_plain_chain() {
        let a = Expr::var("A", 8, 8);
        let expr = a.clone().mul(a);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
        assert_eq!(algs[0].flops(), 2 * 8 * 8 * 8);
    }

    #[test]
    fn two_factor_chain_is_still_a_chain() {
        let expr = Expr::var("A", 4, 5).mul(Expr::var("B", 5, 6));
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::Chain(2));
        assert_eq!(algs.len(), 1);
    }

    #[test]
    fn shape_errors_propagate() {
        let expr = Expr::var("A", 4, 5).mul(Expr::var("B", 6, 7));
        assert!(matches!(
            generate_algorithms(&expr),
            Err(GenerateError::Shape(_))
        ));
    }

    #[test]
    fn transposed_chain_is_not_a_plain_chain() {
        let expr = Expr::var("A", 5, 4).t().mul(Expr::var("B", 5, 6));
        let (pattern, _) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
    }

    #[test]
    fn single_operand_expression() {
        let expr = Expr::var("A", 3, 3);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
        assert_eq!(algs[0].calls.len(), 0);
        assert_eq!(algs[0].flops(), 0);
    }

    #[test]
    fn pruning_options_thread_through() {
        let dims = [9usize, 8, 7, 6, 5, 4];
        let factors: Vec<Expr> = (0..5)
            .map(|i| {
                Expr::var(
                    &char::from(b'A' + u8::try_from(i).unwrap()).to_string(),
                    dims[i],
                    dims[i + 1],
                )
            })
            .collect();
        let expr = Expr::product(factors);
        let opts = EnumerateOptions {
            top_k: Some(4),
            ..EnumerateOptions::default()
        };
        let (pattern, algs) = generate_algorithms_with(&expr, &opts).unwrap();
        assert_eq!(pattern, RecognisedPattern::Chain(5));
        assert_eq!(algs.len(), 4);
    }

    #[test]
    fn general_solves_classify_as_their_own_pattern() {
        let a = Expr::var("A", 6, 6);
        let b = Expr::var("B", 6, 2);
        let (pattern, algs) = generate_algorithms(&a.inv().mul(b)).unwrap();
        assert_eq!(pattern, RecognisedPattern::GeneralSolve);
        assert_eq!(algs.len(), 1);
        let t = Expr::var("T", 9, 4);
        let rhs = Expr::var("b", 9, 1);
        let (pattern, _) = generate_algorithms(&t.pinv().mul(rhs)).unwrap();
        assert_eq!(pattern, RecognisedPattern::GeneralSolve);
        // Structured inverses keep their existing classifications.
        use lamb_matrix::Uplo;
        let l = Expr::tri_var("L", 5, Uplo::Lower);
        let (pattern, _) = generate_algorithms(&l.inv().mul(Expr::var("C", 5, 2))).unwrap();
        assert_eq!(pattern, RecognisedPattern::Triangular);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(GenerateError::Empty.to_string().contains("no factors"));
        assert!(GenerateError::TooFewMatrices { dims_len: 2 }
            .to_string()
            .contains("at least two"));
        assert!(GenerateError::InconsistentOperand { name: "A".into() }
            .to_string()
            .contains('A'));
    }
}
