//! From expression trees to candidate algorithm sets (a miniature version of
//! the "generate all mathematically equivalent algorithms" step that tools
//! like Linnea perform before selecting one).
//!
//! Three patterns are recognised:
//!
//! 1. a plain **matrix chain** `X1·X2·…·Xp` of distinct, untransposed
//!    operands — enumerated by [`crate::chain::enumerate_chain_algorithms`];
//! 2. the paper's second expression `A·Aᵀ·B` — enumerated by
//!    [`crate::aatb::enumerate_aatb_algorithms`];
//! 3. any other product of (possibly transposed) leaf operands — lowered to a
//!    single left-to-right GEMM sequence (no algorithmic choice, but still
//!    executable and FLOP-countable).

use crate::aatb::enumerate_aatb_algorithms;
use crate::algorithm::{Algorithm, OperandInfo, OperandRole};
use crate::chain::enumerate_chain_algorithms;
use crate::expr::{Expr, ShapeError, Var};
use crate::kernel_call::{KernelCall, KernelOp};
use crate::operand::OperandId;
use lamb_matrix::Trans;
use std::fmt;

/// Errors produced while generating algorithms from an expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The expression tree contains a shape inconsistency.
    Shape(ShapeError),
    /// The expression has no factors (cannot happen with the public builders).
    Empty,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Shape(e) => write!(f, "shape error: {e}"),
            GenerateError::Empty => write!(f, "expression has no factors"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<ShapeError> for GenerateError {
    fn from(e: ShapeError) -> Self {
        GenerateError::Shape(e)
    }
}

/// Which enumeration strategy [`generate_algorithms`] picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecognisedPattern {
    /// A plain matrix chain of `p` operands.
    Chain(usize),
    /// The `A·Aᵀ·B` expression.
    Aatb,
    /// Generic product lowered to one left-to-right algorithm.
    GenericProduct,
}

/// Generate the candidate algorithm set for an expression tree and report
/// which pattern was recognised.
///
/// # Errors
///
/// Returns [`GenerateError`] if the expression is shape-inconsistent.
pub fn generate_algorithms(
    expr: &Expr,
) -> Result<(RecognisedPattern, Vec<Algorithm>), GenerateError> {
    // Validate shapes up front so every later step can assume consistency.
    expr.shape()?;
    let factors = expr.factors();
    if factors.is_empty() {
        return Err(GenerateError::Empty);
    }

    if let Some(dims) = plain_chain_dims(&factors) {
        if factors.len() >= 2 {
            return Ok((
                RecognisedPattern::Chain(factors.len()),
                enumerate_chain_algorithms(&dims),
            ));
        }
    }

    if let Some((d0, d1, d2)) = aatb_dims(&factors) {
        return Ok((
            RecognisedPattern::Aatb,
            enumerate_aatb_algorithms(d0, d1, d2),
        ));
    }

    Ok((
        RecognisedPattern::GenericProduct,
        vec![left_to_right_algorithm(&factors)],
    ))
}

/// If every factor is a distinct untransposed operand, return the chain
/// dimension tuple `[d0, ..., dp]`.
fn plain_chain_dims(factors: &[(Var, bool)]) -> Option<Vec<usize>> {
    if factors.iter().any(|(_, t)| *t) {
        return None;
    }
    let names: Vec<&str> = factors.iter().map(|(v, _)| v.name.as_str()).collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() != names.len() {
        return None;
    }
    let mut dims = Vec::with_capacity(factors.len() + 1);
    dims.push(factors[0].0.rows);
    for (v, _) in factors {
        dims.push(v.cols);
    }
    Some(dims)
}

/// If the factor list matches `A, Aᵀ, B`, return `(d0, d1, d2)`.
fn aatb_dims(factors: &[(Var, bool)]) -> Option<(usize, usize, usize)> {
    if factors.len() != 3 {
        return None;
    }
    let (a, ta) = &factors[0];
    let (at, tat) = &factors[1];
    let (b, tb) = &factors[2];
    if a.name == at.name && !ta && *tat && !tb && a.name != b.name {
        Some((a.rows, a.cols, b.cols))
    } else {
        None
    }
}

/// Lower an arbitrary product of (possibly transposed) leaves to a single
/// left-to-right GEMM sequence.
fn left_to_right_algorithm(factors: &[(Var, bool)]) -> Algorithm {
    let mut operands: Vec<OperandInfo> = factors
        .iter()
        .enumerate()
        .map(|(i, (v, _))| OperandInfo {
            id: OperandId(i),
            rows: v.rows,
            cols: v.cols,
            role: OperandRole::Input,
            name: v.name.clone(),
        })
        .collect();

    let logical = |v: &Var, t: bool| {
        if t {
            (v.cols, v.rows)
        } else {
            (v.rows, v.cols)
        }
    };

    let mut calls = Vec::new();
    if factors.len() == 1 {
        // A single (possibly transposed) operand: represent it as a 1-element
        // "chain" by multiplying with nothing — we instead emit a copy-free
        // no-op algorithm with zero calls and the operand as output.
        operands[0].role = OperandRole::Output;
        return Algorithm {
            name: format!("generic product: {}", operands[0].name),
            operands,
            calls,
        };
    }

    let mut acc_shape = logical(&factors[0].0, factors[0].1);
    let mut acc_id = OperandId(0);
    let mut acc_trans = if factors[0].1 { Trans::Yes } else { Trans::No };
    let mut acc_text = format!(
        "{}{}",
        factors[0].0.name,
        if factors[0].1 { "^T" } else { "" }
    );
    for (step, (v, t)) in factors.iter().enumerate().skip(1) {
        let rhs_shape = logical(v, *t);
        let m = acc_shape.0;
        let k = acc_shape.1;
        let n = rhs_shape.1;
        let out_id = OperandId(factors.len() + step - 1);
        let label = format!(
            "M{} := {}*{}{}",
            step,
            acc_text,
            v.name,
            if *t { "^T" } else { "" }
        );
        calls.push(KernelCall {
            op: KernelOp::Gemm {
                transa: acc_trans,
                transb: if *t { Trans::Yes } else { Trans::No },
                m,
                n,
                k,
            },
            inputs: vec![acc_id, OperandId(step)],
            output: out_id,
            label,
        });
        operands.push(OperandInfo {
            id: out_id,
            rows: m,
            cols: n,
            role: OperandRole::Intermediate,
            name: format!("M{step}"),
        });
        acc_shape = (m, n);
        acc_id = out_id;
        acc_trans = Trans::No;
        acc_text = format!("M{step}");
    }
    if let Some(last) = operands.last_mut() {
        last.role = OperandRole::Output;
        last.name = "X".into();
    }
    let text: Vec<String> = factors
        .iter()
        .map(|(v, t)| format!("{}{}", v.name, if *t { "^T" } else { "" }))
        .collect();
    Algorithm {
        name: format!("generic left-to-right product: {}", text.join(" ")),
        operands,
        calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognises_abcd_chain() {
        let expr = Expr::product(vec![
            Expr::var("A", 10, 20),
            Expr::var("B", 20, 30),
            Expr::var("C", 30, 40),
            Expr::var("D", 40, 50),
        ]);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::Chain(4));
        assert_eq!(algs.len(), 6);
    }

    #[test]
    fn recognises_aatb() {
        let a = Expr::var("A", 10, 20);
        let b = Expr::var("B", 10, 30);
        let expr = a.clone().mul(a.t()).mul(b);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::Aatb);
        assert_eq!(algs.len(), 5);
        for alg in &algs {
            assert!(alg.is_well_formed());
            let out = alg.output().unwrap();
            assert_eq!((out.rows, out.cols), (10, 30));
        }
    }

    #[test]
    fn generic_product_with_transposes_falls_back_to_one_algorithm() {
        // X := A^T * B * A is not one of the studied patterns.
        let a = Expr::var("A", 10, 6);
        let b = Expr::var("B", 10, 10);
        let expr = a.clone().t().mul(b).mul(a);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
        assert_eq!(algs.len(), 1);
        let alg = &algs[0];
        assert!(alg.is_well_formed());
        assert_eq!(alg.calls.len(), 2);
        let out = alg.output().unwrap();
        assert_eq!((out.rows, out.cols), (6, 6));
        // FLOPs: (6x10)*(10x10) = 1200, then (6x10)*(10x6)... careful:
        // step1: A^T(6x10) * B(10x10) -> 6x10, 2*6*10*10 = 1200
        // step2: M1(6x10) * A(10x6) -> 6x6, 2*6*6*10 = 720
        assert_eq!(alg.flops(), 1200 + 720);
    }

    #[test]
    fn repeated_untransposed_operands_are_not_a_plain_chain() {
        // A * A with the same name is a generic product (the chain enumerator
        // assumes distinct operands).
        let a = Expr::var("A", 8, 8);
        let expr = a.clone().mul(a);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
        assert_eq!(algs[0].flops(), 2 * 8 * 8 * 8);
    }

    #[test]
    fn two_factor_chain_is_still_a_chain() {
        let expr = Expr::var("A", 4, 5).mul(Expr::var("B", 5, 6));
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::Chain(2));
        assert_eq!(algs.len(), 1);
    }

    #[test]
    fn shape_errors_propagate() {
        let expr = Expr::var("A", 4, 5).mul(Expr::var("B", 6, 7));
        assert!(matches!(
            generate_algorithms(&expr),
            Err(GenerateError::Shape(_))
        ));
    }

    #[test]
    fn transposed_chain_is_not_a_plain_chain() {
        let expr = Expr::var("A", 5, 4).t().mul(Expr::var("B", 5, 6));
        let (pattern, _) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
    }

    #[test]
    fn single_operand_expression() {
        let expr = Expr::var("A", 3, 3);
        let (pattern, algs) = generate_algorithms(&expr).unwrap();
        assert_eq!(pattern, RecognisedPattern::GenericProduct);
        assert_eq!(algs[0].calls.len(), 0);
        assert_eq!(algs[0].flops(), 0);
    }
}
