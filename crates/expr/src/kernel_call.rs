//! The kernel-call intermediate representation.
//!
//! A [`KernelCall`] is one invocation of a BLAS-3 kernel (or the
//! triangle-to-full copy that Algorithm 2 of `A·Aᵀ·B` needs) on symbolic
//! operands. Its FLOP count follows Section 3.1 of the paper exactly.

use crate::operand::OperandId;
use lamb_matrix::{Side, Trans, Uplo};
use std::fmt;

/// The operation performed by one kernel call, with its logical dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// `C := op(A)·op(B)` with `op(A) ∈ R^{m×k}`, `op(B) ∈ R^{k×n}`.
    Gemm {
        /// Transposition of the left operand.
        transa: Trans,
        /// Transposition of the right operand.
        transb: Trans,
        /// Rows of the result.
        m: usize,
        /// Columns of the result.
        n: usize,
        /// Inner (contracted) dimension.
        k: usize,
    },
    /// One triangle of `op(A)·op(A)ᵀ` with `op(A) ∈ R^{n×k}`.
    Syrk {
        /// Which triangle of the result is computed.
        uplo: Uplo,
        /// Transposition of the operand.
        trans: Trans,
        /// Order of the (square) result.
        n: usize,
        /// Inner (contracted) dimension.
        k: usize,
    },
    /// `C := A_sym·B` (Left) or `C := B·A_sym` (Right) with `C ∈ R^{m×n}`.
    Symm {
        /// Side from which the symmetric operand multiplies.
        side: Side,
        /// Stored triangle of the symmetric operand.
        uplo: Uplo,
        /// Rows of the result.
        m: usize,
        /// Columns of the result.
        n: usize,
    },
    /// `C := op(L)·B` with `L ∈ R^{m×m}` triangular (stored `uplo` triangle)
    /// and `B ∈ R^{m×n}`.
    Trmm {
        /// Stored triangle of the triangular operand.
        uplo: Uplo,
        /// Transposition of the triangular operand.
        trans: Trans,
        /// Order of the triangular operand (= rows of the result).
        m: usize,
        /// Columns of the result.
        n: usize,
    },
    /// `X := op(L)⁻¹·B` with `L ∈ R^{m×m}` triangular (stored `uplo`
    /// triangle) and `B ∈ R^{m×n}`.
    Trsm {
        /// Stored triangle of the triangular operand.
        uplo: Uplo,
        /// Transposition of the triangular operand.
        trans: Trans,
        /// Order of the triangular operand (= rows of the result).
        m: usize,
        /// Columns of the result.
        n: usize,
    },
    /// `L := chol(A)`: the Cholesky factorisation of an `n×n` SPD operand
    /// into an explicitly triangular factor (`A = L·Lᵀ` for `uplo = Lower`).
    Potrf {
        /// Triangle the factor is computed in.
        uplo: Uplo,
        /// Order of the square operand.
        n: usize,
    },
    /// Copy the `uplo` triangle of an `n×n` matrix into the other triangle,
    /// making it explicitly full (zero FLOPs, but it moves data and costs time).
    CopyTriangle {
        /// Triangle that holds the data.
        uplo: Uplo,
        /// Order of the square matrix.
        n: usize,
    },
}

impl KernelOp {
    /// FLOP count of this operation according to the paper's Section 3.1.
    #[must_use]
    pub fn flops(&self) -> u64 {
        match *self {
            KernelOp::Gemm { m, n, k, .. } => 2 * (m as u64) * (n as u64) * (k as u64),
            KernelOp::Syrk { n, k, .. } => (n as u64 + 1) * (n as u64) * (k as u64),
            KernelOp::Symm { side, m, n, .. } => {
                let (sym_dim, other) = match side {
                    Side::Left => (m as u64, n as u64),
                    Side::Right => (n as u64, m as u64),
                };
                2 * sym_dim * sym_dim * other
            }
            // The triangular kernels perform half the work of the equal-shape
            // GEMM: m²·n for both the multiply and the solve.
            KernelOp::Trmm { m, n, .. } | KernelOp::Trsm { m, n, .. } => {
                (m as u64) * (m as u64) * (n as u64)
            }
            // Cholesky: the Section-3.1-style leading-order count n³/3.
            KernelOp::Potrf { n, .. } => (n as u64).pow(3) / 3,
            KernelOp::CopyTriangle { .. } => 0,
        }
    }

    /// Shape `(rows, cols)` of the output of this operation.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize) {
        match *self {
            KernelOp::Gemm { m, n, .. } => (m, n),
            KernelOp::Syrk { n, .. } => (n, n),
            KernelOp::Symm { m, n, .. }
            | KernelOp::Trmm { m, n, .. }
            | KernelOp::Trsm { m, n, .. } => (m, n),
            KernelOp::Potrf { n, .. } | KernelOp::CopyTriangle { n, .. } => (n, n),
        }
    }

    /// Number of `f64` elements written by this operation (used by
    /// memory-traffic-aware time models). Total across every kernel: safe at
    /// degenerate dimensions — the `n == 0` triangle copy writes nothing
    /// rather than underflowing `n - 1`.
    #[must_use]
    pub fn output_elements(&self) -> u64 {
        match *self {
            KernelOp::Gemm { m, n, .. } => (m as u64) * (n as u64),
            KernelOp::Syrk { n, .. } | KernelOp::Potrf { n, .. } => (n as u64) * (n as u64 + 1) / 2,
            KernelOp::Symm { m, n, .. }
            | KernelOp::Trmm { m, n, .. }
            | KernelOp::Trsm { m, n, .. } => (m as u64) * (n as u64),
            KernelOp::CopyTriangle { n, .. } => {
                let n = n as u64;
                n * n.saturating_sub(1) / 2
            }
        }
    }

    /// Short BLAS/LAPACK-style mnemonic (`gemm`, `syrk`, `symm`, `trmm`,
    /// `trsm`, `potrf`, `copy`).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            KernelOp::Gemm { .. } => "gemm",
            KernelOp::Syrk { .. } => "syrk",
            KernelOp::Symm { .. } => "symm",
            KernelOp::Trmm { .. } => "trmm",
            KernelOp::Trsm { .. } => "trsm",
            KernelOp::Potrf { .. } => "potrf",
            KernelOp::CopyTriangle { .. } => "copy",
        }
    }

    /// Whether this operation performs floating-point work.
    #[must_use]
    pub fn is_compute(&self) -> bool {
        !matches!(self, KernelOp::CopyTriangle { .. })
    }

    /// The canonical form of this operation under the *isolated-call timing
    /// model*: GEMM's transposition flags are cleared, because a GEMM with
    /// logical dimensions `m×n×k` performs the same work — and, under the
    /// isolated-call benchmark protocol, takes the same time — regardless of
    /// how its operands are stored. Two operations with equal timing keys are
    /// interchangeable for timing memoisation (the planner's prediction
    /// cache, `CallTimeTable`, the calibration store); they are *not*
    /// interchangeable for execution, which still needs the real flags.
    ///
    /// SYRK/SYMM keep their flags: their `uplo`/`trans`/`side` choices change
    /// which triangle is touched and how memory is walked, and the timing
    /// layer makes no invariance claim for them.
    ///
    /// TRMM/TRSM canonicalise the `(uplo, trans)` pair to the *effective*
    /// triangle with the transposition cleared: `op(L)` for a stored-lower
    /// `L` with `trans = T` occupies the upper triangle, walks memory like a
    /// stored-upper untransposed operand, and performs identical work — so
    /// `(Lower, T)` and `(Upper, N)` share one benchmark entry.
    ///
    /// POTRF keeps its `uplo`: factoring into the lower versus the upper
    /// triangle walks memory differently, and the timing layer makes no
    /// invariance claim for it (like SYRK/SYMM).
    #[must_use]
    pub fn timing_key(&self) -> KernelOp {
        match *self {
            KernelOp::Gemm { m, n, k, .. } => KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m,
                n,
                k,
            },
            KernelOp::Trmm { uplo, trans, m, n } => KernelOp::Trmm {
                uplo: uplo.under(trans),
                trans: Trans::No,
                m,
                n,
            },
            KernelOp::Trsm { uplo, trans, m, n } => KernelOp::Trsm {
                uplo: uplo.under(trans),
                trans: Trans::No,
                m,
                n,
            },
            ref other => other.clone(),
        }
    }
}

impl fmt::Display for KernelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            KernelOp::Gemm {
                transa,
                transb,
                m,
                n,
                k,
            } => write!(
                f,
                "gemm({}{} {}x{}x{})",
                transa.tag(),
                transb.tag(),
                m,
                n,
                k
            ),
            KernelOp::Syrk { uplo, trans, n, k } => {
                write!(f, "syrk({}{} {}x{})", uplo.tag(), trans.tag(), n, k)
            }
            KernelOp::Symm { side, uplo, m, n } => {
                write!(f, "symm({}{} {}x{})", side.tag(), uplo.tag(), m, n)
            }
            KernelOp::Trmm { uplo, trans, m, n } => {
                write!(f, "trmm({}{} {}x{})", uplo.tag(), trans.tag(), m, n)
            }
            KernelOp::Trsm { uplo, trans, m, n } => {
                write!(f, "trsm({}{} {}x{})", uplo.tag(), trans.tag(), m, n)
            }
            KernelOp::Potrf { uplo, n } => {
                write!(f, "potrf({} {}x{})", uplo.tag(), n, n)
            }
            KernelOp::CopyTriangle { uplo, n } => {
                write!(f, "copy({} {0}x{0} tri {1})", n, uplo.tag())
            }
        }
    }
}

/// One kernel invocation on symbolic operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelCall {
    /// The operation and its dimensions.
    pub op: KernelOp,
    /// Operands read by the call, in kernel argument order.
    pub inputs: Vec<OperandId>,
    /// Operand written by the call.
    pub output: OperandId,
    /// Human-readable description, e.g. `"M1 := A*B"`.
    pub label: String,
}

impl KernelCall {
    /// FLOP count of this call.
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.op.flops()
    }

    /// Whether `operand` is read by this call.
    #[must_use]
    pub fn reads(&self, operand: OperandId) -> bool {
        self.inputs.contains(&operand)
    }
}

impl fmt::Display for KernelCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.label, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_follow_paper() {
        let op = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 30,
        };
        assert_eq!(op.flops(), 2 * 10 * 20 * 30);
        assert_eq!(op.output_shape(), (10, 20));
        assert_eq!(op.output_elements(), 200);
        assert!(op.is_compute());
    }

    #[test]
    fn syrk_flops_follow_paper() {
        let op = KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n: 7,
            k: 5,
        };
        assert_eq!(op.flops(), 8 * 7 * 5);
        assert_eq!(op.output_shape(), (7, 7));
        assert_eq!(op.output_elements(), 28);
    }

    #[test]
    fn symm_flops_follow_paper_for_both_sides() {
        let left = KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m: 6,
            n: 9,
        };
        assert_eq!(left.flops(), 2 * 36 * 9);
        let right = KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Upper,
            m: 6,
            n: 9,
        };
        assert_eq!(right.flops(), 2 * 81 * 6);
    }

    #[test]
    fn copy_triangle_is_zero_flops_but_not_compute() {
        let op = KernelOp::CopyTriangle {
            uplo: Uplo::Lower,
            n: 100,
        };
        assert_eq!(op.flops(), 0);
        assert!(!op.is_compute());
        assert_eq!(op.output_elements(), 100 * 99 / 2);
    }

    #[test]
    fn call_reads_tracks_inputs() {
        let call = KernelCall {
            op: KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 2,
                n: 2,
                k: 2,
            },
            inputs: vec![OperandId(0), OperandId(1)],
            output: OperandId(4),
            label: "M1 := A*B".into(),
        };
        assert!(call.reads(OperandId(0)));
        assert!(!call.reads(OperandId(4)));
        assert_eq!(call.flops(), 16);
        assert!(call.to_string().contains("M1 := A*B"));
    }

    #[test]
    fn timing_key_clears_gemm_transposition_only() {
        let transposed = KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 30,
        };
        let plain = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 30,
        };
        assert_eq!(transposed.timing_key(), plain);
        assert_eq!(plain.timing_key(), plain);
        // Different logical dimensions stay distinct.
        let other = KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 31,
        };
        assert_ne!(other.timing_key(), plain);
        // Non-GEMM operations are their own timing keys.
        let syrk = KernelOp::Syrk {
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            n: 5,
            k: 6,
        };
        assert_eq!(syrk.timing_key(), syrk);
    }

    #[test]
    fn triangular_ops_follow_the_half_gemm_model() {
        let trmm = KernelOp::Trmm {
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 10,
            n: 7,
        };
        let trsm = KernelOp::Trsm {
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            m: 10,
            n: 7,
        };
        assert_eq!(trmm.flops(), 10 * 10 * 7);
        assert_eq!(trsm.flops(), trmm.flops());
        assert_eq!(trmm.output_shape(), (10, 7));
        assert_eq!(trmm.output_elements(), 70);
        assert!(trmm.is_compute());
        assert_eq!(trmm.mnemonic(), "trmm");
        assert_eq!(trsm.mnemonic(), "trsm");
        let gemm = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 10,
            n: 7,
            k: 10,
        };
        assert_eq!(trmm.flops() * 2, gemm.flops());
    }

    #[test]
    fn triangular_timing_keys_canonicalise_to_the_effective_triangle() {
        // (Lower, T) and (Upper, N) walk the same effective triangle.
        let stored_lower_t = KernelOp::Trmm {
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 64,
            n: 32,
        };
        let stored_upper_n = KernelOp::Trmm {
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 64,
            n: 32,
        };
        assert_eq!(stored_lower_t.timing_key(), stored_upper_n.timing_key());
        // But opposite effective triangles stay distinct.
        let stored_lower_n = KernelOp::Trmm {
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 64,
            n: 32,
        };
        assert_ne!(stored_lower_n.timing_key(), stored_upper_n.timing_key());
        // Same canonicalisation for the solve, and the two ops never collide.
        let trsm = KernelOp::Trsm {
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 64,
            n: 32,
        };
        assert_eq!(
            trsm.timing_key(),
            KernelOp::Trsm {
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 64,
                n: 32,
            }
        );
        assert_ne!(trsm.timing_key(), stored_lower_t.timing_key());
    }

    #[test]
    fn potrf_follows_the_cubed_over_three_model() {
        let op = KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 90,
        };
        assert_eq!(op.flops(), 90u64.pow(3) / 3);
        assert_eq!(op.output_shape(), (90, 90));
        assert_eq!(op.output_elements(), 90 * 91 / 2);
        assert!(op.is_compute());
        assert_eq!(op.mnemonic(), "potrf");
        let s = op.to_string();
        assert!(s.contains("potrf") && s.contains('L'));
        // POTRF keeps its uplo in the timing key; the two triangles are
        // distinct benchmark entries.
        assert_eq!(op.timing_key(), op);
        let upper = KernelOp::Potrf {
            uplo: Uplo::Upper,
            n: 90,
        };
        assert_ne!(op.timing_key(), upper.timing_key());
        // One sixth of the equal-order GEMM, leading order.
        let gemm = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 90,
            n: 90,
            k: 90,
        };
        assert!(op.flops() * 6 <= gemm.flops());
    }

    #[test]
    fn degenerate_dimensions_never_underflow() {
        // Regression for the `n == 0` CopyTriangle underflow (debug panic /
        // release wraparound pre-fix), plus an audit of every kernel op at
        // zero and unit dimensions.
        let ops = [
            KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 0,
                n: 0,
                k: 0,
            },
            KernelOp::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::No,
                n: 0,
                k: 0,
            },
            KernelOp::Symm {
                side: Side::Left,
                uplo: Uplo::Lower,
                m: 0,
                n: 0,
            },
            KernelOp::Trmm {
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 0,
                n: 0,
            },
            KernelOp::Trsm {
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 0,
                n: 0,
            },
            KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 0,
            },
            KernelOp::CopyTriangle {
                uplo: Uplo::Lower,
                n: 0,
            },
        ];
        for op in &ops {
            assert_eq!(op.flops(), 0, "{op}");
            assert_eq!(op.output_elements(), 0, "{op}");
            assert_eq!(op.output_shape(), (0, 0), "{op}");
        }
        // Unit dimensions are tiny but well defined.
        assert_eq!(
            KernelOp::CopyTriangle {
                uplo: Uplo::Upper,
                n: 1
            }
            .output_elements(),
            0
        );
        assert_eq!(
            KernelOp::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::No,
                n: 1,
                k: 1
            }
            .flops(),
            2
        );
    }

    #[test]
    fn mnemonics_and_display_are_informative() {
        let op = KernelOp::Syrk {
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            n: 3,
            k: 4,
        };
        assert_eq!(op.mnemonic(), "syrk");
        let s = op.to_string();
        assert!(s.contains("syrk"));
        assert!(s.contains('U'));
        assert!(s.contains('T'));
    }
}
