//! The kernel-call intermediate representation.
//!
//! A [`KernelCall`] is one invocation of a BLAS-3 kernel (or the
//! triangle-to-full copy that Algorithm 2 of `A·Aᵀ·B` needs) on symbolic
//! operands. Its FLOP count follows Section 3.1 of the paper exactly.

use crate::operand::OperandId;
use lamb_matrix::{Side, Trans, Uplo};
use std::fmt;

/// The operation performed by one kernel call, with its logical dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KernelOp {
    /// `C := op(A)·op(B)` with `op(A) ∈ R^{m×k}`, `op(B) ∈ R^{k×n}`.
    Gemm {
        /// Transposition of the left operand.
        transa: Trans,
        /// Transposition of the right operand.
        transb: Trans,
        /// Rows of the result.
        m: usize,
        /// Columns of the result.
        n: usize,
        /// Inner (contracted) dimension.
        k: usize,
    },
    /// One triangle of `op(A)·op(A)ᵀ` with `op(A) ∈ R^{n×k}`.
    Syrk {
        /// Which triangle of the result is computed.
        uplo: Uplo,
        /// Transposition of the operand.
        trans: Trans,
        /// Order of the (square) result.
        n: usize,
        /// Inner (contracted) dimension.
        k: usize,
    },
    /// `C := A_sym·B` (Left) or `C := B·A_sym` (Right) with `C ∈ R^{m×n}`.
    Symm {
        /// Side from which the symmetric operand multiplies.
        side: Side,
        /// Stored triangle of the symmetric operand.
        uplo: Uplo,
        /// Rows of the result.
        m: usize,
        /// Columns of the result.
        n: usize,
    },
    /// `C := op(L)·B` (Left, `L ∈ R^{m×m}`) or `C := B·op(L)` (Right,
    /// `L ∈ R^{n×n}`) with `L` triangular (stored `uplo` triangle) and the
    /// result `C ∈ R^{m×n}`.
    Trmm {
        /// Side from which the triangular operand multiplies.
        side: Side,
        /// Stored triangle of the triangular operand.
        uplo: Uplo,
        /// Transposition of the triangular operand.
        trans: Trans,
        /// Rows of the result (= order of the triangle when `side = Left`).
        m: usize,
        /// Columns of the result (= order of the triangle when `side = Right`).
        n: usize,
    },
    /// `X := op(L)⁻¹·B` (Left, `L ∈ R^{m×m}`) or `X := B·op(L)⁻¹` (Right,
    /// `L ∈ R^{n×n}`) with `L` triangular (stored `uplo` triangle) and the
    /// result `X ∈ R^{m×n}`.
    Trsm {
        /// Side from which the triangular operand divides.
        side: Side,
        /// Stored triangle of the triangular operand.
        uplo: Uplo,
        /// Transposition of the triangular operand.
        trans: Trans,
        /// Rows of the result (= order of the triangle when `side = Left`).
        m: usize,
        /// Columns of the result (= order of the triangle when `side = Right`).
        n: usize,
    },
    /// `L := chol(A)`: the Cholesky factorisation of an `n×n` SPD operand
    /// into an explicitly triangular factor (`A = L·Lᵀ` for `uplo = Lower`).
    Potrf {
        /// Triangle the factor is computed in.
        uplo: Uplo,
        /// Order of the square operand.
        n: usize,
    },
    /// Copy the `uplo` triangle of an `n×n` matrix into the other triangle,
    /// making it explicitly full (zero FLOPs, but it moves data and costs time).
    CopyTriangle {
        /// Triangle that holds the data.
        uplo: Uplo,
        /// Order of the square matrix.
        n: usize,
    },
    /// `F := lu(A)`: the partially pivoted LU factorisation of an `n×n`
    /// general operand into the packed `n×(n+1)` form — unit-lower `L`
    /// strictly below the diagonal, `U` on and above, and the pivot row
    /// indices (as `f64`) in column `n`. Single-output by construction: the
    /// pivot vector rides inside the factor operand.
    Getrf {
        /// Order of the square operand.
        n: usize,
    },
    /// `F := qr(A)`: the Householder QR factorisation of an `m×n` (`m >= n`)
    /// operand into the packed `m×(n+1)` form — reflector vectors strictly
    /// below the diagonal, `R` on and above, and the `tau` coefficients in
    /// the first `n` rows of column `n`.
    Qr {
        /// Rows of the operand.
        m: usize,
        /// Columns of the operand.
        n: usize,
    },
    /// `C := (Qᵀ·B)[0..n, :]`: apply `Qᵀ` from a packed `m×(n+1)` QR factor
    /// to `m×k` right-hand sides, keeping the top `n` rows — the
    /// least-squares reduction consumed by the final TRSM against `R`.
    Ormqr {
        /// Rows of the factor and right-hand sides.
        m: usize,
        /// Reflector count (columns of the factored operand).
        n: usize,
        /// Columns of the right-hand sides.
        k: usize,
    },
    /// `T := tri(F)`: extract an explicitly triangular `n×n` factor from a
    /// packed `r×(n+1)` factor operand (`Lower`: LU's unit-lower `L`;
    /// `Upper`: LU's `U` or QR's `R`). Zero FLOPs, but it moves data and
    /// costs time — the pivoted-factor analogue of the triangle copy.
    FactorTri {
        /// Which triangular factor is extracted.
        uplo: Uplo,
        /// Order of the extracted triangle.
        n: usize,
    },
    /// `Bp := P·B` (Left) or `Bp := B·P` (Right): apply the permutation
    /// recorded in a packed LU factor's pivot column to the rows (Left,
    /// factor order `m`) or columns (Right, factor order `n`) of an `m×n`
    /// operand. Zero FLOPs.
    PivotApply {
        /// Side from which the permutation applies: `Left` permutes rows
        /// (swaps in recorded order), `Right` permutes columns (swaps in
        /// reverse order, realising the right-multiplication by `P`).
        side: Side,
        /// Rows of the operand (= order of the LU factor when `side = Left`).
        m: usize,
        /// Columns of the operand (= order of the LU factor when
        /// `side = Right`).
        n: usize,
    },
}

impl KernelOp {
    /// FLOP count of this operation according to the paper's Section 3.1.
    #[must_use]
    pub fn flops(&self) -> u64 {
        match *self {
            KernelOp::Gemm { m, n, k, .. } => 2 * (m as u64) * (n as u64) * (k as u64),
            KernelOp::Syrk { n, k, .. } => (n as u64 + 1) * (n as u64) * (k as u64),
            KernelOp::Symm { side, m, n, .. } => {
                let (sym_dim, other) = match side {
                    Side::Left => (m as u64, n as u64),
                    Side::Right => (n as u64, m as u64),
                };
                2 * sym_dim * sym_dim * other
            }
            // The triangular kernels perform half the work of the equal-shape
            // GEMM: order²·other for both the multiply and the solve, where
            // `order` is the triangle's order (m on the left, n on the right).
            KernelOp::Trmm { side, m, n, .. } | KernelOp::Trsm { side, m, n, .. } => {
                let (order, other) = match side {
                    Side::Left => (m as u64, n as u64),
                    Side::Right => (n as u64, m as u64),
                };
                order * order * other
            }
            // Cholesky: the Section-3.1-style leading-order count n³/3.
            KernelOp::Potrf { n, .. } => (n as u64).pow(3) / 3,
            KernelOp::CopyTriangle { .. } => 0,
            // LU computes both triangles: twice POTRF's count.
            KernelOp::Getrf { n } => 2 * (n as u64).pow(3) / 3,
            // Householder QR: 2mn² - 2n³/3, as 2n²(3m - n)/3 (saturating so
            // malformed shapes audit as zero work rather than underflowing).
            KernelOp::Qr { m, n } => {
                let (m, n) = (m as u64, n as u64);
                2 * n * n * (3 * m).saturating_sub(n) / 3
            }
            // Applying n reflectors of length ~m to k columns: 2nk(2m - n).
            KernelOp::Ormqr { m, n, k } => {
                let (m, n, k) = (m as u64, n as u64, k as u64);
                2 * n * k * (2 * m).saturating_sub(n)
            }
            KernelOp::FactorTri { .. } | KernelOp::PivotApply { .. } => 0,
        }
    }

    /// Shape `(rows, cols)` of the output of this operation.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize) {
        match *self {
            KernelOp::Gemm { m, n, .. } => (m, n),
            KernelOp::Syrk { n, .. } => (n, n),
            KernelOp::Symm { m, n, .. }
            | KernelOp::Trmm { m, n, .. }
            | KernelOp::Trsm { m, n, .. } => (m, n),
            KernelOp::Potrf { n, .. } | KernelOp::CopyTriangle { n, .. } => (n, n),
            KernelOp::Getrf { n } => (n, n + 1),
            KernelOp::Qr { m, n } => (m, n + 1),
            KernelOp::Ormqr { n, k, .. } => (n, k),
            KernelOp::FactorTri { n, .. } => (n, n),
            KernelOp::PivotApply { m, n, .. } => (m, n),
        }
    }

    /// Number of `f64` elements written by this operation (used by
    /// memory-traffic-aware time models). Total across every kernel: safe at
    /// degenerate dimensions — the `n == 0` triangle copy writes nothing
    /// rather than underflowing `n - 1`.
    #[must_use]
    pub fn output_elements(&self) -> u64 {
        match *self {
            KernelOp::Gemm { m, n, .. } => (m as u64) * (n as u64),
            KernelOp::Syrk { n, .. } | KernelOp::Potrf { n, .. } => (n as u64) * (n as u64 + 1) / 2,
            KernelOp::Symm { m, n, .. }
            | KernelOp::Trmm { m, n, .. }
            | KernelOp::Trsm { m, n, .. } => (m as u64) * (n as u64),
            KernelOp::CopyTriangle { n, .. } => {
                let n = n as u64;
                n * n.saturating_sub(1) / 2
            }
            KernelOp::Getrf { n } => (n as u64) * (n as u64 + 1),
            KernelOp::Qr { m, n } => (m as u64) * (n as u64 + 1),
            KernelOp::Ormqr { n, k, .. } => (n as u64) * (k as u64),
            KernelOp::FactorTri { n, .. } => (n as u64) * (n as u64 + 1) / 2,
            KernelOp::PivotApply { m, n, .. } => (m as u64) * (n as u64),
        }
    }

    /// Short BLAS/LAPACK-style mnemonic (`gemm`, `syrk`, `symm`, `trmm`,
    /// `trsm`, `potrf`, `copy`, `getrf`, `qr`, `ormqr`, `factortri`,
    /// `laswp`).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            KernelOp::Gemm { .. } => "gemm",
            KernelOp::Syrk { .. } => "syrk",
            KernelOp::Symm { .. } => "symm",
            KernelOp::Trmm { .. } => "trmm",
            KernelOp::Trsm { .. } => "trsm",
            KernelOp::Potrf { .. } => "potrf",
            KernelOp::CopyTriangle { .. } => "copy",
            KernelOp::Getrf { .. } => "getrf",
            KernelOp::Qr { .. } => "qr",
            KernelOp::Ormqr { .. } => "ormqr",
            KernelOp::FactorTri { .. } => "factortri",
            KernelOp::PivotApply { .. } => "laswp",
        }
    }

    /// Whether this operation performs floating-point work.
    #[must_use]
    pub fn is_compute(&self) -> bool {
        !matches!(
            self,
            KernelOp::CopyTriangle { .. }
                | KernelOp::FactorTri { .. }
                | KernelOp::PivotApply { .. }
        )
    }

    /// The canonical form of this operation under the *isolated-call timing
    /// model*: GEMM's transposition flags are cleared, because a GEMM with
    /// logical dimensions `m×n×k` performs the same work — and, under the
    /// isolated-call benchmark protocol, takes the same time — regardless of
    /// how its operands are stored. Two operations with equal timing keys are
    /// interchangeable for timing memoisation (the planner's prediction
    /// cache, `CallTimeTable`, the calibration store); they are *not*
    /// interchangeable for execution, which still needs the real flags.
    ///
    /// SYRK/SYMM keep their flags: their `uplo`/`trans`/`side` choices change
    /// which triangle is touched and how memory is walked, and the timing
    /// layer makes no invariance claim for them.
    ///
    /// TRMM/TRSM canonicalise the `(uplo, trans)` pair to the *effective*
    /// triangle with the transposition cleared: `op(L)` for a stored-lower
    /// `L` with `trans = T` occupies the upper triangle, walks memory like a
    /// stored-upper untransposed operand, and performs identical work — so
    /// `(Lower, T)` and `(Upper, N)` share one benchmark entry. The `side`
    /// flag is *kept*: multiplying (or solving) from the right walks memory
    /// column-block-wise rather than row-block-wise and parallelises
    /// differently, so left and right variants are separate benchmark
    /// entries even at equal FLOP counts.
    ///
    /// POTRF keeps its `uplo`: factoring into the lower versus the upper
    /// triangle walks memory differently, and the timing layer makes no
    /// invariance claim for it (like SYRK/SYMM).
    ///
    /// The pivoted-factorisation family (GETRF, QR, ORMQR, FactorTri,
    /// PivotApply) is already canonical: none carries a transposition flag,
    /// and FactorTri keeps its `uplo` for the same reason POTRF does.
    #[must_use]
    pub fn timing_key(&self) -> KernelOp {
        match *self {
            KernelOp::Gemm { m, n, k, .. } => KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m,
                n,
                k,
            },
            KernelOp::Trmm {
                side,
                uplo,
                trans,
                m,
                n,
            } => KernelOp::Trmm {
                side,
                uplo: uplo.under(trans),
                trans: Trans::No,
                m,
                n,
            },
            KernelOp::Trsm {
                side,
                uplo,
                trans,
                m,
                n,
            } => KernelOp::Trsm {
                side,
                uplo: uplo.under(trans),
                trans: Trans::No,
                m,
                n,
            },
            ref other => other.clone(),
        }
    }
}

impl fmt::Display for KernelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            KernelOp::Gemm {
                transa,
                transb,
                m,
                n,
                k,
            } => write!(
                f,
                "gemm({}{} {}x{}x{})",
                transa.tag(),
                transb.tag(),
                m,
                n,
                k
            ),
            KernelOp::Syrk { uplo, trans, n, k } => {
                write!(f, "syrk({}{} {}x{})", uplo.tag(), trans.tag(), n, k)
            }
            KernelOp::Symm { side, uplo, m, n } => {
                write!(f, "symm({}{} {}x{})", side.tag(), uplo.tag(), m, n)
            }
            KernelOp::Trmm {
                side,
                uplo,
                trans,
                m,
                n,
            } => {
                write!(
                    f,
                    "trmm({}{}{} {}x{})",
                    side.tag(),
                    uplo.tag(),
                    trans.tag(),
                    m,
                    n
                )
            }
            KernelOp::Trsm {
                side,
                uplo,
                trans,
                m,
                n,
            } => {
                write!(
                    f,
                    "trsm({}{}{} {}x{})",
                    side.tag(),
                    uplo.tag(),
                    trans.tag(),
                    m,
                    n
                )
            }
            KernelOp::Potrf { uplo, n } => {
                write!(f, "potrf({} {}x{})", uplo.tag(), n, n)
            }
            KernelOp::CopyTriangle { uplo, n } => {
                write!(f, "copy({} {0}x{0} tri {1})", n, uplo.tag())
            }
            KernelOp::Getrf { n } => write!(f, "getrf({n}x{n})"),
            KernelOp::Qr { m, n } => write!(f, "qr({m}x{n})"),
            KernelOp::Ormqr { m, n, k } => write!(f, "ormqr({m}x{n} rhs {k})"),
            KernelOp::FactorTri { uplo, n } => {
                write!(f, "factortri({} {}x{})", uplo.tag(), n, n)
            }
            KernelOp::PivotApply { side, m, n } => {
                write!(f, "laswp({} {m}x{n})", side.tag())
            }
        }
    }
}

/// One kernel invocation on symbolic operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelCall {
    /// The operation and its dimensions.
    pub op: KernelOp,
    /// Operands read by the call, in kernel argument order.
    pub inputs: Vec<OperandId>,
    /// Operand written by the call.
    pub output: OperandId,
    /// Human-readable description, e.g. `"M1 := A*B"`.
    pub label: String,
}

impl KernelCall {
    /// FLOP count of this call.
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.op.flops()
    }

    /// Whether `operand` is read by this call.
    #[must_use]
    pub fn reads(&self, operand: OperandId) -> bool {
        self.inputs.contains(&operand)
    }
}

impl fmt::Display for KernelCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.label, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_follow_paper() {
        let op = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 30,
        };
        assert_eq!(op.flops(), 2 * 10 * 20 * 30);
        assert_eq!(op.output_shape(), (10, 20));
        assert_eq!(op.output_elements(), 200);
        assert!(op.is_compute());
    }

    #[test]
    fn syrk_flops_follow_paper() {
        let op = KernelOp::Syrk {
            uplo: Uplo::Lower,
            trans: Trans::No,
            n: 7,
            k: 5,
        };
        assert_eq!(op.flops(), 8 * 7 * 5);
        assert_eq!(op.output_shape(), (7, 7));
        assert_eq!(op.output_elements(), 28);
    }

    #[test]
    fn symm_flops_follow_paper_for_both_sides() {
        let left = KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m: 6,
            n: 9,
        };
        assert_eq!(left.flops(), 2 * 36 * 9);
        let right = KernelOp::Symm {
            side: Side::Right,
            uplo: Uplo::Upper,
            m: 6,
            n: 9,
        };
        assert_eq!(right.flops(), 2 * 81 * 6);
    }

    #[test]
    fn copy_triangle_is_zero_flops_but_not_compute() {
        let op = KernelOp::CopyTriangle {
            uplo: Uplo::Lower,
            n: 100,
        };
        assert_eq!(op.flops(), 0);
        assert!(!op.is_compute());
        assert_eq!(op.output_elements(), 100 * 99 / 2);
    }

    #[test]
    fn call_reads_tracks_inputs() {
        let call = KernelCall {
            op: KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 2,
                n: 2,
                k: 2,
            },
            inputs: vec![OperandId(0), OperandId(1)],
            output: OperandId(4),
            label: "M1 := A*B".into(),
        };
        assert!(call.reads(OperandId(0)));
        assert!(!call.reads(OperandId(4)));
        assert_eq!(call.flops(), 16);
        assert!(call.to_string().contains("M1 := A*B"));
    }

    #[test]
    fn timing_key_clears_gemm_transposition_only() {
        let transposed = KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 30,
        };
        let plain = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 30,
        };
        assert_eq!(transposed.timing_key(), plain);
        assert_eq!(plain.timing_key(), plain);
        // Different logical dimensions stay distinct.
        let other = KernelOp::Gemm {
            transa: Trans::Yes,
            transb: Trans::No,
            m: 10,
            n: 20,
            k: 31,
        };
        assert_ne!(other.timing_key(), plain);
        // Non-GEMM operations are their own timing keys.
        let syrk = KernelOp::Syrk {
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            n: 5,
            k: 6,
        };
        assert_eq!(syrk.timing_key(), syrk);
    }

    #[test]
    fn triangular_ops_follow_the_half_gemm_model() {
        let trmm = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 10,
            n: 7,
        };
        let trsm = KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            m: 10,
            n: 7,
        };
        assert_eq!(trmm.flops(), 10 * 10 * 7);
        assert_eq!(trsm.flops(), trmm.flops());
        // On the right the triangle's order is n, so the count flips to n²·m.
        let trmm_r = KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 10,
            n: 7,
        };
        let trsm_r = KernelOp::Trsm {
            side: Side::Right,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 10,
            n: 7,
        };
        assert_eq!(trmm_r.flops(), 7 * 7 * 10);
        assert_eq!(trsm_r.flops(), trmm_r.flops());
        assert_eq!(trmm_r.output_shape(), (10, 7));
        assert_eq!(trmm.output_shape(), (10, 7));
        assert_eq!(trmm.output_elements(), 70);
        assert!(trmm.is_compute());
        assert_eq!(trmm.mnemonic(), "trmm");
        assert_eq!(trsm.mnemonic(), "trsm");
        let gemm = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 10,
            n: 7,
            k: 10,
        };
        assert_eq!(trmm.flops() * 2, gemm.flops());
    }

    #[test]
    fn triangular_timing_keys_canonicalise_to_the_effective_triangle() {
        // (Lower, T) and (Upper, N) walk the same effective triangle.
        let stored_lower_t = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 64,
            n: 32,
        };
        let stored_upper_n = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 64,
            n: 32,
        };
        assert_eq!(stored_lower_t.timing_key(), stored_upper_n.timing_key());
        // But opposite effective triangles stay distinct.
        let stored_lower_n = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 64,
            n: 32,
        };
        assert_ne!(stored_lower_n.timing_key(), stored_upper_n.timing_key());
        // Same canonicalisation for the solve, and the two ops never collide.
        let trsm = KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 64,
            n: 32,
        };
        assert_eq!(
            trsm.timing_key(),
            KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 64,
                n: 32,
            }
        );
        assert_ne!(trsm.timing_key(), stored_lower_t.timing_key());
    }

    #[test]
    fn triangular_timing_keys_keep_the_side_flag() {
        // Left and right variants never share a benchmark entry, even at
        // equal logical dimensions and FLOP counts — but within one side the
        // effective-triangle canonicalisation still folds (Lower, T) onto
        // (Upper, N).
        let right_lower_t = KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 64,
            n: 64,
        };
        let right_upper_n = KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 64,
            n: 64,
        };
        let left_upper_n = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Upper,
            trans: Trans::No,
            m: 64,
            n: 64,
        };
        assert_eq!(right_lower_t.timing_key(), right_upper_n.timing_key());
        assert_ne!(right_upper_n.timing_key(), left_upper_n.timing_key());
        assert_eq!(right_lower_t.flops(), left_upper_n.flops());
        let trsm_r = KernelOp::Trsm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: Trans::Yes,
            m: 40,
            n: 24,
        };
        assert_eq!(
            trsm_r.timing_key(),
            KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Upper,
                trans: Trans::No,
                m: 40,
                n: 24,
            }
        );
        // Display distinguishes the sides.
        assert!(right_upper_n.to_string().contains("trmm(RU"));
        assert!(left_upper_n.to_string().contains("trmm(LU"));
    }

    #[test]
    fn potrf_follows_the_cubed_over_three_model() {
        let op = KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 90,
        };
        assert_eq!(op.flops(), 90u64.pow(3) / 3);
        assert_eq!(op.output_shape(), (90, 90));
        assert_eq!(op.output_elements(), 90 * 91 / 2);
        assert!(op.is_compute());
        assert_eq!(op.mnemonic(), "potrf");
        let s = op.to_string();
        assert!(s.contains("potrf") && s.contains('L'));
        // POTRF keeps its uplo in the timing key; the two triangles are
        // distinct benchmark entries.
        assert_eq!(op.timing_key(), op);
        let upper = KernelOp::Potrf {
            uplo: Uplo::Upper,
            n: 90,
        };
        assert_ne!(op.timing_key(), upper.timing_key());
        // One sixth of the equal-order GEMM, leading order.
        let gemm = KernelOp::Gemm {
            transa: Trans::No,
            transb: Trans::No,
            m: 90,
            n: 90,
            k: 90,
        };
        assert!(op.flops() * 6 <= gemm.flops());
    }

    #[test]
    fn degenerate_dimensions_never_underflow() {
        // Regression for the `n == 0` CopyTriangle underflow (debug panic /
        // release wraparound pre-fix), plus an audit of every kernel op at
        // zero and unit dimensions.
        let ops = [
            KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 0,
                n: 0,
                k: 0,
            },
            KernelOp::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::No,
                n: 0,
                k: 0,
            },
            KernelOp::Symm {
                side: Side::Left,
                uplo: Uplo::Lower,
                m: 0,
                n: 0,
            },
            KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 0,
                n: 0,
            },
            KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 0,
                n: 0,
            },
            KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 0,
            },
            KernelOp::CopyTriangle {
                uplo: Uplo::Lower,
                n: 0,
            },
        ];
        for op in &ops {
            assert_eq!(op.flops(), 0, "{op}");
            assert_eq!(op.output_elements(), 0, "{op}");
            assert_eq!(op.output_shape(), (0, 0), "{op}");
        }
        // Unit dimensions are tiny but well defined.
        assert_eq!(
            KernelOp::CopyTriangle {
                uplo: Uplo::Upper,
                n: 1
            }
            .output_elements(),
            0
        );
        assert_eq!(
            KernelOp::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::No,
                n: 1,
                k: 1
            }
            .flops(),
            2
        );
    }

    #[test]
    fn pivoted_factorisation_ops_follow_their_flop_models() {
        let getrf = KernelOp::Getrf { n: 90 };
        assert_eq!(getrf.flops(), 2 * 90u64.pow(3) / 3);
        assert_eq!(getrf.output_shape(), (90, 91));
        assert_eq!(getrf.output_elements(), 90 * 91);
        assert!(getrf.is_compute());
        assert_eq!(getrf.mnemonic(), "getrf");
        // Twice POTRF (both triangles), a third of the equal-order GEMM.
        assert_eq!(
            getrf.flops(),
            2 * KernelOp::Potrf {
                uplo: Uplo::Lower,
                n: 90
            }
            .flops()
        );

        let qr = KernelOp::Qr { m: 120, n: 40 };
        assert_eq!(qr.flops(), 2 * 40 * 40 * (3 * 120 - 40) / 3);
        assert_eq!(qr.output_shape(), (120, 41));
        assert_eq!(qr.output_elements(), 120 * 41);
        assert_eq!(qr.mnemonic(), "qr");
        // Square QR is double GETRF: 4n³/3 vs 2n³/3.
        let sq = KernelOp::Qr { m: 90, n: 90 };
        assert_eq!(sq.flops(), 2 * getrf.flops());

        let ormqr = KernelOp::Ormqr {
            m: 120,
            n: 40,
            k: 7,
        };
        assert_eq!(ormqr.flops(), 2 * 40 * 7 * (2 * 120 - 40));
        assert_eq!(ormqr.output_shape(), (40, 7));
        assert_eq!(ormqr.output_elements(), 40 * 7);
        assert_eq!(ormqr.mnemonic(), "ormqr");

        let tri = KernelOp::FactorTri {
            uplo: Uplo::Upper,
            n: 40,
        };
        assert_eq!(tri.flops(), 0);
        assert!(!tri.is_compute());
        assert_eq!(tri.output_shape(), (40, 40));
        assert_eq!(tri.output_elements(), 40 * 41 / 2);
        assert_eq!(tri.mnemonic(), "factortri");

        let piv = KernelOp::PivotApply {
            side: Side::Left,
            m: 90,
            n: 7,
        };
        assert_eq!(piv.flops(), 0);
        assert!(!piv.is_compute());
        assert_eq!(piv.output_shape(), (90, 7));
        assert_eq!(piv.output_elements(), 90 * 7);
        assert_eq!(piv.mnemonic(), "laswp");

        // All five are their own timing keys, and FactorTri keeps its uplo.
        for op in [&getrf, &qr, &ormqr, &tri, &piv] {
            assert_eq!(&op.timing_key(), op, "{op}");
        }
        assert_ne!(
            tri.timing_key(),
            KernelOp::FactorTri {
                uplo: Uplo::Lower,
                n: 40
            }
            .timing_key()
        );
    }

    #[test]
    fn pivoted_ops_never_underflow_at_degenerate_dimensions() {
        // The packed factor keeps its pivot/tau column even at order zero, so
        // output shapes are (0, 1) rather than (0, 0) — but FLOPs, elements
        // and saturating wide shapes must all stay at zero.
        let getrf = KernelOp::Getrf { n: 0 };
        assert_eq!(getrf.flops(), 0);
        assert_eq!(getrf.output_shape(), (0, 1));
        assert_eq!(getrf.output_elements(), 0);
        let qr = KernelOp::Qr { m: 0, n: 0 };
        assert_eq!(qr.flops(), 0);
        assert_eq!(qr.output_shape(), (0, 1));
        assert_eq!(qr.output_elements(), 0);
        // Wide (malformed) QR saturates instead of underflowing.
        assert_eq!(KernelOp::Qr { m: 1, n: 5 }.flops(), 0);
        assert_eq!(KernelOp::Ormqr { m: 2, n: 10, k: 5 }.flops(), 0);
        for op in [
            KernelOp::Ormqr { m: 0, n: 0, k: 0 },
            KernelOp::FactorTri {
                uplo: Uplo::Lower,
                n: 0,
            },
            KernelOp::PivotApply {
                side: Side::Left,
                m: 0,
                n: 0,
            },
        ] {
            assert_eq!(op.flops(), 0, "{op}");
            assert_eq!(op.output_elements(), 0, "{op}");
            assert_eq!(op.output_shape(), (0, 0), "{op}");
        }
        // Unit dimensions are tiny but well defined.
        assert_eq!(KernelOp::Getrf { n: 1 }.flops(), 0); // 2/3 floors to 0
        assert_eq!(KernelOp::Qr { m: 1, n: 1 }.flops(), 2 * (3 - 1) / 3);
        assert_eq!(KernelOp::Ormqr { m: 1, n: 1, k: 1 }.flops(), 2);
    }

    #[test]
    fn mnemonics_and_display_are_informative() {
        let op = KernelOp::Syrk {
            uplo: Uplo::Upper,
            trans: Trans::Yes,
            n: 3,
            k: 4,
        };
        assert_eq!(op.mnemonic(), "syrk");
        let s = op.to_string();
        assert!(s.contains("syrk"));
        assert!(s.contains('U'));
        assert!(s.contains('T'));
    }
}
