//! # lamb-expr
//!
//! The symbolic layer of the `lamb` workspace: linear-algebra expressions,
//! the kernel-call intermediate representation, and the enumeration of all
//! mathematically equivalent algorithms for arbitrary products of (possibly
//! transposed, possibly repeated) matrices.
//!
//! The heart of the crate is the **general enumerator**
//! ([`enumerate`]): a recursive merge search over the flattened factor list
//! of an [`Expr`] tree composed with the rewrite rules of
//! [`rewrite`] (transpose pushing, SYRK for Gram products `X·Xᵀ`, SYMM and
//! triangle copies for symmetric intermediates). The two expressions studied
//! in the ICPP'22 paper fall out as special cases:
//!
//! * the **matrix chain** `X := A·B·C·D` (Section 3.2.1), whose six
//!   algorithms use only GEMM, and
//! * the expression `X := A·Aᵀ·B` (Section 3.2.2), whose five algorithms mix
//!   GEMM, SYRK and SYMM (plus an explicit triangle-to-full copy).
//!
//! The hand-written enumerators in [`chain`] and [`aatb`] are kept as the
//! paper's reference tables; parity tests assert the engine reproduces them
//! exactly. Text expressions such as `"A*A^T*B"` are parsed by [`parse`]
//! into dimension-parameterised [`Expression`]s.
//!
//! An [`Algorithm`] is a sequence of
//! [`KernelCall`]s over symbolic operands; its FLOP
//! count is the sum of the per-kernel FLOP models of Section 3.1. Executors
//! in `lamb-perfmodel` turn these symbolic sequences into measured or
//! simulated execution times.
//!
//! ```
//! use lamb_expr::{Expression, TreeExpression};
//!
//! let chain = TreeExpression::parse("A*B*C*D").unwrap();
//! let algs = chain.algorithms(&[100, 90, 80, 70, 60]).unwrap();
//! assert_eq!(algs.len(), 6); // 3! orderings of the three multiplications
//! let cheapest = algs.iter().map(|a| a.flops()).min().unwrap();
//! assert!(cheapest > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aatb;
pub mod algorithm;
pub mod chain;
pub mod cse;
pub mod enumerate;
pub mod expr;
pub mod expression;
pub mod generator;
pub mod kernel_call;
pub mod operand;
pub mod parse;
pub mod rewrite;

pub use aatb::{enumerate_aatb_algorithms, AatbExpression};
pub use algorithm::{Algorithm, OperandInfo, OperandRole};
pub use chain::{enumerate_chain_algorithms, optimal_chain_order, MatrixChainExpression};
pub use cse::{
    cacheable_identities, eliminate_common_subexpressions, is_cacheable_op, node_identities,
    shared_flops, CseOutcome,
};
pub use enumerate::{
    enumerate_expr_algorithms, enumerate_expr_algorithms_pruned, enumerate_expr_algorithms_with,
    EnumerateOptions,
};
pub use expr::{Expr, Factor, ShapeError, Var};
pub use expression::Expression;
pub use generator::{generate_algorithms, GenerateError, RecognisedPattern};
pub use kernel_call::{KernelCall, KernelOp};
pub use operand::OperandId;
pub use parse::{ParseError, TreeExpression};
