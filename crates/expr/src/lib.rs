//! # lamb-expr
//!
//! The symbolic layer of the `lamb` workspace: linear-algebra expressions,
//! the kernel-call intermediate representation, and the enumeration of all
//! mathematically equivalent algorithms for the two expressions studied in
//! the ICPP'22 paper:
//!
//! * the **matrix chain** `X := A·B·C·D` (Section 3.2.1), whose six
//!   algorithms use only GEMM, and
//! * the expression `X := A·Aᵀ·B` (Section 3.2.2), whose five algorithms mix
//!   GEMM, SYRK and SYMM (plus an explicit triangle-to-full copy).
//!
//! An [`Algorithm`](algorithm::Algorithm) is a sequence of
//! [`KernelCall`](kernel_call::KernelCall)s over symbolic operands; its FLOP
//! count is the sum of the per-kernel FLOP models of Section 3.1. Executors
//! in `lamb-perfmodel` turn these symbolic sequences into measured or
//! simulated execution times.
//!
//! ```
//! use lamb_expr::chain::enumerate_chain_algorithms;
//!
//! let algs = enumerate_chain_algorithms(&[100, 90, 80, 70, 60]);
//! assert_eq!(algs.len(), 6); // 3! orderings of the three multiplications
//! let cheapest = algs.iter().map(|a| a.flops()).min().unwrap();
//! assert!(cheapest > 0);
//! ```

#![deny(missing_docs)]

pub mod aatb;
pub mod algorithm;
pub mod chain;
pub mod expr;
pub mod expression;
pub mod generator;
pub mod kernel_call;
pub mod operand;

pub use aatb::{enumerate_aatb_algorithms, AatbExpression};
pub use algorithm::{Algorithm, OperandInfo, OperandRole};
pub use chain::{enumerate_chain_algorithms, optimal_chain_order, MatrixChainExpression};
pub use expression::Expression;
pub use kernel_call::{KernelCall, KernelOp};
pub use operand::OperandId;
