//! Symbolic operand identifiers.

use std::fmt;

/// Identifier of a symbolic operand (input matrix or intermediate result)
/// within one algorithm. Identifiers are local to an [`crate::Algorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperandId(pub usize);

impl OperandId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OperandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn operand_ids_are_ordered_and_hashable() {
        let a = OperandId(1);
        let b = OperandId(2);
        assert!(a < b);
        assert_eq!(a.index(), 1);
        let set: HashSet<_> = [a, b, OperandId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(OperandId(7).to_string(), "#7");
    }
}
