//! Text front end: parse expressions such as `"A*B*C*D"`, `"A*A^T*B"` or
//! `"L[lower]*B"` into a dimension-parameterised [`Expression`] whose sizes
//! are bound later (at the CLI, from a `--dims` tuple).
//!
//! # Grammar
//!
//! ```text
//! expr    := factor ( "*" factor )*
//! factor  := primary ( "^T" | "'" | "^-1" | "^+" )*
//! primary := IDENT annot? | "(" expr ")"
//! annot   := "[" ("lower" | "upper" | "spd") "]"
//! IDENT   := [A-Za-z][A-Za-z0-9_]*
//! ```
//!
//! Whitespace is ignored. `^T` and the postfix apostrophe both denote
//! transposition; `(A*B)^T` is accepted and rewritten to `B^T*A^T` during
//! enumeration. Reusing a name (as in `A*A^T*B`) reuses the operand.
//!
//! A structure annotation declares the operand structured (and therefore
//! square): `[lower]`/`[upper]` for triangular operands, `[spd]` for
//! symmetric positive-definite ones. The annotation attaches to the *name*,
//! so a later unannotated reuse (`L[lower]*L^T`) still refers to the
//! structured operand, while conflicting annotations are rejected.
//! Triangular operands unlock the TRMM rewrite (`L[lower]*B`); SPD operands
//! unlock the SYMM variants for plain products (`S[spd]*B`). The postfix
//! `^-1` lowers to TRSM for triangular operands (`L[lower]^-1*B` solves
//! `L·X = B`), to the Cholesky realisation `POTRF + TRSM + TRSM` for SPD
//! operands (`S[spd]^-1*B` solves `S·X = B`), and to the pivoted LU
//! realisation `GETRF + LASWP + TRSM + TRSM` for general (unannotated,
//! square) operands (`A^-1*B` solves `A·X = B`). The postfix `^+` is the
//! Moore–Penrose pseudo-inverse: `A^+*b` is the least-squares solve
//! `argmin‖A·x − b‖₂`, lowered to the QR realisation
//! `QR + ORMQR + TRSM` for tall `A`. Pseudo-inverted operands are *not*
//! forced square (`^-1` operands are).
//!
//! # Dimension parameters
//!
//! The parser assigns dimension indices `d0, d1, ...` by walking the
//! flattened factor list and unifying sizes that products, operand reuse and
//! squareness (from structure annotations) force to be equal. For
//! `"A*B*C*D"` this yields the paper's 5-tuple (`A ∈ d0×d1`, ...,
//! `D ∈ d3×d4`); for `"A*A^T*B"` it yields the 3-tuple (`A ∈ d0×d1`,
//! `B ∈ d0×d2`); for `"L[lower]*B"` the square `L` leaves the 2-tuple
//! (`L ∈ d0×d0`, `B ∈ d0×d1`). [`TreeExpression::num_dims`] reports the
//! count; binding a tuple produces a concrete [`Expr`] for the enumerator.
//!
//! ```
//! use lamb_expr::parse::TreeExpression;
//! use lamb_expr::Expression;
//!
//! let aatb = TreeExpression::parse("A*A^T*B").unwrap();
//! assert_eq!(aatb.num_dims(), 3);
//! let algorithms = aatb.algorithms(&[80, 514, 768]).unwrap();
//! assert_eq!(algorithms.len(), 5);
//!
//! let tri = TreeExpression::parse("L[lower]*A*B").unwrap();
//! assert_eq!(tri.num_dims(), 3);
//! let algorithms = tri.algorithms(&[120, 80, 60]).unwrap();
//! assert!(algorithms.iter().any(|a| a.kernel_summary().contains("trmm")));
//! ```

use crate::algorithm::Algorithm;
use crate::enumerate::enumerate_expr_algorithms_pruned;
use crate::expr::Expr;
use crate::expression::Expression;
use crate::generator::GenerateError;
use lamb_matrix::{Structure, Uplo};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while parsing an expression text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input contained no expression.
    Empty,
    /// An unexpected character at `position`.
    UnexpectedChar {
        /// Byte offset into the input.
        position: usize,
        /// The offending character.
        found: char,
    },
    /// The input ended where a factor or `)` was expected.
    UnexpectedEnd,
    /// A `^` not followed by `T`/`t`/`-1`/`+` at `position`.
    BadTranspose {
        /// Byte offset into the input.
        position: usize,
    },
    /// A `[` not followed by `lower]`, `upper]` or `spd]` at `position`.
    BadStructure {
        /// Byte offset into the input.
        position: usize,
    },
    /// The same operand name carries two different structure annotations
    /// (e.g. `L[lower] * L[upper]`).
    ConflictingStructure {
        /// The offending operand name.
        name: String,
    },
    /// An operand name is reused in a way that forces contradictory shapes
    /// (cannot happen with products alone; reserved for future operators).
    InconsistentShapes {
        /// The offending operand name.
        name: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty expression"),
            ParseError::UnexpectedChar { position, found } => {
                write!(f, "unexpected character `{found}` at position {position}")
            }
            ParseError::UnexpectedEnd => write!(f, "unexpected end of expression"),
            ParseError::BadTranspose { position } => {
                write!(
                    f,
                    "`^` must be followed by `T`, `-1` or `+` (position {position})"
                )
            }
            ParseError::BadStructure { position } => {
                write!(
                    f,
                    "`[` must be followed by `lower]`, `upper]` or `spd]` (position {position})"
                )
            }
            ParseError::ConflictingStructure { name } => {
                write!(
                    f,
                    "operand `{name}` carries conflicting structure annotations"
                )
            }
            ParseError::InconsistentShapes { name } => {
                write!(f, "operand `{name}` is used with contradictory shapes")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A shape-less expression AST (shapes are bound later from a dims tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ast {
    Var(String, Option<Structure>),
    Transpose(Box<Ast>),
    Inverse(Box<Ast>),
    PseudoInverse(Box<Ast>),
    Mul(Box<Ast>, Box<Ast>),
}

impl Ast {
    /// Flatten into `(name, swapped)` factors, pushing transposes, inverses
    /// and pseudo-inverses to the leaves: `(A·B)ᵀ = Bᵀ·Aᵀ`,
    /// `(A·B)⁻¹ = B⁻¹·A⁻¹` and `(A·B)⁺ = B⁺·A⁺` all reverse the factor
    /// order, so the order flips exactly when an odd number of accumulated
    /// flags is outstanding (mirroring [`Expr::factors`]). Inversion does
    /// not change a factor's logical shape; transposition and
    /// pseudo-inversion each swap it, so the `swapped` flag used for
    /// dimension walking is their XOR.
    fn factors(&self) -> Vec<(String, bool)> {
        fn go(ast: &Ast, trans: bool, inv: bool, pinv: bool, out: &mut Vec<(String, bool)>) {
            match ast {
                Ast::Var(name, _) => out.push((name.clone(), trans != pinv)),
                Ast::Transpose(inner) => go(inner, !trans, inv, pinv, out),
                Ast::Inverse(inner) => go(inner, trans, !inv, pinv, out),
                Ast::PseudoInverse(inner) => go(inner, trans, inv, !pinv, out),
                Ast::Mul(l, r) => {
                    if trans ^ inv ^ pinv {
                        go(r, trans, inv, pinv, out);
                        go(l, trans, inv, pinv, out);
                    } else {
                        go(l, trans, inv, pinv, out);
                        go(r, trans, inv, pinv, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        go(self, false, false, false, &mut out);
        out
    }

    fn display(&self) -> String {
        match self {
            Ast::Var(name, None) => name.clone(),
            Ast::Var(name, Some(Structure::Triangular(Uplo::Lower))) => format!("{name}[lower]"),
            Ast::Var(name, Some(Structure::Triangular(Uplo::Upper))) => format!("{name}[upper]"),
            Ast::Var(name, Some(Structure::Spd)) => format!("{name}[spd]"),
            Ast::Var(name, Some(Structure::General)) => name.clone(),
            Ast::Transpose(inner) => match inner.as_ref() {
                Ast::Mul(..) => format!("({})^T", inner.display()),
                _ => format!("{}^T", inner.display()),
            },
            Ast::Inverse(inner) => match inner.as_ref() {
                Ast::Mul(..) => format!("({})^-1", inner.display()),
                _ => format!("{}^-1", inner.display()),
            },
            Ast::PseudoInverse(inner) => match inner.as_ref() {
                Ast::Mul(..) => format!("({})^+", inner.display()),
                _ => format!("{}^+", inner.display()),
            },
            Ast::Mul(l, r) => format!("{}*{}", l.display(), r.display()),
        }
    }
}

/// A parsed, dimension-parameterised expression: the tree of a text such as
/// `"A*A^T*B"` plus the mapping from operand shapes to the dimension tuple
/// `d0..d{n-1}`. Implements [`Expression`], so it plugs directly into the
/// `Planner` and the experiment drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeExpression {
    text: String,
    ast: Ast,
    /// Per distinct operand name: `(name, row dim index, col dim index)` in
    /// stored (untransposed) orientation, in order of first appearance.
    var_dims: Vec<(String, usize, usize)>,
    /// Structure annotations per operand name (triangular or SPD operands).
    structures: HashMap<String, Structure>,
    num_dims: usize,
}

/// Union-find over dimension symbols.
fn find(parent: &mut Vec<usize>, x: usize) -> usize {
    if parent[x] != x {
        let root = find(parent, parent[x]);
        parent[x] = root;
    }
    parent[x]
}

fn union(parent: &mut Vec<usize>, a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[rb] = ra;
    }
}

impl TreeExpression {
    /// Parse `text` into a dimension-parameterised expression.
    ///
    /// The grammar (whitespace is ignored):
    ///
    /// ```text
    /// expr    := factor ( "*" factor )*
    /// factor  := primary ( "^T" | "'" )*
    /// primary := IDENT | "(" expr ")"
    /// IDENT   := [A-Za-z][A-Za-z0-9_]*
    /// ```
    ///
    /// Reusing a name (as in `A*A^T*B`) reuses the operand; dimension
    /// indices `d0, d1, ...` are inferred by unifying the sizes that
    /// products and operand reuse force to be equal.
    ///
    /// ```
    /// use lamb_expr::{Expression, TreeExpression};
    ///
    /// // The paper's matrix chain: 4 matrices, the 5-tuple (d0..d4), and
    /// // 3! = 6 multiplication orders.
    /// let chain = TreeExpression::parse("A*B*C*D").unwrap();
    /// assert_eq!(chain.num_dims(), 5);
    /// assert_eq!(chain.algorithms(&[100, 90, 80, 70, 60]).unwrap().len(), 6);
    ///
    /// // The paper's Gram product: reusing `A` ties the dimensions together,
    /// // leaving the 3-tuple (d0, d1, d2), and the SYRK/SYMM rewrites yield
    /// // the 5 algorithms of Section 3.2.2.
    /// let aatb = TreeExpression::parse("A*A^T*B").unwrap();
    /// assert_eq!(aatb.num_dims(), 3);
    /// assert_eq!(aatb.algorithms(&[80, 514, 768]).unwrap().len(), 5);
    ///
    /// // Parenthesised transposes distribute: (B^T * A)^T == A^T * B, and a
    /// // postfix apostrophe means the same as ^T.
    /// let t = TreeExpression::parse("(B^T * A)^T").unwrap();
    /// assert_eq!(t.num_dims(), TreeExpression::parse("A' * B").unwrap().num_dims());
    ///
    /// // Malformed input is rejected with a position.
    /// assert!(TreeExpression::parse("A*(B").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let ast = Parser::new(text).parse()?;
        let factors = ast.factors();
        let structures = collect_annotations(&ast)?;

        // Two symbols (stored rows, stored cols) per distinct name.
        let mut sym_of: HashMap<String, (usize, usize)> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut next = 0;
        for (name, _) in &factors {
            sym_of.entry(name.clone()).or_insert_with(|| {
                order.push(name.clone());
                let pair = (next, next + 1);
                next += 2;
                pair
            });
        }
        let mut parent: Vec<usize> = (0..next).collect();
        // Structured (triangular or SPD) and inverted operands are square:
        // their row and column sizes unify.
        for name in structures.keys().chain(collect_inverted_names(&ast).iter()) {
            let (r, c) = sym_of[name];
            union(&mut parent, r, c);
        }
        let logical = |sym_of: &HashMap<String, (usize, usize)>, name: &str, t: bool| {
            let (r, c) = sym_of[name];
            if t {
                (c, r)
            } else {
                (r, c)
            }
        };
        for pair in factors.windows(2) {
            let (_, lc) = logical(&sym_of, &pair[0].0, pair[0].1);
            let (rr, _) = logical(&sym_of, &pair[1].0, pair[1].1);
            union(&mut parent, lc, rr);
        }

        // Assign dimension indices in boundary-walk order: rows of the first
        // factor, then the columns of each factor in turn.
        let mut index_of_root: HashMap<usize, usize> = HashMap::new();
        let mut assign = |parent: &mut Vec<usize>, sym: usize| {
            let root = find(parent, sym);
            let n = index_of_root.len();
            *index_of_root.entry(root).or_insert(n)
        };
        let (first_row, _) = logical(&sym_of, &factors[0].0, factors[0].1);
        let _ = assign(&mut parent, first_row);
        for (name, t) in &factors {
            let (_, c) = logical(&sym_of, name, *t);
            let _ = assign(&mut parent, c);
        }
        let num_dims = index_of_root.len();
        let var_dims = order
            .iter()
            .map(|name| {
                let (r, c) = sym_of[name];
                (
                    name.clone(),
                    index_of_root[&find(&mut parent, r)],
                    index_of_root[&find(&mut parent, c)],
                )
            })
            .collect();
        Ok(TreeExpression {
            text: ast.display(),
            ast,
            var_dims,
            structures,
            num_dims,
        })
    }

    /// Bind the dimension tuple and build the concrete [`Expr`] tree.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` differs from [`TreeExpression::num_dims`]
    /// (callers such as the `Planner` validate the tuple first).
    #[must_use]
    pub fn bind(&self, dims: &[usize]) -> Expr {
        assert_eq!(
            dims.len(),
            self.num_dims,
            "dimension tuple length mismatch for `{}`",
            self.text
        );
        let shapes: HashMap<&str, (usize, usize)> = self
            .var_dims
            .iter()
            .map(|(name, r, c)| (name.as_str(), (dims[*r], dims[*c])))
            .collect();
        fn build(
            ast: &Ast,
            shapes: &HashMap<&str, (usize, usize)>,
            structures: &HashMap<String, Structure>,
        ) -> Expr {
            match ast {
                Ast::Var(name, _) => {
                    let (r, c) = shapes[name.as_str()];
                    // The annotation attaches to the name, so an unannotated
                    // reuse still builds the structured operand.
                    match structures.get(name) {
                        Some(&Structure::Triangular(uplo)) => Expr::tri_var(name, r, uplo),
                        Some(&Structure::Spd) => Expr::spd_var(name, r),
                        _ => Expr::var(name, r, c),
                    }
                }
                Ast::Transpose(inner) => build(inner, shapes, structures).t(),
                Ast::Inverse(inner) => build(inner, shapes, structures).inv(),
                Ast::PseudoInverse(inner) => build(inner, shapes, structures).pinv(),
                Ast::Mul(l, r) => build(l, shapes, structures).mul(build(r, shapes, structures)),
            }
        }
        build(&self.ast, &shapes, &self.structures)
    }

    /// The normalized expression text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The `(name, row dim index, col dim index)` of every distinct operand,
    /// in order of first appearance.
    #[must_use]
    pub fn operand_dims(&self) -> &[(String, usize, usize)] {
        &self.var_dims
    }

    /// The declared triangle of `name`, if the expression annotates it as
    /// triangular.
    #[must_use]
    pub fn triangle_of(&self, name: &str) -> Option<Uplo> {
        self.structure_of(name).triangle()
    }

    /// The declared structure of `name` ([`Structure::General`] when the
    /// expression carries no annotation for it).
    #[must_use]
    pub fn structure_of(&self, name: &str) -> Structure {
        self.structures
            .get(name)
            .copied()
            .unwrap_or(Structure::General)
    }
}

/// Names of operands that appear under an (uncancelled) inverse; inversion
/// forces squareness during dimension unification.
fn collect_inverted_names(ast: &Ast) -> Vec<String> {
    fn go(ast: &Ast, inv: bool, out: &mut Vec<String>) {
        match ast {
            Ast::Var(name, _) => {
                if inv && !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Ast::Transpose(inner) => go(inner, inv, out),
            Ast::Inverse(inner) => go(inner, !inv, out),
            // Pseudo-inversion does NOT force squareness: `A^+` of a tall
            // `A` is exactly the point of the least-squares form.
            Ast::PseudoInverse(inner) => go(inner, inv, out),
            Ast::Mul(l, r) => {
                go(l, inv, out);
                go(r, inv, out);
            }
        }
    }
    let mut out = Vec::new();
    go(ast, false, &mut out);
    out
}

/// Collect the structure annotations of every `Var` occurrence, rejecting
/// names annotated with two different structures.
fn collect_annotations(ast: &Ast) -> Result<HashMap<String, Structure>, ParseError> {
    fn go(ast: &Ast, out: &mut HashMap<String, Structure>) -> Result<(), ParseError> {
        match ast {
            Ast::Var(_, None) => Ok(()),
            Ast::Var(name, Some(structure)) => match out.insert(name.clone(), *structure) {
                Some(prev) if prev != *structure => {
                    Err(ParseError::ConflictingStructure { name: name.clone() })
                }
                _ => Ok(()),
            },
            Ast::Transpose(inner) | Ast::Inverse(inner) | Ast::PseudoInverse(inner) => {
                go(inner, out)
            }
            Ast::Mul(l, r) => {
                go(l, out)?;
                go(r, out)
            }
        }
    }
    let mut out = HashMap::new();
    go(ast, &mut out)?;
    Ok(out)
}

impl fmt::Display for TreeExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

impl Expression for TreeExpression {
    fn name(&self) -> String {
        self.text.clone()
    }

    fn num_dims(&self) -> usize {
        self.num_dims
    }

    fn algorithms(&self, dims: &[usize]) -> Result<Vec<Algorithm>, GenerateError> {
        enumerate_expr_algorithms_pruned(&self.bind(dims), None)
    }

    fn algorithms_pruned(
        &self,
        dims: &[usize],
        top_k: Option<usize>,
    ) -> Result<Vec<Algorithm>, GenerateError> {
        enumerate_expr_algorithms_pruned(&self.bind(dims), top_k)
    }
}

/// Recursive-descent parser over the byte positions of the input.
struct Parser<'a> {
    text: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            chars: text.char_indices().collect(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.pos), Some((_, c)) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<(usize, char)> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn parse(mut self) -> Result<Ast, ParseError> {
        if self.peek().is_none() {
            return Err(ParseError::Empty);
        }
        let ast = self.expr()?;
        match self.peek() {
            None => Ok(ast),
            Some((position, found)) => Err(ParseError::UnexpectedChar { position, found }),
        }
    }

    fn expr(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.factor()?;
        while let Some((_, '*')) = self.peek() {
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Ast::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Ast, ParseError> {
        let mut ast = self.primary()?;
        loop {
            match self.peek() {
                Some((_, '\'')) => {
                    self.pos += 1;
                    ast = Ast::Transpose(Box::new(ast));
                }
                Some((position, '^')) => {
                    self.pos += 1;
                    match self.peek() {
                        Some((_, 'T' | 't')) => {
                            self.pos += 1;
                            ast = Ast::Transpose(Box::new(ast));
                        }
                        Some((_, '-')) => {
                            self.pos += 1;
                            match self.peek() {
                                Some((_, '1')) => {
                                    self.pos += 1;
                                    ast = Ast::Inverse(Box::new(ast));
                                }
                                _ => return Err(ParseError::BadTranspose { position }),
                            }
                        }
                        Some((_, '+')) => {
                            self.pos += 1;
                            ast = Ast::PseudoInverse(Box::new(ast));
                        }
                        _ => return Err(ParseError::BadTranspose { position }),
                    }
                }
                _ => return Ok(ast),
            }
        }
    }

    fn primary(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Err(ParseError::UnexpectedEnd),
            Some((_, '(')) => {
                self.pos += 1;
                let inner = self.expr()?;
                match self.peek() {
                    Some((_, ')')) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    Some((position, found)) => Err(ParseError::UnexpectedChar { position, found }),
                    None => Err(ParseError::UnexpectedEnd),
                }
            }
            Some((start, c)) if c.is_ascii_alphabetic() => {
                let mut end = self.pos + 1;
                while matches!(self.chars.get(end), Some((_, c)) if c.is_ascii_alphanumeric() || *c == '_')
                {
                    end += 1;
                }
                let stop = self
                    .chars
                    .get(end)
                    .map_or(self.text.len(), |(offset, _)| *offset);
                self.pos = end;
                let name = self.text[start..stop].to_string();
                let uplo = self.structure_annotation()?;
                Ok(Ast::Var(name, uplo))
            }
            Some((position, found)) => Err(ParseError::UnexpectedChar { position, found }),
        }
    }

    /// Parse an optional `[lower]` / `[upper]` / `[spd]` structure
    /// annotation.
    fn structure_annotation(&mut self) -> Result<Option<Structure>, ParseError> {
        let Some((position, '[')) = self.peek() else {
            return Ok(None);
        };
        self.pos += 1;
        let mut word = String::new();
        while let Some((_, c)) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(c.to_ascii_lowercase());
                self.pos += 1;
            } else {
                break;
            }
        }
        match self.peek() {
            Some((_, ']')) => self.pos += 1,
            _ => return Err(ParseError::BadStructure { position }),
        }
        match word.as_str() {
            "lower" => Ok(Some(Structure::Triangular(Uplo::Lower))),
            "upper" => Ok(Some(Structure::Triangular(Uplo::Upper))),
            "spd" => Ok(Some(Structure::Spd)),
            _ => Err(ParseError::BadStructure { position }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_chain_gets_the_paper_dimension_tuple() {
        let chain = TreeExpression::parse("A*B*C*D").unwrap();
        assert_eq!(chain.num_dims(), 5);
        assert_eq!(chain.name(), "A*B*C*D");
        assert_eq!(
            chain.operand_dims(),
            &[
                ("A".into(), 0, 1),
                ("B".into(), 1, 2),
                ("C".into(), 2, 3),
                ("D".into(), 3, 4)
            ]
        );
        let algs = chain.algorithms(&[10, 20, 30, 40, 50]).unwrap();
        assert_eq!(algs.len(), 6);
    }

    #[test]
    fn aatb_reuses_the_operand_and_has_three_dims() {
        let aatb = TreeExpression::parse("A*A^T*B").unwrap();
        assert_eq!(aatb.num_dims(), 3);
        assert_eq!(
            aatb.operand_dims(),
            &[("A".into(), 0, 1), ("B".into(), 0, 2)]
        );
        let algs = aatb.algorithms(&[80, 514, 768]).unwrap();
        assert_eq!(algs.len(), 5);
    }

    #[test]
    fn sandwich_expression_unifies_to_two_dims() {
        // A^T*B*A forces B to be square of A's row size: with the tuple
        // (d0, d1), A is d1 x d0 and B is d1 x d1.
        let e = TreeExpression::parse("A^T*B*A").unwrap();
        assert_eq!(e.num_dims(), 2);
        let expr = e.bind(&[10, 6]);
        assert_eq!(expr.shape().unwrap(), (10, 10));
    }

    #[test]
    fn transposed_products_and_apostrophes_parse() {
        let e = TreeExpression::parse("(A*B)'").unwrap();
        assert_eq!(e.name(), "(A*B)^T");
        assert_eq!(e.num_dims(), 3);
        // (A*B)^T = B^T*A^T: two factors, one algorithm. Dimension indices
        // follow the flattened order, so B^T is d0 x d1 and A^T is d1 x d2.
        let algs = e.algorithms(&[4, 5, 6]).unwrap();
        assert_eq!(algs.len(), 1);
        let out = algs[0].output().unwrap();
        assert_eq!((out.rows, out.cols), (4, 6));
    }

    #[test]
    fn double_transpose_cancels() {
        let e = TreeExpression::parse("A^T^T*B").unwrap();
        assert_eq!(e.num_dims(), 3);
        let algs = e.algorithms(&[3, 4, 5]).unwrap();
        assert_eq!(algs[0].output().unwrap().rows, 3);
    }

    #[test]
    fn whitespace_and_long_names_are_accepted() {
        let e = TreeExpression::parse("  Input1 * Weights_2^T ").unwrap();
        assert_eq!(e.num_dims(), 3);
        assert_eq!(e.operand_dims()[1].0, "Weights_2");
        // Whitespace is ignored everywhere, including between `^` and `T`.
        let spaced = TreeExpression::parse("A ^ T * B").unwrap();
        assert_eq!(spaced.name(), "A^T*B");
        assert_eq!(spaced.num_dims(), 3);
    }

    #[test]
    fn squares_unify_dimensions() {
        let e = TreeExpression::parse("A*A").unwrap();
        assert_eq!(e.num_dims(), 1, "A*A forces A to be square");
        let algs = e.algorithms(&[8]).unwrap();
        assert_eq!(algs[0].flops(), 2 * 8 * 8 * 8);
    }

    #[test]
    fn parse_errors_are_reported_with_positions() {
        assert_eq!(TreeExpression::parse(""), Err(ParseError::Empty));
        assert_eq!(TreeExpression::parse("   "), Err(ParseError::Empty));
        assert_eq!(TreeExpression::parse("A*"), Err(ParseError::UnexpectedEnd));
        assert_eq!(
            TreeExpression::parse("A^"),
            Err(ParseError::BadTranspose { position: 1 })
        );
        assert_eq!(
            TreeExpression::parse("(A*B"),
            Err(ParseError::UnexpectedEnd)
        );
        assert!(matches!(
            TreeExpression::parse("A*B)"),
            Err(ParseError::UnexpectedChar { found: ')', .. })
        ));
        assert!(matches!(
            TreeExpression::parse("2A"),
            Err(ParseError::UnexpectedChar { found: '2', .. })
        ));
        let err = ParseError::UnexpectedChar {
            position: 3,
            found: '?',
        };
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn structure_annotations_parse_and_square_the_operand() {
        let e = TreeExpression::parse("L[lower]*B").unwrap();
        assert_eq!(e.name(), "L[lower]*B");
        assert_eq!(e.num_dims(), 2, "L is square, so only (d0, d1) remain");
        assert_eq!(e.triangle_of("L"), Some(lamb_matrix::Uplo::Lower));
        assert_eq!(e.triangle_of("B"), None);
        let algs = e.algorithms(&[50, 20]).unwrap();
        assert_eq!(algs.len(), 2);
        assert!(algs.iter().any(|a| a.kernel_summary() == "trmm"));
        // Upper annotation and case-insensitivity.
        let u = TreeExpression::parse("U[UPPER]*B").unwrap();
        assert_eq!(u.triangle_of("U"), Some(lamb_matrix::Uplo::Upper));
        assert_eq!(u.name(), "U[upper]*B");
    }

    #[test]
    fn annotations_attach_to_the_name_across_reuses() {
        // The unannotated second occurrence still refers to the triangular
        // operand; L*L^T is the Cholesky-style Gram product.
        let e = TreeExpression::parse("L[lower]*L^T").unwrap();
        assert_eq!(e.num_dims(), 1);
        let algs = e.algorithms(&[30]).unwrap();
        assert_eq!(algs[0].kernel_summary(), "syrk,copy");
    }

    #[test]
    fn inverse_parses_and_lowers_to_trsm() {
        let e = TreeExpression::parse("L[lower]^-1 * B").unwrap();
        assert_eq!(e.name(), "L[lower]^-1*B");
        assert_eq!(e.num_dims(), 2);
        let algs = e.algorithms(&[40, 10]).unwrap();
        assert_eq!(algs.len(), 1);
        assert_eq!(algs[0].kernel_summary(), "trsm");
        // A transposed solve: (L^T)^-1.
        let t = TreeExpression::parse("L[lower]^T^-1*B").unwrap();
        let algs_t = t.algorithms(&[40, 10]).unwrap();
        assert_eq!(algs_t[0].kernel_summary(), "trsm");
    }

    #[test]
    fn spd_annotations_parse_square_the_operand_and_reach_the_cholesky_rewrite() {
        let e = TreeExpression::parse("S[spd]^-1 * B").unwrap();
        assert_eq!(e.name(), "S[spd]^-1*B");
        assert_eq!(e.num_dims(), 2, "S is square, so only (d0, d1) remain");
        assert_eq!(e.structure_of("S"), Structure::Spd);
        assert_eq!(e.structure_of("B"), Structure::General);
        assert_eq!(e.triangle_of("S"), None);
        let algs = e.algorithms(&[40, 10]).unwrap();
        assert_eq!(algs.len(), 1, "an SPD solve has exactly one realisation");
        assert_eq!(algs[0].kernel_summary(), "potrf,trsm,trsm");
        // A plain SPD product gets the SYMM-versus-GEMM pair, and the
        // annotation is case-insensitive.
        let p = TreeExpression::parse("S[SPD]*B").unwrap();
        assert_eq!(p.name(), "S[spd]*B");
        let algs_p = p.algorithms(&[30, 12]).unwrap();
        let summaries: Vec<String> = algs_p.iter().map(|a| a.kernel_summary()).collect();
        assert!(summaries.contains(&"symm".to_string()), "{summaries:?}");
        assert!(summaries.contains(&"gemm".to_string()), "{summaries:?}");
        // Conflicting structure annotations are rejected across kinds too.
        assert!(matches!(
            TreeExpression::parse("S[spd]*S[lower]"),
            Err(ParseError::ConflictingStructure { .. })
        ));
    }

    #[test]
    fn triangular_parse_errors_are_informative() {
        assert!(matches!(
            TreeExpression::parse("L[diag]*B"),
            Err(ParseError::BadStructure { .. })
        ));
        assert!(matches!(
            TreeExpression::parse("L[lower*B"),
            Err(ParseError::BadStructure { .. })
        ));
        assert!(matches!(
            TreeExpression::parse("L[lower]*L[upper]"),
            Err(ParseError::ConflictingStructure { .. })
        ));
        assert!(matches!(
            TreeExpression::parse("A^-2"),
            Err(ParseError::BadTranspose { .. })
        ));
        let err = ParseError::ConflictingStructure { name: "L".into() };
        assert!(err.to_string().contains("conflicting"));
        // An inverse of an unannotated operand now enumerates through the
        // pivoted LU realisation.
        let e = TreeExpression::parse("A^-1*B").unwrap();
        let algs = e.algorithms(&[5, 3]).unwrap();
        assert_eq!(algs.len(), 1);
        assert!(algs[0].kernel_summary().starts_with("getrf"));
    }

    #[test]
    fn general_inverse_parses_squares_the_operand_and_reaches_the_lu_rewrite() {
        let e = TreeExpression::parse("A^-1 * B").unwrap();
        assert_eq!(e.name(), "A^-1*B");
        assert_eq!(e.num_dims(), 2, "A is square, so only (d0, d1) remain");
        let algs = e.algorithms(&[24, 7]).unwrap();
        assert_eq!(algs.len(), 1, "a general solve has exactly one realisation");
        assert_eq!(
            algs[0].kernel_summary(),
            "getrf,factortri,factortri,laswp,trsm,trsm"
        );
    }

    #[test]
    fn pseudo_inverse_parses_without_squaring_and_reaches_the_qr_rewrite() {
        let e = TreeExpression::parse("A^+ * b").unwrap();
        assert_eq!(e.name(), "A^+*b");
        // A stays rectangular. Dimension indices follow the flattened
        // logical order (A^+ first), so A is d1 x d0 and b is d1 x d2.
        assert_eq!(e.num_dims(), 3);
        let algs = e.algorithms(&[12, 40, 1]).unwrap();
        assert_eq!(
            algs.len(),
            1,
            "a least-squares solve has exactly one realisation"
        );
        assert_eq!(algs[0].kernel_summary(), "qr,factortri,ormqr,trsm");
        let out = algs[0].output().unwrap();
        assert_eq!((out.rows, out.cols), (12, 1));
        // A wide binding is diagnosed at enumeration time, not parse time.
        assert!(e.algorithms(&[40, 12, 1]).is_err());
        // `^` followed by junk is still rejected.
        assert!(matches!(
            TreeExpression::parse("A^*b"),
            Err(ParseError::BadTranspose { .. })
        ));
    }

    #[test]
    fn planner_accepts_a_parsed_expression() {
        use lamb_matrix::Trans;
        let e = TreeExpression::parse("A^T*B*C").unwrap();
        assert_eq!(e.num_dims(), 4);
        let algs = e.algorithms(&[7, 9, 11, 13]).unwrap();
        assert_eq!(algs.len(), 2);
        for alg in &algs {
            assert!(alg.is_well_formed());
        }
        // The A^T leaf keeps its transposition in the GEMM flags.
        let first = &algs[0].calls[0];
        match first.op {
            crate::kernel_call::KernelOp::Gemm { transa, .. } => {
                assert_eq!(transa, Trans::Yes);
            }
            _ => panic!("expected GEMM"),
        }
    }
}
