//! The rewrite-rule layer of the general enumerator: structural opportunities
//! that let one product step be computed by different (sets of) kernels.
//!
//! The enumerator in [`crate::enumerate`] walks an expression tree as a list
//! of factors and repeatedly merges two adjacent sub-results `L·R`. For each
//! merge this module reports the set of *variants* — kernel sequences that
//! compute the same product. Three families of rewrites are recognised:
//!
//! * **Transpose pushing** `(A·B)ᵀ → Bᵀ·Aᵀ` happens before enumeration, when
//!   the tree is flattened by [`crate::expr::Expr::factors`]: transposes are
//!   moved onto the leaves (cancelling double transposes), so every merge is
//!   a plain product of possibly-transposed leaves or intermediates.
//! * **Gram products** `X·Xᵀ` (the same leaf on both sides, one transposed)
//!   can be computed by SYRK — writing one triangle of the symmetric result —
//!   instead of GEMM. The SYRK variant stores the result as a triangle; the
//!   GEMM variant stores it fully but the engine still remembers that the
//!   *values* are symmetric. This is what derives the paper's `A·Aᵀ·B`
//!   algorithms 1/2 (SYRK-based) versus 3/4 (GEMM-based).
//! * **Symmetric-operand products**: when one side of a merge is a known
//!   symmetric intermediate it can multiply through SYMM (reading only the
//!   stored triangle) instead of GEMM; a triangle-stored operand can instead
//!   be completed into a full matrix by a triangle copy first and then fed to
//!   GEMM. These derive algorithm 1 (SYMM) versus 2 (copy + GEMM).
//!
//! * **Triangular products**: a side whose values are known triangular (a
//!   triangular leaf, possibly transposed — transposition flips the
//!   triangle — or a product of same-triangle factors) can multiply through
//!   TRMM, reading only its triangle and performing `m²·n` FLOPs instead of
//!   GEMM's `2·m²·n`. Cholesky-style Gram products `L·Lᵀ` stay on the SYRK
//!   rewrite: the Gram rule fires first and the SYRK/GEMM pair already
//!   captures the paper's algorithm set for them.
//! * **Triangular inverses**: an inverse-marked triangular side `L⁻¹·B`
//!   lowers to a left-side TRSM and `B·L⁻¹` to a right-side TRSM — the only
//!   realisations, since no kernel materialises an explicit inverse. Both
//!   sides lower *directly*: a right-side solve is one sided kernel call,
//!   never a transpose round-trip.
//! * **SPD operands**: a symmetric positive-definite side is symmetric and
//!   stored in full, so plain products through it pick up the SYMM-versus-
//!   GEMM variant pair of any full-stored symmetric operand. An
//!   inverse-marked SPD side `S⁻¹·B` lowers to the **Cholesky realisation**
//!   `POTRF(S) = L; TRSM(L,·); TRSM(Lᵀ,·)` — the only realisation of an SPD
//!   inverse, turning expressions that previously died with
//!   `NoRealisation` into planable algorithm sets. The mirrored `B·S⁻¹`
//!   lowers to the same POTRF followed by two *right-side* TRSMs.
//! * **General inverses**: an inverse-marked general square side `A⁻¹·B`
//!   lowers to the **pivoted LU realisation** `F := GETRF(A)`;
//!   `Bₚ := P·B`; `Y := L⁻¹·Bₚ`; `X := U⁻¹·Y` — the only realisation of a
//!   general inverse (no kernel materialises an explicit inverse). The
//!   mirrored `B·A⁻¹ = ((B·U⁻¹)·L⁻¹)·P` runs the right-side solves first and
//!   applies the pivots as *column* swaps last.
//! * **Pseudo-inverses**: a pseudo-inverse-marked tall side `A⁺·b` (the
//!   least-squares solve `argmin‖A·x − b‖₂`) lowers to the **QR
//!   realisation** `F := QR(A)`; `C := Q₁ᵀ·b`; `x := R⁻¹·C`.
//!
//! The variant *order* within each merge follows the paper's presentation
//! (SYRK before GEMM, SYMM before copy+GEMM, and analogously the structured
//! TRMM before GEMM), which is how the engine reproduces the paper's
//! algorithm numbering for `A·Aᵀ·B`.

use lamb_matrix::{Trans, Uplo};

/// How the values of a sub-result are stored, as tracked by the enumerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// A general dense matrix with no known structure.
    General,
    /// A symmetric matrix stored in full (every element explicit), e.g. the
    /// result of computing `X·Xᵀ` with GEMM.
    SymmetricFull,
    /// A symmetric matrix with only the lower triangle stored, e.g. the
    /// result of SYRK. Reading it as a general matrix is invalid until a
    /// triangle copy completes the other half.
    SymmetricTriangle,
}

impl Storage {
    /// Whether the values are known to be symmetric (regardless of storage).
    #[must_use]
    pub fn is_symmetric(self) -> bool {
        !matches!(self, Storage::General)
    }
}

/// The enumerator's view of one side of a merge, as far as the rewrite rules
/// are concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOperand {
    /// Index of the distinct leaf this side is (None for intermediates).
    pub leaf: Option<usize>,
    /// Leaf transposition (always [`Trans::No`] for intermediates).
    pub trans: Trans,
    /// How the side's values are stored.
    pub storage: Storage,
    /// The triangle the side's values *effectively* occupy (transposition
    /// already applied), when the side is known triangular. Triangular sides
    /// are stored fully with explicit zeros, so `storage` stays
    /// [`Storage::General`].
    pub tri: Option<Uplo>,
    /// Whether the side is a symmetric positive-definite leaf. SPD sides are
    /// symmetric and stored in full, so they also carry
    /// [`Storage::SymmetricFull`]; the flag additionally unlocks the Cholesky
    /// realisation when the side is inverse-marked.
    pub spd: bool,
    /// Whether the side is inverse-marked: a triangular inverse lowers to
    /// TRSM, an SPD inverse to POTRF + two TRSMs, and a *general* square
    /// inverse to the pivoted LU realisation GETRF + pivot + two TRSMs.
    pub inv: bool,
    /// Whether the side is pseudo-inverse-marked (`A⁺·b`, the least-squares
    /// solve): lowered to the QR realisation QR + ORMQR + TRSM. Only tall
    /// (`rows >= cols`) operands are realisable.
    pub pinv: bool,
}

impl MergeOperand {
    /// The view of a leaf factor.
    #[must_use]
    pub fn leaf(index: usize, trans: Trans) -> Self {
        MergeOperand {
            leaf: Some(index),
            trans,
            storage: Storage::General,
            tri: None,
            spd: false,
            inv: false,
            pinv: false,
        }
    }

    /// The view of a general leaf factor whose use is inverse-marked
    /// (`A⁻¹·B` for square, unstructured `A`): lowered to the pivoted LU
    /// realisation.
    #[must_use]
    pub fn inv_leaf(index: usize, trans: Trans) -> Self {
        MergeOperand {
            leaf: Some(index),
            trans,
            storage: Storage::General,
            tri: None,
            spd: false,
            inv: true,
            pinv: false,
        }
    }

    /// The view of a general leaf factor whose use is pseudo-inverse-marked
    /// (`A⁺·b`, the least-squares solve): lowered to the QR realisation.
    #[must_use]
    pub fn pinv_leaf(index: usize, trans: Trans) -> Self {
        MergeOperand {
            leaf: Some(index),
            trans,
            storage: Storage::General,
            tri: None,
            spd: false,
            inv: false,
            pinv: true,
        }
    }

    /// The view of a triangular leaf factor; `tri` is the triangle the
    /// factor effectively occupies after `trans`.
    #[must_use]
    pub fn tri_leaf(index: usize, trans: Trans, tri: Uplo, inv: bool) -> Self {
        MergeOperand {
            leaf: Some(index),
            trans,
            storage: Storage::General,
            tri: Some(tri),
            spd: false,
            inv,
            pinv: false,
        }
    }

    /// The view of a symmetric positive-definite leaf factor. SPD operands
    /// are symmetric values stored in full, so plain uses carry
    /// [`Storage::SymmetricFull`] (unlocking the SYMM variants); an
    /// inverse-marked use lowers to the Cholesky realisation instead.
    #[must_use]
    pub fn spd_leaf(index: usize, trans: Trans, inv: bool) -> Self {
        MergeOperand {
            leaf: Some(index),
            trans,
            storage: Storage::SymmetricFull,
            tri: None,
            spd: true,
            inv,
            pinv: false,
        }
    }

    /// The view of an intermediate with the given storage.
    #[must_use]
    pub fn intermediate(storage: Storage) -> Self {
        MergeOperand {
            leaf: None,
            trans: Trans::No,
            storage,
            tri: None,
            spd: false,
            inv: false,
            pinv: false,
        }
    }

    /// The view of a triangular intermediate (e.g. a product of two
    /// same-triangle factors).
    #[must_use]
    pub fn tri_intermediate(tri: Uplo) -> Self {
        MergeOperand {
            leaf: None,
            trans: Trans::No,
            storage: Storage::General,
            tri: Some(tri),
            spd: false,
            inv: false,
            pinv: false,
        }
    }
}

/// One way of computing a merge `L·R`, possibly with preparatory calls
/// (triangle copies) on the operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Plain GEMM.
    Gemm,
    /// `X·Xᵀ` via SYRK; the result is stored as a (lower) triangle.
    SyrkTriangle,
    /// `X·Xᵀ` via SYRK followed by a triangle copy that completes the full
    /// matrix (used when the Gram product is the final result, which must be
    /// stored in full).
    SyrkThenCopy,
    /// `X·Xᵀ` via GEMM; the result is stored in full but known symmetric.
    GemmSymmetric,
    /// SYMM with the left operand as the symmetric one.
    SymmLeft,
    /// SYMM with the right operand as the symmetric one.
    SymmRight,
    /// Triangle-copy the left operand to full storage, then GEMM.
    CopyLeftThenGemm,
    /// Triangle-copy the right operand to full storage, then GEMM.
    CopyRightThenGemm,
    /// Triangle-copy both operands, then GEMM (both sides triangle-stored).
    CopyBothThenGemm,
    /// Triangle-copy the right operand, then SYMM on the (triangle-stored)
    /// left operand.
    CopyRightThenSymmLeft,
    /// Triangle-copy the left operand, then SYMM on the (triangle-stored)
    /// right operand.
    CopyLeftThenSymmRight,
    /// The left operand is triangular: multiply through TRMM, reading only
    /// its effective triangle (`m²·n` FLOPs versus GEMM's `2·m²·n`).
    Trmm,
    /// The *right* operand is triangular (`B·L`): multiply through a
    /// right-side TRMM, reading only its effective triangle (`n²·m` FLOPs
    /// versus GEMM's `2·n²·m`).
    TrmmRight,
    /// The left operand is an inverse-marked triangular: solve through TRSM
    /// (`m²·n` FLOPs). The only realisation of a triangular inverse.
    Trsm,
    /// The *right* operand is an inverse-marked triangular (`B·L⁻¹`): solve
    /// through a right-side TRSM (`n²·m` FLOPs) — realised directly as one
    /// sided kernel call, never via a transpose round-trip. The only
    /// realisation of a right-side triangular inverse.
    TrsmRight,
    /// The left operand is an inverse-marked SPD matrix `S⁻¹`: realise the
    /// solve through a Cholesky factorisation and two triangular solves —
    /// `L := POTRF(S)`, `Y := L⁻¹·B`, `X := L⁻ᵀ·Y` — for `m³/3 + 2·m²·n`
    /// FLOPs. The only realisation of an SPD inverse (no kernel materialises
    /// an explicit inverse).
    CholeskySolve,
    /// The *right* operand is an inverse-marked SPD matrix (`B·S⁻¹`):
    /// realise the solve through a Cholesky factorisation and two
    /// *right-side* triangular solves — `L := POTRF(S)`, `Y := B·L⁻ᵀ`,
    /// `X := Y·L⁻¹` — for `n³/3 + 2·n²·m` FLOPs. The only realisation of a
    /// right-side SPD inverse.
    CholeskySolveRight,
    /// The left operand is an inverse-marked *general* square matrix `A⁻¹`:
    /// realise the solve through a pivoted LU factorisation — `F := GETRF(A)`
    /// (packed `L\U` with the pivot column), extract `L` and `U`, apply the
    /// row permutation to the right-hand side, and finish with two
    /// triangular solves — for `2·m³/3 + 2·m²·n` FLOPs. The only realisation
    /// of a general inverse.
    LuSolve,
    /// The *right* operand is an inverse-marked *general* square matrix
    /// (`B·A⁻¹`): realise the solve through the same pivoted LU
    /// factorisation mirrored — `F := GETRF(A)`, extract `U` and `L`, solve
    /// `Y := B·U⁻¹` and `Z := Y·L⁻¹` from the right, and apply the recorded
    /// pivots as *column* swaps last (`X := Z·P`) — for `2·n³/3 + 2·n²·m`
    /// FLOPs. The only realisation of a right-side general inverse.
    LuSolveRight,
    /// The left operand is a pseudo-inverse-marked tall matrix `A⁺`: realise
    /// the least-squares solve `argmin‖A·x − b‖₂` through a Householder QR
    /// factorisation — `F := QR(A)`, extract `R`, form `C := Q₁ᵀ·b` with
    /// ORMQR, and finish with one triangular solve `x := R⁻¹·C`. The only
    /// realisation of a pseudo-inverse.
    QrSolve,
}

impl MergeKind {
    /// How the result of this merge variant is stored.
    #[must_use]
    pub fn result_storage(self) -> Storage {
        match self {
            MergeKind::SyrkTriangle => Storage::SymmetricTriangle,
            MergeKind::GemmSymmetric => Storage::SymmetricFull,
            _ => Storage::General,
        }
    }

    /// Whether the result of this merge variant stays triangular when both
    /// sides effectively occupy the triangle `uplo` (the product of two
    /// same-triangle matrices — and the solve `L⁻¹·B` against a same-triangle
    /// `B` — is again triangular, with *exact* zeros in the opposite
    /// triangle even through GEMM, which only ever sums explicit zeros
    /// there).
    #[must_use]
    pub fn preserves_triangle(self) -> bool {
        matches!(
            self,
            MergeKind::Trmm
                | MergeKind::TrmmRight
                | MergeKind::Trsm
                | MergeKind::TrsmRight
                | MergeKind::Gemm
        )
    }
}

/// Whether two merge operands form a Gram product `X·Xᵀ` (or `Xᵀ·X`): the
/// same leaf on both sides with opposite transposition and neither side
/// inverse-marked (`L⁻¹·L⁻ᵀ` is an inverse Gram product, which the kernel
/// vocabulary cannot realise as a single SYRK).
#[must_use]
pub fn is_gram_pair(left: &MergeOperand, right: &MergeOperand) -> bool {
    if left.inv || right.inv || left.pinv || right.pinv {
        return false;
    }
    match (left.leaf, right.leaf) {
        (Some(l), Some(r)) => l == r && left.trans != right.trans,
        _ => false,
    }
}

/// The set of variants for the merge `left·right`, in the paper's
/// presentation order.
///
/// `is_final` marks the merge that produces the expression's result, which
/// must be stored in full (a SYRK-produced triangle is completed by a copy).
/// With `rewrites` disabled every merge lowers to plain GEMM (triangle-stored
/// operands cannot occur in that mode because nothing produces them) — except
/// inverse-marked sides, whose TRSM lowering is a *realisation*, not an
/// optimisation, and therefore survives the ablation.
///
/// Inverse-marked sides realise from *either* side: `L⁻¹·B` lowers to a
/// left-side TRSM and `B·L⁻¹` to a right-side TRSM (likewise the Cholesky
/// and LU realisations mirror for `B·S⁻¹` and `B·A⁻¹`). The only remaining
/// dead end in the inverse family is the pseudo-inverse on the right
/// (`b·A⁺`): ORMQR applies `Q₁ᵀ` from the left only, so no kernel sequence
/// realises it and the enumerator abandons such merge orders.
#[must_use]
pub fn merge_variants(
    left: &MergeOperand,
    right: &MergeOperand,
    is_final: bool,
    rewrites: bool,
) -> Vec<MergeKind> {
    // The sided kernels read their rectangular operand as stored: a
    // transposed or triangle-stored partner side rules the structured
    // lowering out.
    let right_plain = right.trans == Trans::No && right.storage != Storage::SymmetricTriangle;
    let left_plain = left.trans == Trans::No && left.storage != Storage::SymmetricTriangle;
    if right.pinv {
        // `b·A⁺` stays unrealisable: ORMQR only applies Q₁ᵀ from the left.
        return Vec::new();
    }
    if right.inv {
        // Right-side inverse realisations mirror the left-side family and,
        // like it, survive the rewrites-off ablation. Two inverses in one
        // merge (`L⁻¹·M⁻¹`) stay unrealisable: each solve needs a plain
        // rectangular partner.
        if !left_plain || left.inv || left.pinv {
            return Vec::new();
        }
        return if right.spd {
            // S⁻ᵀ = S⁻¹ for symmetric S, so transposition is immaterial.
            vec![MergeKind::CholeskySolveRight]
        } else if right.tri.is_some() {
            // Right TRSM carries a transposition flag, so B·L⁻ᵀ realises.
            vec![MergeKind::TrsmRight]
        } else if right.trans == Trans::No {
            // GETRF carries no transposition flag: only the untransposed
            // general inverse realises.
            vec![MergeKind::LuSolveRight]
        } else {
            Vec::new()
        };
    }
    if left.inv {
        // Inverse lowerings are *realisations*, not optimisations: they
        // survive the rewrites-off ablation. The structure of the inverted
        // operand picks the factorisation: triangular solves directly
        // through TRSM, SPD goes through Cholesky, and a general square
        // operand through pivoted LU.
        if !right_plain {
            return Vec::new();
        }
        return if left.spd {
            // S⁻ᵀ = S⁻¹ for symmetric S, so transposition is immaterial.
            vec![MergeKind::CholeskySolve]
        } else if left.tri.is_some() {
            // TRSM carries a transposition flag, so L⁻ᵀ·B also realises.
            vec![MergeKind::Trsm]
        } else if left.trans == Trans::No {
            // GETRF carries no transposition flag: only the untransposed
            // general inverse realises.
            vec![MergeKind::LuSolve]
        } else {
            Vec::new()
        };
    }
    if left.pinv {
        // The pseudo-inverse has exactly one realisation: the QR-based
        // least-squares solve. Like the inverses it survives rewrites-off.
        // QR carries no transposition flag, so only the untransposed
        // pseudo-inverse realises.
        return if right_plain && left.trans == Trans::No {
            vec![MergeKind::QrSolve]
        } else {
            Vec::new()
        };
    }
    if !rewrites {
        return vec![MergeKind::Gemm];
    }
    if is_gram_pair(left, right) {
        // Cholesky-style Gram products of a triangular leaf (L·Lᵀ) stay on
        // the SYRK rewrite, exactly like their dense counterparts.
        return if is_final {
            vec![MergeKind::SyrkThenCopy, MergeKind::Gemm]
        } else {
            vec![MergeKind::SyrkTriangle, MergeKind::GemmSymmetric]
        };
    }
    use Storage::{General, SymmetricFull, SymmetricTriangle};
    // SYMM carries no transposition flags, so the rectangular (general) side
    // of a SYMM must be an untransposed operand; transposed leaves fall back
    // to the GEMM-based variants (GEMM does carry transposition flags).
    let left_symm_partner = left.trans == Trans::No;
    let right_symm_partner = right.trans == Trans::No;
    let mut variants = match (left.storage, right.storage) {
        (SymmetricTriangle, SymmetricTriangle) => vec![
            MergeKind::CopyRightThenSymmLeft,
            MergeKind::CopyLeftThenSymmRight,
            MergeKind::CopyBothThenGemm,
        ],
        (SymmetricTriangle, SymmetricFull) => vec![
            MergeKind::SymmLeft,
            MergeKind::CopyLeftThenSymmRight,
            MergeKind::CopyLeftThenGemm,
        ],
        (SymmetricTriangle, General) => {
            if right_symm_partner {
                vec![MergeKind::SymmLeft, MergeKind::CopyLeftThenGemm]
            } else {
                vec![MergeKind::CopyLeftThenGemm]
            }
        }
        (SymmetricFull, SymmetricTriangle) => vec![
            MergeKind::SymmRight,
            MergeKind::CopyRightThenSymmLeft,
            MergeKind::CopyRightThenGemm,
        ],
        (SymmetricFull, SymmetricFull) => {
            vec![MergeKind::SymmLeft, MergeKind::SymmRight, MergeKind::Gemm]
        }
        (SymmetricFull, General) => {
            if right_symm_partner {
                vec![MergeKind::SymmLeft, MergeKind::Gemm]
            } else {
                vec![MergeKind::Gemm]
            }
        }
        (General, SymmetricTriangle) => {
            if left_symm_partner {
                vec![MergeKind::SymmRight, MergeKind::CopyRightThenGemm]
            } else {
                vec![MergeKind::CopyRightThenGemm]
            }
        }
        (General, SymmetricFull) => {
            if left_symm_partner {
                vec![MergeKind::SymmRight, MergeKind::Gemm]
            } else {
                vec![MergeKind::Gemm]
            }
        }
        (General, General) => vec![MergeKind::Gemm],
    };
    if left.tri.is_some() && right_plain {
        // A triangular left side multiplies through TRMM, reading only its
        // effective triangle — the structured variant leads, like SYRK/SYMM.
        variants.insert(0, MergeKind::Trmm);
    } else if right.tri.is_some() && left_plain {
        // A triangular *right* side multiplies through a right-side TRMM —
        // realised directly as one sided kernel, never a transpose
        // round-trip. (When both sides are triangular the left-side TRMM
        // above already leads; one structured variant per merge suffices.)
        variants.insert(0, MergeKind::TrmmRight);
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_pairs_require_same_leaf_and_opposite_transposition() {
        let a = MergeOperand::leaf(0, Trans::No);
        let at = MergeOperand::leaf(0, Trans::Yes);
        let b = MergeOperand::leaf(1, Trans::No);
        let m = MergeOperand::intermediate(Storage::SymmetricFull);
        assert!(is_gram_pair(&a, &at));
        assert!(is_gram_pair(&at, &a));
        assert!(!is_gram_pair(&a, &a), "A*A is not a Gram product");
        assert!(!is_gram_pair(&a, &b));
        assert!(!is_gram_pair(&m, &m), "intermediates are never Gram pairs");
    }

    #[test]
    fn gram_merges_offer_syrk_then_gemm_in_paper_order() {
        let a = MergeOperand::leaf(0, Trans::No);
        let at = MergeOperand::leaf(0, Trans::Yes);
        assert_eq!(
            merge_variants(&a, &at, false, true),
            vec![MergeKind::SyrkTriangle, MergeKind::GemmSymmetric]
        );
        // As the final result the triangle must be completed by a copy.
        assert_eq!(
            merge_variants(&a, &at, true, true),
            vec![MergeKind::SyrkThenCopy, MergeKind::Gemm]
        );
    }

    #[test]
    fn symmetric_left_operand_offers_symm_before_copy_gemm() {
        let tri = MergeOperand::intermediate(Storage::SymmetricTriangle);
        let full = MergeOperand::intermediate(Storage::SymmetricFull);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&tri, &b, true, true),
            vec![MergeKind::SymmLeft, MergeKind::CopyLeftThenGemm]
        );
        assert_eq!(
            merge_variants(&full, &b, true, true),
            vec![MergeKind::SymmLeft, MergeKind::Gemm]
        );
    }

    #[test]
    fn symmetric_right_operand_mirrors_the_left_rules() {
        let tri = MergeOperand::intermediate(Storage::SymmetricTriangle);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&b, &tri, true, true),
            vec![MergeKind::SymmRight, MergeKind::CopyRightThenGemm]
        );
    }

    #[test]
    fn transposed_rectangular_sides_exclude_symm() {
        // SYMM has no transposition flags: M_sym * B^T cannot be a SYMM.
        let tri = MergeOperand::intermediate(Storage::SymmetricTriangle);
        let full = MergeOperand::intermediate(Storage::SymmetricFull);
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert_eq!(
            merge_variants(&tri, &bt, true, true),
            vec![MergeKind::CopyLeftThenGemm]
        );
        assert_eq!(
            merge_variants(&full, &bt, true, true),
            vec![MergeKind::Gemm]
        );
        assert_eq!(
            merge_variants(&bt, &tri, true, true),
            vec![MergeKind::CopyRightThenGemm]
        );
        assert_eq!(
            merge_variants(&bt, &full, true, true),
            vec![MergeKind::Gemm]
        );
    }

    #[test]
    fn two_triangles_require_at_least_one_copy() {
        let tri = MergeOperand::intermediate(Storage::SymmetricTriangle);
        let variants = merge_variants(&tri, &tri, true, true);
        assert_eq!(variants.len(), 3);
        assert!(!variants.contains(&MergeKind::Gemm));
        assert!(!variants.contains(&MergeKind::SymmLeft));
    }

    #[test]
    fn disabling_rewrites_lowers_everything_to_gemm() {
        let a = MergeOperand::leaf(0, Trans::No);
        let at = MergeOperand::leaf(0, Trans::Yes);
        assert_eq!(merge_variants(&a, &at, false, false), vec![MergeKind::Gemm]);
    }

    #[test]
    fn triangular_left_side_offers_trmm_before_gemm() {
        let l = MergeOperand::tri_leaf(0, Trans::No, Uplo::Lower, false);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&l, &b, true, true),
            vec![MergeKind::Trmm, MergeKind::Gemm]
        );
        // A transposed triangular leaf still multiplies through TRMM (the
        // kernel carries the transposition flag)...
        let lt = MergeOperand::tri_leaf(0, Trans::Yes, Uplo::Upper, false);
        assert_eq!(
            merge_variants(&lt, &b, false, true),
            vec![MergeKind::Trmm, MergeKind::Gemm]
        );
        // ...but a transposed *right* side rules TRMM out (no transb flag),
        // while a triangular right side goes through the right-side TRMM.
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert_eq!(merge_variants(&l, &bt, true, true), vec![MergeKind::Gemm]);
        assert_eq!(
            merge_variants(&b, &l, true, true),
            vec![MergeKind::TrmmRight, MergeKind::Gemm]
        );
        // The triangular intermediate (a product of same-triangle factors)
        // behaves like the leaf.
        let tri_m = MergeOperand::tri_intermediate(Uplo::Lower);
        assert_eq!(
            merge_variants(&tri_m, &b, true, true),
            vec![MergeKind::Trmm, MergeKind::Gemm]
        );
    }

    #[test]
    fn triangular_gram_products_stay_on_syrk() {
        // L·Lᵀ is a Gram pair first: the Cholesky-style product keeps the
        // paper's SYRK/GEMM variant pair.
        let l = MergeOperand::tri_leaf(0, Trans::No, Uplo::Lower, false);
        let lt = MergeOperand::tri_leaf(0, Trans::Yes, Uplo::Upper, false);
        assert!(is_gram_pair(&l, &lt));
        assert_eq!(
            merge_variants(&l, &lt, false, true),
            vec![MergeKind::SyrkTriangle, MergeKind::GemmSymmetric]
        );
        assert_eq!(
            merge_variants(&l, &lt, true, true),
            vec![MergeKind::SyrkThenCopy, MergeKind::Gemm]
        );
    }

    #[test]
    fn inverse_left_side_lowers_to_trsm_only() {
        let linv = MergeOperand::tri_leaf(0, Trans::No, Uplo::Lower, true);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(merge_variants(&linv, &b, true, true), vec![MergeKind::Trsm]);
        // TRSM survives the rewrites-off ablation: it is a realisation, not
        // an optimisation.
        assert_eq!(
            merge_variants(&linv, &b, true, false),
            vec![MergeKind::Trsm]
        );
        // A transposed right side has no kernel.
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert!(merge_variants(&linv, &bt, true, true).is_empty());
        // Inverses never form Gram pairs.
        let linv_t = MergeOperand::tri_leaf(0, Trans::Yes, Uplo::Upper, true);
        assert!(!is_gram_pair(&linv, &linv_t));
    }

    #[test]
    fn inverse_right_side_lowers_to_the_right_trsm_only() {
        let linv = MergeOperand::tri_leaf(0, Trans::No, Uplo::Lower, true);
        let b = MergeOperand::leaf(1, Trans::No);
        // B·L⁻¹ realises directly as one right-side TRSM — no transpose
        // round-trip, and it survives the rewrites-off ablation.
        assert_eq!(
            merge_variants(&b, &linv, true, true),
            vec![MergeKind::TrsmRight]
        );
        assert_eq!(
            merge_variants(&b, &linv, true, false),
            vec![MergeKind::TrsmRight]
        );
        // B·L⁻ᵀ realises too: the right TRSM carries the transposition flag.
        let linv_t = MergeOperand::tri_leaf(0, Trans::Yes, Uplo::Upper, true);
        assert_eq!(
            merge_variants(&b, &linv_t, true, true),
            vec![MergeKind::TrsmRight]
        );
        // A transposed or triangle-stored *left* partner has no kernel, and
        // two inverses in one merge stay unrealisable.
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert!(merge_variants(&bt, &linv, true, true).is_empty());
        assert!(merge_variants(&linv, &linv_t, true, true).is_empty());
    }

    #[test]
    fn inverse_right_spd_and_general_sides_mirror_the_left_realisations() {
        let b = MergeOperand::leaf(1, Trans::No);
        let sinv = MergeOperand::spd_leaf(0, Trans::No, true);
        assert_eq!(
            merge_variants(&b, &sinv, true, true),
            vec![MergeKind::CholeskySolveRight]
        );
        assert_eq!(
            merge_variants(&b, &sinv, true, false),
            vec![MergeKind::CholeskySolveRight]
        );
        let ainv = MergeOperand::inv_leaf(0, Trans::No);
        assert_eq!(
            merge_variants(&b, &ainv, true, true),
            vec![MergeKind::LuSolveRight]
        );
        assert_eq!(
            merge_variants(&b, &ainv, true, false),
            vec![MergeKind::LuSolveRight]
        );
        // GETRF carries no transposition flag: A⁻ᵀ on the right stays dead.
        let ainv_t = MergeOperand::inv_leaf(0, Trans::Yes);
        assert!(merge_variants(&b, &ainv_t, true, true).is_empty());
        // The pseudo-inverse on the right stays unrealisable (ORMQR applies
        // Q₁ᵀ from the left only).
        let apinv = MergeOperand::pinv_leaf(0, Trans::No);
        assert!(merge_variants(&b, &apinv, true, true).is_empty());
    }

    #[test]
    fn inverse_general_left_side_lowers_to_the_lu_realisation_only() {
        let ainv = MergeOperand::inv_leaf(0, Trans::No);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&ainv, &b, true, true),
            vec![MergeKind::LuSolve]
        );
        // The LU lowering is a realisation, not an optimisation: it survives
        // the rewrites-off ablation.
        assert_eq!(
            merge_variants(&ainv, &b, true, false),
            vec![MergeKind::LuSolve]
        );
        // A transposed right-hand side has no kernel.
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert!(merge_variants(&ainv, &bt, true, true).is_empty());
        // Inverses never form Gram pairs.
        let ainv_t = MergeOperand::inv_leaf(0, Trans::Yes);
        assert!(!is_gram_pair(&ainv, &ainv_t));
    }

    #[test]
    fn pseudo_inverse_left_side_lowers_to_the_qr_realisation_only() {
        let apinv = MergeOperand::pinv_leaf(0, Trans::No);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&apinv, &b, true, true),
            vec![MergeKind::QrSolve]
        );
        // The QR lowering is a realisation: it survives rewrites-off.
        assert_eq!(
            merge_variants(&apinv, &b, true, false),
            vec![MergeKind::QrSolve]
        );
        // A transposed right-hand side has no kernel; a pseudo-inverse on
        // the right is a dead end; pseudo-inverses never form Gram pairs.
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert!(merge_variants(&apinv, &bt, true, true).is_empty());
        assert!(merge_variants(&b, &apinv, true, true).is_empty());
        let apinv_t = MergeOperand::pinv_leaf(0, Trans::Yes);
        assert!(!is_gram_pair(&apinv, &apinv_t));
    }

    #[test]
    fn inverse_spd_left_side_lowers_to_the_cholesky_realisation_only() {
        let sinv = MergeOperand::spd_leaf(0, Trans::No, true);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&sinv, &b, true, true),
            vec![MergeKind::CholeskySolve]
        );
        // The Cholesky lowering is a realisation, not an optimisation: it
        // survives the rewrites-off ablation.
        assert_eq!(
            merge_variants(&sinv, &b, true, false),
            vec![MergeKind::CholeskySolve]
        );
        // A transposed right-hand side has no kernel.
        let bt = MergeOperand::leaf(1, Trans::Yes);
        assert!(merge_variants(&sinv, &bt, true, true).is_empty());
    }

    #[test]
    fn plain_spd_sides_pick_up_the_symm_variants() {
        // A non-inverted SPD operand is a full-stored symmetric matrix, so
        // the existing SYMM-versus-GEMM machinery applies unchanged.
        let s = MergeOperand::spd_leaf(0, Trans::No, false);
        let b = MergeOperand::leaf(1, Trans::No);
        assert_eq!(
            merge_variants(&s, &b, true, true),
            vec![MergeKind::SymmLeft, MergeKind::Gemm]
        );
        assert_eq!(
            merge_variants(&b, &s, true, true),
            vec![MergeKind::SymmRight, MergeKind::Gemm]
        );
        // With rewrites disabled only GEMM remains (SYMM is an optimisation).
        assert_eq!(merge_variants(&s, &b, true, false), vec![MergeKind::Gemm]);
    }

    #[test]
    fn triangle_preservation_covers_the_closed_variants() {
        assert!(MergeKind::Trmm.preserves_triangle());
        assert!(MergeKind::Trsm.preserves_triangle());
        assert!(MergeKind::Gemm.preserves_triangle());
        assert!(!MergeKind::SymmLeft.preserves_triangle());
        assert!(!MergeKind::SyrkTriangle.preserves_triangle());
    }

    #[test]
    fn result_storage_tracks_the_variant() {
        assert_eq!(
            MergeKind::SyrkTriangle.result_storage(),
            Storage::SymmetricTriangle
        );
        assert_eq!(
            MergeKind::GemmSymmetric.result_storage(),
            Storage::SymmetricFull
        );
        assert_eq!(MergeKind::SymmLeft.result_storage(), Storage::General);
        assert!(Storage::SymmetricTriangle.is_symmetric());
        assert!(!Storage::General.is_symmetric());
    }
}
