//! Cache flushing between timed repetitions.
//!
//! The paper's methodology (Section 3.4) flushes the cache prior to each
//! repetition so that every algorithm starts from a cold cache and the
//! *inter-kernel* cache effects within an algorithm are isolated from
//! *inter-repetition* effects. [`CacheFlusher`] reproduces that by streaming
//! through a buffer larger than any realistic last-level cache.

use std::hint::black_box;

/// Default flush buffer size: 64 MiB, comfortably larger than the LLC of the
/// Xeon Silver 4210 used in the paper (14 MiB) and of most desktop parts.
pub const DEFAULT_FLUSH_BYTES: usize = 64 * 1024 * 1024;

/// Evicts cached data by reading and writing a large private buffer.
#[derive(Debug)]
pub struct CacheFlusher {
    buf: Vec<f64>,
    counter: u64,
}

impl CacheFlusher {
    /// Create a flusher with a buffer of approximately `bytes` bytes.
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        let len = (bytes / std::mem::size_of::<f64>()).max(1);
        CacheFlusher {
            buf: vec![0.0; len],
            counter: 0,
        }
    }

    /// Create a flusher with the default 64 MiB buffer.
    #[must_use]
    pub fn with_default_size() -> Self {
        CacheFlusher::new(DEFAULT_FLUSH_BYTES)
    }

    /// Size of the flush buffer in bytes.
    #[must_use]
    pub fn buffer_bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<f64>()
    }

    /// Stream through the buffer (read-modify-write) so its cache lines evict
    /// previously cached operand data. Returns a value derived from the buffer
    /// to keep the optimiser honest.
    pub fn flush(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        let inc = (self.counter % 7) as f64 + 1.0;
        let mut sum = 0.0;
        for x in &mut self.buf {
            *x += inc;
            sum += *x;
        }
        black_box(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flusher_has_requested_size() {
        let f = CacheFlusher::new(8 * 1024);
        assert_eq!(f.buffer_bytes(), 8 * 1024);
    }

    #[test]
    fn flush_touches_every_element() {
        let mut f = CacheFlusher::new(1024);
        let s1 = f.flush();
        let s2 = f.flush();
        // The buffer contents change between flushes, so the checksums differ.
        assert_ne!(s1, s2);
        assert!(f.buf.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn tiny_buffer_still_works() {
        let mut f = CacheFlusher::new(0);
        assert!(f.buffer_bytes() >= std::mem::size_of::<f64>());
        let _ = f.flush();
    }
}
