//! Blocking and parallelisation configuration for the BLAS-3 kernels.

use std::fmt;

/// A register-tile shape of the micro-kernel: the `MR x NR` block of `C` one
/// micro-kernel invocation accumulates.
///
/// Each variant names a dedicated, monomorphised instantiation of
/// [`crate::microkernel::microkernel`] (see
/// [`crate::microkernel::microkernel_dyn`] for the runtime dispatch), so the
/// compiler sees fixed `MR`/`NR` and reliably unrolls and auto-vectorises the
/// accumulator columns. Which variant is fastest depends on the machine's
/// vector width and register file — that is exactly what
/// `lamb calibrate --autotune` measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileVariant {
    /// 8 rows x 4 columns — the historical default: modest register
    /// pressure, good fit for 128/256-bit vector units.
    #[default]
    T8x4,
    /// 8 x 8 — double the B-reuse per packed A load; needs a large register
    /// file (pays off on 512-bit units).
    T8x8,
    /// 4 x 8 — the transposed default; favours wide-`n` outputs.
    T4x8,
    /// 16 x 4 — tall tile, maximises A-panel throughput per B element.
    T16x4,
    /// 8 x 12 — the classic BLIS-style wide tile for machines with many
    /// vector registers.
    T8x12,
}

impl TileVariant {
    /// Every supported variant, in autotune candidate order.
    pub const ALL: [TileVariant; 5] = [
        TileVariant::T8x4,
        TileVariant::T8x8,
        TileVariant::T4x8,
        TileVariant::T16x4,
        TileVariant::T8x12,
    ];

    /// Register-tile height (rows of `C` per micro-tile).
    #[must_use]
    pub const fn mr(self) -> usize {
        match self {
            TileVariant::T8x4 | TileVariant::T8x8 | TileVariant::T8x12 => 8,
            TileVariant::T4x8 => 4,
            TileVariant::T16x4 => 16,
        }
    }

    /// Register-tile width (columns of `C` per micro-tile).
    #[must_use]
    pub const fn nr(self) -> usize {
        match self {
            TileVariant::T8x4 | TileVariant::T16x4 => 4,
            TileVariant::T8x8 | TileVariant::T4x8 => 8,
            TileVariant::T8x12 => 12,
        }
    }

    /// Accumulator length (`mr * nr`) of this variant.
    #[must_use]
    pub const fn acc_len(self) -> usize {
        self.mr() * self.nr()
    }

    /// Stable textual tag (`"8x4"`, ...), used in fingerprints and in the
    /// calibration-store document.
    #[must_use]
    pub const fn tag(self) -> &'static str {
        match self {
            TileVariant::T8x4 => "8x4",
            TileVariant::T8x8 => "8x8",
            TileVariant::T4x8 => "4x8",
            TileVariant::T16x4 => "16x4",
            TileVariant::T8x12 => "8x12",
        }
    }

    /// Parse a [`TileVariant::tag`] back into the variant.
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        TileVariant::ALL.into_iter().find(|v| v.tag() == tag)
    }
}

impl fmt::Display for TileVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Largest accumulator any [`TileVariant`] needs; the driver's stack scratch
/// is sized by this so tile dispatch never allocates.
pub const MAX_TILE_ACC: usize = {
    let mut max = 0;
    let mut i = 0;
    while i < TileVariant::ALL.len() {
        let len = TileVariant::ALL[i].acc_len();
        if len > max {
            max = len;
        }
        i += 1;
    }
    max
};

/// Cache-blocking and parallelisation parameters shared by GEMM, SYRK and
/// SYMM.
///
/// The defaults target a generic x86-64 core: an `MC x KC` block of the packed
/// `A` operand fits comfortably in L2, a `KC x NR` sliver of packed `B` in L1.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockConfig {
    /// Rows of `C` (and of `op(A)`) per cache block.
    pub mc: usize,
    /// Inner (`k`) dimension per cache block.
    pub kc: usize,
    /// Columns of `C` (and of `op(B)`) per outermost block.
    pub nc: usize,
    /// Row-block size of the TRMM/TRSM recurrences: the triangular kernels
    /// walk the triangular operand in diagonal blocks of this order, handling
    /// everything off the diagonal block with the packed rectangular core.
    pub tri_block: usize,
    /// Register-tile shape of the micro-kernel. A tunable like the cache
    /// blocks: the autotuner sweeps it, and it participates in the
    /// fingerprint because timings under different tiles are not comparable.
    pub tile: TileVariant,
    /// Whether to parallelise over column panels of `C` with Rayon.
    pub parallel: bool,
    /// Minimum number of useful FLOPs before the parallel path is taken;
    /// below this the Rayon fork/join overhead dominates.
    pub parallel_flop_threshold: u64,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            mc: 128,
            kc: 256,
            nc: 4096,
            tri_block: 64,
            tile: TileVariant::default(),
            parallel: true,
            parallel_flop_threshold: 2 * 64 * 64 * 64,
        }
    }
}

impl BlockConfig {
    /// A configuration that never uses Rayon; useful for baselines, for
    /// nested-parallel contexts, and for isolating single-core efficiency.
    #[must_use]
    pub fn serial() -> Self {
        BlockConfig {
            parallel: false,
            ..BlockConfig::default()
        }
    }

    /// A configuration with tiny blocks, used by tests to force many edge
    /// cases (partial tiles in every dimension) with small matrices.
    #[must_use]
    pub fn tiny() -> Self {
        BlockConfig {
            mc: 8,
            kc: 8,
            nc: 8,
            tri_block: 3,
            tile: TileVariant::default(),
            parallel: false,
            parallel_flop_threshold: u64::MAX,
        }
    }

    /// This configuration re-tiled to `tile` (blocks untouched).
    #[must_use]
    pub fn with_tile(self, tile: TileVariant) -> Self {
        BlockConfig { tile, ..self }
    }

    /// Decide whether a problem of the given logical dimensions should run in
    /// parallel under this configuration.
    #[must_use]
    pub fn should_parallelise(&self, m: usize, n: usize, k: usize) -> bool {
        if !self.parallel || rayon::current_num_threads() <= 1 {
            return false;
        }
        let flops = 2 * (m as u64) * (n as u64) * (k as u64);
        flops >= self.parallel_flop_threshold && n >= 2 * self.tile.nr()
    }

    /// Width of the column panels distributed to Rayon workers for an output
    /// matrix with `n` columns.
    #[must_use]
    pub fn parallel_panel_width(&self, n: usize) -> usize {
        let nr = self.tile.nr();
        let threads = rayon::current_num_threads().max(1);
        let target = n.div_ceil(threads * 3).max(nr);
        // Round up to a multiple of NR so that full micro-tiles dominate.
        target.div_ceil(nr) * nr
    }

    /// A short, stable fingerprint of every parameter that affects kernel
    /// timing (cache blocks, the triangular-kernel diagonal block, register
    /// tile, parallel policy). Calibration stores record it as staleness
    /// metadata: benchmark times taken under one configuration are not
    /// comparable to runs under another, so every timing-relevant knob —
    /// including the block sizes of kernels added after a store was written —
    /// must contribute to the fingerprint.
    ///
    /// `parallel_flop_threshold` is included unconditionally (not only when
    /// `parallel` is set): two configs that differ only in the parallel
    /// cutoff time differently, and collapsing them to one fingerprint would
    /// defeat store staleness detection.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "mc{}-kc{}-nc{}-tb{}-r{}-pft{}-{}",
            self.mc,
            self.kc,
            self.nc,
            self.tri_block,
            self.tile.tag(),
            self.parallel_flop_threshold,
            if self.parallel { "par" } else { "serial" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_blocks_are_multiples_of_register_tiles() {
        let c = BlockConfig::default();
        assert_eq!(c.mc % c.tile.mr(), 0);
        assert_eq!(c.nc % c.tile.nr(), 0);
        assert!(c.parallel);
    }

    #[test]
    fn tile_variants_expose_consistent_dimensions() {
        for tile in TileVariant::ALL {
            assert_eq!(tile.acc_len(), tile.mr() * tile.nr());
            assert!(tile.acc_len() <= MAX_TILE_ACC);
            assert_eq!(TileVariant::parse(tile.tag()), Some(tile), "{tile}");
            assert_eq!(tile.tag(), format!("{}x{}", tile.mr(), tile.nr()));
        }
        assert_eq!(TileVariant::parse("3x3"), None);
        assert_eq!(TileVariant::default(), TileVariant::T8x4);
    }

    #[test]
    fn serial_config_never_parallelises() {
        let c = BlockConfig::serial();
        assert!(!c.should_parallelise(4096, 4096, 4096));
    }

    #[test]
    fn tiny_problems_stay_serial() {
        let c = BlockConfig::default();
        assert!(!c.should_parallelise(8, 8, 8));
        assert!(!c.should_parallelise(1000, 2, 1000));
    }

    #[test]
    fn fingerprints_distinguish_timing_relevant_configs() {
        let default = BlockConfig::default().fingerprint();
        assert_eq!(default, BlockConfig::default().fingerprint());
        assert_ne!(default, BlockConfig::serial().fingerprint());
        assert_ne!(default, BlockConfig::tiny().fingerprint());
        assert!(default.contains("mc128"));
        assert!(BlockConfig::serial().fingerprint().ends_with("serial"));
    }

    #[test]
    fn fingerprint_covers_the_register_tile() {
        // Tile dispatch changes every kernel's timing, so two configs that
        // differ only in the register tile must fingerprint differently.
        let mut seen = std::collections::HashSet::new();
        for tile in TileVariant::ALL {
            let fp = BlockConfig::default().with_tile(tile).fingerprint();
            assert!(fp.contains(&format!("r{}", tile.tag())), "{fp}");
            assert!(seen.insert(fp), "duplicate fingerprint for {tile}");
        }
    }

    #[test]
    fn fingerprint_covers_the_parallel_flop_threshold() {
        // Regression for the staleness contract: two configs differing only
        // in the parallel cutoff time differently (one forks, one does not),
        // so they must not collapse to one fingerprint — in either parallel
        // mode.
        let default = BlockConfig::default();
        let retuned = BlockConfig {
            parallel_flop_threshold: default.parallel_flop_threshold * 4,
            ..default.clone()
        };
        assert_ne!(default.fingerprint(), retuned.fingerprint());
        let serial = BlockConfig::serial();
        let serial_retuned = BlockConfig {
            parallel_flop_threshold: serial.parallel_flop_threshold * 4,
            ..serial.clone()
        };
        assert_ne!(serial.fingerprint(), serial_retuned.fingerprint());
        assert!(default
            .fingerprint()
            .contains(&format!("pft{}", default.parallel_flop_threshold)));
    }

    #[test]
    fn fingerprint_covers_the_triangular_block_size() {
        // Regression for the staleness contract: TRMM/TRSM timings depend on
        // `tri_block`, so changing it must change the fingerprint (and thereby
        // flag existing calibration stores as stale).
        let default = BlockConfig::default();
        let retuned = BlockConfig {
            tri_block: default.tri_block * 2,
            ..default.clone()
        };
        assert_ne!(default.fingerprint(), retuned.fingerprint());
        assert!(default
            .fingerprint()
            .contains(&format!("tb{}", default.tri_block)));
    }

    #[test]
    fn panel_width_is_positive_multiple_of_nr() {
        for tile in TileVariant::ALL {
            let c = BlockConfig::default().with_tile(tile);
            for n in [1, 7, 64, 1000, 5000] {
                let w = c.parallel_panel_width(n);
                assert!(w >= tile.nr());
                assert_eq!(w % tile.nr(), 0);
            }
        }
    }
}
