//! Blocking and parallelisation configuration for the BLAS-3 kernels.

/// Register-tile height of the micro-kernel (rows of `C` per micro-tile).
pub const MR: usize = 8;
/// Register-tile width of the micro-kernel (columns of `C` per micro-tile).
pub const NR: usize = 4;

/// Cache-blocking and parallelisation parameters shared by GEMM, SYRK and
/// SYMM.
///
/// The defaults target a generic x86-64 core: an `MC x KC` block of the packed
/// `A` operand fits comfortably in L2, a `KC x NR` sliver of packed `B` in L1.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockConfig {
    /// Rows of `C` (and of `op(A)`) per cache block.
    pub mc: usize,
    /// Inner (`k`) dimension per cache block.
    pub kc: usize,
    /// Columns of `C` (and of `op(B)`) per outermost block.
    pub nc: usize,
    /// Row-block size of the TRMM/TRSM recurrences: the triangular kernels
    /// walk the triangular operand in diagonal blocks of this order, handling
    /// everything off the diagonal block with the packed rectangular core.
    pub tri_block: usize,
    /// Whether to parallelise over column panels of `C` with Rayon.
    pub parallel: bool,
    /// Minimum number of useful FLOPs before the parallel path is taken;
    /// below this the Rayon fork/join overhead dominates.
    pub parallel_flop_threshold: u64,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            mc: 128,
            kc: 256,
            nc: 4096,
            tri_block: 64,
            parallel: true,
            parallel_flop_threshold: 2 * 64 * 64 * 64,
        }
    }
}

impl BlockConfig {
    /// A configuration that never uses Rayon; useful for baselines, for
    /// nested-parallel contexts, and for isolating single-core efficiency.
    #[must_use]
    pub fn serial() -> Self {
        BlockConfig {
            parallel: false,
            ..BlockConfig::default()
        }
    }

    /// A configuration with tiny blocks, used by tests to force many edge
    /// cases (partial tiles in every dimension) with small matrices.
    #[must_use]
    pub fn tiny() -> Self {
        BlockConfig {
            mc: 8,
            kc: 8,
            nc: 8,
            tri_block: 3,
            parallel: false,
            parallel_flop_threshold: u64::MAX,
        }
    }

    /// Decide whether a problem of the given logical dimensions should run in
    /// parallel under this configuration.
    #[must_use]
    pub fn should_parallelise(&self, m: usize, n: usize, k: usize) -> bool {
        if !self.parallel || rayon::current_num_threads() <= 1 {
            return false;
        }
        let flops = 2 * (m as u64) * (n as u64) * (k as u64);
        flops >= self.parallel_flop_threshold && n >= 2 * NR
    }

    /// Width of the column panels distributed to Rayon workers for an output
    /// matrix with `n` columns.
    #[must_use]
    pub fn parallel_panel_width(&self, n: usize) -> usize {
        let threads = rayon::current_num_threads().max(1);
        let target = n.div_ceil(threads * 3).max(NR);
        // Round up to a multiple of NR so that full micro-tiles dominate.
        target.div_ceil(NR) * NR
    }

    /// A short, stable fingerprint of every parameter that affects kernel
    /// timing (cache blocks, the triangular-kernel diagonal block, register
    /// tiles, parallel policy). Calibration stores record it as staleness
    /// metadata: benchmark times taken under one configuration are not
    /// comparable to runs under another, so every timing-relevant knob —
    /// including the block sizes of kernels added after a store was written —
    /// must contribute to the fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "mc{}-kc{}-nc{}-tb{}-r{}x{}-{}",
            self.mc,
            self.kc,
            self.nc,
            self.tri_block,
            MR,
            NR,
            if self.parallel {
                format!("par{}", self.parallel_flop_threshold)
            } else {
                "serial".to_string()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_blocks_are_multiples_of_register_tiles() {
        let c = BlockConfig::default();
        assert_eq!(c.mc % MR, 0);
        assert_eq!(c.nc % NR, 0);
        assert!(c.parallel);
    }

    #[test]
    fn serial_config_never_parallelises() {
        let c = BlockConfig::serial();
        assert!(!c.should_parallelise(4096, 4096, 4096));
    }

    #[test]
    fn tiny_problems_stay_serial() {
        let c = BlockConfig::default();
        assert!(!c.should_parallelise(8, 8, 8));
        assert!(!c.should_parallelise(1000, 2, 1000));
    }

    #[test]
    fn fingerprints_distinguish_timing_relevant_configs() {
        let default = BlockConfig::default().fingerprint();
        assert_eq!(default, BlockConfig::default().fingerprint());
        assert_ne!(default, BlockConfig::serial().fingerprint());
        assert_ne!(default, BlockConfig::tiny().fingerprint());
        assert!(default.contains("mc128"));
        assert!(BlockConfig::serial().fingerprint().ends_with("serial"));
    }

    #[test]
    fn fingerprint_covers_the_triangular_block_size() {
        // Regression for the staleness contract: TRMM/TRSM timings depend on
        // `tri_block`, so changing it must change the fingerprint (and thereby
        // flag existing calibration stores as stale).
        let default = BlockConfig::default();
        let retuned = BlockConfig {
            tri_block: default.tri_block * 2,
            ..default.clone()
        };
        assert_ne!(default.fingerprint(), retuned.fingerprint());
        assert!(default
            .fingerprint()
            .contains(&format!("tb{}", default.tri_block)));
    }

    #[test]
    fn panel_width_is_positive_multiple_of_nr() {
        let c = BlockConfig::default();
        for n in [1, 7, 64, 1000, 5000] {
            let w = c.parallel_panel_width(n);
            assert!(w >= NR);
            assert_eq!(w % NR, 0);
        }
    }
}
