//! One generic entry point over the view-based kernels for owned [`Matrix`]
//! operands.
//!
//! A [`Kernel`] is a fully-parameterised kernel invocation bound to its input
//! matrices; [`Kernel::run_into`] executes it into an existing output and
//! [`Kernel::run_new`] into a freshly allocated one sized by
//! [`Kernel::output_shape`]. The former per-kernel `*_new`/`*_into` pairs are
//! thin wrappers over this single dispatcher — this is what the measured
//! executor in `lamb-perfmodel` calls when it turns a symbolic kernel-call
//! sequence into actual computation.

use crate::config::BlockConfig;
use crate::gemm::gemm;
use crate::getrf::{factor_triangle, getrf_packed, pivot_apply, pivot_apply_right};
use crate::potrf::potrf;
use crate::qr::{ormqr, qr_packed};
use crate::symm::symm;
use crate::syrk::syrk;
use crate::trmm::trmm;
use crate::trsm::trsm;
use lamb_matrix::{Matrix, MatrixError, Result, Side, Trans, Uplo};

/// A kernel invocation bound to its input operands.
#[derive(Debug, Clone, Copy)]
pub enum Kernel<'a> {
    /// `C := op(A) * op(B)`.
    Gemm {
        /// Transposition of the left operand.
        transa: Trans,
        /// Left operand.
        a: &'a Matrix,
        /// Transposition of the right operand.
        transb: Trans,
        /// Right operand.
        b: &'a Matrix,
    },
    /// One triangle of `op(A)·op(A)ᵀ` (the other triangle is left at zero).
    Syrk {
        /// Triangle of the result that is computed.
        uplo: Uplo,
        /// Transposition of the operand.
        trans: Trans,
        /// The operand.
        a: &'a Matrix,
    },
    /// `A_sym · B` (Left) or `B · A_sym` (Right).
    Symm {
        /// Side from which the symmetric operand multiplies.
        side: Side,
        /// Stored triangle of the symmetric operand.
        uplo: Uplo,
        /// The symmetric operand.
        a_sym: &'a Matrix,
        /// The rectangular operand.
        b: &'a Matrix,
    },
    /// `C := op(L) · B` (Left) or `C := B · op(L)` (Right) with `L`
    /// triangular.
    Trmm {
        /// Side from which the triangular operand multiplies.
        side: Side,
        /// Stored triangle of `L`.
        uplo: Uplo,
        /// Transposition of `L`.
        trans: Trans,
        /// The triangular operand.
        l: &'a Matrix,
        /// The rectangular operand.
        b: &'a Matrix,
    },
    /// `X := op(L)⁻¹ · B` (Left) or `X := B · op(L)⁻¹` (Right) with `L`
    /// triangular.
    Trsm {
        /// Side from which the triangular operand divides.
        side: Side,
        /// Stored triangle of `L`.
        uplo: Uplo,
        /// Transposition of `L`.
        trans: Trans,
        /// The triangular operand.
        l: &'a Matrix,
        /// The right-hand sides.
        b: &'a Matrix,
    },
    /// `L := chol(A)`: the out-of-place Cholesky factorisation of an SPD
    /// operand. The `uplo` triangle of `A` is copied into a zeroed output and
    /// factored in place, so the result is an *explicitly* triangular factor
    /// (exact zeros outside its triangle) ready for TRMM/TRSM consumers.
    Potrf {
        /// Triangle the factor is computed in (`Lower`: `A = L·Lᵀ`).
        uplo: Uplo,
        /// The symmetric positive-definite operand.
        a: &'a Matrix,
    },
    /// `F := lu(A)`: the out-of-place partially pivoted LU factorisation of a
    /// general square operand into the packed `n x (n+1)` form — LU factors
    /// in columns `0..n`, pivot row indices (as `f64`) in column `n`. See
    /// [`crate::getrf::getrf_packed`].
    Getrf {
        /// The general square operand.
        a: &'a Matrix,
    },
    /// `F := qr(A)`: the out-of-place Householder QR factorisation of a tall
    /// (`m >= n`) operand into the packed `m x (n+1)` form — reflectors and
    /// `R` in columns `0..n`, `tau` coefficients in column `n`. See
    /// [`crate::qr::qr_packed`].
    Qr {
        /// The general tall operand.
        a: &'a Matrix,
    },
    /// `C := (Qᵀ·B)[0..n, :]` from a packed QR factor: the least-squares
    /// right-hand-side reduction. See [`crate::qr::ormqr`].
    Ormqr {
        /// The packed QR factor (`m x (n+1)`).
        f: &'a Matrix,
        /// The right-hand sides (`m x k`).
        b: &'a Matrix,
    },
    /// `T := tri(F)`: extract an explicitly triangular `n x n` factor from a
    /// packed factor operand (`Lower`: LU's unit-lower `L`; `Upper`: LU's `U`
    /// or QR's `R`). Zero FLOPs. See [`crate::getrf::factor_triangle`].
    FactorTri {
        /// Which triangular factor to extract.
        uplo: Uplo,
        /// The packed factor operand (`r x (n+1)`).
        f: &'a Matrix,
    },
    /// `Bp := P·B` (left) or `Bp := B·P` (right): apply the permutation
    /// recorded in a packed LU factor's pivot column to `b`'s rows or
    /// columns. Zero FLOPs. See [`crate::getrf::pivot_apply`] and
    /// [`crate::getrf::pivot_apply_right`].
    PivotApply {
        /// Which side the permutation multiplies from.
        side: Side,
        /// The packed LU factor (`r x (r+1)` where `r` is `b`'s row count
        /// on the left, column count on the right).
        f: &'a Matrix,
        /// The operand being permuted.
        b: &'a Matrix,
    },
}

impl Kernel<'_> {
    /// Shape `(rows, cols)` of the output this invocation produces.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize) {
        match *self {
            Kernel::Gemm {
                transa,
                a,
                transb,
                b,
            } => {
                let (m, _) = transa.apply(a.shape());
                let (_, n) = transb.apply(b.shape());
                (m, n)
            }
            Kernel::Syrk { trans, a, .. } => {
                let (n, _) = trans.apply(a.shape());
                (n, n)
            }
            Kernel::Symm { b, .. } | Kernel::Trmm { b, .. } | Kernel::Trsm { b, .. } => b.shape(),
            Kernel::Potrf { a, .. } => a.shape(),
            Kernel::Getrf { a } => (a.rows(), a.rows() + 1),
            Kernel::Qr { a } => (a.rows(), a.cols() + 1),
            Kernel::Ormqr { f, b } => (f.cols().saturating_sub(1), b.cols()),
            Kernel::FactorTri { f, .. } => {
                let n = f.cols().saturating_sub(1);
                (n, n)
            }
            Kernel::PivotApply { b, .. } => b.shape(),
        }
    }

    /// Execute the invocation into an existing, correctly sized output.
    ///
    /// # Errors
    ///
    /// Propagates the underlying kernel's shape errors, TRSM's singularity
    /// error, and POTRF's [`lamb_matrix::MatrixError::NotPositiveDefinite`].
    pub fn run_into(&self, c: &mut Matrix, cfg: &BlockConfig) -> Result<()> {
        match *self {
            Kernel::Gemm {
                transa,
                a,
                transb,
                b,
            } => gemm(
                transa,
                transb,
                1.0,
                &a.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                cfg,
            ),
            Kernel::Syrk { uplo, trans, a } => {
                syrk(uplo, trans, 1.0, &a.view(), 0.0, &mut c.view_mut(), cfg)
            }
            Kernel::Symm {
                side,
                uplo,
                a_sym,
                b,
            } => symm(
                side,
                uplo,
                1.0,
                &a_sym.view(),
                &b.view(),
                0.0,
                &mut c.view_mut(),
                cfg,
            ),
            Kernel::Trmm {
                side,
                uplo,
                trans,
                l,
                b,
            } => trmm(
                side,
                uplo,
                trans,
                1.0,
                &l.view(),
                &b.view(),
                &mut c.view_mut(),
                cfg,
            ),
            Kernel::Trsm {
                side,
                uplo,
                trans,
                l,
                b,
            } => trsm(
                side,
                uplo,
                trans,
                1.0,
                &l.view(),
                &b.view(),
                &mut c.view_mut(),
                cfg,
            ),
            Kernel::Potrf { uplo, a } => {
                c.fill(0.0);
                c.copy_triangle(a, uplo)?;
                potrf(uplo, &mut c.view_mut(), cfg)
            }
            Kernel::Getrf { a } => copy_into(c, &getrf_packed(a, cfg)?),
            Kernel::Qr { a } => copy_into(c, &qr_packed(a, cfg)?),
            Kernel::Ormqr { f, b } => copy_into(c, &ormqr(f, b)?),
            Kernel::FactorTri { uplo, f } => copy_into(c, &factor_triangle(uplo, f)?),
            Kernel::PivotApply { side, f, b } => match side {
                Side::Left => copy_into(c, &pivot_apply(f, b)?),
                Side::Right => copy_into(c, &pivot_apply_right(f, b)?),
            },
        }
    }

    /// Execute the invocation into a freshly allocated output matrix.
    ///
    /// # Errors
    ///
    /// See [`Kernel::run_into`].
    pub fn run_new(&self, cfg: &BlockConfig) -> Result<Matrix> {
        let (m, n) = self.output_shape();
        let mut c = Matrix::zeros(m, n);
        self.run_into(&mut c, cfg)?;
        Ok(c)
    }
}

/// `C := op(A) * op(B)` into a freshly allocated matrix.
///
/// # Errors
///
/// Propagates shape errors from [`gemm`].
pub fn gemm_new(
    transa: Trans,
    a: &Matrix,
    transb: Trans,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    Kernel::Gemm {
        transa,
        a,
        transb,
        b,
    }
    .run_new(cfg)
}

/// `C := op(A) * op(B)` into an existing, correctly sized output matrix.
///
/// # Errors
///
/// Propagates shape errors from [`gemm`].
pub fn gemm_into(
    transa: Trans,
    a: &Matrix,
    transb: Trans,
    b: &Matrix,
    c: &mut Matrix,
    cfg: &BlockConfig,
) -> Result<()> {
    Kernel::Gemm {
        transa,
        a,
        transb,
        b,
    }
    .run_into(c, cfg)
}

/// One triangle of `op(A)·op(A)ᵀ` into a freshly allocated matrix (the other
/// triangle is left at zero).
///
/// # Errors
///
/// Propagates shape errors from [`syrk`].
pub fn syrk_new(uplo: Uplo, trans: Trans, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::Syrk { uplo, trans, a }.run_new(cfg)
}

/// One triangle of `op(A)·op(A)ᵀ` into an existing output matrix.
///
/// # Errors
///
/// Propagates shape errors from [`syrk`].
pub fn syrk_into(
    uplo: Uplo,
    trans: Trans,
    a: &Matrix,
    c: &mut Matrix,
    cfg: &BlockConfig,
) -> Result<()> {
    Kernel::Syrk { uplo, trans, a }.run_into(c, cfg)
}

/// `A_sym · B` (Left) or `B · A_sym` (Right) into a freshly allocated matrix.
///
/// # Errors
///
/// Propagates shape errors from [`symm`].
pub fn symm_new(
    side: Side,
    uplo: Uplo,
    a_sym: &Matrix,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    Kernel::Symm {
        side,
        uplo,
        a_sym,
        b,
    }
    .run_new(cfg)
}

/// `A_sym · B` (Left) or `B · A_sym` (Right) into an existing output matrix.
///
/// # Errors
///
/// Propagates shape errors from [`symm`].
pub fn symm_into(
    side: Side,
    uplo: Uplo,
    a_sym: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    cfg: &BlockConfig,
) -> Result<()> {
    Kernel::Symm {
        side,
        uplo,
        a_sym,
        b,
    }
    .run_into(c, cfg)
}

/// `op(L) · B` (Left) or `B · op(L)` (Right) into a freshly allocated matrix.
///
/// # Errors
///
/// Propagates shape errors from [`trmm`].
pub fn trmm_new(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    l: &Matrix,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    Kernel::Trmm {
        side,
        uplo,
        trans,
        l,
        b,
    }
    .run_new(cfg)
}

/// `op(L)⁻¹ · B` (Left) or `B · op(L)⁻¹` (Right) into a freshly allocated
/// matrix.
///
/// # Errors
///
/// Propagates shape and singularity errors from [`trsm`].
pub fn trsm_new(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    l: &Matrix,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    Kernel::Trsm {
        side,
        uplo,
        trans,
        l,
        b,
    }
    .run_new(cfg)
}

/// The explicitly triangular Cholesky factor of an SPD matrix, freshly
/// allocated (zeros outside the factored triangle).
///
/// # Errors
///
/// Propagates shape and positive-definiteness errors from [`potrf`].
pub fn potrf_new(uplo: Uplo, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::Potrf { uplo, a }.run_new(cfg)
}

/// The packed `n x (n+1)` partially pivoted LU factor of a general square
/// matrix, freshly allocated.
///
/// # Errors
///
/// Propagates shape and singularity errors from [`crate::getrf::getrf`].
pub fn getrf_new(a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::Getrf { a }.run_new(cfg)
}

/// The packed `m x (n+1)` Householder QR factor of a tall matrix, freshly
/// allocated.
///
/// # Errors
///
/// Propagates shape errors from [`crate::qr::qr`].
pub fn qr_new(a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::Qr { a }.run_new(cfg)
}

/// The top `n` rows of `Qᵀ·B` from a packed QR factor, freshly allocated.
///
/// # Errors
///
/// Propagates shape errors from [`crate::qr::ormqr`].
pub fn ormqr_new(f: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::Ormqr { f, b }.run_new(cfg)
}

/// An explicitly triangular factor extracted from a packed factor operand,
/// freshly allocated.
///
/// # Errors
///
/// Propagates shape errors from [`crate::getrf::factor_triangle`].
pub fn factor_tri_new(uplo: Uplo, f: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::FactorTri { uplo, f }.run_new(cfg)
}

/// The pivoted operand `P·B` (left) or `B·P` (right) from a packed LU
/// factor, freshly allocated.
///
/// # Errors
///
/// Propagates shape errors from [`crate::getrf::pivot_apply`] /
/// [`crate::getrf::pivot_apply_right`].
pub fn pivot_apply_new(side: Side, f: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    Kernel::PivotApply { side, f, b }.run_new(cfg)
}

/// Copy an owned kernel result into the caller's output operand, rejecting a
/// mis-sized destination the way the view-based kernels do.
fn copy_into(c: &mut Matrix, out: &Matrix) -> Result<()> {
    if c.shape() != out.shape() {
        return Err(MatrixError::DimensionMismatch {
            op: "kernel output",
            lhs: c.shape(),
            rhs: out.shape(),
        });
    }
    c.as_mut_slice().copy_from_slice(out.as_slice());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::{random_seeded, random_triangular};

    #[test]
    fn gemm_new_and_into_agree() {
        let cfg = BlockConfig::default();
        let a = random_seeded(12, 9, 1);
        let b = random_seeded(9, 14, 2);
        let fresh = gemm_new(Trans::No, &a, Trans::No, &b, &cfg).unwrap();
        let mut reused = Matrix::filled(12, 14, f64::NAN);
        gemm_into(Trans::No, &a, Trans::No, &b, &mut reused, &cfg).unwrap();
        assert!(max_abs_diff(&fresh, &reused).unwrap() == 0.0);
    }

    #[test]
    fn gemm_new_transposed_output_shape() {
        let cfg = BlockConfig::default();
        let a = random_seeded(5, 8, 3);
        let b = random_seeded(5, 7, 4);
        // C = A^T * B : (8x5)*(5x7) = 8x7
        let c = gemm_new(Trans::Yes, &a, Trans::No, &b, &cfg).unwrap();
        assert_eq!(c.shape(), (8, 7));
    }

    #[test]
    fn output_shapes_cover_every_kernel() {
        let a = Matrix::zeros(6, 4);
        let sq = Matrix::zeros(6, 6);
        let b = Matrix::zeros(6, 9);
        assert_eq!(
            Kernel::Gemm {
                transa: Trans::No,
                a: &a,
                transb: Trans::No,
                b: &Matrix::zeros(4, 9),
            }
            .output_shape(),
            (6, 9)
        );
        assert_eq!(
            Kernel::Syrk {
                uplo: Uplo::Lower,
                trans: Trans::Yes,
                a: &a,
            }
            .output_shape(),
            (4, 4)
        );
        assert_eq!(
            Kernel::Symm {
                side: Side::Left,
                uplo: Uplo::Lower,
                a_sym: &sq,
                b: &b,
            }
            .output_shape(),
            (6, 9)
        );
        assert_eq!(
            Kernel::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: Trans::No,
                l: &sq,
                b: &b,
            }
            .output_shape(),
            (6, 9)
        );
        assert_eq!(
            Kernel::Trsm {
                side: Side::Left,
                uplo: Uplo::Upper,
                trans: Trans::Yes,
                l: &sq,
                b: &b,
            }
            .output_shape(),
            (6, 9)
        );
        // Right side: the triangle sits on the column dimension, the output
        // shape is still B's.
        let t9 = Matrix::zeros(9, 9);
        assert_eq!(
            Kernel::Trmm {
                side: Side::Right,
                uplo: Uplo::Upper,
                trans: Trans::No,
                l: &t9,
                b: &b,
            }
            .output_shape(),
            (6, 9)
        );
    }

    #[test]
    fn syrk_new_produces_triangle_only() {
        let cfg = BlockConfig::default();
        let a = random_seeded(10, 6, 5);
        let c = syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap();
        assert_eq!(c.shape(), (10, 10));
        for i in 0..10 {
            for j in 0..10 {
                if i < j {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must stay zero");
                }
            }
        }
    }

    #[test]
    fn symm_new_matches_explicit_full_product() {
        let cfg = BlockConfig::default();
        let a = random_seeded(8, 8, 6);
        let mut sym_full = a.clone();
        sym_full.symmetrize_from(Uplo::Lower).unwrap();
        let b = random_seeded(8, 5, 7);
        let via_symm = symm_new(Side::Left, Uplo::Lower, &sym_full, &b, &cfg).unwrap();
        let mut expected = Matrix::zeros(8, 5);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &sym_full.view(),
            &b.view(),
            0.0,
            &mut expected.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&via_symm, &expected).unwrap() < 1e-11);
    }

    #[test]
    fn potrf_new_produces_an_explicit_triangular_factor() {
        use lamb_matrix::random::random_spd;
        let cfg = BlockConfig::default();
        let a = random_spd(18, 12);
        let l = potrf_new(Uplo::Lower, &a, &cfg).unwrap();
        assert_eq!(l.shape(), (18, 18));
        assert!(lamb_matrix::ops::is_triangular(&l, Uplo::Lower).unwrap());
        // The input operand is untouched (out-of-place realisation)...
        assert_eq!(a, random_spd(18, 12));
        // ...and L·Lᵀ reconstructs it.
        let mut back = Matrix::zeros(18, 18);
        gemm_naive(
            Trans::No,
            Trans::Yes,
            1.0,
            &l.view(),
            &l.view(),
            0.0,
            &mut back.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&back, &a).unwrap() < 1e-10 * 18.0);
        assert_eq!(
            Kernel::Potrf {
                uplo: Uplo::Lower,
                a: &a
            }
            .output_shape(),
            (18, 18)
        );
    }

    #[test]
    fn getrf_and_qr_solve_pipelines_through_the_dispatcher() {
        let cfg = BlockConfig::default();
        // LU: A⁻¹·B through GETRF → pivot → two TRSMs.
        let n = 19;
        let a = random_seeded(n, n, 31);
        let b = random_seeded(n, 4, 32);
        let f = getrf_new(&a, &cfg).unwrap();
        assert_eq!(f.shape(), (n, n + 1));
        let l = factor_tri_new(Uplo::Lower, &f, &cfg).unwrap();
        let u = factor_tri_new(Uplo::Upper, &f, &cfg).unwrap();
        let bp = pivot_apply_new(Side::Left, &f, &b, &cfg).unwrap();
        let y = trsm_new(Side::Left, Uplo::Lower, Trans::No, &l, &bp, &cfg).unwrap();
        let x = trsm_new(Side::Left, Uplo::Upper, Trans::No, &u, &y, &cfg).unwrap();
        let ax = gemm_new(Trans::No, &a, Trans::No, &x, &cfg).unwrap();
        assert!(max_abs_diff(&ax, &b).unwrap() < 1e-10 * n as f64);
        // QR: argmin ‖Ax - b‖ through QR → ORMQR → one TRSM.
        let (m, k) = (29, 11);
        let t = random_seeded(m, k, 33);
        let rhs = random_seeded(m, 3, 34);
        let fq = qr_new(&t, &cfg).unwrap();
        assert_eq!(fq.shape(), (m, k + 1));
        let r = factor_tri_new(Uplo::Upper, &fq, &cfg).unwrap();
        let c = ormqr_new(&fq, &rhs, &cfg).unwrap();
        assert_eq!(c.shape(), (k, 3));
        let x = trsm_new(Side::Left, Uplo::Upper, Trans::No, &r, &c, &cfg).unwrap();
        // Optimality: Aᵀ(A·X - B) = 0.
        let ax = gemm_new(Trans::No, &t, Trans::No, &x, &cfg).unwrap();
        let resid = Matrix::from_fn(m, 3, |i, j| ax[(i, j)] - rhs[(i, j)]);
        let normal = gemm_new(Trans::Yes, &t, Trans::No, &resid, &cfg).unwrap();
        assert!(lamb_matrix::ops::max_abs(&normal) < 1e-10 * m as f64);
        // A mis-sized destination is rejected, not silently truncated.
        let mut wrong = Matrix::zeros(2, 2);
        assert!(Kernel::Getrf { a: &a }.run_into(&mut wrong, &cfg).is_err());
    }

    #[test]
    fn trmm_and_trsm_round_trip_through_the_dispatcher() {
        let cfg = BlockConfig::default();
        let l = random_triangular(14, Uplo::Lower, 3);
        let b = random_seeded(14, 6, 4);
        let lb = trmm_new(Side::Left, Uplo::Lower, Trans::No, &l, &b, &cfg).unwrap();
        let back = trsm_new(Side::Left, Uplo::Lower, Trans::No, &l, &lb, &cfg).unwrap();
        assert!(max_abs_diff(&back, &b).unwrap() < 1e-10);
        // Right side: B·L then (B·L)·L⁻¹ recovers B.
        let r = random_triangular(6, Uplo::Upper, 5);
        let bl = trmm_new(Side::Right, Uplo::Upper, Trans::No, &r, &b, &cfg).unwrap();
        let back_r = trsm_new(Side::Right, Uplo::Upper, Trans::No, &r, &bl, &cfg).unwrap();
        assert!(max_abs_diff(&back_r, &b).unwrap() < 1e-10);
    }

    #[test]
    fn aatb_two_step_pipelines_agree() {
        // Full A*A^T*B computed two different ways must agree: this is the
        // numerical-equivalence property that underpins the paper's algorithm
        // set for the expression A·Aᵀ·B.
        let cfg = BlockConfig::default();
        let a = random_seeded(16, 9, 8);
        let b = random_seeded(16, 11, 9);
        // Way 1: M = A*A^T (full via gemm), X = M*B.
        let m_full = gemm_new(Trans::No, &a, Trans::Yes, &a, &cfg).unwrap();
        let x1 = gemm_new(Trans::No, &m_full, Trans::No, &b, &cfg).unwrap();
        // Way 2: M = A^T*B, X = A*M.
        let m2 = gemm_new(Trans::Yes, &a, Trans::No, &b, &cfg).unwrap();
        let x2 = gemm_new(Trans::No, &a, Trans::No, &m2, &cfg).unwrap();
        // Way 3: SYRK triangle + SYMM.
        let tri = syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap();
        let x3 = symm_new(Side::Left, Uplo::Lower, &tri, &b, &cfg).unwrap();
        assert!(max_abs_diff(&x1, &x2).unwrap() < 1e-10);
        assert!(max_abs_diff(&x1, &x3).unwrap() < 1e-10);
    }
}
