//! Convenience wrappers over the view-based kernels for owned [`Matrix`]
//! operands. These are what the measured executor in `lamb-perfmodel` calls
//! when it turns a symbolic kernel-call sequence into actual computation.

use crate::config::BlockConfig;
use crate::gemm::gemm;
use crate::symm::symm;
use crate::syrk::syrk;
use lamb_matrix::{Matrix, Result, Side, Trans, Uplo};

/// `C := op(A) * op(B)` into a freshly allocated matrix.
///
/// # Errors
///
/// Propagates shape errors from [`gemm`].
pub fn gemm_new(
    transa: Trans,
    a: &Matrix,
    transb: Trans,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    let (m, _) = transa.apply(a.shape());
    let (_, n) = transb.apply(b.shape());
    let mut c = Matrix::zeros(m, n);
    gemm(
        transa,
        transb,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        cfg,
    )?;
    Ok(c)
}

/// `C := op(A) * op(B)` into an existing, correctly sized output matrix.
///
/// # Errors
///
/// Propagates shape errors from [`gemm`].
pub fn gemm_into(
    transa: Trans,
    a: &Matrix,
    transb: Trans,
    b: &Matrix,
    c: &mut Matrix,
    cfg: &BlockConfig,
) -> Result<()> {
    gemm(
        transa,
        transb,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        cfg,
    )
}

/// One triangle of `op(A)·op(A)ᵀ` into a freshly allocated matrix (the other
/// triangle is left at zero).
///
/// # Errors
///
/// Propagates shape errors from [`syrk`].
pub fn syrk_new(uplo: Uplo, trans: Trans, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    let (n, _) = trans.apply(a.shape());
    let mut c = Matrix::zeros(n, n);
    syrk(uplo, trans, 1.0, &a.view(), 0.0, &mut c.view_mut(), cfg)?;
    Ok(c)
}

/// One triangle of `op(A)·op(A)ᵀ` into an existing output matrix.
///
/// # Errors
///
/// Propagates shape errors from [`syrk`].
pub fn syrk_into(
    uplo: Uplo,
    trans: Trans,
    a: &Matrix,
    c: &mut Matrix,
    cfg: &BlockConfig,
) -> Result<()> {
    syrk(uplo, trans, 1.0, &a.view(), 0.0, &mut c.view_mut(), cfg)
}

/// `A_sym · B` (Left) or `B · A_sym` (Right) into a freshly allocated matrix.
///
/// # Errors
///
/// Propagates shape errors from [`symm`].
pub fn symm_new(
    side: Side,
    uplo: Uplo,
    a_sym: &Matrix,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    let mut c = Matrix::zeros(b.rows(), b.cols());
    symm(
        side,
        uplo,
        1.0,
        &a_sym.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        cfg,
    )?;
    Ok(c)
}

/// `A_sym · B` (Left) or `B · A_sym` (Right) into an existing output matrix.
///
/// # Errors
///
/// Propagates shape errors from [`symm`].
pub fn symm_into(
    side: Side,
    uplo: Uplo,
    a_sym: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    cfg: &BlockConfig,
) -> Result<()> {
    symm(
        side,
        uplo,
        1.0,
        &a_sym.view(),
        &b.view(),
        0.0,
        &mut c.view_mut(),
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::random_seeded;

    #[test]
    fn gemm_new_and_into_agree() {
        let cfg = BlockConfig::default();
        let a = random_seeded(12, 9, 1);
        let b = random_seeded(9, 14, 2);
        let fresh = gemm_new(Trans::No, &a, Trans::No, &b, &cfg).unwrap();
        let mut reused = Matrix::filled(12, 14, f64::NAN);
        gemm_into(Trans::No, &a, Trans::No, &b, &mut reused, &cfg).unwrap();
        assert!(max_abs_diff(&fresh, &reused).unwrap() == 0.0);
    }

    #[test]
    fn gemm_new_transposed_output_shape() {
        let cfg = BlockConfig::default();
        let a = random_seeded(5, 8, 3);
        let b = random_seeded(5, 7, 4);
        // C = A^T * B : (8x5)*(5x7) = 8x7
        let c = gemm_new(Trans::Yes, &a, Trans::No, &b, &cfg).unwrap();
        assert_eq!(c.shape(), (8, 7));
    }

    #[test]
    fn syrk_new_produces_triangle_only() {
        let cfg = BlockConfig::default();
        let a = random_seeded(10, 6, 5);
        let c = syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap();
        assert_eq!(c.shape(), (10, 10));
        for i in 0..10 {
            for j in 0..10 {
                if i < j {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must stay zero");
                }
            }
        }
    }

    #[test]
    fn symm_new_matches_explicit_full_product() {
        let cfg = BlockConfig::default();
        let a = random_seeded(8, 8, 6);
        let mut sym_full = a.clone();
        sym_full.symmetrize_from(Uplo::Lower).unwrap();
        let b = random_seeded(8, 5, 7);
        let via_symm = symm_new(Side::Left, Uplo::Lower, &sym_full, &b, &cfg).unwrap();
        let mut expected = Matrix::zeros(8, 5);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &sym_full.view(),
            &b.view(),
            0.0,
            &mut expected.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&via_symm, &expected).unwrap() < 1e-11);
    }

    #[test]
    fn aatb_two_step_pipelines_agree() {
        // Full A*A^T*B computed two different ways must agree: this is the
        // numerical-equivalence property that underpins the paper's algorithm
        // set for the expression A·Aᵀ·B.
        let cfg = BlockConfig::default();
        let a = random_seeded(16, 9, 8);
        let b = random_seeded(16, 11, 9);
        // Way 1: M = A*A^T (full via gemm), X = M*B.
        let m_full = gemm_new(Trans::No, &a, Trans::Yes, &a, &cfg).unwrap();
        let x1 = gemm_new(Trans::No, &m_full, Trans::No, &b, &cfg).unwrap();
        // Way 2: M = A^T*B, X = A*M.
        let m2 = gemm_new(Trans::Yes, &a, Trans::No, &b, &cfg).unwrap();
        let x2 = gemm_new(Trans::No, &a, Trans::No, &m2, &cfg).unwrap();
        // Way 3: SYRK triangle + SYMM.
        let tri = syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap();
        let x3 = symm_new(Side::Left, Uplo::Lower, &tri, &b, &cfg).unwrap();
        assert!(max_abs_diff(&x1, &x2).unwrap() < 1e-10);
        assert!(max_abs_diff(&x1, &x3).unwrap() < 1e-10);
    }
}
