//! The shared blocked-kernel engine behind every BLAS-3 kernel in this crate.
//!
//! GEMM, SYRK, SYMM, TRMM and TRSM all reduce to the same three ingredients:
//!
//! 1. a **packed serial core** ([`BlockedDriver::accumulate_serial`]) that
//!    accumulates `C += alpha * OpA * OpB` with cache blocking, packing and a
//!    register-tiled micro-kernel, where the logical operands are presented
//!    through element accessor closures;
//! 2. a **column-panel partitioner** ([`BlockedDriver::for_each_panel`]) that
//!    splits the output into disjoint column panels and runs a per-panel
//!    closure either serially or on Rayon workers;
//! 3. the **beta-scaling rule** ([`scale_inplace`]) with the BLAS convention
//!    that `beta == 0` writes zeros without reading the previous contents.
//!
//! The per-kernel modules are thin specialisations: GEMM feeds plain (possibly
//! transposed) accessors, SYMM a mirroring accessor for its symmetric operand,
//! SYRK adds the triangle mask on the diagonal blocks of its panel closure,
//! and TRMM/TRSM walk the triangular operand in diagonal blocks of
//! [`BlockConfig::tri_block`] rows, handling everything off the diagonal with
//! the same packed core. Presenting operands through accessors is what lets
//! every kernel share one loop nest without materialising transposed, mirrored
//! or masked copies.
//!
//! ## Tile dispatch
//!
//! The register tile is chosen at runtime ([`BlockConfig::tile`]) but the hot
//! loop nest is monomorphic: [`BlockedDriver::accumulate_serial`] matches the
//! [`TileVariant`] exactly once per call and enters a `const`-generic core, so
//! the macro-kernel, the partial-tile edge handling and the micro-kernel all
//! see compile-time `MR`/`NR`.
//!
//! ## Packing-buffer reuse
//!
//! The packed-panel buffers are thread-local scratch, taken at the start of a
//! serial-core call and returned at the end, so the cache-block loop nest —
//! and every subsequent kernel call on the same thread (or Rayon worker) —
//! reuses one pair of allocations instead of reallocating per panel.
//! [`pack_buffer_growth_events`] counts how often a buffer actually had to
//! grow, which tests use to assert the steady state allocates nothing.

use crate::config::{BlockConfig, TileVariant, MAX_TILE_ACC};
use crate::microkernel::microkernel;
use crate::pack::{pack_a, pack_b, packed_a_len, packed_b_len};
use lamb_matrix::MatrixViewMut;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Per-thread packed-panel scratch: `(a_pack, b_pack)`. Taken (moved out)
    /// for the duration of a serial-core call rather than borrowed, so a
    /// reentrant call through an element accessor can never hit a `RefCell`
    /// double-borrow — it simply starts from empty buffers.
    static PACK_SCRATCH: RefCell<Option<(Vec<f64>, Vec<f64>)>> = const { RefCell::new(None) };
}

/// Global count of packed-buffer growth events (a pack call that had to
/// enlarge its scratch allocation). Monotonically increasing across all
/// threads; see [`pack_buffer_growth_events`].
static PACK_GROWTH_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Number of times any packing buffer had to grow since process start.
///
/// After a warm-up call of a given shape, further kernel calls of the same
/// (or smaller) blocking reuse the thread-local scratch and this counter
/// stays flat — the property the allocation-reuse regression test pins down.
#[must_use]
pub fn pack_buffer_growth_events() -> u64 {
    PACK_GROWTH_EVENTS.load(Ordering::Relaxed)
}

/// `C := beta * C` over a view, with the BLAS convention that `beta == 0`
/// writes zeros without reading the (possibly uninitialised) contents.
pub fn scale_inplace(beta: f64, c: &mut MatrixViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    for j in 0..c.cols() {
        let col = c.col_mut(j);
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for x in col {
                *x *= beta;
            }
        }
    }
}

/// The blocked-kernel engine: a [`BlockConfig`] plus the shared packing,
/// cache-blocking and Rayon partitioning machinery. Construction is free;
/// kernels create one per call.
#[derive(Debug, Clone, Copy)]
pub struct BlockedDriver<'a> {
    cfg: &'a BlockConfig,
}

impl<'a> BlockedDriver<'a> {
    /// A driver over the given blocking configuration.
    #[must_use]
    pub fn new(cfg: &'a BlockConfig) -> Self {
        BlockedDriver { cfg }
    }

    /// The configuration this driver blocks and parallelises with.
    #[must_use]
    pub fn cfg(&self) -> &'a BlockConfig {
        self.cfg
    }

    /// Accumulate `C += alpha * OpA * OpB` serially with cache blocking and
    /// packing. `load_a(i, p)` is the logical `m x k` left operand and
    /// `load_b(p, j)` the logical `k x n` right operand.
    ///
    /// Dispatches once on [`BlockConfig::tile`] into a monomorphic core, so
    /// the entire blocked loop nest below this call sees compile-time
    /// `MR`/`NR`.
    #[allow(clippy::too_many_arguments)] // BLAS-style interface
    pub fn accumulate_serial<FA, FB>(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        load_a: &FA,
        load_b: &FB,
        c: &mut MatrixViewMut<'_>,
    ) where
        FA: Fn(usize, usize) -> f64,
        FB: Fn(usize, usize) -> f64,
    {
        match self.cfg.tile {
            TileVariant::T8x4 => self.serial_core::<8, 4, _, _>(m, n, k, alpha, load_a, load_b, c),
            TileVariant::T8x8 => self.serial_core::<8, 8, _, _>(m, n, k, alpha, load_a, load_b, c),
            TileVariant::T4x8 => self.serial_core::<4, 8, _, _>(m, n, k, alpha, load_a, load_b, c),
            TileVariant::T16x4 => {
                self.serial_core::<16, 4, _, _>(m, n, k, alpha, load_a, load_b, c)
            }
            TileVariant::T8x12 => {
                self.serial_core::<8, 12, _, _>(m, n, k, alpha, load_a, load_b, c)
            }
        }
    }

    /// The monomorphic serial core behind [`BlockedDriver::accumulate_serial`].
    #[allow(clippy::too_many_arguments)]
    fn serial_core<const MR: usize, const NR: usize, FA, FB>(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        load_a: &FA,
        load_b: &FB,
        c: &mut MatrixViewMut<'_>,
    ) where
        FA: Fn(usize, usize) -> f64,
        FB: Fn(usize, usize) -> f64,
    {
        debug_assert_eq!(c.rows(), m);
        debug_assert_eq!(c.cols(), n);
        if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
            return;
        }
        let mc = self.cfg.mc.max(MR);
        let kc = self.cfg.kc.max(1);
        let nc = self.cfg.nc.max(NR);

        // Move the thread-local scratch out (never borrow across the packing
        // closures), use it for the whole loop nest, then return it.
        let (mut a_pack, mut b_pack) =
            PACK_SCRATCH.with(|cell| cell.borrow_mut().take().unwrap_or_default());
        let mut acc = [0.0f64; MAX_TILE_ACC];
        let acc = &mut acc[..MR * NR];

        let mut jc = 0;
        while jc < n {
            let ncb = nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kcb = kc.min(k - pc);
                if b_pack.capacity() < packed_b_len(NR, kcb, ncb) {
                    PACK_GROWTH_EVENTS.fetch_add(1, Ordering::Relaxed);
                }
                pack_b(NR, kcb, ncb, |p, j| load_b(pc + p, jc + j), &mut b_pack);
                let mut ic = 0;
                while ic < m {
                    let mcb = mc.min(m - ic);
                    if a_pack.capacity() < packed_a_len(MR, mcb, kcb) {
                        PACK_GROWTH_EVENTS.fetch_add(1, Ordering::Relaxed);
                    }
                    pack_a(MR, mcb, kcb, |i, p| load_a(ic + i, pc + p), &mut a_pack);
                    macro_kernel::<MR, NR>(
                        mcb,
                        ncb,
                        kcb,
                        alpha,
                        &a_pack,
                        &b_pack,
                        &mut c.subview_mut(ic, jc, mcb, ncb),
                        acc,
                    );
                    ic += mc;
                }
                pc += kc;
            }
            jc += nc;
        }

        PACK_SCRATCH.with(|cell| *cell.borrow_mut() = Some((a_pack, b_pack)));
    }

    /// Accumulate `C += alpha * OpA * OpB`, automatically distributing
    /// disjoint column panels of `C` across Rayon workers when the problem is
    /// large enough under this driver's configuration (each worker runs the
    /// serial core on its panel with a column-shifted `OpB` accessor).
    #[allow(clippy::too_many_arguments)] // BLAS-style interface
    pub fn accumulate<FA, FB>(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        load_a: &FA,
        load_b: &FB,
        c: &mut MatrixViewMut<'_>,
    ) where
        FA: Fn(usize, usize) -> f64 + Sync,
        FB: Fn(usize, usize) -> f64 + Sync,
    {
        if self.cfg.should_parallelise(m, n, k) {
            self.for_each_panel(c.subview_mut(0, 0, m, n), true, |j0, mut panel| {
                let ncols = panel.cols();
                let shifted_b = |p: usize, j: usize| load_b(p, j0 + j);
                self.accumulate_serial(m, ncols, k, alpha, load_a, &shifted_b, &mut panel);
            });
        } else {
            self.accumulate_serial(m, n, k, alpha, load_a, load_b, c);
        }
    }

    /// Partition `c` into disjoint column panels and run `f(j0, panel)` for
    /// each, where `j0` is the panel's first column in `c`. With
    /// `parallel == true` the panels are sized for the Rayon pool and run
    /// concurrently; otherwise `f` sees the whole view as one panel.
    ///
    /// This is the one place in the crate that decides how output columns are
    /// distributed to workers — SYRK's triangle-masked panels, TRSM's
    /// independent right-hand-side columns and the parallel GEMM path all go
    /// through it.
    pub fn for_each_panel<F>(&self, c: MatrixViewMut<'_>, parallel: bool, f: F)
    where
        F: Fn(usize, MatrixViewMut<'_>) + Sync,
    {
        let n = c.cols();
        let width = if parallel {
            self.cfg.parallel_panel_width(n)
        } else {
            n.max(1)
        };
        let panels = c.into_col_panels(width);
        if parallel {
            panels
                .into_par_iter()
                .enumerate()
                .for_each(|(idx, panel)| f(idx * width, panel));
        } else {
            panels
                .into_iter()
                .enumerate()
                .for_each(|(idx, panel)| f(idx * width, panel));
        }
    }
}

/// Inner macro-kernel: sweep the packed block with `MR x NR` micro-tiles and
/// accumulate `alpha` times the result into the output block. Monomorphic in
/// the tile shape; partial edge tiles read only the `mrb x nrb` valid corner
/// of the accumulator.
#[allow(clippy::too_many_arguments)]
fn macro_kernel<const MR: usize, const NR: usize>(
    mcb: usize,
    ncb: usize,
    kcb: usize,
    alpha: f64,
    a_pack: &[f64],
    b_pack: &[f64],
    c_block: &mut MatrixViewMut<'_>,
    acc: &mut [f64],
) {
    let mut jr = 0;
    while jr < ncb {
        let nrb = NR.min(ncb - jr);
        let b_panel = &b_pack[(jr / NR) * kcb * NR..(jr / NR + 1) * kcb * NR];
        let mut ir = 0;
        while ir < mcb {
            let mrb = MR.min(mcb - ir);
            let a_panel = &a_pack[(ir / MR) * kcb * MR..(ir / MR + 1) * kcb * MR];
            microkernel::<MR, NR>(kcb, a_panel, b_panel, acc);
            for jj in 0..nrb {
                let col = c_block.col_mut(jr + jj);
                let acc_col = &acc[jj * MR..jj * MR + mrb];
                for (ci, &av) in col[ir..ir + mrb].iter_mut().zip(acc_col) {
                    *ci += alpha * av;
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::random_seeded;
    use lamb_matrix::{Matrix, Trans};

    fn reference(a: &Matrix, b: &Matrix, alpha: f64) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(
            Trans::No,
            Trans::No,
            alpha,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
        )
        .unwrap();
        c
    }

    #[test]
    fn serial_core_matches_naive_for_awkward_sizes() {
        // Sizes chosen to produce partial tiles in every blocking dimension,
        // under every register-tile variant.
        for tile in TileVariant::ALL {
            for &(m, n, k) in &[
                (1, 1, 1),
                (3, 5, 7),
                (17, 13, 9),
                (33, 29, 31),
                (40, 24, 56),
            ] {
                let a = random_seeded(m, k, 1000 + m as u64);
                let b = random_seeded(k, n, 2000 + n as u64);
                let mut c = Matrix::zeros(m, n);
                let cfg = BlockConfig {
                    tile,
                    ..BlockConfig::tiny()
                };
                let a_s = a.as_slice();
                let b_s = b.as_slice();
                BlockedDriver::new(&cfg).accumulate_serial(
                    m,
                    n,
                    k,
                    1.0,
                    &|i, p| a_s[i + p * m],
                    &|p, j| b_s[p + j * k],
                    &mut c.view_mut(),
                );
                let expected = reference(&a, &b, 1.0);
                assert!(
                    max_abs_diff(&c, &expected).unwrap() < 1e-12,
                    "{tile} size {m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn accumulation_adds_to_existing_contents() {
        let m = 6;
        let n = 6;
        let k = 6;
        let a = random_seeded(m, k, 7);
        let b = random_seeded(k, n, 8);
        let mut c = Matrix::filled(m, n, 2.0);
        let a_s = a.as_slice();
        let b_s = b.as_slice();
        let cfg = BlockConfig::tiny();
        BlockedDriver::new(&cfg).accumulate_serial(
            m,
            n,
            k,
            0.5,
            &|i, p| a_s[i + p * m],
            &|p, j| b_s[p + j * k],
            &mut c.view_mut(),
        );
        let mut expected = Matrix::filled(m, n, 2.0);
        gemm_naive(
            Trans::No,
            Trans::No,
            0.5,
            &a.view(),
            &b.view(),
            1.0,
            &mut expected.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&c, &expected).unwrap() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_a_no_op() {
        let mut c = Matrix::filled(4, 4, 3.0);
        let cfg = BlockConfig::tiny();
        BlockedDriver::new(&cfg).accumulate_serial(
            4,
            4,
            4,
            0.0,
            &|_, _| f64::NAN,
            &|_, _| f64::NAN,
            &mut c.view_mut(),
        );
        assert!(c.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn auto_accumulate_parallel_matches_serial() {
        let (m, n, k) = (70, 90, 40);
        let a = random_seeded(m, k, 21);
        let b = random_seeded(k, n, 22);
        let a_s = a.as_slice();
        let b_s = b.as_slice();
        let serial_cfg = BlockConfig::serial();
        let parallel_cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        let mut c_serial = Matrix::zeros(m, n);
        let mut c_parallel = Matrix::zeros(m, n);
        BlockedDriver::new(&serial_cfg).accumulate(
            m,
            n,
            k,
            1.0,
            &|i, p| a_s[i + p * m],
            &|p, j| b_s[p + j * k],
            &mut c_serial.view_mut(),
        );
        BlockedDriver::new(&parallel_cfg).accumulate(
            m,
            n,
            k,
            1.0,
            &|i, p| a_s[i + p * m],
            &|p, j| b_s[p + j * k],
            &mut c_parallel.view_mut(),
        );
        assert!(max_abs_diff(&c_serial, &c_parallel).unwrap() < 1e-12);
    }

    #[test]
    fn pack_scratch_is_reused_after_warmup() {
        // Two identical calls: the first may grow the thread-local scratch,
        // the second must not allocate at all.
        let (m, n, k) = (48, 48, 48);
        let a = random_seeded(m, k, 31);
        let b = random_seeded(k, n, 32);
        let a_s = a.as_slice();
        let b_s = b.as_slice();
        let cfg = BlockConfig::serial();
        let driver = BlockedDriver::new(&cfg);
        let run = || {
            let mut c = Matrix::zeros(m, n);
            driver.accumulate_serial(
                m,
                n,
                k,
                1.0,
                &|i, p| a_s[i + p * m],
                &|p, j| b_s[p + j * k],
                &mut c.view_mut(),
            );
            c
        };
        let first = run();
        let before = pack_buffer_growth_events();
        let second = run();
        let after = pack_buffer_growth_events();
        assert_eq!(
            after - before,
            0,
            "warm repeat call must not grow packing buffers"
        );
        assert!(max_abs_diff(&first, &second).unwrap() == 0.0);
    }

    #[test]
    fn for_each_panel_covers_every_column_exactly_once() {
        let cfg = BlockConfig::default();
        let driver = BlockedDriver::new(&cfg);
        for parallel in [false, true] {
            let mut c = Matrix::zeros(5, 37);
            driver.for_each_panel(c.view_mut(), parallel, |j0, mut panel| {
                for j in 0..panel.cols() {
                    for x in panel.col_mut(j) {
                        *x += (j0 + j) as f64 + 1.0;
                    }
                }
            });
            for j in 0..37 {
                assert!(c.col(j).iter().all(|&x| x == j as f64 + 1.0), "col {j}");
            }
        }
    }

    #[test]
    fn scale_inplace_handles_beta_zero_with_nan() {
        let mut c = Matrix::filled(3, 3, f64::NAN);
        scale_inplace(0.0, &mut c.view_mut());
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scale_inplace_multiplies() {
        let mut c = Matrix::filled(3, 2, 2.0);
        scale_inplace(-1.5, &mut c.view_mut());
        assert!(c.as_slice().iter().all(|&x| x == -3.0));
        scale_inplace(1.0, &mut c.view_mut());
        assert!(c.as_slice().iter().all(|&x| x == -3.0));
    }
}
