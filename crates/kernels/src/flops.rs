//! FLOP-count models for the kernels, exactly as defined in Section 3.1 of the
//! paper.
//!
//! * GEMM computing `A·B` with `A` of size `m x k` and `B` of size `k x n`
//!   costs `2·m·n·k` FLOPs.
//! * SYRK computing one triangle of `A·Aᵀ` with `A` of size `m x k` costs
//!   `(m + 1)·m·k` FLOPs.
//! * SYMM computing `A·B` with symmetric `A` of size `m x m` and `B` of size
//!   `m x n` costs `2·m²·n` FLOPs.
//!
//! The triangle-to-full copy used by Algorithm 2 of the `A·Aᵀ·B` expression
//! performs no floating-point operations; it is still modelled (with zero
//! FLOPs) so that executors can attribute time to it.

/// FLOP count of `GEMM`: `C := A·B` with `A ∈ R^{m×k}`, `B ∈ R^{k×n}`.
#[must_use]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// FLOP count of `SYRK`: one triangle of `A·Aᵀ` with `A ∈ R^{m×k}`.
#[must_use]
pub fn syrk_flops(m: usize, k: usize) -> u64 {
    (m as u64 + 1) * (m as u64) * (k as u64)
}

/// FLOP count of `SYMM`: `A·B` with symmetric `A ∈ R^{m×m}`, `B ∈ R^{m×n}`.
#[must_use]
pub fn symm_flops(m: usize, n: usize) -> u64 {
    2 * (m as u64) * (m as u64) * (n as u64)
}

/// FLOP count of `TRMM`: `op(L)·B` with triangular `L ∈ R^{m×m}`,
/// `B ∈ R^{m×n}` — `m²·n`, half of the GEMM that ignores the structure.
#[must_use]
pub fn trmm_flops(m: usize, n: usize) -> u64 {
    (m as u64) * (m as u64) * (n as u64)
}

/// FLOP count of `TRSM`: `op(L)⁻¹·B` with triangular `L ∈ R^{m×m}`,
/// `B ∈ R^{m×n}` — `m²·n`, the same count as the multiplication it inverts.
#[must_use]
pub fn trsm_flops(m: usize, n: usize) -> u64 {
    (m as u64) * (m as u64) * (n as u64)
}

/// FLOP count of `POTRF`: the Cholesky factorisation of an SPD `A ∈ R^{n×n}`
/// — the Section-3.1-style leading-order count `n³/3`, one sixth of the
/// equal-order GEMM.
#[must_use]
pub fn potrf_flops(n: usize) -> u64 {
    (n as u64).pow(3) / 3
}

/// FLOP count of `GETRF`: the partially pivoted LU factorisation of a general
/// `A ∈ R^{n×n}` — the Section-3.1-style leading-order count `2n³/3`, twice
/// the equal-order POTRF (both triangles are computed) and a third of the
/// equal-order GEMM.
#[must_use]
pub fn getrf_flops(n: usize) -> u64 {
    2 * (n as u64).pow(3) / 3
}

/// FLOP count of `QR` (Householder, `A ∈ R^{m×n}`, `m >= n`) — the
/// leading-order count `2mn² - 2n³/3`, computed as `2n²(3m - n)/3`.
/// Saturates (to zero contribution) rather than underflowing if `m < n`.
#[must_use]
pub fn qr_flops(m: usize, n: usize) -> u64 {
    let (m, n) = (m as u64, n as u64);
    2 * n * n * (3 * m).saturating_sub(n) / 3
}

/// FLOP count of `ORMQR`: applying `Qᵀ` from an `m x n` Householder QR factor
/// to `m x k` right-hand sides (keeping the top `n` rows) — the leading-order
/// count `4mnk - 2n²k`, computed as `2nk(2m - n)`. Saturates if `m < n`.
#[must_use]
pub fn ormqr_flops(m: usize, n: usize, k: usize) -> u64 {
    let (m, n, k) = (m as u64, n as u64, k as u64);
    2 * n * k * (2 * m).saturating_sub(n)
}

/// FLOP count of extracting an explicit triangular factor from a packed
/// factor operand (zero: pure data movement, like the triangle copy).
#[must_use]
pub fn factor_triangle_flops(_n: usize) -> u64 {
    0
}

/// Number of matrix elements written by extracting an `n x n` triangular
/// factor from a packed factor operand (the populated triangle including the
/// diagonal; the opposite triangle's zeros are calloc-free).
#[must_use]
pub fn factor_triangle_elements(n: usize) -> u64 {
    let n = n as u64;
    n * (n + 1) / 2
}

/// FLOP count of applying a recorded pivot permutation to `m x n` right-hand
/// sides (zero: row swaps move data but perform no arithmetic).
#[must_use]
pub fn pivot_apply_flops(_m: usize, _n: usize) -> u64 {
    0
}

/// Number of matrix elements moved by applying a pivot permutation to an
/// `m x n` operand (every element is placed once).
#[must_use]
pub fn pivot_apply_elements(m: usize, n: usize) -> u64 {
    (m as u64) * (n as u64)
}

/// FLOP count of copying one triangle of an `n x n` matrix into the other
/// triangle (zero: it moves data but performs no floating-point arithmetic).
#[must_use]
pub fn copy_triangle_flops(_n: usize) -> u64 {
    0
}

/// Number of matrix elements moved by the triangle-to-full copy of an
/// `n x n` matrix (useful for memory-bound time models). Saturating at
/// degenerate orders: `n == 0` moves nothing.
#[must_use]
pub fn copy_triangle_elements(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_matches_paper_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 2 * 2 * 3 * 4);
        assert_eq!(gemm_flops(100, 200, 300), 2 * 100 * 200 * 300);
        assert_eq!(gemm_flops(0, 5, 5), 0);
    }

    #[test]
    fn syrk_flops_matches_paper_formula() {
        assert_eq!(syrk_flops(3, 4), 4 * 3 * 4);
        assert_eq!(syrk_flops(1200, 700), 1201 * 1200 * 700);
        assert_eq!(syrk_flops(0, 10), 0);
    }

    #[test]
    fn symm_flops_matches_paper_formula() {
        assert_eq!(symm_flops(3, 5), 2 * 9 * 5);
        assert_eq!(symm_flops(1200, 20), 2 * 1200 * 1200 * 20);
    }

    #[test]
    fn triangular_kernels_halve_the_gemm_count_exactly() {
        // The paper-style discriminant for the triangular family: TRMM and
        // TRSM perform exactly half the FLOPs of the equal-shape GEMM.
        for (m, n) in [(3, 5), (700, 120), (1200, 1200)] {
            assert_eq!(trmm_flops(m, n) * 2, gemm_flops(m, n, m));
            assert_eq!(trsm_flops(m, n), trmm_flops(m, n));
        }
        assert_eq!(trmm_flops(0, 10), 0);
    }

    #[test]
    fn syrk_is_roughly_half_a_gemm() {
        // SYRK computes only one triangle, so its FLOP count is about half of
        // the GEMM that would compute the full product.
        let m = 500;
        let k = 321;
        let syrk = syrk_flops(m, k) as f64;
        let gemm = gemm_flops(m, m, k) as f64;
        let ratio = syrk / gemm;
        assert!(ratio > 0.5 && ratio < 0.51, "ratio was {ratio}");
    }

    #[test]
    fn copy_triangle_is_free_in_flops_but_moves_data() {
        assert_eq!(copy_triangle_flops(1000), 0);
        assert_eq!(copy_triangle_elements(4), 6);
        assert_eq!(copy_triangle_elements(1), 0);
        // Regression: n == 0 must not underflow (debug panic pre-fix).
        assert_eq!(copy_triangle_elements(0), 0);
    }

    #[test]
    fn potrf_is_a_sixth_of_the_equal_order_gemm() {
        for n in [0, 1, 3, 64, 1200] {
            assert_eq!(potrf_flops(n), (n as u64).pow(3) / 3);
        }
        // Leading order: n³/3 versus GEMM's 2·n³.
        let n = 900;
        assert!(potrf_flops(n) * 6 <= gemm_flops(n, n, n));
        assert!(potrf_flops(n) * 7 > gemm_flops(n, n, n));
    }

    #[test]
    fn getrf_is_twice_potrf_and_a_third_of_gemm() {
        for n in [0, 1, 3, 64, 1200] {
            assert_eq!(getrf_flops(n), 2 * (n as u64).pow(3) / 3);
        }
        let n = 900;
        assert_eq!(getrf_flops(n), 2 * potrf_flops(n));
        assert!(getrf_flops(n) * 3 == gemm_flops(n, n, n));
    }

    #[test]
    fn qr_flops_matches_the_householder_count() {
        // Square: 2n³ - 2n³/3 = 4n³/3, i.e. double GETRF.
        let n = 300;
        assert_eq!(qr_flops(n, n), 2 * getrf_flops(n));
        // Tall-skinny limit: ≈ 2mn² (one Householder sweep per column);
        // integer floor shaves the fractional 2n³/3 term.
        assert_eq!(qr_flops(1200, 1), (2 * 3 * 1200 - 2) / 3);
        // Degenerate and inverted shapes never panic.
        assert_eq!(qr_flops(0, 0), 0);
        assert_eq!(qr_flops(10, 0), 0);
        assert_eq!(qr_flops(1, 5), 0); // saturates, never underflows
    }

    #[test]
    fn ormqr_flops_matches_the_reflector_application_count() {
        // Applying n reflectors of average length ~m to k columns.
        assert_eq!(ormqr_flops(40, 10, 3), 2 * 10 * 3 * (80 - 10));
        assert_eq!(ormqr_flops(0, 0, 5), 0);
        assert_eq!(ormqr_flops(2, 10, 5), 0); // saturates, never underflows
    }

    #[test]
    fn factor_extraction_and_pivots_are_free_in_flops_but_move_data() {
        assert_eq!(factor_triangle_flops(1000), 0);
        assert_eq!(factor_triangle_elements(4), 10);
        assert_eq!(factor_triangle_elements(0), 0);
        assert_eq!(pivot_apply_flops(9, 9), 0);
        assert_eq!(pivot_apply_elements(7, 3), 21);
        assert_eq!(pivot_apply_elements(0, 5), 0);
    }

    #[test]
    fn flop_counts_fit_u64_for_paper_search_space() {
        // The paper's search box is bounded by 1200; far larger sizes must not
        // overflow either.
        let f = gemm_flops(100_000, 100_000, 100_000);
        assert!(f > 0);
    }
}
