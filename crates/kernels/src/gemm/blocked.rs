//! Serial cache-blocked, packed GEMM core shared by GEMM, SYRK and SYMM.
//!
//! The core routine accumulates `C += alpha * op(A) * op(B)` where the logical
//! operands are presented through element accessor closures. Callers are
//! responsible for applying `beta` to `C` beforehand (see
//! [`scale_inplace`]). Presenting operands through accessors lets SYMM read
//! its symmetric operand from a single stored triangle and lets SYRK feed the
//! transposed row block of `A` as the `B` operand without materialising it.

use crate::config::{BlockConfig, MR, NR};
use crate::gemm::microkernel::microkernel;
use crate::pack::{pack_a, pack_b};
use lamb_matrix::MatrixViewMut;

/// `C := beta * C` over a view, with the BLAS convention that `beta == 0`
/// writes zeros without reading the (possibly uninitialised) contents.
pub fn scale_inplace(beta: f64, c: &mut MatrixViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    for j in 0..c.cols() {
        let col = c.col_mut(j);
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for x in col {
                *x *= beta;
            }
        }
    }
}

/// Accumulate `C += alpha * OpA * OpB` serially with cache blocking and
/// packing. `load_a(i, p)` is the logical `m x k` left operand and
/// `load_b(p, j)` the logical `k x n` right operand.
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn gemm_accumulate_serial<FA, FB>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    load_a: &FA,
    load_b: &FB,
    c: &mut MatrixViewMut<'_>,
    cfg: &BlockConfig,
) where
    FA: Fn(usize, usize) -> f64,
    FB: Fn(usize, usize) -> f64,
{
    debug_assert_eq!(c.rows(), m);
    debug_assert_eq!(c.cols(), n);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let mc = cfg.mc.max(MR);
    let kc = cfg.kc.max(1);
    let nc = cfg.nc.max(NR);

    let mut a_pack: Vec<f64> = Vec::new();
    let mut b_pack: Vec<f64> = Vec::new();
    let mut acc = [0.0f64; MR * NR];

    let mut jc = 0;
    while jc < n {
        let ncb = nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kcb = kc.min(k - pc);
            pack_b(kcb, ncb, |p, j| load_b(pc + p, jc + j), &mut b_pack);
            let mut ic = 0;
            while ic < m {
                let mcb = mc.min(m - ic);
                pack_a(mcb, kcb, |i, p| load_a(ic + i, pc + p), &mut a_pack);
                macro_kernel(
                    mcb,
                    ncb,
                    kcb,
                    alpha,
                    &a_pack,
                    &b_pack,
                    &mut c.subview_mut(ic, jc, mcb, ncb),
                    &mut acc,
                );
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Inner macro-kernel: sweep the packed block with `MR x NR` micro-tiles and
/// accumulate `alpha` times the result into the output block.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mcb: usize,
    ncb: usize,
    kcb: usize,
    alpha: f64,
    a_pack: &[f64],
    b_pack: &[f64],
    c_block: &mut MatrixViewMut<'_>,
    acc: &mut [f64; MR * NR],
) {
    let mut jr = 0;
    while jr < ncb {
        let nrb = NR.min(ncb - jr);
        let b_panel = &b_pack[(jr / NR) * kcb * NR..(jr / NR + 1) * kcb * NR];
        let mut ir = 0;
        while ir < mcb {
            let mrb = MR.min(mcb - ir);
            let a_panel = &a_pack[(ir / MR) * kcb * MR..(ir / MR + 1) * kcb * MR];
            microkernel(kcb, a_panel, b_panel, acc);
            for jj in 0..nrb {
                let col = c_block.col_mut(jr + jj);
                let acc_col = &acc[jj * MR..jj * MR + mrb];
                for (ci, &av) in col[ir..ir + mrb].iter_mut().zip(acc_col) {
                    *ci += alpha * av;
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::random_seeded;
    use lamb_matrix::{Matrix, Trans};

    fn reference(a: &Matrix, b: &Matrix, alpha: f64) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm_naive(
            Trans::No,
            Trans::No,
            alpha,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
        )
        .unwrap();
        c
    }

    #[test]
    fn blocked_core_matches_naive_for_awkward_sizes() {
        // Sizes chosen to produce partial tiles in every blocking dimension.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 13, 9),
            (33, 29, 31),
            (40, 24, 56),
        ] {
            let a = random_seeded(m, k, 1000 + m as u64);
            let b = random_seeded(k, n, 2000 + n as u64);
            let mut c = Matrix::zeros(m, n);
            let cfg = BlockConfig::tiny();
            let a_s = a.as_slice();
            let b_s = b.as_slice();
            gemm_accumulate_serial(
                m,
                n,
                k,
                1.0,
                &|i, p| a_s[i + p * m],
                &|p, j| b_s[p + j * k],
                &mut c.view_mut(),
                &cfg,
            );
            let expected = reference(&a, &b, 1.0);
            assert!(
                max_abs_diff(&c, &expected).unwrap() < 1e-12,
                "size {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn accumulation_adds_to_existing_contents() {
        let m = 6;
        let n = 6;
        let k = 6;
        let a = random_seeded(m, k, 7);
        let b = random_seeded(k, n, 8);
        let mut c = Matrix::filled(m, n, 2.0);
        let a_s = a.as_slice();
        let b_s = b.as_slice();
        gemm_accumulate_serial(
            m,
            n,
            k,
            0.5,
            &|i, p| a_s[i + p * m],
            &|p, j| b_s[p + j * k],
            &mut c.view_mut(),
            &BlockConfig::tiny(),
        );
        let mut expected = Matrix::filled(m, n, 2.0);
        gemm_naive(
            Trans::No,
            Trans::No,
            0.5,
            &a.view(),
            &b.view(),
            1.0,
            &mut expected.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&c, &expected).unwrap() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_a_no_op() {
        let mut c = Matrix::filled(4, 4, 3.0);
        gemm_accumulate_serial(
            4,
            4,
            4,
            0.0,
            &|_, _| f64::NAN,
            &|_, _| f64::NAN,
            &mut c.view_mut(),
            &BlockConfig::tiny(),
        );
        assert!(c.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn scale_inplace_handles_beta_zero_with_nan() {
        let mut c = Matrix::filled(3, 3, f64::NAN);
        scale_inplace(0.0, &mut c.view_mut());
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scale_inplace_multiplies() {
        let mut c = Matrix::filled(3, 2, 2.0);
        scale_inplace(-1.5, &mut c.view_mut());
        assert!(c.as_slice().iter().all(|&x| x == -3.0));
        scale_inplace(1.0, &mut c.view_mut());
        assert!(c.as_slice().iter().all(|&x| x == -3.0));
    }
}
