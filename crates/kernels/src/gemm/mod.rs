//! General matrix–matrix multiplication: `C := alpha * op(A) * op(B) + beta * C`.
//!
//! The public entry point is [`gemm`]; it validates shapes, applies `beta`,
//! and hands plain (possibly transposed) element accessors to the shared
//! [`BlockedDriver`], which blocks, packs and parallelises.

pub mod naive;

use crate::config::BlockConfig;
use crate::driver::{scale_inplace, BlockedDriver};
use lamb_matrix::{MatrixError, MatrixView, MatrixViewMut, Result, Trans};

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// `op(X)` is `X` or `Xᵀ` according to the corresponding [`Trans`] flag. The
/// FLOP count attributed to this kernel by the paper is `2·m·n·k` (see
/// [`crate::flops::gemm_flops`]).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when the operand shapes are
/// inconsistent with the output shape.
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn gemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &BlockConfig,
) -> Result<()> {
    let (m, ka) = transa.apply((a.rows(), a.cols()));
    let (kb, n) = transb.apply((b.rows(), b.cols()));
    if ka != kb {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm inner dimension",
            lhs: (m, ka),
            rhs: (kb, n),
        });
    }
    if c.rows() != m || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm output shape",
            lhs: (c.rows(), c.cols()),
            rhs: (m, n),
        });
    }
    let k = ka;

    scale_inplace(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return Ok(());
    }

    let a_data = a.as_slice();
    let lda = a.ld();
    let b_data = b.as_slice();
    let ldb = b.ld();
    let load_a = move |i: usize, p: usize| match transa {
        Trans::No => a_data[i + p * lda],
        Trans::Yes => a_data[p + i * lda],
    };
    let load_b = move |p: usize, j: usize| match transb {
        Trans::No => b_data[p + j * ldb],
        Trans::Yes => b_data[j + p * ldb],
    };

    BlockedDriver::new(cfg).accumulate(m, n, k, alpha, &load_a, &load_b, c);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::random_seeded;
    use lamb_matrix::Matrix;

    #[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature under test
    fn check_against_naive(
        transa: Trans,
        transb: Trans,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
        cfg: &BlockConfig,
    ) {
        let (ar, ac) = transa.apply((m, k));
        let (br, bc) = transb.apply((k, n));
        let a = random_seeded(ar, ac, 10 + m as u64);
        let b = random_seeded(br, bc, 20 + n as u64);
        let c0 = random_seeded(m, n, 30 + k as u64);
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm(
            transa,
            transb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut c_fast.view_mut(),
            cfg,
        )
        .unwrap();
        gemm_naive(
            transa,
            transb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut c_ref.view_mut(),
        )
        .unwrap();
        let diff = max_abs_diff(&c_fast, &c_ref).unwrap();
        assert!(
            diff < 1e-10 * (k as f64).max(1.0),
            "trans {:?}/{:?} {m}x{n}x{k} alpha={alpha} beta={beta}: diff {diff}",
            transa,
            transb
        );
    }

    #[test]
    fn all_transpose_combinations_match_naive() {
        let cfg = BlockConfig::serial();
        for &transa in &[Trans::No, Trans::Yes] {
            for &transb in &[Trans::No, Trans::Yes] {
                check_against_naive(transa, transb, 23, 17, 31, 1.0, 0.0, &cfg);
                check_against_naive(transa, transb, 9, 40, 5, -0.5, 2.0, &cfg);
            }
        }
    }

    #[test]
    fn parallel_path_matches_naive() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1, // force the parallel path
            ..BlockConfig::default()
        };
        check_against_naive(Trans::No, Trans::No, 120, 90, 75, 1.0, 0.0, &cfg);
        check_against_naive(Trans::Yes, Trans::No, 64, 200, 33, 2.0, 1.0, &cfg);
        check_against_naive(Trans::No, Trans::Yes, 150, 150, 150, 1.0, 0.5, &cfg);
    }

    #[test]
    fn skinny_and_degenerate_shapes() {
        let cfg = BlockConfig::default();
        check_against_naive(Trans::No, Trans::No, 1, 200, 3, 1.0, 0.0, &cfg);
        check_against_naive(Trans::No, Trans::No, 200, 1, 3, 1.0, 0.0, &cfg);
        check_against_naive(Trans::No, Trans::No, 5, 5, 1, 1.0, 0.0, &cfg);
        // k = 0 leaves beta*C.
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::filled(4, 4, 3.0);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            2.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap();
        assert!(c.as_slice().iter().all(|&x| x == 6.0));
    }

    #[test]
    fn shape_errors_are_detected() {
        let cfg = BlockConfig::default();
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg
        )
        .is_err());
        // Transposing B fixes the inner dimension but breaks the output shape.
        let b2 = Matrix::zeros(2, 4);
        let mut c_bad = Matrix::zeros(3, 5);
        assert!(gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            &a.view(),
            &b2.view(),
            0.0,
            &mut c_bad.view_mut(),
            &cfg
        )
        .is_err());
    }

    #[test]
    fn matrix_product_associativity_holds_numerically() {
        // (A B) C == A (B C) within round-off — the identity behind the matrix
        // chain expression having many equivalent algorithms.
        let cfg = BlockConfig::serial();
        let a = random_seeded(20, 30, 1);
        let b = random_seeded(30, 10, 2);
        let c = random_seeded(10, 25, 3);
        let mut ab = Matrix::zeros(20, 10);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut ab.view_mut(),
            &cfg,
        )
        .unwrap();
        let mut ab_c = Matrix::zeros(20, 25);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &ab.view(),
            &c.view(),
            0.0,
            &mut ab_c.view_mut(),
            &cfg,
        )
        .unwrap();
        let mut bc = Matrix::zeros(30, 25);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &b.view(),
            &c.view(),
            0.0,
            &mut bc.view_mut(),
            &cfg,
        )
        .unwrap();
        let mut a_bc = Matrix::zeros(20, 25);
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &bc.view(),
            0.0,
            &mut a_bc.view_mut(),
            &cfg,
        )
        .unwrap();
        assert!(max_abs_diff(&ab_c, &a_bc).unwrap() < 1e-10);
    }
}
