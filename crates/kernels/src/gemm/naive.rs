//! Naive triple-loop GEMM used as the correctness reference for the blocked
//! and parallel kernels, and as the fallback for degenerate problem sizes.

use lamb_matrix::{MatrixError, MatrixView, MatrixViewMut, Result, Trans};

/// `C := alpha * op(A) * op(B) + beta * C` with the textbook three nested
/// loops. No blocking, no packing, no parallelism; numerically this is the
/// ground truth all optimised kernels are validated against.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when the operand shapes are
/// inconsistent.
pub fn gemm_naive(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
) -> Result<()> {
    let (m, ka) = transa.apply((a.rows(), a.cols()));
    let (kb, n) = transb.apply((b.rows(), b.cols()));
    if ka != kb {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm_naive inner dimension",
            lhs: (m, ka),
            rhs: (kb, n),
        });
    }
    if c.rows() != m || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "gemm_naive output shape",
            lhs: (c.rows(), c.cols()),
            rhs: (m, n),
        });
    }
    let k = ka;
    let load_a = |i: usize, p: usize| match transa {
        Trans::No => a.at(i, p),
        Trans::Yes => a.at(p, i),
    };
    let load_b = |p: usize, j: usize| match transb {
        Trans::No => b.at(p, j),
        Trans::Yes => b.at(j, p),
    };
    for j in 0..n {
        for i in 0..m {
            let mut sum = 0.0;
            for p in 0..k {
                sum += load_a(i, p) * load_b(p, j);
            }
            let old = c.at(i, j);
            let base = if beta == 0.0 { 0.0 } else { beta * old };
            *c.at_mut(i, j) = base + alpha * sum;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_matrix::Matrix;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let mut c = Matrix::zeros(3, 2);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
        )
        .unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn transposes_are_honoured() {
        // (A^T B^T)^T = B A, check a single element by hand.
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_rows(2, 2, &[1.0, -1.0, 0.5, 2.0]).unwrap();
        // C = A^T * B : (3x2)*(2x2)
        let mut c = Matrix::zeros(3, 2);
        gemm_naive(
            Trans::Yes,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
        )
        .unwrap();
        // c[0,0] = a[0,0]*b[0,0] + a[1,0]*b[1,0] = 1*1 + 4*0.5 = 3
        assert!((c[(0, 0)] - 3.0).abs() < 1e-15);
        // c[2,1] = a[0,2]*b[0,1] + a[1,2]*b[1,1] = 3*(-1) + 6*2 = 9
        assert!((c[(2, 1)] - 9.0).abs() < 1e-15);
    }

    #[test]
    fn alpha_beta_combine() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 3.0);
        let mut c = Matrix::filled(2, 2, 10.0);
        gemm_naive(
            Trans::No,
            Trans::No,
            2.0,
            &a.view(),
            &b.view(),
            0.5,
            &mut c.view_mut(),
        )
        .unwrap();
        // c = 2*I*3 + 0.5*10 = 6 (off-diag: 0 + 5) ...
        assert_eq!(c[(0, 0)], 11.0);
        assert_eq!(c[(0, 1)], 11.0);
    }

    #[test]
    fn beta_zero_ignores_nan_in_output() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let mut c = Matrix::filled(2, 2, f64::NAN);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
        )
        .unwrap();
        assert!(c.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        assert!(gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut()
        )
        .is_err());
        let mut c_bad = Matrix::zeros(3, 2);
        let b_ok = Matrix::zeros(3, 2);
        assert!(gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b_ok.view(),
            0.0,
            &mut c_bad.view_mut()
        )
        .is_err());
    }

    #[test]
    fn zero_sized_products_are_ok() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(0, 2);
        assert!(gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut()
        )
        .is_ok());

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::filled(2, 3, 5.0);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &b.view(),
            1.0,
            &mut c.view_mut(),
        )
        .unwrap();
        // k = 0: C must be beta * C = C.
        assert!(c.as_slice().iter().all(|&x| x == 5.0));
    }
}
