//! LU factorisation with partial pivoting: `P·A = L·U` for a general square
//! matrix, in place, LAPACK `dgetrf`-style.
//!
//! The factor overwrites `A`: the strictly lower triangle holds the
//! unit-lower factor `L` (its implicit unit diagonal is *not* stored) and the
//! upper triangle including the diagonal holds `U`. The pivot vector records,
//! for each step `j`, the absolute row index that was swapped into row `j`
//! (LAPACK `ipiv` convention, zero-based), so `P` is recovered by replaying
//! the swaps in order.
//!
//! Structure on the shared [`BlockedDriver`](crate::driver::BlockedDriver)
//! engine: the classic **right-looking blocked algorithm**. The matrix is
//! walked in column panels of [`BlockConfig::tri_block`] columns; each step
//!
//! 1. factors the panel with the scalar unblocked partial-pivot recurrence,
//!    applying each row swap across the *full* width of the matrix as it is
//!    found (reporting [`MatrixError::SingularDiagonal`] on an exactly-zero
//!    pivot column),
//! 2. computes the row panel `U₁₂ := L₁₁⁻¹·A₁₂` with one
//!    [`crate::trsm::trsm`] solve against the unit-lower diagonal block, and
//! 3. folds the panels into the trailing submatrix with one rank-`kb`
//!    [`crate::gemm::gemm`] update `A₂₂ -= L₂₁·U₁₂` (`alpha = -1`,
//!    `beta = 1`).
//!
//! Steps 2 and 3 carry the `2n³/3` bulk of the work (see
//! [`crate::flops::getrf_flops`]) and both run on the packed, cache-blocked,
//! Rayon-capable engine — GETRF adds no loop nest of its own beyond the
//! scalar panel factor.
//!
//! [`getrf_packed`] produces the single-operand packed form the kernel-call
//! IR uses: an `n x (n+1)` matrix with the LU factors in columns `0..n` and
//! the pivot indices, stored as `f64`, in column `n`.

use crate::config::BlockConfig;
use crate::gemm::gemm;
use crate::trsm::trsm;
use lamb_matrix::{Matrix, MatrixError, MatrixViewMut, Result, Side, Trans, Uplo};

/// Factor the square matrix `a` in place as `P·A = L·U` with partial
/// pivoting. On return `piv` holds, for each step `j`, the absolute index of
/// the row swapped into row `j` (`piv[j] >= j`; `piv[j] == j` means no swap).
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input and
/// [`MatrixError::SingularDiagonal`] (with the absolute pivot index) when a
/// pivot column is exactly zero, in which case the leading part of the
/// factorisation is complete.
pub fn getrf(a: &mut MatrixViewMut<'_>, piv: &mut Vec<usize>, cfg: &BlockConfig) -> Result<()> {
    let n = check_square(a)?;
    piv.clear();
    piv.reserve(n);
    let tb = cfg.tri_block.max(1);
    let mut k0 = 0;
    while k0 < n {
        let kb = tb.min(n - k0);
        factor_panel(a, piv, k0, kb)?;
        let rest = n - (k0 + kb);
        if rest > 0 {
            // The freshly factored unit-lower diagonal block, materialised
            // with its implicit unit diagonal so the TRSM can borrow it
            // immutably while the row panel of `a` is written. `kb` is at most
            // `tri_block`, so the copy is O(tri_block²) per step.
            let l11 = Matrix::from_fn(kb, kb, |i, j| match i.cmp(&j) {
                std::cmp::Ordering::Greater => a.at(k0 + i, k0 + j),
                std::cmp::Ordering::Equal => 1.0,
                std::cmp::Ordering::Less => 0.0,
            });
            // Row panel: U12 := L11⁻¹ · A12.
            let a12 = Matrix::from_fn(kb, rest, |i, j| a.at(k0 + i, k0 + kb + j));
            let mut u12 = Matrix::zeros(kb, rest);
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                1.0,
                &l11.view(),
                &a12.view(),
                &mut u12.view_mut(),
                cfg,
            )?;
            for j in 0..rest {
                for i in 0..kb {
                    *a.at_mut(k0 + i, k0 + kb + j) = u12[(i, j)];
                }
            }
            // Trailing update: A22 -= L21 · U12, one rank-kb GEMM.
            let l21 = Matrix::from_fn(rest, kb, |i, j| a.at(k0 + kb + i, k0 + j));
            let mut a22 = a.subview_mut(k0 + kb, k0 + kb, rest, rest);
            gemm(
                Trans::No,
                Trans::No,
                -1.0,
                &l21.view(),
                &u12.view(),
                1.0,
                &mut a22,
                cfg,
            )?;
        }
        k0 += kb;
    }
    Ok(())
}

/// Reference GETRF: the scalar unblocked partial-pivot recurrence over the
/// whole matrix. Used by the unit and property tests to validate the blocked
/// kernel.
///
/// # Errors
///
/// Same checks as [`getrf`].
pub fn getrf_naive(a: &mut MatrixViewMut<'_>, piv: &mut Vec<usize>) -> Result<()> {
    let n = check_square(a)?;
    piv.clear();
    factor_panel(a, piv, 0, n)
}

fn check_square(a: &MatrixViewMut<'_>) -> Result<usize> {
    if a.rows() != a.cols() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    Ok(a.rows())
}

/// Scalar unblocked partial-pivot LU of the `kb`-column panel starting at
/// column `k0` (rows `k0..n`), applying each row swap across the full width
/// of the matrix and recording it in `piv`. Pivot failures report the
/// *absolute* column index.
fn factor_panel(
    a: &mut MatrixViewMut<'_>,
    piv: &mut Vec<usize>,
    k0: usize,
    kb: usize,
) -> Result<()> {
    let n = a.rows();
    for j in 0..kb {
        let col = k0 + j;
        // Partial pivot: the largest magnitude on or below the diagonal.
        let mut p = col;
        let mut best = a.at(col, col).abs();
        for i in (col + 1)..n {
            let v = a.at(i, col).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 || best.is_nan() {
            return Err(MatrixError::SingularDiagonal { index: col });
        }
        piv.push(p);
        if p != col {
            swap_rows(a, col, p);
        }
        // Eliminate below the pivot and fold into the rest of the panel.
        let d = a.at(col, col);
        for i in (col + 1)..n {
            let l = a.at(i, col) / d;
            *a.at_mut(i, col) = l;
        }
        for jj in (j + 1)..kb {
            let u = a.at(col, k0 + jj);
            if u != 0.0 {
                for i in (col + 1)..n {
                    let l = a.at(i, col);
                    *a.at_mut(i, k0 + jj) -= l * u;
                }
            }
        }
    }
    Ok(())
}

/// Swap rows `r1` and `r2` across every column (column-major storage: one
/// element per column).
fn swap_rows(a: &mut MatrixViewMut<'_>, r1: usize, r2: usize) {
    for j in 0..a.cols() {
        let t = a.at(r1, j);
        *a.at_mut(r1, j) = a.at(r2, j);
        *a.at_mut(r2, j) = t;
    }
}

/// Factor `a` out of place into the packed `n x (n+1)` operand the
/// kernel-call IR uses: LU factors in columns `0..n` (unit-lower `L` strictly
/// below the diagonal, `U` on and above) and the pivot vector, stored as
/// `f64` row indices, in column `n`.
///
/// # Errors
///
/// Same checks as [`getrf`].
pub fn getrf_packed(a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    if a.rows() != a.cols() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut f = Matrix::zeros(n, n + 1);
    for j in 0..n {
        f.col_mut(j).copy_from_slice(a.col(j));
    }
    let mut piv = Vec::new();
    {
        let mut full = f.view_mut();
        let mut lu = full.subview_mut(0, 0, n, n);
        getrf(&mut lu, &mut piv, cfg)?;
    }
    for (j, &p) in piv.iter().enumerate() {
        f[(j, n)] = p as f64;
    }
    Ok(f)
}

/// Apply the forward row swaps recorded in the pivot column of a packed LU
/// factor `f` (`m x (m+1)`, see [`getrf_packed`]) to a fresh copy of `b`:
/// `Bp := P·B`. Pivot entries are rounded and clamped to the legal range
/// `[j, m-1]`, so a factor operand filled with arbitrary data (as the
/// isolated-call benchmark harness does) still applies a valid permutation.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when `f` is not `m x (m+1)`
/// for `b`'s row count `m`.
pub fn pivot_apply(f: &Matrix, b: &Matrix) -> Result<Matrix> {
    let m = b.rows();
    if f.rows() != m || f.cols() != m + 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "pivot_apply",
            lhs: f.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = b.clone();
    if m == 0 {
        return Ok(out);
    }
    for j in 0..m {
        // Clamp untrusted pivot data into range rather than panicking.
        let p = (f[(j, m)].round().max(0.0) as usize).clamp(j, m - 1);
        if p != j {
            for c in 0..out.cols() {
                let col = out.col_mut(c);
                col.swap(j, p);
            }
        }
    }
    Ok(out)
}

/// Apply the permutation recorded in the pivot column of a packed LU factor
/// `f` (`n x (n+1)`, see [`getrf_packed`]) to the *columns* of a fresh copy
/// of `b`: `Bp := B·P`. With `P = Pₙ₋₁···P₀` (the forward row swaps of
/// [`pivot_apply`]), right-multiplication applies the same transpositions as
/// column swaps in *reverse* order, `j = n-1` down to `0` — this is the last
/// step of the right-side LU solve `B·A⁻¹ = ((B·U⁻¹)·L⁻¹)·P`. Pivot entries
/// are rounded and clamped to the legal range like the left-side apply.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when `f` is not `n x (n+1)`
/// for `b`'s column count `n`.
pub fn pivot_apply_right(f: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = b.cols();
    if f.rows() != n || f.cols() != n + 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "pivot_apply_right",
            lhs: f.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = b.clone();
    if n == 0 {
        return Ok(out);
    }
    for j in (0..n).rev() {
        // Clamp untrusted pivot data into range rather than panicking.
        let p = (f[(j, n)].round().max(0.0) as usize).clamp(j, n - 1);
        if p != j {
            for r in 0..out.rows() {
                let tmp = out[(r, j)];
                out[(r, j)] = out[(r, p)];
                out[(r, p)] = tmp;
            }
        }
    }
    Ok(out)
}

/// Extract an explicit triangular factor from a packed factor operand `f`
/// (`r x (n+1)`, `n = cols - 1`; see [`getrf_packed`] and
/// [`crate::qr::qr_packed`]): [`Uplo::Lower`] materialises the unit-lower
/// factor (implicit unit diagonal written out), [`Uplo::Upper`] the upper
/// factor including its stored diagonal. Entries outside the extracted
/// triangle are exact zeros. Performs no floating-point arithmetic.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when `f` has no pivot/tau
/// column (`cols == 0`) or fewer than `n` rows.
pub fn factor_triangle(uplo: Uplo, f: &Matrix) -> Result<Matrix> {
    let Some(n) = f.cols().checked_sub(1) else {
        return Err(MatrixError::DimensionMismatch {
            op: "factor_triangle",
            lhs: f.shape(),
            rhs: (0, 0),
        });
    };
    if f.rows() < n {
        return Err(MatrixError::DimensionMismatch {
            op: "factor_triangle",
            lhs: f.shape(),
            rhs: (n, n),
        });
    }
    Ok(match uplo {
        Uplo::Lower => Matrix::from_fn(n, n, |i, j| match i.cmp(&j) {
            std::cmp::Ordering::Greater => f[(i, j)],
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Less => 0.0,
        }),
        Uplo::Upper => Matrix::from_fn(n, n, |i, j| if i <= j { f[(i, j)] } else { 0.0 }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use crate::trsm::trsm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::random_seeded;

    /// `P·A`: replay the recorded forward swaps on a copy of `a`.
    fn permute(a: &Matrix, piv: &[usize]) -> Matrix {
        let mut out = a.clone();
        for (j, &p) in piv.iter().enumerate() {
            if p != j {
                for c in 0..out.cols() {
                    out.col_mut(c).swap(j, p);
                }
            }
        }
        out
    }

    fn check_reconstruction(n: usize, seed: u64, cfg: &BlockConfig) {
        let a = random_seeded(n, n, seed);
        let mut f = a.clone();
        let mut piv = Vec::new();
        getrf(&mut f.view_mut(), &mut piv, cfg).unwrap();
        assert_eq!(piv.len(), n);
        let l = factor_triangle(Uplo::Lower, &pad_pivot(&f, &piv)).unwrap();
        let u = factor_triangle(Uplo::Upper, &pad_pivot(&f, &piv)).unwrap();
        // L·U must reproduce P·A.
        let mut back = Matrix::zeros(n, n);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &l.view(),
            &u.view(),
            0.0,
            &mut back.view_mut(),
        )
        .unwrap();
        let pa = permute(&a, &piv);
        let diff = max_abs_diff(&back, &pa).unwrap();
        assert!(
            diff < 1e-10 * (n as f64).max(1.0),
            "n {n}: reconstruction diff {diff}"
        );
    }

    /// Pack a factored matrix plus pivot vector into the `n x (n+1)` form.
    fn pad_pivot(f: &Matrix, piv: &[usize]) -> Matrix {
        let n = f.rows();
        Matrix::from_fn(n, n + 1, |i, j| {
            if j < n {
                f[(i, j)]
            } else if i < piv.len() {
                piv[i] as f64
            } else {
                0.0
            }
        })
    }

    #[test]
    fn blocked_factor_reconstructs_the_permuted_matrix() {
        let cfg = BlockConfig::serial();
        for n in [1, 2, 5, 23, 64, 65, 97] {
            check_reconstruction(n, 11 + n as u64, &cfg);
        }
    }

    #[test]
    fn tiny_blocking_exercises_partial_panels() {
        let cfg = BlockConfig::tiny(); // tri_block = 3
        check_reconstruction(13, 3, &cfg);
        check_reconstruction(7, 4, &cfg);
    }

    #[test]
    fn parallel_path_matches_naive() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        let a = random_seeded(150, 150, 17);
        let mut blocked = a.clone();
        let mut piv_b = Vec::new();
        getrf(&mut blocked.view_mut(), &mut piv_b, &cfg).unwrap();
        let mut naive = a.clone();
        let mut piv_n = Vec::new();
        getrf_naive(&mut naive.view_mut(), &mut piv_n).unwrap();
        assert_eq!(piv_b, piv_n, "pivot sequences must agree");
        assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-9);
    }

    #[test]
    fn blocked_and_naive_agree_on_the_factor_itself() {
        let cfg = BlockConfig::serial();
        let a = random_seeded(40, 40, 33);
        let mut blocked = a.clone();
        let mut naive = a.clone();
        let (mut pb, mut pn) = (Vec::new(), Vec::new());
        getrf(&mut blocked.view_mut(), &mut pb, &cfg).unwrap();
        getrf_naive(&mut naive.view_mut(), &mut pn).unwrap();
        assert_eq!(pb, pn);
        assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-10);
    }

    #[test]
    fn factor_solves_general_systems_through_pivot_and_two_trsms() {
        // The LU realisation of A⁻¹·B: GETRF, P·B, then L⁻¹, then U⁻¹. The
        // residual A·X - B certifies the pipeline end to end.
        let cfg = BlockConfig::serial();
        let n = 31;
        let a = random_seeded(n, n, 9);
        let b = random_seeded(n, 6, 10);
        let f = getrf_packed(&a, &cfg).unwrap();
        let l = factor_triangle(Uplo::Lower, &f).unwrap();
        let u = factor_triangle(Uplo::Upper, &f).unwrap();
        let bp = pivot_apply(&f, &b).unwrap();
        let mut y = Matrix::zeros(n, 6);
        trsm_naive(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &bp.view(),
            &mut y.view_mut(),
        )
        .unwrap();
        let mut x = Matrix::zeros(n, 6);
        trsm_naive(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            1.0,
            &u.view(),
            &y.view(),
            &mut x.view_mut(),
        )
        .unwrap();
        let mut ax = Matrix::zeros(n, 6);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &x.view(),
            0.0,
            &mut ax.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&ax, &b).unwrap() < 1e-10 * n as f64);
    }

    #[test]
    fn singular_matrices_are_reported_with_the_pivot_index() {
        let cfg = BlockConfig::tiny();
        // A rank-deficient matrix: column 2 is a copy of column 1, so the
        // third pivot column is eliminated to exact... not exact zero in
        // floating point generally, so build a matrix with an exactly zero
        // trailing column instead.
        let mut a = random_seeded(9, 9, 21);
        for i in 0..9 {
            a[(i, 4)] = 0.0;
        }
        let mut piv = Vec::new();
        let err = getrf(&mut a.clone().view_mut(), &mut piv, &cfg).unwrap_err();
        assert_eq!(err, MatrixError::SingularDiagonal { index: 4 });
        assert!(getrf_naive(&mut a.view_mut(), &mut piv).is_err());
        // The identically-zero matrix fails on the very first pivot.
        let mut zero = Matrix::zeros(4, 4);
        assert_eq!(
            getrf(&mut zero.view_mut(), &mut Vec::new(), &cfg).unwrap_err(),
            MatrixError::SingularDiagonal { index: 0 }
        );
    }

    #[test]
    fn degenerate_and_rectangular_inputs() {
        let cfg = BlockConfig::default();
        // n = 0 is a no-op.
        let mut empty = Matrix::zeros(0, 0);
        let mut piv = Vec::new();
        getrf(&mut empty.view_mut(), &mut piv, &cfg).unwrap();
        assert!(piv.is_empty());
        getrf_naive(&mut empty.view_mut(), &mut piv).unwrap();
        let f = getrf_packed(&Matrix::zeros(0, 0), &cfg).unwrap();
        assert_eq!(f.shape(), (0, 1));
        // n = 1 is the identity pivot.
        let mut one = Matrix::filled(1, 1, 4.0);
        getrf(&mut one.view_mut(), &mut piv, &cfg).unwrap();
        assert_eq!(piv, vec![0]);
        assert_eq!(one[(0, 0)], 4.0);
        // Rectangular input is rejected.
        let mut rect = Matrix::zeros(3, 4);
        assert!(matches!(
            getrf(&mut rect.view_mut(), &mut piv, &cfg),
            Err(MatrixError::NotSquare { .. })
        ));
        assert!(getrf_packed(&Matrix::zeros(2, 5), &cfg).is_err());
    }

    #[test]
    fn right_pivot_apply_closes_the_mirrored_lu_solve() {
        // The LU realisation of B·A⁻¹: GETRF(A), then B·U⁻¹, then ·L⁻¹,
        // then ·P applied as reverse-order column swaps. The residual
        // X·A - B certifies the right-side pipeline end to end.
        let cfg = BlockConfig::serial();
        let (m, n) = (6, 23);
        let a = random_seeded(n, n, 11);
        let b = random_seeded(m, n, 12);
        let f = getrf_packed(&a, &cfg).unwrap();
        let l = factor_triangle(Uplo::Lower, &f).unwrap();
        let u = factor_triangle(Uplo::Upper, &f).unwrap();
        let mut y = Matrix::zeros(m, n);
        trsm_naive(
            Side::Right,
            Uplo::Upper,
            Trans::No,
            1.0,
            &u.view(),
            &b.view(),
            &mut y.view_mut(),
        )
        .unwrap();
        let mut z = Matrix::zeros(m, n);
        trsm_naive(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &y.view(),
            &mut z.view_mut(),
        )
        .unwrap();
        let x = pivot_apply_right(&f, &z).unwrap();
        let mut xa = Matrix::zeros(m, n);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &x.view(),
            &a.view(),
            0.0,
            &mut xa.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&xa, &b).unwrap() < 1e-10 * n as f64);
        // The right apply inverts the left one: P·(Pᵀ·B)ᵀ round-trips.
        // Equivalently, (P·C)ᵀ = Cᵀ·Pᵀ, so applying the right swap order
        // to rows would undo the left apply; check via the simpler
        // identity-permutation and shape-error paths instead.
        assert!(pivot_apply_right(&Matrix::zeros(n, n), &b).is_err());
        let empty = pivot_apply_right(&Matrix::zeros(0, 1), &Matrix::zeros(4, 0)).unwrap();
        assert_eq!(empty.shape(), (4, 0));
    }

    #[test]
    fn right_pivot_apply_is_the_transpose_of_the_left_apply() {
        // B·P = (Pᵀ·Bᵀ)ᵀ and P⁻¹ = Pᵀ, so the right apply composed with
        // the left apply through a transpose must reproduce the operand
        // structure: compare against an explicitly materialised P.
        let cfg = BlockConfig::serial();
        let n = 9;
        let a = random_seeded(n, n, 13);
        let f = getrf_packed(&a, &cfg).unwrap();
        // P·I gives the permutation matrix; then B·P via plain GEMM.
        let p = pivot_apply(&f, &Matrix::identity(n)).unwrap();
        let b = random_seeded(4, n, 14);
        let mut expect = Matrix::zeros(4, n);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &b.view(),
            &p.view(),
            0.0,
            &mut expect.view_mut(),
        )
        .unwrap();
        let got = pivot_apply_right(&f, &b).unwrap();
        assert!(max_abs_diff(&got, &expect).unwrap() < 1e-12);
    }

    #[test]
    fn pivot_apply_clamps_untrusted_pivot_data() {
        // The isolated-call benchmark harness fills factor operands with
        // arbitrary random data; pivot application must stay in bounds.
        let b = random_seeded(5, 3, 2);
        let f = Matrix::from_fn(5, 6, |i, j| {
            if j == 5 {
                1000.0 * (i as f64) - 7.3
            } else {
                0.0
            }
        });
        let out = pivot_apply(&f, &b).unwrap();
        assert_eq!(out.shape(), (5, 3));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        // Shape mismatches are rejected.
        assert!(pivot_apply(&Matrix::zeros(5, 5), &b).is_err());
        // Degenerate: no rows, nothing to swap.
        let empty = pivot_apply(&Matrix::zeros(0, 1), &Matrix::zeros(0, 4)).unwrap();
        assert_eq!(empty.shape(), (0, 4));
    }

    #[test]
    fn factor_triangle_extracts_unit_lower_and_upper() {
        let cfg = BlockConfig::serial();
        let a = random_seeded(8, 8, 5);
        let f = getrf_packed(&a, &cfg).unwrap();
        let l = factor_triangle(Uplo::Lower, &f).unwrap();
        let u = factor_triangle(Uplo::Upper, &f).unwrap();
        assert!(lamb_matrix::ops::is_triangular(&l, Uplo::Lower).unwrap());
        assert!(lamb_matrix::ops::is_triangular(&u, Uplo::Upper).unwrap());
        for i in 0..8 {
            assert_eq!(l[(i, i)], 1.0, "L must carry an explicit unit diagonal");
        }
        // Degenerate and malformed inputs.
        assert_eq!(
            factor_triangle(Uplo::Lower, &Matrix::zeros(0, 1))
                .unwrap()
                .shape(),
            (0, 0)
        );
        assert!(factor_triangle(Uplo::Lower, &Matrix::zeros(3, 0)).is_err());
        assert!(factor_triangle(Uplo::Upper, &Matrix::zeros(2, 4)).is_err());
    }
}
