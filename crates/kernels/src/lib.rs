//! # lamb-kernels
//!
//! Pure-Rust, blocked, packed, Rayon-parallel BLAS-3 kernels — GEMM, SYRK,
//! SYMM, TRMM and TRSM — plus the blocked factorisations POTRF (Cholesky),
//! GETRF (partially pivoted LU) and QR (Householder), unified behind the
//! [`solver::Solver`] trait: the kernel vocabulary from which the algorithms
//! studied in the paper *"FLOPs
//! as a Discriminant for Dense Linear Algebra Algorithms"* (ICPP'22) and its
//! triangular/SPD extensions are built — together with their FLOP-count
//! models, cache-flushing and median-of-N timing utilities.
//!
//! Every kernel is a thin specialisation of one engine, the
//! [`driver::BlockedDriver`], in the classic GotoBLAS/BLIS structure: the
//! operands are packed into contiguous panels (`MR`-row panels of `op(A)`,
//! `NR`-column panels of `op(B)`) and a register-blocked micro-kernel
//! accumulates `MR x NR` tiles of `C`. Per-kernel code reduces to an element
//! accessor (plain, transposed, symmetric-mirrored or triangle-masked), a
//! panel policy and — for the triangular kernels — a diagonal-block
//! recurrence. Parallelism is extracted over disjoint column panels of `C`,
//! which keeps the implementation free of `unsafe`.
//!
//! This crate substitutes for the Intel MKL used in the paper's experimental
//! setup; see `DESIGN.md` at the workspace root for the substitution argument.
//!
//! ## Quick example
//!
//! ```
//! use lamb_kernels::{gemm, BlockConfig};
//! use lamb_matrix::{Matrix, Trans};
//!
//! let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
//! let b = Matrix::from_fn(4, 2, |i, j| (i * j + 1) as f64);
//! let mut c = Matrix::zeros(3, 2);
//! gemm(
//!     Trans::No,
//!     Trans::No,
//!     1.0,
//!     &a.view(),
//!     &b.view(),
//!     0.0,
//!     &mut c.view_mut(),
//!     &BlockConfig::default(),
//! )
//! .unwrap();
//! assert!((c[(0, 0)] - (0.0 + 1.0 + 2.0 + 3.0)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod config;
pub mod dispatch;
pub mod driver;
pub mod flops;
pub mod gemm;
pub mod getrf;
pub mod microkernel;
pub mod pack;
pub mod potrf;
pub mod qr;
pub mod solver;
pub mod symm;
pub mod syrk;
pub mod timing;
pub mod trmm;
pub mod trsm;

pub use cache::CacheFlusher;
pub use config::{BlockConfig, TileVariant, MAX_TILE_ACC};
pub use dispatch::{
    factor_tri_new, gemm_into, gemm_new, getrf_new, ormqr_new, pivot_apply_new, potrf_new, qr_new,
    symm_into, symm_new, syrk_into, syrk_new, trmm_new, trsm_new, Kernel,
};
pub use driver::{pack_buffer_growth_events, BlockedDriver};
pub use gemm::gemm;
pub use gemm::naive::gemm_naive;
pub use getrf::{
    factor_triangle, getrf, getrf_naive, getrf_packed, pivot_apply, pivot_apply_right,
};
pub use microkernel::{microkernel, microkernel_dyn};
pub use potrf::{potrf, potrf_naive};
pub use qr::{ormqr, qr, qr_naive, qr_packed};
pub use solver::{solve_auto, solver_for, CholeskySolver, LuSolver, QrSolver, Solver};
pub use symm::symm;
pub use syrk::syrk;
pub use timing::{time_once, MedianTimer, TimingResult};
pub use trmm::{trmm, trmm_naive};
pub use trsm::{trsm, trsm_naive};
