//! The register-blocked `MR x NR` micro-kernel operating on packed panels.

use crate::config::{MR, NR};

/// Compute `acc := Ap · Bp` for one micro-tile.
///
/// * `ap` is an `MR`-row packed panel: `ap[p * MR + r]` holds `op(A)[r, p]`.
/// * `bp` is an `NR`-column packed panel: `bp[p * NR + c]` holds `op(B)[p, c]`.
/// * `acc` is column-major: `acc[c * MR + r]` accumulates `C[r, c]`.
///
/// The accumulator is cleared on entry. `kb` is the depth of the current
/// cache block.
#[inline]
pub fn microkernel(kb: usize, ap: &[f64], bp: &[f64], acc: &mut [f64; MR * NR]) {
    acc.fill(0.0);
    debug_assert!(ap.len() >= kb * MR);
    debug_assert!(bp.len() >= kb * NR);
    for p in 0..kb {
        let a = &ap[p * MR..(p + 1) * MR];
        let b = &bp[p * NR..(p + 1) * NR];
        for c in 0..NR {
            let bv = b[c];
            let col = &mut acc[c * MR..(c + 1) * MR];
            for r in 0..MR {
                col[r] += a[r] * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_a, pack_b};

    #[test]
    fn microkernel_matches_reference_product() {
        // op(A) is MR x kb, op(B) is kb x NR; use small deterministic values.
        let kb = 5;
        let a = |i: usize, p: usize| (i as f64 + 1.0) * 0.5 + p as f64;
        let b = |p: usize, j: usize| (p as f64 - 1.5) * (j as f64 + 0.25);
        let mut ap = Vec::new();
        let mut bp = Vec::new();
        pack_a(MR, kb, a, &mut ap);
        pack_b(kb, NR, b, &mut bp);
        let mut acc = [0.0; MR * NR];
        microkernel(kb, &ap, &bp, &mut acc);
        for r in 0..MR {
            for c in 0..NR {
                let expected: f64 = (0..kb).map(|p| a(r, p) * b(p, c)).sum();
                assert!(
                    (acc[c * MR + r] - expected).abs() < 1e-12,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn microkernel_with_zero_depth_clears_accumulator() {
        let ap = vec![0.0; 0];
        let bp = vec![0.0; 0];
        let mut acc = [7.0; MR * NR];
        microkernel(0, &ap, &bp, &mut acc);
        assert!(acc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn microkernel_depth_one_is_outer_product() {
        let mut ap = Vec::new();
        let mut bp = Vec::new();
        pack_a(MR, 1, |i, _| i as f64, &mut ap);
        pack_b(1, NR, |_, j| (j + 1) as f64, &mut bp);
        let mut acc = [0.0; MR * NR];
        microkernel(1, &ap, &bp, &mut acc);
        for r in 0..MR {
            for c in 0..NR {
                assert_eq!(acc[c * MR + r], (r as f64) * (c as f64 + 1.0));
            }
        }
    }
}
