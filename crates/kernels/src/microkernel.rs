//! The register-blocked `MR x NR` micro-kernel operating on packed panels.
//!
//! The kernel is generic over the register-tile shape: `MR` and `NR` are
//! `const` parameters, so each [`crate::config::TileVariant`] names a
//! dedicated monomorphisation in which the accumulator is a true
//! `[[f64; MR]; NR]` array, the panel reads are fixed-size chunks and every
//! column update is a fully unrolled loop of constant trip count — the shape
//! rustc's auto-vectoriser turns into vector FMAs without any `unsafe` or
//! explicit intrinsics. Runtime tile selection happens once per kernel call
//! (see [`crate::driver::BlockedDriver`]) or through [`microkernel_dyn`].

use crate::config::TileVariant;

/// One accumulator update `acc + a * b`, fused when the compile target
/// guarantees hardware FMA.
///
/// `f64::mul_add` is a single rounding — but on targets without an FMA
/// instruction it lowers to a `libm` call that is an order of magnitude
/// slower than a mul + add, so fusion is gated on the target feature (the
/// workspace `.cargo/config.toml` builds for the host CPU, which enables it
/// on any modern x86-64; aarch64 always has fused multiply-add). Both paths
/// auto-vectorise; they differ only in one rounding step, well inside the
/// tolerance every numerical test in this workspace uses.
#[inline(always)]
fn fmadd(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(any(target_feature = "fma", target_arch = "aarch64"))]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(any(target_feature = "fma", target_arch = "aarch64")))]
    {
        acc + a * b
    }
}

/// Compute `acc := Ap · Bp` for one micro-tile of shape `MR x NR`.
///
/// * `ap` is an `MR`-row packed panel: `ap[p * MR + r]` holds `op(A)[r, p]`.
/// * `bp` is an `NR`-column packed panel: `bp[p * NR + c]` holds `op(B)[p, c]`.
/// * `acc` is column-major: `acc[c * MR + r]` receives `C[r, c]`; only the
///   first `MR * NR` elements are written (the slice may be longer so one
///   stack buffer of [`crate::config::MAX_TILE_ACC`] serves every variant).
///
/// The accumulator is overwritten, not accumulated into. `kb` is the depth of
/// the current cache block.
///
/// # Panics
///
/// Panics if `acc` holds fewer than `MR * NR` elements or the packed panels
/// are shorter than `kb` micro-rows/columns.
#[inline]
pub fn microkernel<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
    acc: &mut [f64],
) {
    // One register column per output column; `[f64; MR]` keeps every update
    // loop at a compile-time trip count.
    let mut tile = [[0.0f64; MR]; NR];
    let a_steps = ap[..kb * MR].chunks_exact(MR);
    let b_steps = bp[..kb * NR].chunks_exact(NR);
    for (a, b) in a_steps.zip(b_steps) {
        let a: &[f64; MR] = a.try_into().expect("chunk is MR long");
        let b: &[f64; NR] = b.try_into().expect("chunk is NR long");
        for c in 0..NR {
            let bv = b[c];
            let col = &mut tile[c];
            for r in 0..MR {
                col[r] = fmadd(col[r], a[r], bv);
            }
        }
    }
    for (c, col) in tile.iter().enumerate() {
        acc[c * MR..(c + 1) * MR].copy_from_slice(col);
    }
}

/// Run [`microkernel`] for the monomorphisation named by `tile`.
///
/// This is the one place the [`TileVariant`] enum meets the `const`-generic
/// instantiations; callers that dispatch per micro-tile (tests, one-off
/// products) use this, while the hot path in
/// [`crate::driver::BlockedDriver`] dispatches once per kernel call and stays
/// monomorphic through the whole blocked loop nest.
#[inline]
pub fn microkernel_dyn(tile: TileVariant, kb: usize, ap: &[f64], bp: &[f64], acc: &mut [f64]) {
    match tile {
        TileVariant::T8x4 => microkernel::<8, 4>(kb, ap, bp, acc),
        TileVariant::T8x8 => microkernel::<8, 8>(kb, ap, bp, acc),
        TileVariant::T4x8 => microkernel::<4, 8>(kb, ap, bp, acc),
        TileVariant::T16x4 => microkernel::<16, 4>(kb, ap, bp, acc),
        TileVariant::T8x12 => microkernel::<8, 12>(kb, ap, bp, acc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MAX_TILE_ACC;
    use crate::pack::{pack_a, pack_b};

    #[test]
    fn every_variant_matches_reference_product() {
        // op(A) is mr x kb, op(B) is kb x nr; small deterministic values.
        let kb = 5;
        let a = |i: usize, p: usize| (i as f64 + 1.0) * 0.5 + p as f64;
        let b = |p: usize, j: usize| (p as f64 - 1.5) * (j as f64 + 0.25);
        for tile in TileVariant::ALL {
            let (mr, nr) = (tile.mr(), tile.nr());
            let mut ap = Vec::new();
            let mut bp = Vec::new();
            pack_a(mr, mr, kb, a, &mut ap);
            pack_b(nr, kb, nr, b, &mut bp);
            let mut acc = vec![f64::NAN; tile.acc_len()];
            microkernel_dyn(tile, kb, &ap, &bp, &mut acc);
            for r in 0..mr {
                for c in 0..nr {
                    let expected: f64 = (0..kb).map(|p| a(r, p) * b(p, c)).sum();
                    assert!(
                        (acc[c * mr + r] - expected).abs() < 1e-12,
                        "{tile} mismatch at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_depth_clears_accumulator_for_every_variant() {
        for tile in TileVariant::ALL {
            let mut acc = [7.0; MAX_TILE_ACC];
            microkernel_dyn(tile, 0, &[], &[], &mut acc);
            assert!(acc[..tile.acc_len()].iter().all(|&x| x == 0.0), "{tile}");
            // Slack beyond the variant's accumulator stays untouched.
            assert!(acc[tile.acc_len()..].iter().all(|&x| x == 7.0), "{tile}");
        }
    }

    #[test]
    fn depth_one_is_outer_product() {
        for tile in TileVariant::ALL {
            let (mr, nr) = (tile.mr(), tile.nr());
            let mut ap = Vec::new();
            let mut bp = Vec::new();
            pack_a(mr, mr, 1, |i, _| i as f64, &mut ap);
            pack_b(nr, 1, nr, |_, j| (j + 1) as f64, &mut bp);
            let mut acc = vec![0.0; tile.acc_len()];
            microkernel_dyn(tile, 1, &ap, &bp, &mut acc);
            for r in 0..mr {
                for c in 0..nr {
                    assert_eq!(acc[c * mr + r], (r as f64) * (c as f64 + 1.0), "{tile}");
                }
            }
        }
    }
}
