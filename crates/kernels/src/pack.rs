//! Operand packing into contiguous panels, the heart of the GotoBLAS/BLIS
//! kernel structure.
//!
//! * `op(A)` blocks are packed into consecutive `mr`-row panels: panel `q`
//!   stores, for `p = 0..k`, the `mr` values `op(A)[q*mr + r, p]`
//!   (`r = 0..mr`), zero-padded past the block edge.
//! * `op(B)` blocks are packed into consecutive `nr`-column panels with the
//!   symmetric layout.
//!
//! Packing goes through element accessor closures, which lets the same code
//! path serve plain GEMM (`A` as stored), transposed operands (`Aᵀ` read
//! during packing) and SYMM (elements mirrored from the stored triangle).
//!
//! The panel heights/widths are *runtime* parameters — the packing loops are
//! memory-bound, so unlike the micro-kernel they gain nothing from
//! monomorphisation, and keeping them dynamic means one packing routine
//! serves every [`crate::config::TileVariant`].

/// Number of `f64` slots required to pack an `mb x kb` block of `op(A)` into
/// `mr`-row panels.
#[must_use]
pub fn packed_a_len(mr: usize, mb: usize, kb: usize) -> usize {
    mb.div_ceil(mr) * mr * kb
}

/// Number of `f64` slots required to pack a `kb x nb` block of `op(B)` into
/// `nr`-column panels.
#[must_use]
pub fn packed_b_len(nr: usize, kb: usize, nb: usize) -> usize {
    nb.div_ceil(nr) * nr * kb
}

/// Pack an `mb x kb` block of `op(A)` into `buf` using `mr`-row panels.
///
/// `load(i, p)` must return the logical element `op(A)[i, p]` for
/// `i < mb`, `p < kb`. Rows past `mb` within the last panel are zero-padded.
pub fn pack_a<F: Fn(usize, usize) -> f64>(
    mr: usize,
    mb: usize,
    kb: usize,
    load: F,
    buf: &mut Vec<f64>,
) {
    buf.clear();
    buf.reserve(packed_a_len(mr, mb, kb));
    let mut ir = 0;
    while ir < mb {
        let rows = mr.min(mb - ir);
        for p in 0..kb {
            for r in 0..mr {
                let v = if r < rows { load(ir + r, p) } else { 0.0 };
                buf.push(v);
            }
        }
        ir += mr;
    }
}

/// Pack a `kb x nb` block of `op(B)` into `buf` using `nr`-column panels.
///
/// `load(p, j)` must return the logical element `op(B)[p, j]` for
/// `p < kb`, `j < nb`. Columns past `nb` within the last panel are zero-padded.
pub fn pack_b<F: Fn(usize, usize) -> f64>(
    nr: usize,
    kb: usize,
    nb: usize,
    load: F,
    buf: &mut Vec<f64>,
) {
    buf.clear();
    buf.reserve(packed_b_len(nr, kb, nb));
    let mut jr = 0;
    while jr < nb {
        let cols = nr.min(nb - jr);
        for p in 0..kb {
            for c in 0..nr {
                let v = if c < cols { load(p, jr + c) } else { 0.0 };
                buf.push(v);
            }
        }
        jr += nr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TileVariant;

    // The historical default tile; layout expectations below are written
    // against these panel dimensions.
    const MR: usize = 8;
    const NR: usize = 4;

    #[test]
    fn packed_lengths_round_up_to_full_panels() {
        for tile in TileVariant::ALL {
            let (mr, nr) = (tile.mr(), tile.nr());
            assert_eq!(packed_a_len(mr, mr, 3), mr * 3);
            assert_eq!(packed_a_len(mr, mr + 1, 3), 2 * mr * 3);
            assert_eq!(packed_b_len(nr, 3, nr), nr * 3);
            assert_eq!(packed_b_len(nr, 3, nr + 1), 2 * nr * 3);
            assert_eq!(packed_a_len(mr, 0, 5), 0);
        }
    }

    #[test]
    fn pack_a_layout_matches_microkernel_expectation() {
        // 3 x 2 block, single panel (3 <= MR).
        let mb = 3;
        let kb = 2;
        let mut buf = Vec::new();
        pack_a(MR, mb, kb, |i, p| (10 * i + p) as f64, &mut buf);
        assert_eq!(buf.len(), packed_a_len(MR, mb, kb));
        // Panel stores column p = 0 first: rows 0,1,2 then padding.
        assert_eq!(&buf[0..3], &[0.0, 10.0, 20.0]);
        assert!(buf[3..MR].iter().all(|&x| x == 0.0));
        // Then column p = 1.
        assert_eq!(&buf[MR..MR + 3], &[1.0, 11.0, 21.0]);
    }

    #[test]
    fn pack_a_multiple_panels() {
        let mb = MR + 2;
        let kb = 1;
        let mut buf = Vec::new();
        pack_a(MR, mb, kb, |i, _| i as f64, &mut buf);
        assert_eq!(buf.len(), 2 * MR);
        // First panel holds rows 0..MR.
        for (r, &v) in buf.iter().take(MR).enumerate() {
            assert_eq!(v, r as f64);
        }
        // Second panel holds rows MR..MR+2 then zeros.
        assert_eq!(buf[MR], MR as f64);
        assert_eq!(buf[MR + 1], (MR + 1) as f64);
        assert!(buf[MR + 2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pack_b_layout_matches_microkernel_expectation() {
        let kb = 2;
        let nb = 3;
        let mut buf = Vec::new();
        pack_b(NR, kb, nb, |p, j| (100 * p + j) as f64, &mut buf);
        assert_eq!(buf.len(), packed_b_len(NR, kb, nb));
        // Row p = 0 of the single panel: columns 0,1,2, padding.
        assert_eq!(&buf[0..3], &[0.0, 1.0, 2.0]);
        assert_eq!(buf[3], 0.0);
        // Row p = 1.
        assert_eq!(&buf[NR..NR + 3], &[100.0, 101.0, 102.0]);
    }

    #[test]
    fn pack_b_multiple_panels() {
        let kb = 1;
        let nb = NR + 1;
        let mut buf = Vec::new();
        pack_b(NR, kb, nb, |_, j| j as f64, &mut buf);
        assert_eq!(buf.len(), 2 * NR);
        for (c, &v) in buf.iter().take(NR).enumerate() {
            assert_eq!(v, c as f64);
        }
        assert_eq!(buf[NR], NR as f64);
        assert!(buf[NR + 1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packing_is_tile_agnostic_in_content() {
        // Same logical block packed under two tiles holds the same elements,
        // just grouped into different panels.
        let (mb, kb) = (10, 3);
        let load = |i: usize, p: usize| (i * 100 + p) as f64;
        for tile in TileVariant::ALL {
            let mr = tile.mr();
            let mut buf = Vec::new();
            pack_a(mr, mb, kb, load, &mut buf);
            assert_eq!(buf.len(), packed_a_len(mr, mb, kb));
            let nonzero: f64 = buf.iter().sum();
            let expected: f64 = (0..mb).flat_map(|i| (0..kb).map(move |p| load(i, p))).sum();
            assert!((nonzero - expected).abs() < 1e-12, "{tile}");
        }
    }

    #[test]
    fn packing_reuses_buffer_capacity() {
        let mut buf = Vec::new();
        pack_a(MR, MR, 16, |i, p| (i * p) as f64, &mut buf);
        let cap = buf.capacity();
        pack_a(MR, MR, 8, |i, p| (i + p) as f64, &mut buf);
        assert!(buf.capacity() >= cap.min(buf.len()));
        assert_eq!(buf.len(), packed_a_len(MR, MR, 8));
    }
}
