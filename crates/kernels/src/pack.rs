//! Operand packing into contiguous panels, the heart of the GotoBLAS/BLIS
//! kernel structure.
//!
//! * `op(A)` blocks are packed into consecutive `MR`-row panels: panel `q`
//!   stores, for `p = 0..k`, the `MR` values `op(A)[q*MR + r, p]`
//!   (`r = 0..MR`), zero-padded past the block edge.
//! * `op(B)` blocks are packed into consecutive `NR`-column panels with the
//!   symmetric layout.
//!
//! Packing goes through element accessor closures, which lets the same code
//! path serve plain GEMM (`A` as stored), transposed operands (`Aᵀ` read
//! during packing) and SYMM (elements mirrored from the stored triangle).

use crate::config::{MR, NR};

/// Number of `f64` slots required to pack an `mb x kb` block of `op(A)`.
#[must_use]
pub fn packed_a_len(mb: usize, kb: usize) -> usize {
    mb.div_ceil(MR) * MR * kb
}

/// Number of `f64` slots required to pack a `kb x nb` block of `op(B)`.
#[must_use]
pub fn packed_b_len(kb: usize, nb: usize) -> usize {
    nb.div_ceil(NR) * NR * kb
}

/// Pack an `mb x kb` block of `op(A)` into `buf` using MR-row panels.
///
/// `load(i, p)` must return the logical element `op(A)[i, p]` for
/// `i < mb`, `p < kb`. Rows past `mb` within the last panel are zero-padded.
pub fn pack_a<F: Fn(usize, usize) -> f64>(mb: usize, kb: usize, load: F, buf: &mut Vec<f64>) {
    buf.clear();
    buf.reserve(packed_a_len(mb, kb));
    let mut ir = 0;
    while ir < mb {
        let rows = MR.min(mb - ir);
        for p in 0..kb {
            for r in 0..MR {
                let v = if r < rows { load(ir + r, p) } else { 0.0 };
                buf.push(v);
            }
        }
        ir += MR;
    }
}

/// Pack a `kb x nb` block of `op(B)` into `buf` using NR-column panels.
///
/// `load(p, j)` must return the logical element `op(B)[p, j]` for
/// `p < kb`, `j < nb`. Columns past `nb` within the last panel are zero-padded.
pub fn pack_b<F: Fn(usize, usize) -> f64>(kb: usize, nb: usize, load: F, buf: &mut Vec<f64>) {
    buf.clear();
    buf.reserve(packed_b_len(kb, nb));
    let mut jr = 0;
    while jr < nb {
        let cols = NR.min(nb - jr);
        for p in 0..kb {
            for c in 0..NR {
                let v = if c < cols { load(p, jr + c) } else { 0.0 };
                buf.push(v);
            }
        }
        jr += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_lengths_round_up_to_full_panels() {
        assert_eq!(packed_a_len(MR, 3), MR * 3);
        assert_eq!(packed_a_len(MR + 1, 3), 2 * MR * 3);
        assert_eq!(packed_b_len(3, NR), NR * 3);
        assert_eq!(packed_b_len(3, NR + 1), 2 * NR * 3);
        assert_eq!(packed_a_len(0, 5), 0);
    }

    #[test]
    fn pack_a_layout_matches_microkernel_expectation() {
        // 3 x 2 block, single panel (3 <= MR).
        let mb = 3;
        let kb = 2;
        let mut buf = Vec::new();
        pack_a(mb, kb, |i, p| (10 * i + p) as f64, &mut buf);
        assert_eq!(buf.len(), packed_a_len(mb, kb));
        // Panel stores column p = 0 first: rows 0,1,2 then padding.
        assert_eq!(&buf[0..3], &[0.0, 10.0, 20.0]);
        assert!(buf[3..MR].iter().all(|&x| x == 0.0));
        // Then column p = 1.
        assert_eq!(&buf[MR..MR + 3], &[1.0, 11.0, 21.0]);
    }

    #[test]
    fn pack_a_multiple_panels() {
        let mb = MR + 2;
        let kb = 1;
        let mut buf = Vec::new();
        pack_a(mb, kb, |i, _| i as f64, &mut buf);
        assert_eq!(buf.len(), 2 * MR);
        // First panel holds rows 0..MR.
        for (r, &v) in buf.iter().take(MR).enumerate() {
            assert_eq!(v, r as f64);
        }
        // Second panel holds rows MR..MR+2 then zeros.
        assert_eq!(buf[MR], MR as f64);
        assert_eq!(buf[MR + 1], (MR + 1) as f64);
        assert!(buf[MR + 2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pack_b_layout_matches_microkernel_expectation() {
        let kb = 2;
        let nb = 3;
        let mut buf = Vec::new();
        pack_b(kb, nb, |p, j| (100 * p + j) as f64, &mut buf);
        assert_eq!(buf.len(), packed_b_len(kb, nb));
        // Row p = 0 of the single panel: columns 0,1,2, padding.
        assert_eq!(&buf[0..3], &[0.0, 1.0, 2.0]);
        assert_eq!(buf[3], 0.0);
        // Row p = 1.
        assert_eq!(&buf[NR..NR + 3], &[100.0, 101.0, 102.0]);
    }

    #[test]
    fn pack_b_multiple_panels() {
        let kb = 1;
        let nb = NR + 1;
        let mut buf = Vec::new();
        pack_b(kb, nb, |_, j| j as f64, &mut buf);
        assert_eq!(buf.len(), 2 * NR);
        for (c, &v) in buf.iter().take(NR).enumerate() {
            assert_eq!(v, c as f64);
        }
        assert_eq!(buf[NR], NR as f64);
        assert!(buf[NR + 1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packing_reuses_buffer_capacity() {
        let mut buf = Vec::new();
        pack_a(MR, 16, |i, p| (i * p) as f64, &mut buf);
        let cap = buf.capacity();
        pack_a(MR, 8, |i, p| (i + p) as f64, &mut buf);
        assert!(buf.capacity() >= cap.min(buf.len()));
        assert_eq!(buf.len(), packed_a_len(MR, 8));
    }
}
