//! Cholesky factorisation: `A = L·Lᵀ` (lower) or `A = Uᵀ·U` (upper) of a
//! symmetric positive-definite matrix, in place on the stored triangle.
//!
//! The factor overwrites the `uplo` triangle of `A`; the opposite triangle is
//! neither read nor written (callers that need an explicitly triangular
//! factor — zeros outside the triangle — start from a zeroed matrix and copy
//! only the stored triangle in, which is exactly what the out-of-place
//! [`crate::dispatch::Kernel::Potrf`] realisation does).
//!
//! Structure on the shared [`BlockedDriver`](crate::driver::BlockedDriver)
//! engine: the classic **right-looking blocked algorithm**. The matrix is
//! walked in diagonal blocks of [`BlockConfig::tri_block`] rows; each step
//!
//! 1. factors the diagonal block with the scalar unblocked recurrence
//!    (reporting [`MatrixError::NotPositiveDefinite`] on a non-positive
//!    pivot),
//! 2. computes the panel below/right of it with one [`crate::trsm::trsm`]
//!    solve against the freshly factored diagonal block, and
//! 3. folds the panel into the trailing submatrix with one rank-`kb`
//!    [`crate::syrk::syrk`] update (`alpha = -1`, `beta = 1`).
//!
//! Steps 2 and 3 are where the `n³/3` bulk of the work happens, and both run
//! on the packed, cache-blocked, Rayon-capable engine — POTRF adds no loop
//! nest of its own beyond the small scalar diagonal factor.
//!
//! The Section-3.1-style FLOP model attributes `n³/3` FLOPs to the
//! factorisation (see [`crate::flops::potrf_flops`]): one sixth of the
//! equal-order GEMM, which is the FLOPs-versus-time tension that makes
//! Cholesky-based realisations of SPD inverses a fresh source of the paper's
//! anomalies.

use crate::config::BlockConfig;
use crate::syrk::syrk;
use crate::trsm::trsm;
use lamb_matrix::{Matrix, MatrixError, MatrixViewMut, Result, Side, Trans, Uplo};

/// Factor the `uplo` triangle of the square matrix `a` in place:
/// `A = L·Lᵀ` for [`Uplo::Lower`], `A = Uᵀ·U` for [`Uplo::Upper`]. Only the
/// `uplo` triangle is read and written.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input and
/// [`MatrixError::NotPositiveDefinite`] (with the absolute pivot index) when
/// the matrix is not positive definite, in which case the leading part of the
/// triangle holds a partial factor.
pub fn potrf(uplo: Uplo, a: &mut MatrixViewMut<'_>, cfg: &BlockConfig) -> Result<()> {
    let n = check_square(a)?;
    let tb = cfg.tri_block.max(1);
    let mut k0 = 0;
    while k0 < n {
        let kb = tb.min(n - k0);
        factor_diag_block(uplo, a, k0, kb)?;
        let rest = n - (k0 + kb);
        if rest > 0 {
            // The freshly factored diagonal block, copied out so the TRSM can
            // borrow it immutably while the panel of `a` is written. `kb` is
            // at most `tri_block`, so the copy is O(tri_block²) per step.
            let diag = Matrix::from_fn(kb, kb, |i, j| a.at(k0 + i, k0 + j));
            match uplo {
                Uplo::Lower => {
                    // Panel: L21 := A21 · L11⁻ᵀ, computed through the
                    // left-sided kernel as L21ᵀ = L11⁻¹ · A21ᵀ.
                    let a21t = Matrix::from_fn(kb, rest, |i, j| a.at(k0 + kb + j, k0 + i));
                    let mut l21t = Matrix::zeros(kb, rest);
                    trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::No,
                        1.0,
                        &diag.view(),
                        &a21t.view(),
                        &mut l21t.view_mut(),
                        cfg,
                    )?;
                    for j in 0..kb {
                        for i in 0..rest {
                            *a.at_mut(k0 + kb + i, k0 + j) = l21t[(j, i)];
                        }
                    }
                    // Trailing update: A22 (lower triangle) -= L21 · L21ᵀ,
                    // i.e. a rank-kb SYRK of op(L21ᵀ) = L21.
                    let mut a22 = a.subview_mut(k0 + kb, k0 + kb, rest, rest);
                    syrk(
                        Uplo::Lower,
                        Trans::Yes,
                        -1.0,
                        &l21t.view(),
                        1.0,
                        &mut a22,
                        cfg,
                    )?;
                }
                Uplo::Upper => {
                    // Panel: U12 := U11⁻ᵀ · A12 — directly a left-sided solve
                    // with the transposed upper factor.
                    let a12 = Matrix::from_fn(kb, rest, |i, j| a.at(k0 + i, k0 + kb + j));
                    let mut u12 = Matrix::zeros(kb, rest);
                    trsm(
                        Side::Left,
                        Uplo::Upper,
                        Trans::Yes,
                        1.0,
                        &diag.view(),
                        &a12.view(),
                        &mut u12.view_mut(),
                        cfg,
                    )?;
                    for j in 0..rest {
                        for i in 0..kb {
                            *a.at_mut(k0 + i, k0 + kb + j) = u12[(i, j)];
                        }
                    }
                    // Trailing update: A22 (upper triangle) -= U12ᵀ · U12.
                    let mut a22 = a.subview_mut(k0 + kb, k0 + kb, rest, rest);
                    syrk(
                        Uplo::Upper,
                        Trans::Yes,
                        -1.0,
                        &u12.view(),
                        1.0,
                        &mut a22,
                        cfg,
                    )?;
                }
            }
        }
        k0 += kb;
    }
    Ok(())
}

/// Reference POTRF: the scalar unblocked Cholesky recurrence over the whole
/// matrix. Used by the unit and property tests to validate the blocked
/// kernel. (`lamb_matrix::ops::is_spd` carries its own copy of the same
/// recurrence — that crate sits below this one and cannot call in here.)
///
/// # Errors
///
/// Same checks as [`potrf`].
pub fn potrf_naive(uplo: Uplo, a: &mut MatrixViewMut<'_>) -> Result<()> {
    let n = check_square(a)?;
    factor_diag_block(uplo, a, 0, n)
}

fn check_square(a: &MatrixViewMut<'_>) -> Result<usize> {
    if a.rows() != a.cols() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    Ok(a.rows())
}

/// Scalar unblocked Cholesky of the `kb x kb` diagonal block starting at
/// `(k0, k0)`, reading and writing only the `uplo` triangle of that block
/// (the right-looking sweep has already folded in every earlier block
/// column). Pivot failures report the *absolute* index.
fn factor_diag_block(uplo: Uplo, a: &mut MatrixViewMut<'_>, k0: usize, kb: usize) -> Result<()> {
    // Element (i, j) of the effective lower-triangular factor being built:
    // for Upper the roles of rows and columns swap (A = UᵀU is the Cholesky
    // of the same matrix with the factor living in the upper triangle).
    let at = |a: &MatrixViewMut<'_>, i: usize, j: usize| match uplo {
        Uplo::Lower => a.at(k0 + i, k0 + j),
        Uplo::Upper => a.at(k0 + j, k0 + i),
    };
    for j in 0..kb {
        let mut d = at(a, j, j);
        for p in 0..j {
            let v = at(a, j, p);
            d -= v * v;
        }
        // The NaN check also rejects poisoned pivots (e.g. inf - inf
        // upstream), which would otherwise propagate silently through sqrt.
        if d <= 0.0 || d.is_nan() {
            return Err(MatrixError::NotPositiveDefinite { index: k0 + j });
        }
        let d = d.sqrt();
        *a.at_mut(k0 + j, k0 + j) = d;
        for i in (j + 1)..kb {
            let mut s = at(a, i, j);
            for p in 0..j {
                s -= at(a, i, p) * at(a, j, p);
            }
            match uplo {
                Uplo::Lower => *a.at_mut(k0 + i, k0 + j) = s / d,
                Uplo::Upper => *a.at_mut(k0 + j, k0 + i) = s / d,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use crate::trsm::trsm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::{random_seeded, random_spd};

    /// Zero the opposite triangle so the factor can be multiplied as a full
    /// matrix by the naive GEMM reference.
    fn explicit_triangle(a: &Matrix, uplo: Uplo) -> Matrix {
        Matrix::from_fn(a.rows(), a.cols(), |i, j| {
            if uplo.contains(i, j) {
                a[(i, j)]
            } else {
                0.0
            }
        })
    }

    fn check_reconstruction(uplo: Uplo, n: usize, seed: u64, cfg: &BlockConfig) {
        let a = random_spd(n, seed);
        let mut f = a.clone();
        potrf(uplo, &mut f.view_mut(), cfg).unwrap();
        let l = explicit_triangle(&f, uplo);
        // L·Lᵀ (lower) or Uᵀ·U (upper) must reproduce A.
        let (ta, tb) = match uplo {
            Uplo::Lower => (Trans::No, Trans::Yes),
            Uplo::Upper => (Trans::Yes, Trans::No),
        };
        let mut back = Matrix::zeros(n, n);
        gemm_naive(ta, tb, 1.0, &l.view(), &l.view(), 0.0, &mut back.view_mut()).unwrap();
        let diff = max_abs_diff(&back, &a).unwrap();
        assert!(
            diff < 1e-10 * (n as f64).max(1.0),
            "uplo {uplo:?} n {n}: reconstruction diff {diff}"
        );
    }

    #[test]
    fn blocked_factor_reconstructs_the_matrix() {
        let cfg = BlockConfig::serial();
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for n in [1, 2, 5, 23, 64, 65, 97] {
                check_reconstruction(uplo, n, 7 + n as u64, &cfg);
            }
        }
    }

    #[test]
    fn tiny_blocking_exercises_partial_diag_blocks() {
        let cfg = BlockConfig::tiny(); // tri_block = 3
        for uplo in [Uplo::Lower, Uplo::Upper] {
            check_reconstruction(uplo, 13, 3, &cfg);
            check_reconstruction(uplo, 7, 4, &cfg);
        }
    }

    #[test]
    fn parallel_path_matches_naive() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        for uplo in [Uplo::Lower, Uplo::Upper] {
            let a = random_spd(150, 17);
            let mut blocked = a.clone();
            potrf(uplo, &mut blocked.view_mut(), &cfg).unwrap();
            let mut naive = a.clone();
            potrf_naive(uplo, &mut naive.view_mut()).unwrap();
            // Compare only the factored triangle; the opposite one is
            // untouched original data in both.
            for i in 0..150 {
                for j in 0..150 {
                    if uplo.contains(i, j) {
                        assert!(
                            (blocked[(i, j)] - naive[(i, j)]).abs() < 1e-9,
                            "{uplo:?} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn opposite_triangle_is_never_touched() {
        let cfg = BlockConfig::tiny();
        for uplo in [Uplo::Lower, Uplo::Upper] {
            let spd = random_spd(11, 5);
            // Poison the triangle POTRF must not reference.
            let mut a = Matrix::from_fn(11, 11, |i, j| {
                if uplo.contains(i, j) {
                    spd[(i, j)]
                } else {
                    777.0
                }
            });
            potrf(uplo, &mut a.view_mut(), &cfg).unwrap();
            for i in 0..11 {
                for j in 0..11 {
                    if !uplo.contains(i, j) {
                        assert_eq!(a[(i, j)], 777.0, "{uplo:?} wrote outside its triangle");
                    }
                }
            }
        }
    }

    #[test]
    fn factor_solves_spd_systems_through_two_trsms() {
        // The Cholesky realisation of A⁻¹·B: POTRF, then L⁻¹, then L⁻ᵀ. The
        // residual A·X - B certifies the pipeline end to end.
        let cfg = BlockConfig::serial();
        let n = 31;
        let a = random_spd(n, 9);
        let b = random_seeded(n, 6, 10);
        let mut f = a.clone();
        potrf(Uplo::Lower, &mut f.view_mut(), &cfg).unwrap();
        let l = explicit_triangle(&f, Uplo::Lower);
        let mut y = Matrix::zeros(n, 6);
        trsm_naive(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut y.view_mut(),
        )
        .unwrap();
        let mut x = Matrix::zeros(n, 6);
        trsm_naive(
            Side::Left,
            Uplo::Lower,
            Trans::Yes,
            1.0,
            &l.view(),
            &y.view(),
            &mut x.view_mut(),
        )
        .unwrap();
        let mut ax = Matrix::zeros(n, 6);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &x.view(),
            0.0,
            &mut ax.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&ax, &b).unwrap() < 1e-10 * n as f64);
    }

    #[test]
    fn non_positive_definite_matrices_are_reported_with_the_pivot_index() {
        let cfg = BlockConfig::tiny();
        let mut a = random_spd(9, 21);
        a[(5, 5)] = -4.0; // breaks definiteness at (or before) index 5
        let err = potrf(Uplo::Lower, &mut a.clone().view_mut(), &cfg).unwrap_err();
        match err {
            MatrixError::NotPositiveDefinite { index } => assert!(index <= 5),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
        assert!(potrf_naive(Uplo::Upper, &mut a.view_mut()).is_err());
        // The identically-zero matrix fails on the very first pivot.
        let mut zero = Matrix::zeros(4, 4);
        assert_eq!(
            potrf(Uplo::Lower, &mut zero.view_mut(), &cfg).unwrap_err(),
            MatrixError::NotPositiveDefinite { index: 0 }
        );
    }

    #[test]
    fn degenerate_and_rectangular_inputs() {
        let cfg = BlockConfig::default();
        // n = 0 is a no-op.
        let mut empty = Matrix::zeros(0, 0);
        potrf(Uplo::Lower, &mut empty.view_mut(), &cfg).unwrap();
        potrf_naive(Uplo::Upper, &mut empty.view_mut()).unwrap();
        // n = 1 is a scalar square root.
        let mut one = Matrix::filled(1, 1, 9.0);
        potrf(Uplo::Upper, &mut one.view_mut(), &cfg).unwrap();
        assert_eq!(one[(0, 0)], 3.0);
        // Rectangular input is rejected.
        let mut rect = Matrix::zeros(3, 4);
        assert!(matches!(
            potrf(Uplo::Lower, &mut rect.view_mut(), &cfg),
            Err(MatrixError::NotSquare { .. })
        ));
    }

    #[test]
    fn blocked_and_naive_agree_on_the_factor_itself() {
        let cfg = BlockConfig::serial();
        for uplo in [Uplo::Lower, Uplo::Upper] {
            let a = random_spd(40, 33);
            let mut blocked = a.clone();
            let mut naive = a.clone();
            potrf(uplo, &mut blocked.view_mut(), &cfg).unwrap();
            potrf_naive(uplo, &mut naive.view_mut()).unwrap();
            assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-10, "{uplo:?}");
        }
    }
}
