//! Householder QR factorisation: `A = Q·R` for a general `m x n` matrix with
//! `m >= n`, in place, LAPACK `dgeqrf`-style.
//!
//! The factor overwrites `A`: the upper triangle including the diagonal holds
//! `R`, and each column's strictly-sub-diagonal part holds the essential part
//! of a Householder vector `v_j` (its leading 1 is implicit). Together with
//! the scalar coefficients `tau`, reflector `j` is `H_j = I - tau_j·v_j·v_jᵀ`
//! and `Q = H_0·H_1⋯H_{n-1}`.
//!
//! Structure on the shared [`BlockedDriver`](crate::driver::BlockedDriver)
//! engine: the classic **blocked compact-WY algorithm**. The matrix is walked
//! in column panels of [`BlockConfig::tri_block`] columns; each step
//!
//! 1. factors the panel with the scalar unblocked Householder recurrence
//!    (an exactly-zero column yields `tau = 0`, i.e. the identity reflector —
//!    rank deficiency surfaces later as a zero on `R`'s diagonal, not here),
//! 2. accumulates the panel's triangular factor `T` (LAPACK `larft`, forward
//!    columnwise) so the panel's reflector product is `I - V·T·Vᵀ`, and
//! 3. applies `Qₚᵀ = I - V·Tᵀ·Vᵀ` to the trailing columns with three
//!    [`crate::gemm::gemm`] calls: `W := VᵀC`, `W := TᵀW`, `C -= V·W`.
//!
//! Step 3 carries the `2mn² - 2n³/3` bulk of the work (see
//! [`crate::flops::qr_flops`]) on the packed, cache-blocked, Rayon-capable
//! engine.
//!
//! [`qr_packed`] produces the single-operand packed form the kernel-call IR
//! uses: an `m x (n+1)` matrix with the factors in columns `0..n` and the
//! `tau` coefficients in the first `n` rows of column `n`. [`ormqr`] applies
//! `Qᵀ` from such a packed factor — the least-squares pipeline is
//! `x = R⁻¹·(Qᵀb)` via one ORMQR and one TRSM.

use crate::config::BlockConfig;
use crate::gemm::gemm;
use lamb_matrix::{Matrix, MatrixError, MatrixViewMut, Result, Trans};

/// Factor the `m x n` matrix `a` (`m >= n`) in place as `A = Q·R`. On return
/// `tau` holds the `n` Householder coefficients.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when `m < n` (the wide case
/// needs an LQ factorisation this crate does not provide).
pub fn qr(a: &mut MatrixViewMut<'_>, tau: &mut Vec<f64>, cfg: &BlockConfig) -> Result<()> {
    let (m, n) = check_tall(a)?;
    tau.clear();
    tau.reserve(n);
    let tb = cfg.tri_block.max(1);
    let mut k0 = 0;
    while k0 < n {
        let kb = tb.min(n - k0);
        factor_panel(a, tau, k0, kb);
        let rest = n - (k0 + kb);
        if rest > 0 {
            let rows = m - k0;
            // The panel's reflectors with their implicit leading 1s written
            // out, V ∈ R^{rows x kb}, plus the larft triangular factor T so
            // the panel applies as one rank-kb update instead of kb rank-1s.
            let v = Matrix::from_fn(rows, kb, |i, j| match i.cmp(&j) {
                std::cmp::Ordering::Greater => a.at(k0 + i, k0 + j),
                std::cmp::Ordering::Equal => 1.0,
                std::cmp::Ordering::Less => 0.0,
            });
            let t = larft(&v, &tau[k0..k0 + kb]);
            // Trailing update: C -= V · Tᵀ · Vᵀ · C, three GEMMs.
            let c = Matrix::from_fn(rows, rest, |i, j| a.at(k0 + i, k0 + kb + j));
            let mut w = Matrix::zeros(kb, rest);
            gemm(
                Trans::Yes,
                Trans::No,
                1.0,
                &v.view(),
                &c.view(),
                0.0,
                &mut w.view_mut(),
                cfg,
            )?;
            let mut tw = Matrix::zeros(kb, rest);
            gemm(
                Trans::Yes,
                Trans::No,
                1.0,
                &t.view(),
                &w.view(),
                0.0,
                &mut tw.view_mut(),
                cfg,
            )?;
            let mut trailing = a.subview_mut(k0, k0 + kb, rows, rest);
            gemm(
                Trans::No,
                Trans::No,
                -1.0,
                &v.view(),
                &tw.view(),
                1.0,
                &mut trailing,
                cfg,
            )?;
        }
        k0 += kb;
    }
    Ok(())
}

/// Reference QR: the scalar unblocked Householder recurrence over the whole
/// matrix. Used by the unit and property tests to validate the blocked
/// kernel.
///
/// # Errors
///
/// Same checks as [`qr`].
pub fn qr_naive(a: &mut MatrixViewMut<'_>, tau: &mut Vec<f64>) -> Result<()> {
    let (_, n) = check_tall(a)?;
    tau.clear();
    factor_panel(a, tau, 0, n);
    Ok(())
}

fn check_tall(a: &MatrixViewMut<'_>) -> Result<(usize, usize)> {
    if a.rows() < a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "qr (requires rows >= cols)",
            lhs: (a.rows(), a.cols()),
            rhs: (a.cols(), a.cols()),
        });
    }
    Ok((a.rows(), a.cols()))
}

/// Scalar unblocked Householder QR of the `kb`-column panel starting at
/// column `k0`, pushing one `tau` per column and applying each reflector to
/// the remaining panel columns as it is formed.
fn factor_panel(a: &mut MatrixViewMut<'_>, tau: &mut Vec<f64>, k0: usize, kb: usize) {
    let m = a.rows();
    for j in 0..kb {
        let c = k0 + j;
        // Householder vector annihilating a[c+1.., c] into a[c, c].
        let mut normsq = 0.0;
        for i in (c + 1)..m {
            let v = a.at(i, c);
            normsq += v * v;
        }
        let alpha = a.at(c, c);
        if normsq == 0.0 {
            // Already triangular in this column: the identity reflector.
            tau.push(0.0);
            continue;
        }
        let norm = (alpha * alpha + normsq).sqrt();
        let beta = if alpha >= 0.0 { -norm } else { norm };
        let t = (beta - alpha) / beta;
        tau.push(t);
        let scale = 1.0 / (alpha - beta);
        for i in (c + 1)..m {
            *a.at_mut(i, c) *= scale;
        }
        *a.at_mut(c, c) = beta;
        // Apply H = I - tau·v·vᵀ to the remaining panel columns.
        for cc in (c + 1)..(k0 + kb) {
            let mut w = a.at(c, cc);
            for i in (c + 1)..m {
                w += a.at(i, c) * a.at(i, cc);
            }
            let tw = t * w;
            *a.at_mut(c, cc) -= tw;
            for i in (c + 1)..m {
                let v = a.at(i, c);
                *a.at_mut(i, cc) -= tw * v;
            }
        }
    }
}

/// LAPACK `larft` (forward, columnwise): the upper-triangular `T` with
/// `H_0·H_1⋯H_{kb-1} = I - V·T·Vᵀ`.
fn larft(v: &Matrix, tau: &[f64]) -> Matrix {
    let kb = v.cols();
    let mut t = Matrix::zeros(kb, kb);
    for j in 0..kb {
        t[(j, j)] = tau[j];
        if j == 0 || tau[j] == 0.0 {
            continue;
        }
        // z := V(:, 0..j)ᵀ · v_j, then T(0..j, j) := -tau_j · T(0..j, 0..j)·z.
        let mut z = vec![0.0; j];
        for (p, zp) in z.iter_mut().enumerate() {
            let mut s = 0.0;
            for r in 0..v.rows() {
                s += v[(r, p)] * v[(r, j)];
            }
            *zp = s;
        }
        for i in 0..j {
            let mut s = 0.0;
            for (p, &zp) in z.iter().enumerate().skip(i) {
                s += t[(i, p)] * zp;
            }
            t[(i, j)] = -tau[j] * s;
        }
    }
    t
}

/// Factor `a` out of place into the packed `m x (n+1)` operand the
/// kernel-call IR uses: Householder vectors and `R` in columns `0..n` and the
/// `tau` coefficients, one per reflector, in the first `n` rows of column `n`.
///
/// # Errors
///
/// Same checks as [`qr`].
pub fn qr_packed(a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
    let (m, n) = (a.rows(), a.cols());
    let mut f = Matrix::zeros(m, n + 1);
    for j in 0..n {
        f.col_mut(j).copy_from_slice(a.col(j));
    }
    let mut tau = Vec::new();
    {
        let mut full = f.view_mut();
        let mut panel = full.subview_mut(0, 0, m, n);
        qr(&mut panel, &mut tau, cfg)?;
    }
    for (j, &t) in tau.iter().enumerate() {
        f[(j, n)] = t;
    }
    Ok(f)
}

/// Apply `Qᵀ` from a packed QR factor `f` (`m x (n+1)`, see [`qr_packed`]) to
/// `b` (`m x k`) and return the *top `n` rows* of the product — exactly the
/// `Qᵀb` block the least-squares triangular solve `x = R⁻¹·(Qᵀb)` consumes.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when `f` has no tau column,
/// `b`'s row count differs from `f`'s, or `n > m`.
pub fn ormqr(f: &Matrix, b: &Matrix) -> Result<Matrix> {
    let Some(n) = f.cols().checked_sub(1) else {
        return Err(MatrixError::DimensionMismatch {
            op: "ormqr",
            lhs: f.shape(),
            rhs: b.shape(),
        });
    };
    let m = f.rows();
    if b.rows() != m || n > m {
        return Err(MatrixError::DimensionMismatch {
            op: "ormqr",
            lhs: f.shape(),
            rhs: b.shape(),
        });
    }
    let k = b.cols();
    // Qᵀ·B = H_{n-1}⋯H_0·B: apply the reflectors in factorisation order.
    let mut work = b.clone();
    for j in 0..n {
        let t = f[(j, n)];
        if t == 0.0 {
            continue;
        }
        for c in 0..k {
            let col = work.col_mut(c);
            let mut w = col[j];
            for i in (j + 1)..m {
                w += f[(i, j)] * col[i];
            }
            let tw = t * w;
            col[j] -= tw;
            for i in (j + 1)..m {
                col[i] -= tw * f[(i, j)];
            }
        }
    }
    Ok(Matrix::from_fn(n, k, |i, j| work[(i, j)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use crate::getrf::factor_triangle;
    use crate::trsm::trsm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::random_seeded;
    use lamb_matrix::{Side, Uplo};

    /// `Q·B` from a packed factor: apply the reflectors in reverse order.
    fn apply_q(f: &Matrix, b: &Matrix) -> Matrix {
        let m = f.rows();
        let n = f.cols() - 1;
        let mut work = b.clone();
        for j in (0..n).rev() {
            let t = f[(j, n)];
            if t == 0.0 {
                continue;
            }
            for c in 0..b.cols() {
                let col = work.col_mut(c);
                let mut w = col[j];
                for i in (j + 1)..m {
                    w += f[(i, j)] * col[i];
                }
                let tw = t * w;
                col[j] -= tw;
                for i in (j + 1)..m {
                    col[i] -= tw * f[(i, j)];
                }
            }
        }
        work
    }

    fn check_reconstruction(m: usize, n: usize, seed: u64, cfg: &BlockConfig) {
        let a = random_seeded(m, n, seed);
        let f = qr_packed(&a, cfg).unwrap();
        assert_eq!(f.shape(), (m, n + 1));
        // Q · [R; 0] must reproduce A.
        let r = factor_triangle(Uplo::Upper, &f).unwrap();
        let r_padded = Matrix::from_fn(m, n, |i, j| if i < n { r[(i, j)] } else { 0.0 });
        let back = apply_q(&f, &r_padded);
        let diff = max_abs_diff(&back, &a).unwrap();
        assert!(
            diff < 1e-10 * (m as f64).max(1.0),
            "m {m} n {n}: reconstruction diff {diff}"
        );
        // ORMQR must agree: Qᵀ·A is [R; 0], so its top n rows are R.
        let qta = ormqr(&f, &a).unwrap();
        assert!(max_abs_diff(&qta, &r).unwrap() < 1e-10 * (m as f64).max(1.0));
    }

    #[test]
    fn blocked_factor_reconstructs_the_matrix() {
        let cfg = BlockConfig::serial();
        for (m, n) in [(1, 1), (2, 1), (5, 3), (23, 23), (64, 40), (97, 13)] {
            check_reconstruction(m, n, 7 + (m + n) as u64, &cfg);
        }
    }

    #[test]
    fn tiny_blocking_exercises_partial_panels() {
        let cfg = BlockConfig::tiny(); // tri_block = 3
        check_reconstruction(13, 13, 3, &cfg);
        check_reconstruction(11, 7, 4, &cfg);
    }

    #[test]
    fn parallel_path_matches_naive() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        let a = random_seeded(150, 90, 17);
        let mut blocked = a.clone();
        let mut tau_b = Vec::new();
        qr(&mut blocked.view_mut(), &mut tau_b, &cfg).unwrap();
        let mut naive = a.clone();
        let mut tau_n = Vec::new();
        qr_naive(&mut naive.view_mut(), &mut tau_n).unwrap();
        assert_eq!(tau_b.len(), tau_n.len());
        for (b, n) in tau_b.iter().zip(&tau_n) {
            assert!((b - n).abs() < 1e-9, "tau diverged: {b} vs {n}");
        }
        assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-9);
    }

    #[test]
    fn factor_solves_least_squares_through_ormqr_and_trsm() {
        // The QR realisation of argmin ‖Ax - b‖: ORMQR then one TRSM. The
        // normal-equations residual Aᵀ(A·X - B) certifies optimality.
        let cfg = BlockConfig::serial();
        let (m, n, k) = (37, 13, 4);
        let a = random_seeded(m, n, 9);
        let b = random_seeded(m, k, 10);
        let f = qr_packed(&a, &cfg).unwrap();
        let r = factor_triangle(Uplo::Upper, &f).unwrap();
        let c = ormqr(&f, &b).unwrap();
        let mut x = Matrix::zeros(n, k);
        trsm_naive(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            1.0,
            &r.view(),
            &c.view(),
            &mut x.view_mut(),
        )
        .unwrap();
        let mut ax = Matrix::zeros(m, k);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &x.view(),
            0.0,
            &mut ax.view_mut(),
        )
        .unwrap();
        let resid = Matrix::from_fn(m, k, |i, j| ax[(i, j)] - b[(i, j)]);
        let mut normal = Matrix::zeros(n, k);
        gemm_naive(
            Trans::Yes,
            Trans::No,
            1.0,
            &a.view(),
            &resid.view(),
            0.0,
            &mut normal.view_mut(),
        )
        .unwrap();
        assert!(lamb_matrix::ops::max_abs(&normal) < 1e-10 * m as f64);
    }

    #[test]
    fn zero_columns_factor_with_identity_reflectors() {
        // Rank deficiency is not an error at factor time: a zero column gives
        // tau = 0 and a zero on R's diagonal; only the later TRSM fails.
        let cfg = BlockConfig::tiny();
        let mut a = random_seeded(9, 5, 21);
        for i in 0..9 {
            a[(i, 2)] = 0.0;
        }
        let f = qr_packed(&a, &cfg).unwrap();
        let r = factor_triangle(Uplo::Upper, &f).unwrap();
        let r_padded = Matrix::from_fn(9, 5, |i, j| if i < 5 { r[(i, j)] } else { 0.0 });
        let back = apply_q(&f, &r_padded);
        assert!(max_abs_diff(&back, &a).unwrap() < 1e-10 * 9.0);
    }

    #[test]
    fn degenerate_and_wide_inputs() {
        let cfg = BlockConfig::default();
        // n = 0 factors to an empty R and a bare tau column.
        let f = qr_packed(&Matrix::zeros(3, 0), &cfg).unwrap();
        assert_eq!(f.shape(), (3, 1));
        let f0 = qr_packed(&Matrix::zeros(0, 0), &cfg).unwrap();
        assert_eq!(f0.shape(), (0, 1));
        // 1 x 1 is a single (possibly identity) reflector.
        let one = Matrix::filled(1, 1, -3.0);
        let f1 = qr_packed(&one, &cfg).unwrap();
        assert!((f1[(0, 0)].abs() - 3.0).abs() < 1e-14);
        // Wide input is rejected.
        let mut wide = Matrix::zeros(2, 5);
        assert!(matches!(
            qr(&mut wide.view_mut(), &mut Vec::new(), &cfg),
            Err(MatrixError::DimensionMismatch { .. })
        ));
        // ORMQR shape errors.
        let b = Matrix::zeros(4, 2);
        assert!(ormqr(&Matrix::zeros(4, 0), &b).is_err());
        assert!(ormqr(&Matrix::zeros(3, 3), &b).is_err());
        assert!(ormqr(&Matrix::zeros(4, 6), &b).is_err());
        // Degenerate ORMQR: no reflectors leaves the top 0 rows.
        let c = ormqr(&Matrix::zeros(4, 1), &b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }

    #[test]
    fn blocked_and_naive_agree_on_the_factor_itself() {
        let cfg = BlockConfig::serial();
        let a = random_seeded(40, 28, 33);
        let mut blocked = a.clone();
        let mut naive = a.clone();
        let (mut tb, mut tn) = (Vec::new(), Vec::new());
        qr(&mut blocked.view_mut(), &mut tb, &cfg).unwrap();
        qr_naive(&mut naive.view_mut(), &mut tn).unwrap();
        assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-10);
    }
}
