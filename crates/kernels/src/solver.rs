//! The [`Solver`] trait: one object-safe interface over the three
//! factorisation-backed solve pipelines — Cholesky (SPD), partially pivoted
//! LU (general square) and Householder QR (general tall / least squares) —
//! so structure dispatch is a single match instead of a cross-cutting change
//! per factorisation.
//!
//! Every solver factors into an owned [`Matrix`] in the same packed form its
//! kernel-call IR realisation produces (an explicitly triangular Cholesky
//! factor; the `n x (n+1)` LU-plus-pivots and `m x (n+1)` QR-plus-taus packed
//! operands), so a cached factor from one world is directly reusable in the
//! other. [`solver_for`] is the structure-dispatch match
//! (`Spd → Cholesky`, square `General → LU`, tall `General → QR`) and
//! [`solve_auto`] is the convenience entry point over it.
//!
//! The same organisation as diffsol's `LinearSolver`/`DefaultSolver`
//! associations: the factorisation is chosen once, per operand structure, and
//! everything downstream programs against the trait.

use crate::config::BlockConfig;
use crate::dispatch::{
    factor_tri_new, getrf_new, ormqr_new, pivot_apply_new, potrf_new, qr_new, trsm_new,
};
use lamb_matrix::{Matrix, MatrixError, Result, Side, Structure, Trans, Uplo};

/// A factorisation-backed linear solver: factor once, solve many.
///
/// Implementations must be pure with respect to their inputs (the operand is
/// never modified) and must produce, for square nonsingular systems, an `X`
/// with `‖A·X - B‖ <= ~1e-10·‖B‖`; the QR solver generalises this to the
/// least-squares normal-equations residual `AᵀA·X = Aᵀ·B`.
pub trait Solver {
    /// Short human-readable name (`"cholesky"`, `"lu"`, `"qr"`).
    fn name(&self) -> &'static str;

    /// Mnemonic of the factorisation kernel this solver executes — the same
    /// string the kernel-call IR uses, so factor-cache identities built from
    /// it can never collide across factorisation kinds.
    fn factor_mnemonic(&self) -> &'static str;

    /// Whether this solver accepts an operand of the given declared
    /// structure and shape.
    fn handles(&self, structure: Structure, shape: (usize, usize)) -> bool;

    /// Shape of the factor operand produced for an `a` of shape `shape`.
    fn factor_shape(&self, shape: (usize, usize)) -> (usize, usize);

    /// Factor `a` out of place.
    ///
    /// # Errors
    ///
    /// Shape errors, plus the factorisation's own failure mode
    /// ([`MatrixError::NotPositiveDefinite`] for Cholesky,
    /// [`MatrixError::SingularDiagonal`] for LU).
    fn factor(&self, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix>;

    /// Solve against a previously computed factor.
    ///
    /// # Errors
    ///
    /// Shape errors, plus [`MatrixError::SingularDiagonal`] when a
    /// triangular-solve pivot is zero (rank-deficient QR).
    fn solve_factored(&self, factor: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix>;

    /// Factor and solve in one call.
    ///
    /// # Errors
    ///
    /// Union of [`Solver::factor`] and [`Solver::solve_factored`].
    fn solve(&self, a: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        let f = self.factor(a, cfg)?;
        self.solve_factored(&f, b, cfg)
    }
}

/// Cholesky solver for SPD operands: `POTRF; TRSM(L); TRSM(Lᵀ)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CholeskySolver;

impl Solver for CholeskySolver {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn factor_mnemonic(&self) -> &'static str {
        "potrf"
    }

    fn handles(&self, structure: Structure, shape: (usize, usize)) -> bool {
        structure.is_spd() && shape.0 == shape.1
    }

    fn factor_shape(&self, shape: (usize, usize)) -> (usize, usize) {
        shape
    }

    fn factor(&self, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        potrf_new(Uplo::Lower, a, cfg)
    }

    fn solve_factored(&self, factor: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        let y = trsm_new(Side::Left, Uplo::Lower, Trans::No, factor, b, cfg)?;
        trsm_new(Side::Left, Uplo::Lower, Trans::Yes, factor, &y, cfg)
    }
}

/// Partially pivoted LU solver for general square operands:
/// `GETRF; P·B; TRSM(L); TRSM(U)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LuSolver;

impl Solver for LuSolver {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn factor_mnemonic(&self) -> &'static str {
        "getrf"
    }

    fn handles(&self, structure: Structure, shape: (usize, usize)) -> bool {
        structure == Structure::General && shape.0 == shape.1
    }

    fn factor_shape(&self, shape: (usize, usize)) -> (usize, usize) {
        (shape.0, shape.0 + 1)
    }

    fn factor(&self, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        getrf_new(a, cfg)
    }

    fn solve_factored(&self, factor: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        let bp = pivot_apply_new(Side::Left, factor, b, cfg)?;
        let l = factor_tri_new(Uplo::Lower, factor, cfg)?;
        let u = factor_tri_new(Uplo::Upper, factor, cfg)?;
        let y = trsm_new(Side::Left, Uplo::Lower, Trans::No, &l, &bp, cfg)?;
        trsm_new(Side::Left, Uplo::Upper, Trans::No, &u, &y, cfg)
    }
}

/// Householder QR solver for general tall operands (least squares):
/// `QR; ORMQR; TRSM(R)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct QrSolver;

impl Solver for QrSolver {
    fn name(&self) -> &'static str {
        "qr"
    }

    fn factor_mnemonic(&self) -> &'static str {
        "qr"
    }

    fn handles(&self, structure: Structure, shape: (usize, usize)) -> bool {
        structure == Structure::General && shape.0 >= shape.1
    }

    fn factor_shape(&self, shape: (usize, usize)) -> (usize, usize) {
        (shape.0, shape.1 + 1)
    }

    fn factor(&self, a: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        qr_new(a, cfg)
    }

    fn solve_factored(&self, factor: &Matrix, b: &Matrix, cfg: &BlockConfig) -> Result<Matrix> {
        let c = ormqr_new(factor, b, cfg)?;
        let r = factor_tri_new(Uplo::Upper, factor, cfg)?;
        trsm_new(Side::Left, Uplo::Upper, Trans::No, &r, &c, cfg)
    }
}

/// The structure-dispatch match: pick the solver for a declared operand
/// structure and shape. `Spd → Cholesky`, square `General → LU`, tall
/// rectangular `General → QR`; triangular operands solve directly through
/// TRSM and wide rectangles have no realisation, so both return `None`.
#[must_use]
pub fn solver_for(structure: Structure, shape: (usize, usize)) -> Option<&'static dyn Solver> {
    match structure {
        Structure::Spd => Some(&CholeskySolver),
        Structure::General if shape.0 == shape.1 => Some(&LuSolver),
        Structure::General if shape.0 > shape.1 => Some(&QrSolver),
        _ => None,
    }
}

/// Solve `A·X = B` (or its least-squares generalisation for tall `A`) by
/// dispatching on `a`'s declared structure through [`solver_for`].
///
/// # Errors
///
/// [`MatrixError::DimensionMismatch`] when no solver handles the
/// structure/shape combination, otherwise whatever the chosen solver's
/// [`Solver::solve`] reports.
pub fn solve_auto(
    structure: Structure,
    a: &Matrix,
    b: &Matrix,
    cfg: &BlockConfig,
) -> Result<Matrix> {
    match solver_for(structure, a.shape()) {
        Some(solver) => solver.solve(a, b, cfg),
        None => Err(MatrixError::DimensionMismatch {
            op: "solve_auto (no solver handles this structure/shape)",
            lhs: a.shape(),
            rhs: b.shape(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::{max_abs, max_abs_diff};
    use lamb_matrix::random::{random_seeded, random_spd};

    fn residual(a: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
        let mut ax = Matrix::zeros(b.rows(), b.cols());
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &a.view(),
            &x.view(),
            0.0,
            &mut ax.view_mut(),
        )
        .unwrap();
        max_abs_diff(&ax, b).unwrap()
    }

    #[test]
    fn each_solver_solves_its_structure() {
        let cfg = BlockConfig::default();
        let n = 26;
        let b = random_seeded(n, 5, 2);

        let spd = random_spd(n, 1);
        let x = CholeskySolver.solve(&spd, &b, &cfg).unwrap();
        assert!(residual(&spd, &x, &b) < 1e-10 * n as f64);

        let gen = random_seeded(n, n, 3);
        let x = LuSolver.solve(&gen, &b, &cfg).unwrap();
        assert!(residual(&gen, &x, &b) < 1e-10 * n as f64);

        // QR on a square system agrees with LU.
        let xq = QrSolver.solve(&gen, &b, &cfg).unwrap();
        assert!(max_abs_diff(&x, &xq).unwrap() < 1e-8);

        // QR on a tall system minimises the normal-equations residual.
        let tall = random_seeded(n, 9, 4);
        let xt = QrSolver.solve(&tall, &b, &cfg).unwrap();
        let mut resid = Matrix::zeros(n, 5);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &tall.view(),
            &xt.view(),
            0.0,
            &mut resid.view_mut(),
        )
        .unwrap();
        for j in 0..5 {
            for i in 0..n {
                resid[(i, j)] -= b[(i, j)];
            }
        }
        let mut normal = Matrix::zeros(9, 5);
        gemm_naive(
            Trans::Yes,
            Trans::No,
            1.0,
            &tall.view(),
            &resid.view(),
            0.0,
            &mut normal.view_mut(),
        )
        .unwrap();
        assert!(max_abs(&normal) < 1e-10 * n as f64);
    }

    #[test]
    fn solver_for_is_the_structure_dispatch_match() {
        assert_eq!(
            solver_for(Structure::Spd, (8, 8)).unwrap().name(),
            "cholesky"
        );
        assert_eq!(solver_for(Structure::General, (8, 8)).unwrap().name(), "lu");
        assert_eq!(
            solver_for(Structure::General, (12, 8)).unwrap().name(),
            "qr"
        );
        assert!(solver_for(Structure::General, (3, 9)).is_none());
        assert!(solver_for(Structure::Triangular(Uplo::Lower), (8, 8)).is_none());
    }

    #[test]
    fn factor_mnemonics_are_distinct_across_kinds() {
        // The factor-cache identity embeds the mnemonic; collisions across
        // factorisation kinds would alias incompatible cached factors.
        let names = [
            CholeskySolver.factor_mnemonic(),
            LuSolver.factor_mnemonic(),
            QrSolver.factor_mnemonic(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }

    #[test]
    fn solve_auto_dispatches_and_rejects_unhandled_shapes() {
        let cfg = BlockConfig::default();
        let a = random_spd(10, 7);
        let b = random_seeded(10, 2, 8);
        let x = solve_auto(Structure::Spd, &a, &b, &cfg).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
        assert!(solve_auto(Structure::General, &random_seeded(2, 6, 1), &b, &cfg).is_err());
    }

    #[test]
    fn factor_shapes_match_factor_outputs() {
        let cfg = BlockConfig::default();
        let spd = random_spd(7, 11);
        let gen = random_seeded(7, 7, 12);
        let tall = random_seeded(9, 4, 13);
        for (solver, a) in [
            (&CholeskySolver as &dyn Solver, &spd),
            (&LuSolver as &dyn Solver, &gen),
            (&QrSolver as &dyn Solver, &tall),
        ] {
            let f = solver.factor(a, &cfg).unwrap();
            assert_eq!(
                f.shape(),
                solver.factor_shape(a.shape()),
                "{}",
                solver.name()
            );
        }
    }
}
