//! Symmetric matrix–matrix multiplication: `C := alpha * A·B + beta * C`
//! (`side == Left`) or `C := alpha * B·A + beta * C` (`side == Right`) where
//! `A` is symmetric and only its [`Uplo`] triangle is referenced.
//!
//! The implementation reuses the packed GEMM core: the symmetric operand is
//! read through a mirroring accessor during packing, so the unreferenced
//! triangle of `A` never needs to be materialised — exactly the property that
//! lets the paper's Algorithm 1 for `A·Aᵀ·B` feed the SYRK triangle directly
//! into SYMM.

use crate::config::BlockConfig;
use crate::driver::{scale_inplace, BlockedDriver};
use lamb_matrix::{MatrixError, MatrixView, MatrixViewMut, Result, Side, Uplo};

/// `C := alpha * A·B + beta * C` (Left) or `C := alpha * B·A + beta * C`
/// (Right), with `A` symmetric and only its `uplo` triangle referenced.
///
/// The FLOP count attributed to this kernel by the paper (Left side, `A` of
/// size `m x m`, `B` of size `m x n`) is `2·m²·n`
/// (see [`crate::flops::symm_flops`]).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] or [`MatrixError::NotSquare`]
/// when the operand shapes are inconsistent.
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn symm(
    side: Side,
    uplo: Uplo,
    alpha: f64,
    a: &MatrixView<'_>,
    b: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &BlockConfig,
) -> Result<()> {
    let m = c.rows();
    let n = c.cols();
    if a.rows() != a.cols() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let expected_a = match side {
        Side::Left => m,
        Side::Right => n,
    };
    if a.rows() != expected_a {
        return Err(MatrixError::DimensionMismatch {
            op: "symm symmetric operand shape",
            lhs: (a.rows(), a.cols()),
            rhs: (expected_a, expected_a),
        });
    }
    if b.rows() != m || b.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "symm rectangular operand shape",
            lhs: (b.rows(), b.cols()),
            rhs: (m, n),
        });
    }

    scale_inplace(beta, c);
    if m == 0 || n == 0 || alpha == 0.0 {
        return Ok(());
    }

    let a_data = a.as_slice();
    let lda = a.ld();
    let b_data = b.as_slice();
    let ldb = b.ld();
    // Element (i, j) of the full symmetric matrix, read from the stored triangle.
    let sym = move |i: usize, j: usize| {
        if uplo.contains(i, j) {
            a_data[i + j * lda]
        } else {
            a_data[j + i * lda]
        }
    };

    let driver = BlockedDriver::new(cfg);
    match side {
        Side::Left => {
            // C(m x n) += alpha * Asym(m x m) * B(m x n); inner dimension m.
            let load_b = move |p: usize, j: usize| b_data[p + j * ldb];
            driver.accumulate(m, n, m, alpha, &sym, &load_b, c);
        }
        Side::Right => {
            // C(m x n) += alpha * B(m x n) * Asym(n x n); inner dimension n.
            let load_a = move |i: usize, p: usize| b_data[i + p * ldb];
            driver.accumulate(m, n, n, alpha, &load_a, &sym, c);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::{full_from_triangle, max_abs_diff, zero_opposite_triangle};
    use lamb_matrix::random::{random_seeded, random_symmetric};
    use lamb_matrix::{Matrix, Trans};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a symmetric matrix plus its triangle-only representation where the
    /// unreferenced triangle is poisoned with garbage.
    fn sym_with_garbage(n: usize, uplo: Uplo, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let full = random_symmetric(n, &mut rng);
        let mut stored = full.clone();
        zero_opposite_triangle(&mut stored, uplo).unwrap();
        // Poison the zeroed triangle so accidental reads are caught.
        for i in 0..n {
            for j in 0..n {
                if i != j && !uplo.contains(i, j) {
                    stored[(i, j)] = 1.0e300;
                }
            }
        }
        (full, stored)
    }

    fn check(side: Side, uplo: Uplo, m: usize, n: usize, alpha: f64, beta: f64, cfg: &BlockConfig) {
        let asize = match side {
            Side::Left => m,
            Side::Right => n,
        };
        let (full, stored) = sym_with_garbage(asize, uplo, 3 + m as u64 + n as u64);
        let b = random_seeded(m, n, 77);
        let c0 = random_seeded(m, n, 88);

        let mut c_fast = c0.clone();
        symm(
            side,
            uplo,
            alpha,
            &stored.view(),
            &b.view(),
            beta,
            &mut c_fast.view_mut(),
            cfg,
        )
        .unwrap();

        let mut c_ref = c0;
        match side {
            Side::Left => gemm_naive(
                Trans::No,
                Trans::No,
                alpha,
                &full.view(),
                &b.view(),
                beta,
                &mut c_ref.view_mut(),
            )
            .unwrap(),
            Side::Right => gemm_naive(
                Trans::No,
                Trans::No,
                alpha,
                &b.view(),
                &full.view(),
                beta,
                &mut c_ref.view_mut(),
            )
            .unwrap(),
        }
        let diff = max_abs_diff(&c_fast, &c_ref).unwrap();
        assert!(
            diff < 1e-10 * (asize as f64),
            "side {:?} uplo {:?} {m}x{n}: diff {diff}",
            side,
            uplo
        );
    }

    #[test]
    fn left_side_matches_reference_both_triangles() {
        let cfg = BlockConfig::serial();
        check(Side::Left, Uplo::Lower, 19, 11, 1.0, 0.0, &cfg);
        check(Side::Left, Uplo::Upper, 19, 11, 1.0, 0.0, &cfg);
        check(Side::Left, Uplo::Lower, 33, 47, 2.0, -1.0, &cfg);
    }

    #[test]
    fn right_side_matches_reference_both_triangles() {
        let cfg = BlockConfig::serial();
        check(Side::Right, Uplo::Lower, 13, 21, 1.0, 0.0, &cfg);
        check(Side::Right, Uplo::Upper, 13, 21, 0.5, 2.0, &cfg);
    }

    #[test]
    fn parallel_path_matches_reference() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        check(Side::Left, Uplo::Lower, 96, 80, 1.0, 0.0, &cfg);
        check(Side::Left, Uplo::Upper, 64, 120, 1.0, 1.0, &cfg);
    }

    #[test]
    fn tiny_blocking_exercises_partial_tiles() {
        let cfg = BlockConfig::tiny();
        check(Side::Left, Uplo::Lower, 11, 9, 1.0, 0.0, &cfg);
        check(Side::Right, Uplo::Upper, 9, 11, 1.0, 0.0, &cfg);
    }

    #[test]
    fn stored_triangle_consistency() {
        // SYMM with the lower triangle of a symmetric matrix must equal SYMM
        // with its upper triangle.
        let cfg = BlockConfig::serial();
        let mut rng = StdRng::seed_from_u64(4);
        let full = random_symmetric(20, &mut rng);
        let lower = {
            let mut s = full.clone();
            zero_opposite_triangle(&mut s, Uplo::Lower).unwrap();
            s
        };
        let upper = {
            let mut s = full.clone();
            zero_opposite_triangle(&mut s, Uplo::Upper).unwrap();
            s
        };
        // Sanity: rebuilding from either triangle gives the same matrix.
        assert_eq!(
            full_from_triangle(&lower, Uplo::Lower).unwrap(),
            full_from_triangle(&upper, Uplo::Upper).unwrap()
        );
        let b = random_seeded(20, 7, 5);
        let mut c1 = Matrix::zeros(20, 7);
        let mut c2 = Matrix::zeros(20, 7);
        symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            &lower.view(),
            &b.view(),
            0.0,
            &mut c1.view_mut(),
            &cfg,
        )
        .unwrap();
        symm(
            Side::Left,
            Uplo::Upper,
            1.0,
            &upper.view(),
            &b.view(),
            0.0,
            &mut c2.view_mut(),
            &cfg,
        )
        .unwrap();
        assert!(max_abs_diff(&c1, &c2).unwrap() < 1e-12);
    }

    #[test]
    fn shape_errors_are_detected() {
        let cfg = BlockConfig::default();
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(4, 3);
        let mut c = Matrix::zeros(4, 3);
        assert!(symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg
        )
        .is_err());
        let a_sq = Matrix::zeros(5, 5);
        assert!(symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            &a_sq.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg
        )
        .is_err());
        let a_ok = Matrix::zeros(4, 4);
        let b_bad = Matrix::zeros(5, 3);
        assert!(symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            &a_ok.view(),
            &b_bad.view(),
            0.0,
            &mut c.view_mut(),
            &cfg
        )
        .is_err());
    }
}
