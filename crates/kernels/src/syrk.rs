//! Symmetric rank-k update: one triangle of `C := alpha * A·Aᵀ + beta * C`
//! (or `Aᵀ·A` with the transposed variant).
//!
//! Only the triangle selected by [`Uplo`] is read and written — the opposite
//! triangle of `C` is left untouched, exactly like the BLAS routine. This
//! matters for the paper's Algorithm 2 of `A·Aᵀ·B`, which must explicitly
//! copy the computed triangle into a full matrix before a subsequent GEMM can
//! use it.

use crate::config::BlockConfig;
use crate::driver::BlockedDriver;
use lamb_matrix::{Matrix, MatrixError, MatrixView, MatrixViewMut, Result, Trans, Uplo};

/// `C_uplo := alpha * op(A)·op(A)ᵀ + beta * C_uplo` where `op(A)` is `A`
/// (`trans == No`, `A` is `n x k`) or `Aᵀ` (`trans == Yes`, `A` is `k x n`).
///
/// The FLOP count attributed to this kernel by the paper is `(n + 1)·n·k`
/// (see [`crate::flops::syrk_flops`]).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `C` is not `n x n`.
pub fn syrk(
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    a: &MatrixView<'_>,
    beta: f64,
    c: &mut MatrixViewMut<'_>,
    cfg: &BlockConfig,
) -> Result<()> {
    let (n, k) = trans.apply((a.rows(), a.cols()));
    if c.rows() != n || c.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "syrk output shape",
            lhs: (c.rows(), c.cols()),
            rhs: (n, n),
        });
    }

    scale_triangle(beta, uplo, c);
    if n == 0 || k == 0 || alpha == 0.0 {
        return Ok(());
    }

    let a_data = a.as_slice();
    let lda = a.ld();
    // Logical op(A)[i, p] with op(A) of shape n x k.
    let load = move |i: usize, p: usize| match trans {
        Trans::No => a_data[i + p * lda],
        Trans::Yes => a_data[p + i * lda],
    };

    let driver = BlockedDriver::new(cfg);
    let parallel = cfg.should_parallelise(n, n, k);
    driver.for_each_panel(
        c.subview_mut(0, 0, n, n),
        parallel,
        |j0, mut panel: MatrixViewMut<'_>| {
            let w = panel.cols();
            // Diagonal block: compute the full w x w product into a scratch
            // buffer, then fold only the selected triangle into C so the
            // opposite triangle of C is never written.
            let mut diag = Matrix::zeros(w, w);
            driver.accumulate_serial(
                w,
                w,
                k,
                alpha,
                &|i, p| load(j0 + i, p),
                &|p, j| load(j0 + j, p),
                &mut diag.view_mut(),
            );
            match uplo {
                Uplo::Lower => {
                    for jj in 0..w {
                        for ii in jj..w {
                            *panel.at_mut(j0 + ii, jj) += diag[(ii, jj)];
                        }
                    }
                    let below_rows = n - (j0 + w);
                    if below_rows > 0 {
                        let mut below = panel.subview_mut(j0 + w, 0, below_rows, w);
                        driver.accumulate_serial(
                            below_rows,
                            w,
                            k,
                            alpha,
                            &|i, p| load(j0 + w + i, p),
                            &|p, j| load(j0 + j, p),
                            &mut below,
                        );
                    }
                }
                Uplo::Upper => {
                    for jj in 0..w {
                        for ii in 0..=jj {
                            *panel.at_mut(j0 + ii, jj) += diag[(ii, jj)];
                        }
                    }
                    if j0 > 0 {
                        let mut above = panel.subview_mut(0, 0, j0, w);
                        driver.accumulate_serial(
                            j0,
                            w,
                            k,
                            alpha,
                            &|i, p| load(i, p),
                            &|p, j| load(j0 + j, p),
                            &mut above,
                        );
                    }
                }
            }
        },
    );
    Ok(())
}

/// Scale only the `uplo` triangle of `c` by `beta`, honouring the BLAS rule
/// that `beta == 0` writes zeros without reading the previous contents.
fn scale_triangle(beta: f64, uplo: Uplo, c: &mut MatrixViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    let n = c.cols();
    for j in 0..n {
        let range = match uplo {
            Uplo::Lower => j..n,
            Uplo::Upper => 0..j + 1,
        };
        let col = c.col_mut(j);
        for x in &mut col[range] {
            *x = if beta == 0.0 { 0.0 } else { beta * *x };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::random::random_seeded;
    use lamb_matrix::Matrix;

    /// Reference: full product op(A)*op(A)^T via the naive kernel.
    fn reference_full(trans: Trans, a: &Matrix, alpha: f64) -> Matrix {
        let n = match trans {
            Trans::No => a.rows(),
            Trans::Yes => a.cols(),
        };
        let mut c = Matrix::zeros(n, n);
        gemm_naive(
            trans,
            trans.flip(),
            alpha,
            &a.view(),
            &a.view(),
            0.0,
            &mut c.view_mut(),
        )
        .unwrap();
        c
    }

    fn check(
        uplo: Uplo,
        trans: Trans,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
        cfg: &BlockConfig,
    ) {
        let (ar, ac) = trans.apply((n, k));
        let a = random_seeded(ar, ac, 100 + n as u64 + k as u64);
        let c0 = random_seeded(n, n, 55);
        let mut c = c0.clone();
        syrk(uplo, trans, alpha, &a.view(), beta, &mut c.view_mut(), cfg).unwrap();
        let full = reference_full(trans, &a, alpha);
        for i in 0..n {
            for j in 0..n {
                let expected = if uplo.contains(i, j) {
                    beta * c0[(i, j)] + full[(i, j)]
                } else {
                    // The opposite triangle must be untouched.
                    c0[(i, j)]
                };
                assert!(
                    (c[(i, j)] - expected).abs() < 1e-10 * (k as f64).max(1.0),
                    "uplo {:?} trans {:?} n={n} k={k} ({i},{j}): got {} expected {}",
                    uplo,
                    trans,
                    c[(i, j)],
                    expected
                );
            }
        }
    }

    #[test]
    fn lower_and_upper_match_reference_serial() {
        let cfg = BlockConfig::serial();
        for &uplo in &[Uplo::Lower, Uplo::Upper] {
            check(uplo, Trans::No, 17, 9, 1.0, 0.0, &cfg);
            check(uplo, Trans::No, 32, 40, 2.0, 1.0, &cfg);
            check(uplo, Trans::Yes, 21, 13, 1.0, 0.5, &cfg);
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        for &uplo in &[Uplo::Lower, Uplo::Upper] {
            check(uplo, Trans::No, 90, 64, 1.0, 0.0, &cfg);
            check(uplo, Trans::Yes, 70, 110, -1.0, 2.0, &cfg);
        }
    }

    #[test]
    fn tiny_blocking_exercises_partial_tiles() {
        let cfg = BlockConfig::tiny();
        check(Uplo::Lower, Trans::No, 13, 7, 1.0, 0.0, &cfg);
        check(Uplo::Upper, Trans::No, 13, 7, 1.0, 0.0, &cfg);
    }

    #[test]
    fn degenerate_sizes() {
        let cfg = BlockConfig::default();
        check(Uplo::Lower, Trans::No, 1, 1, 1.0, 0.0, &cfg);
        check(Uplo::Upper, Trans::No, 1, 5, 1.0, 3.0, &cfg);
        // k = 0: triangle is scaled by beta, nothing else happens.
        let a = Matrix::zeros(4, 0);
        let mut c = Matrix::filled(4, 4, 2.0);
        syrk(
            Uplo::Lower,
            Trans::No,
            1.0,
            &a.view(),
            0.5,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let expected = if i >= j { 1.0 } else { 2.0 };
                assert_eq!(c[(i, j)], expected);
            }
        }
    }

    #[test]
    fn result_triangle_is_consistent_with_symmetry() {
        // Computing the lower triangle and mirroring must equal computing the
        // upper triangle and mirroring.
        let cfg = BlockConfig::serial();
        let a = random_seeded(25, 14, 9);
        let mut lower = Matrix::zeros(25, 25);
        let mut upper = Matrix::zeros(25, 25);
        syrk(
            Uplo::Lower,
            Trans::No,
            1.0,
            &a.view(),
            0.0,
            &mut lower.view_mut(),
            &cfg,
        )
        .unwrap();
        syrk(
            Uplo::Upper,
            Trans::No,
            1.0,
            &a.view(),
            0.0,
            &mut upper.view_mut(),
            &cfg,
        )
        .unwrap();
        lower.symmetrize_from(Uplo::Lower).unwrap();
        upper.symmetrize_from(Uplo::Upper).unwrap();
        assert!(lamb_matrix::ops::max_abs_diff(&lower, &upper).unwrap() < 1e-11);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let cfg = BlockConfig::default();
        let a = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(4, 4);
        assert!(syrk(
            Uplo::Lower,
            Trans::No,
            1.0,
            &a.view(),
            0.0,
            &mut c.view_mut(),
            &cfg
        )
        .is_err());
    }
}
