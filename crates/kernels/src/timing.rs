//! Median-of-N wall-clock timing with optional cache flushing, mirroring the
//! measurement protocol of the paper: "each test was repeated ten times and
//! the median was recorded as the execution time. To eliminate cache effects,
//! the cache was flushed prior to each repetition."

use crate::cache::CacheFlusher;
use std::time::Instant;

/// Time a single invocation of `f` in seconds.
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// The samples gathered by a [`MedianTimer`] measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingResult {
    /// Individual repetition times in seconds, in execution order.
    pub samples: Vec<f64>,
}

impl TimingResult {
    /// Median execution time (the paper's summary statistic).
    #[must_use]
    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }

    /// Fastest repetition.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest repetition.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean of the repetitions.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Repeats a measurement `reps` times, optionally flushing the cache before
/// each repetition, and reports the full sample set.
#[derive(Debug)]
pub struct MedianTimer {
    reps: usize,
    flusher: Option<CacheFlusher>,
}

impl MedianTimer {
    /// Timer with `reps` repetitions and no cache flushing.
    #[must_use]
    pub fn new(reps: usize) -> Self {
        MedianTimer {
            reps: reps.max(1),
            flusher: None,
        }
    }

    /// Timer with `reps` repetitions that flushes a `flush_bytes`-byte buffer
    /// before every repetition.
    #[must_use]
    pub fn with_cache_flush(reps: usize, flush_bytes: usize) -> Self {
        MedianTimer {
            reps: reps.max(1),
            flusher: Some(CacheFlusher::new(flush_bytes)),
        }
    }

    /// Number of repetitions per measurement.
    #[must_use]
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// Measure `f` and return all repetition times.
    pub fn measure<F: FnMut()>(&mut self, mut f: F) -> TimingResult {
        let mut samples = Vec::with_capacity(self.reps);
        for _ in 0..self.reps {
            if let Some(flusher) = &mut self.flusher {
                flusher.flush();
            }
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64());
        }
        TimingResult { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        let odd = TimingResult {
            samples: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(odd.median(), 2.0);
        let even = TimingResult {
            samples: vec![4.0, 1.0, 3.0, 2.0],
        };
        assert!((even.median() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = TimingResult { samples: vec![] };
        assert_eq!(r.median(), 0.0);
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    fn summary_statistics_are_ordered() {
        let r = TimingResult {
            samples: vec![0.5, 0.1, 0.9, 0.3],
        };
        assert!(r.min() <= r.median());
        assert!(r.median() <= r.max());
        assert!(r.min() <= r.mean() && r.mean() <= r.max());
    }

    #[test]
    fn timer_collects_requested_repetitions() {
        let mut t = MedianTimer::new(5);
        let mut count = 0;
        let r = t.measure(|| count += 1);
        assert_eq!(count, 5);
        assert_eq!(r.samples.len(), 5);
    }

    #[test]
    fn timer_with_flush_still_measures() {
        let mut t = MedianTimer::with_cache_flush(3, 1024);
        let r = t.measure(|| std::thread::sleep(Duration::from_micros(200)));
        assert_eq!(r.samples.len(), 3);
        assert!(r.min() >= 150.0e-6, "sleep should dominate: {:?}", r);
    }

    #[test]
    fn zero_reps_is_clamped_to_one() {
        let mut t = MedianTimer::new(0);
        assert_eq!(t.reps(), 1);
        let r = t.measure(|| {});
        assert_eq!(r.samples.len(), 1);
    }

    #[test]
    fn time_once_measures_elapsed_time() {
        let t = time_once(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(t >= 1.0e-3);
    }
}
