//! Triangular matrix–matrix multiplication: `C := alpha * op(L) * B`
//! (`side == Left`, `L` an `m x m` triangle) or `C := alpha * B * op(L)`
//! (`side == Right`, `L` an `n x n` triangle), where only the [`Uplo`]
//! triangle of `L` is referenced.
//!
//! Unlike the BLAS routine (which overwrites `B` in place) this kernel is
//! out-of-place, matching how the executors materialise each intermediate of
//! an algorithm into its own operand. The triangular structure halves the
//! useful FLOPs relative to a GEMM of the same logical shape — `m²·n` versus
//! `2·m²·n` on the left, `n²·m` versus `2·n²·m` on the right (see
//! [`crate::flops::trmm_flops`]) — which is exactly the FLOPs-versus-time
//! tension the paper's anomaly taxonomy feeds on.
//!
//! The implementation is a thin specialisation of the shared
//! [`BlockedDriver`]. On the left, output columns are distributed as panels,
//! and within a panel the rows of `C` are walked in diagonal blocks of
//! [`BlockConfig::tri_block`] rows. On the right the roles of rows and
//! columns swap: within each column panel the *columns* are walked in
//! diagonal blocks of the triangle, since it is now the output column index
//! that selects a triangular stripe of `op(L)`. Either way each block's
//! contribution splits into a dense rectangle strictly inside the triangle
//! (handled by the packed rectangular core) plus the small diagonal block
//! itself (handled by the same core through a triangle-masked accessor).

use crate::config::BlockConfig;
use crate::driver::{scale_inplace, BlockedDriver};
use lamb_matrix::{MatrixError, MatrixView, MatrixViewMut, Result, Side, Trans, Uplo};

/// Validate the operand shapes shared by TRMM and TRSM: `L` square of order
/// `m` (Left) or `n` (Right), `B` and the output both `m x n`.
pub(crate) fn check_triangular_shapes(
    op: &'static str,
    side: Side,
    l: &MatrixView<'_>,
    b: &MatrixView<'_>,
    c: &MatrixViewMut<'_>,
) -> Result<(usize, usize)> {
    if l.rows() != l.cols() {
        return Err(MatrixError::NotSquare {
            rows: l.rows(),
            cols: l.cols(),
        });
    }
    let m = c.rows();
    let n = c.cols();
    let order = match side {
        Side::Left => m,
        Side::Right => n,
    };
    if l.rows() != order {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: (l.rows(), l.cols()),
            rhs: (order, order),
        });
    }
    if b.rows() != m || b.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: (b.rows(), b.cols()),
            rhs: (m, n),
        });
    }
    Ok((m, n))
}

/// `C := alpha * op(L) * B` (Left) or `C := alpha * B * op(L)` (Right) where
/// `op(L)` is `L` or `Lᵀ` and only the `uplo` triangle of `L` is referenced
/// (the opposite triangle is treated as zero, whatever it contains).
///
/// The FLOP count attributed to this kernel by the Section-3.1-style model is
/// `m²·n` on the left and `n²·m` on the right
/// (see [`crate::flops::trmm_flops`]) — half of what a GEMM of the same shape
/// performs.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] or [`MatrixError::DimensionMismatch`]
/// when the operand shapes are inconsistent.
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn trmm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    l: &MatrixView<'_>,
    b: &MatrixView<'_>,
    c: &mut MatrixViewMut<'_>,
    cfg: &BlockConfig,
) -> Result<()> {
    let (m, n) = check_triangular_shapes("trmm operand shape", side, l, b, c)?;
    scale_inplace(0.0, c);
    if m == 0 || n == 0 || alpha == 0.0 {
        return Ok(());
    }

    let l_data = l.as_slice();
    let ldl = l.ld();
    let b_data = b.as_slice();
    let ldb = b.ld();
    // Element (i, p) of op(L) ignoring the triangle mask.
    let op_l = move |i: usize, p: usize| match trans {
        Trans::No => l_data[i + p * ldl],
        Trans::Yes => l_data[p + i * ldl],
    };
    // The triangle op(L) effectively occupies: transposition flips it.
    let eff = uplo.under(trans);
    let load_b = move |p: usize, j: usize| b_data[p + j * ldb];

    let driver = BlockedDriver::new(cfg);
    let tb = cfg.tri_block.max(1);
    let inner = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let parallel = cfg.should_parallelise(m, n, inner);
    match side {
        Side::Left => {
            driver.for_each_panel(c.subview_mut(0, 0, m, n), parallel, |j0, mut panel| {
                let w = panel.cols();
                let mut i0 = 0;
                while i0 < m {
                    let mb = tb.min(m - i0);
                    // Diagonal block: mask the accessor to the effective triangle.
                    {
                        let mut out = panel.subview_mut(i0, 0, mb, w);
                        let masked = |i: usize, p: usize| {
                            if eff.contains(i0 + i, i0 + p) {
                                op_l(i0 + i, i0 + p)
                            } else {
                                0.0
                            }
                        };
                        driver.accumulate_serial(
                            mb,
                            w,
                            mb,
                            alpha,
                            &masked,
                            &|p, j| load_b(i0 + p, j0 + j),
                            &mut out,
                        );
                    }
                    // Off-diagonal rectangle: entirely inside the triangle, so
                    // the packed core reads op(L) unmasked.
                    match eff {
                        Uplo::Lower if i0 > 0 => {
                            let mut out = panel.subview_mut(i0, 0, mb, w);
                            driver.accumulate_serial(
                                mb,
                                w,
                                i0,
                                alpha,
                                &|i, p| op_l(i0 + i, p),
                                &|p, j| load_b(p, j0 + j),
                                &mut out,
                            );
                        }
                        Uplo::Upper if i0 + mb < m => {
                            let right = m - (i0 + mb);
                            let mut out = panel.subview_mut(i0, 0, mb, w);
                            driver.accumulate_serial(
                                mb,
                                w,
                                right,
                                alpha,
                                &|i, p| op_l(i0 + i, i0 + mb + p),
                                &|p, j| load_b(i0 + mb + p, j0 + j),
                                &mut out,
                            );
                        }
                        _ => {}
                    }
                    i0 += tb;
                }
            });
        }
        Side::Right => {
            // C[:, q] = sum_p B[:, p] * op(L)[p, q]: the output column index
            // selects the triangular stripe, so the diagonal-block walk runs
            // over column blocks inside each panel.
            driver.for_each_panel(c.subview_mut(0, 0, m, n), parallel, |j0, mut panel| {
                let w = panel.cols();
                let mut c0 = 0;
                while c0 < w {
                    let cb = tb.min(w - c0);
                    let q0 = j0 + c0;
                    // Diagonal block of op(L): triangle-masked accessor.
                    {
                        let mut out = panel.subview_mut(0, c0, m, cb);
                        let masked = |p: usize, j: usize| {
                            if eff.contains(q0 + p, q0 + j) {
                                op_l(q0 + p, q0 + j)
                            } else {
                                0.0
                            }
                        };
                        driver.accumulate_serial(
                            m,
                            cb,
                            cb,
                            alpha,
                            &|i, p| load_b(i, q0 + p),
                            &masked,
                            &mut out,
                        );
                    }
                    // Off-diagonal rectangle of op(L) above (Upper) or below
                    // (Lower) the diagonal block: unmasked packed core.
                    match eff {
                        Uplo::Upper if q0 > 0 => {
                            let mut out = panel.subview_mut(0, c0, m, cb);
                            driver.accumulate_serial(
                                m,
                                cb,
                                q0,
                                alpha,
                                &load_b,
                                &|p, j| op_l(p, q0 + j),
                                &mut out,
                            );
                        }
                        Uplo::Lower if q0 + cb < n => {
                            let below = n - (q0 + cb);
                            let mut out = panel.subview_mut(0, c0, m, cb);
                            driver.accumulate_serial(
                                m,
                                cb,
                                below,
                                alpha,
                                &|i, p| load_b(i, q0 + cb + p),
                                &|p, j| op_l(q0 + cb + p, q0 + j),
                                &mut out,
                            );
                        }
                        _ => {}
                    }
                    c0 += tb;
                }
            });
        }
    }
    Ok(())
}

/// Reference TRMM: the textbook triple loop over the masked triangle. Used by
/// the unit and property tests to validate the blocked kernel.
///
/// # Errors
///
/// Same shape checks as [`trmm`].
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn trmm_naive(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    l: &MatrixView<'_>,
    b: &MatrixView<'_>,
    c: &mut MatrixViewMut<'_>,
) -> Result<()> {
    let (m, n) = check_triangular_shapes("trmm operand shape", side, l, b, c)?;
    let eff = uplo.under(trans);
    let op_l = |i: usize, p: usize| match trans {
        Trans::No => l.at(i, p),
        Trans::Yes => l.at(p, i),
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            match side {
                Side::Left => {
                    for p in 0..m {
                        if eff.contains(i, p) {
                            acc += op_l(i, p) * b.at(p, j);
                        }
                    }
                }
                Side::Right => {
                    for p in 0..n {
                        if eff.contains(p, j) {
                            acc += b.at(i, p) * op_l(p, j);
                        }
                    }
                }
            }
            *c.at_mut(i, j) = alpha * acc;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::naive::gemm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::{random_seeded, random_triangular};
    use lamb_matrix::Matrix;

    fn check(
        side: Side,
        uplo: Uplo,
        trans: Trans,
        m: usize,
        n: usize,
        alpha: f64,
        cfg: &BlockConfig,
    ) {
        let order = match side {
            Side::Left => m,
            Side::Right => n,
        };
        let l = random_triangular(order, uplo, 5 + order as u64);
        let b = random_seeded(m, n, 100 + n as u64);
        let mut fast = Matrix::filled(m, n, f64::NAN); // := semantics: old contents ignored
        trmm(
            side,
            uplo,
            trans,
            alpha,
            &l.view(),
            &b.view(),
            &mut fast.view_mut(),
            cfg,
        )
        .unwrap();
        let mut reference = Matrix::zeros(m, n);
        trmm_naive(
            side,
            uplo,
            trans,
            alpha,
            &l.view(),
            &b.view(),
            &mut reference.view_mut(),
        )
        .unwrap();
        let diff = max_abs_diff(&fast, &reference).unwrap();
        assert!(
            diff < 1e-11 * (order as f64).max(1.0),
            "side {side:?} uplo {uplo:?} trans {trans:?} {m}x{n} alpha {alpha}: diff {diff}"
        );
    }

    #[test]
    fn all_side_uplo_trans_combinations_match_naive() {
        let cfg = BlockConfig::serial();
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    check(side, uplo, trans, 23, 17, 1.0, &cfg);
                    check(side, uplo, trans, 9, 31, -0.5, &cfg);
                }
            }
        }
    }

    #[test]
    fn tiny_blocking_exercises_partial_diag_blocks() {
        let cfg = BlockConfig::tiny();
        check(Side::Left, Uplo::Lower, Trans::No, 13, 7, 1.0, &cfg);
        check(Side::Left, Uplo::Upper, Trans::Yes, 11, 9, 2.0, &cfg);
        check(Side::Right, Uplo::Lower, Trans::No, 13, 7, 1.0, &cfg);
        check(Side::Right, Uplo::Upper, Trans::Yes, 7, 13, 2.0, &cfg);
    }

    #[test]
    fn parallel_path_matches_naive() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        check(Side::Left, Uplo::Lower, Trans::No, 90, 70, 1.0, &cfg);
        check(Side::Left, Uplo::Upper, Trans::No, 64, 110, 1.0, &cfg);
        check(Side::Right, Uplo::Lower, Trans::No, 90, 70, 1.0, &cfg);
        check(Side::Right, Uplo::Upper, Trans::Yes, 64, 110, 1.0, &cfg);
    }

    #[test]
    fn naive_trmm_agrees_with_gemm_on_materialised_triangle() {
        // op(L)·B computed by GEMM over the explicitly-zeroed triangle equals
        // TRMM reading only the stored triangle — the numerical identity that
        // lets TRMM- and GEMM-based algorithm variants coexist in one
        // algorithm set.
        let cfg = BlockConfig::serial();
        let m = 19;
        let n = 8;
        let l = random_triangular(m, Uplo::Lower, 3);
        let b = random_seeded(m, n, 4);
        let mut via_trmm = Matrix::zeros(m, n);
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut via_trmm.view_mut(),
            &cfg,
        )
        .unwrap();
        let mut via_gemm = Matrix::zeros(m, n);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            0.0,
            &mut via_gemm.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&via_trmm, &via_gemm).unwrap() < 1e-11);
    }

    #[test]
    fn right_side_agrees_with_gemm_on_materialised_triangle() {
        // B·op(L) via GEMM over the explicit triangle equals the right-side
        // TRMM reading only the stored triangle.
        let cfg = BlockConfig::serial();
        let m = 9;
        let n = 21;
        let l = random_triangular(n, Uplo::Upper, 13);
        let b = random_seeded(m, n, 14);
        let mut via_trmm = Matrix::zeros(m, n);
        trmm(
            Side::Right,
            Uplo::Upper,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut via_trmm.view_mut(),
            &cfg,
        )
        .unwrap();
        let mut via_gemm = Matrix::zeros(m, n);
        gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            &b.view(),
            &l.view(),
            0.0,
            &mut via_gemm.view_mut(),
        )
        .unwrap();
        assert!(max_abs_diff(&via_trmm, &via_gemm).unwrap() < 1e-11);
    }

    #[test]
    fn opposite_triangle_is_never_read() {
        let cfg = BlockConfig::tiny();
        let m = 12;
        let n = 5;
        for side in [Side::Left, Side::Right] {
            let order = match side {
                Side::Left => m,
                Side::Right => n,
            };
            let mut l = random_triangular(order, Uplo::Lower, 7);
            let clean = l.clone();
            // Poison the unreferenced triangle: results must not change.
            for i in 0..order {
                for j in (i + 1)..order {
                    l[(i, j)] = 1.0e300;
                }
            }
            let b = random_seeded(m, n, 8);
            let mut poisoned = Matrix::zeros(m, n);
            let mut reference = Matrix::zeros(m, n);
            for (src, out) in [(&l, &mut poisoned), (&clean, &mut reference)] {
                trmm(
                    side,
                    Uplo::Lower,
                    Trans::No,
                    1.0,
                    &src.view(),
                    &b.view(),
                    &mut out.view_mut(),
                    &cfg,
                )
                .unwrap();
            }
            assert_eq!(
                max_abs_diff(&poisoned, &reference).unwrap(),
                0.0,
                "{side:?}"
            );
        }
    }

    #[test]
    fn degenerate_and_bad_shapes() {
        let cfg = BlockConfig::default();
        // m = 0 / n = 0 are no-ops.
        let l = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::zeros(0, 4);
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap();
        // Right side with an empty triangle: n = 0.
        let l0 = Matrix::zeros(0, 0);
        let b0 = Matrix::zeros(4, 0);
        let mut c0 = Matrix::zeros(4, 0);
        trmm(
            Side::Right,
            Uplo::Upper,
            Trans::No,
            1.0,
            &l0.view(),
            &b0.view(),
            &mut c0.view_mut(),
            &cfg,
        )
        .unwrap();
        // Rectangular L is rejected.
        let l_bad = Matrix::zeros(3, 4);
        let b3 = Matrix::zeros(3, 2);
        let mut c3 = Matrix::zeros(3, 2);
        assert!(trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l_bad.view(),
            &b3.view(),
            &mut c3.view_mut(),
            &cfg
        )
        .is_err());
        // Mismatched B is rejected.
        let l3 = Matrix::zeros(3, 3);
        let b_bad = Matrix::zeros(4, 2);
        assert!(trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l3.view(),
            &b_bad.view(),
            &mut c3.view_mut(),
            &cfg
        )
        .is_err());
        // Right side: L must match the column count, not the row count.
        let l_cols = Matrix::zeros(2, 2);
        assert!(trmm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l3.view(),
            &b3.view(),
            &mut c3.view_mut(),
            &cfg
        )
        .is_err());
        let mut c_ok = Matrix::zeros(3, 2);
        trmm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l_cols.view(),
            &b3.view(),
            &mut c_ok.view_mut(),
            &cfg,
        )
        .unwrap();
    }
}
