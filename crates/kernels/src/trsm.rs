//! Triangular solve with multiple right-hand sides:
//! `X := alpha * op(L)⁻¹ * B` (`side == Left`, `L` an `m x m` triangle) or
//! `X := alpha * B * op(L)⁻¹` (`side == Right`, `L` an `n x n` triangle),
//! where only the [`Uplo`] triangle of `L` is referenced.
//!
//! Out-of-place, like [`crate::trmm::trmm`]: `B` is read, `X` is written. The
//! Section-3.1-style FLOP model attributes `m²·n` FLOPs to the left solve and
//! `n²·m` to the right solve — half of the GEMM with the inverse explicitly
//! formed — making TRSM, like TRMM, a structured kernel whose FLOP savings
//! need not translate into time savings.
//!
//! Structure on the shared [`BlockedDriver`]: on the left the right-hand-side
//! columns are completely independent, so they are distributed as column
//! panels, and within a panel the classic blocked substitution runs over
//! diagonal blocks of [`BlockConfig::tri_block`] rows. On the right the
//! *columns* are coupled by the substitution (each output column folds in the
//! already-solved columns) while the rows are independent; the blocked
//! substitution walks column blocks in solve order, folding the solved
//! columns with the packed rectangular core, and runs serially — the packed
//! core itself is the compute-heavy part.

use crate::config::BlockConfig;
use crate::driver::BlockedDriver;
use crate::trmm::check_triangular_shapes;
use lamb_matrix::{Matrix, MatrixError, MatrixView, MatrixViewMut, Result, Side, Trans, Uplo};

/// `X := alpha * op(L)⁻¹ * B` (Left) or `X := alpha * B * op(L)⁻¹` (Right)
/// where `op(L)` is `L` or `Lᵀ` and only the `uplo` triangle of `L` is
/// referenced.
///
/// The FLOP count attributed to this kernel is `m²·n` (Left) or `n²·m`
/// (Right); see [`crate::flops::trsm_flops`].
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] / [`MatrixError::DimensionMismatch`]
/// for inconsistent shapes and [`MatrixError::SingularDiagonal`] when a
/// diagonal element of `L` is exactly zero (the solve does not exist).
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn trsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    l: &MatrixView<'_>,
    b: &MatrixView<'_>,
    x: &mut MatrixViewMut<'_>,
    cfg: &BlockConfig,
) -> Result<()> {
    let (m, n) = check_triangular_shapes("trsm operand shape", side, l, b, x)?;
    let order = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let l_data = l.as_slice();
    let ldl = l.ld();
    for i in 0..order {
        if l_data[i + i * ldl] == 0.0 {
            return Err(MatrixError::SingularDiagonal { index: i });
        }
    }
    // Seed X with alpha * B; the substitution then runs in place on X.
    for j in 0..n {
        let src = b.col(j);
        for (dst, &s) in x.col_mut(j).iter_mut().zip(src) {
            *dst = alpha * s;
        }
    }
    if m == 0 || n == 0 {
        return Ok(());
    }

    // Element (i, p) of op(L) ignoring the triangle mask.
    let op_l = move |i: usize, p: usize| match trans {
        Trans::No => l_data[i + p * ldl],
        Trans::Yes => l_data[p + i * ldl],
    };
    // The triangle op(L) effectively occupies; Lower solves forward (top
    // down / right to left), Upper backward (bottom up / left to right).
    let eff = uplo.under(trans);

    let driver = BlockedDriver::new(cfg);
    let tb = cfg.tri_block.max(1);
    match side {
        Side::Left => {
            let parallel = cfg.should_parallelise(m, n, m);
            driver.for_each_panel(x.subview_mut(0, 0, m, n), parallel, |_, mut panel| {
                let w = panel.cols();
                // Diagonal-block start offsets in solve order.
                let starts: Vec<usize> = match eff {
                    Uplo::Lower => (0..m).step_by(tb).collect(),
                    Uplo::Upper => {
                        let mut s: Vec<usize> = (0..m).step_by(tb).collect();
                        s.reverse();
                        s
                    }
                };
                let mut update = Matrix::zeros(tb.min(m), w);
                for i0 in starts {
                    let mb = tb.min(m - i0);
                    // Fold the already-solved rows into this block:
                    // update := op(L)[block, solved] * X[solved, panel].
                    let (solved_start, solved_len) = match eff {
                        Uplo::Lower => (0, i0),
                        Uplo::Upper => (i0 + mb, m - (i0 + mb)),
                    };
                    let mut update_full = update.view_mut();
                    let mut upd = update_full.subview_mut(0, 0, mb, w);
                    upd.fill(0.0);
                    if solved_len > 0 {
                        // `panel.as_slice()` is an immutable borrow that ends
                        // before the mutable writes below — the solved rows
                        // are disjoint from the block being updated, but the
                        // borrow checker cannot see row disjointness through
                        // a column-major view, so the contribution goes
                        // through a scratch block.
                        let p_data = panel.as_slice();
                        let ldp = panel.ld();
                        driver.accumulate_serial(
                            mb,
                            w,
                            solved_len,
                            1.0,
                            &|i, p| op_l(i0 + i, solved_start + p),
                            &|p, j| p_data[(solved_start + p) + j * ldp],
                            &mut upd,
                        );
                    }
                    // Scalar substitution on the diagonal block.
                    for j in 0..w {
                        match eff {
                            Uplo::Lower => {
                                for i in 0..mb {
                                    let mut s = panel.at(i0 + i, j) - update[(i, j)];
                                    for p in 0..i {
                                        s -= op_l(i0 + i, i0 + p) * panel.at(i0 + p, j);
                                    }
                                    *panel.at_mut(i0 + i, j) = s / op_l(i0 + i, i0 + i);
                                }
                            }
                            Uplo::Upper => {
                                for i in (0..mb).rev() {
                                    let mut s = panel.at(i0 + i, j) - update[(i, j)];
                                    for p in (i + 1)..mb {
                                        s -= op_l(i0 + i, i0 + p) * panel.at(i0 + p, j);
                                    }
                                    *panel.at_mut(i0 + i, j) = s / op_l(i0 + i, i0 + i);
                                }
                            }
                        }
                    }
                }
            });
        }
        Side::Right => {
            // X·op(L) = alpha·B: column-block substitution over X. Column q
            // of the product reads X columns p with op(L)[p, q] nonzero, so
            // the effective Upper triangle solves columns left to right and
            // the effective Lower triangle right to left.
            let starts: Vec<usize> = match eff {
                Uplo::Upper => (0..n).step_by(tb).collect(),
                Uplo::Lower => {
                    let mut s: Vec<usize> = (0..n).step_by(tb).collect();
                    s.reverse();
                    s
                }
            };
            let mut update = Matrix::zeros(m, tb.min(n));
            for c0 in starts {
                let cb = tb.min(n - c0);
                // Fold the already-solved columns into this block:
                // update := X[:, solved] * op(L)[solved, block].
                let (solved_start, solved_len) = match eff {
                    Uplo::Upper => (0, c0),
                    Uplo::Lower => (c0 + cb, n - (c0 + cb)),
                };
                let mut update_full = update.view_mut();
                let mut upd = update_full.subview_mut(0, 0, m, cb);
                upd.fill(0.0);
                if solved_len > 0 {
                    // Same scratch-block pattern as the left side: the solved
                    // columns are disjoint from the block being updated, but
                    // that is invisible to the borrow checker.
                    let x_data = x.as_slice();
                    let ldx = x.ld();
                    driver.accumulate_serial(
                        m,
                        cb,
                        solved_len,
                        1.0,
                        &|i, p| x_data[i + (solved_start + p) * ldx],
                        &|p, j| op_l(solved_start + p, c0 + j),
                        &mut upd,
                    );
                }
                // Scalar substitution over the columns of the diagonal block.
                match eff {
                    Uplo::Upper => {
                        for j in 0..cb {
                            let d = op_l(c0 + j, c0 + j);
                            for i in 0..m {
                                let mut s = x.at(i, c0 + j) - update[(i, j)];
                                for p in 0..j {
                                    s -= x.at(i, c0 + p) * op_l(c0 + p, c0 + j);
                                }
                                *x.at_mut(i, c0 + j) = s / d;
                            }
                        }
                    }
                    Uplo::Lower => {
                        for j in (0..cb).rev() {
                            let d = op_l(c0 + j, c0 + j);
                            for i in 0..m {
                                let mut s = x.at(i, c0 + j) - update[(i, j)];
                                for p in (j + 1)..cb {
                                    s -= x.at(i, c0 + p) * op_l(c0 + p, c0 + j);
                                }
                                *x.at_mut(i, c0 + j) = s / d;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reference TRSM: unblocked column-by-column (Left) or column-recurrence
/// (Right) forward/backward substitution. Used by the unit and property tests
/// to validate the blocked kernel.
///
/// # Errors
///
/// Same checks as [`trsm`].
#[allow(clippy::too_many_arguments)] // BLAS-style interface
pub fn trsm_naive(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    alpha: f64,
    l: &MatrixView<'_>,
    b: &MatrixView<'_>,
    x: &mut MatrixViewMut<'_>,
) -> Result<()> {
    let (m, n) = check_triangular_shapes("trsm operand shape", side, l, b, x)?;
    let order = match side {
        Side::Left => m,
        Side::Right => n,
    };
    for i in 0..order {
        if l.at(i, i) == 0.0 {
            return Err(MatrixError::SingularDiagonal { index: i });
        }
    }
    let op_l = |i: usize, p: usize| match trans {
        Trans::No => l.at(i, p),
        Trans::Yes => l.at(p, i),
    };
    let eff = uplo.under(trans);
    match side {
        Side::Left => {
            for j in 0..n {
                match eff {
                    Uplo::Lower => {
                        for i in 0..m {
                            let mut s = alpha * b.at(i, j);
                            for p in 0..i {
                                s -= op_l(i, p) * x.at(p, j);
                            }
                            *x.at_mut(i, j) = s / op_l(i, i);
                        }
                    }
                    Uplo::Upper => {
                        for i in (0..m).rev() {
                            let mut s = alpha * b.at(i, j);
                            for p in (i + 1)..m {
                                s -= op_l(i, p) * x.at(p, j);
                            }
                            *x.at_mut(i, j) = s / op_l(i, i);
                        }
                    }
                }
            }
        }
        Side::Right => {
            let cols: Vec<usize> = match eff {
                Uplo::Upper => (0..n).collect(),
                Uplo::Lower => (0..n).rev().collect(),
            };
            for j in cols {
                for i in 0..m {
                    let mut s = alpha * b.at(i, j);
                    match eff {
                        Uplo::Upper => {
                            for p in 0..j {
                                s -= x.at(i, p) * op_l(p, j);
                            }
                        }
                        Uplo::Lower => {
                            for p in (j + 1)..n {
                                s -= x.at(i, p) * op_l(p, j);
                            }
                        }
                    }
                    *x.at_mut(i, j) = s / op_l(j, j);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trmm::trmm_naive;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::{random_seeded, random_triangular};

    fn check(
        side: Side,
        uplo: Uplo,
        trans: Trans,
        m: usize,
        n: usize,
        alpha: f64,
        cfg: &BlockConfig,
    ) {
        let order = match side {
            Side::Left => m,
            Side::Right => n,
        };
        let l = random_triangular(order, uplo, 9 + order as u64);
        let b = random_seeded(m, n, 200 + n as u64);
        let mut fast = Matrix::filled(m, n, f64::NAN);
        trsm(
            side,
            uplo,
            trans,
            alpha,
            &l.view(),
            &b.view(),
            &mut fast.view_mut(),
            cfg,
        )
        .unwrap();
        let mut reference = Matrix::zeros(m, n);
        trsm_naive(
            side,
            uplo,
            trans,
            alpha,
            &l.view(),
            &b.view(),
            &mut reference.view_mut(),
        )
        .unwrap();
        let diff = max_abs_diff(&fast, &reference).unwrap();
        assert!(
            diff < 1e-10 * (order as f64).max(1.0),
            "side {side:?} uplo {uplo:?} trans {trans:?} {m}x{n} alpha {alpha}: diff {diff}"
        );
    }

    #[test]
    fn all_side_uplo_trans_combinations_match_naive() {
        let cfg = BlockConfig::serial();
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    check(side, uplo, trans, 23, 17, 1.0, &cfg);
                    check(side, uplo, trans, 9, 31, -2.0, &cfg);
                }
            }
        }
    }

    #[test]
    fn tiny_blocking_exercises_partial_diag_blocks() {
        let cfg = BlockConfig::tiny();
        check(Side::Left, Uplo::Lower, Trans::No, 13, 7, 1.0, &cfg);
        check(Side::Left, Uplo::Upper, Trans::Yes, 11, 9, 0.5, &cfg);
        check(Side::Right, Uplo::Lower, Trans::No, 13, 7, 1.0, &cfg);
        check(Side::Right, Uplo::Upper, Trans::Yes, 7, 13, 0.5, &cfg);
    }

    #[test]
    fn parallel_path_matches_naive() {
        let cfg = BlockConfig {
            parallel_flop_threshold: 1,
            ..BlockConfig::default()
        };
        check(Side::Left, Uplo::Lower, Trans::No, 90, 70, 1.0, &cfg);
        check(Side::Left, Uplo::Upper, Trans::No, 64, 110, 1.0, &cfg);
        check(Side::Right, Uplo::Lower, Trans::No, 90, 70, 1.0, &cfg);
    }

    #[test]
    fn solve_inverts_the_triangular_product() {
        // trsm(L, trmm(L, B)) == B — the round trip that certifies the two
        // triangular kernels against each other, on both sides.
        let cfg = BlockConfig::serial();
        let m = 27;
        let n = 11;
        for side in [Side::Left, Side::Right] {
            let order = match side {
                Side::Left => m,
                Side::Right => n,
            };
            for (uplo, trans) in [
                (Uplo::Lower, Trans::No),
                (Uplo::Upper, Trans::No),
                (Uplo::Lower, Trans::Yes),
            ] {
                let l = random_triangular(order, uplo, 33);
                let b = random_seeded(m, n, 34);
                let mut lb = Matrix::zeros(m, n);
                trmm_naive(
                    side,
                    uplo,
                    trans,
                    1.0,
                    &l.view(),
                    &b.view(),
                    &mut lb.view_mut(),
                )
                .unwrap();
                let mut recovered = Matrix::zeros(m, n);
                trsm(
                    side,
                    uplo,
                    trans,
                    1.0,
                    &l.view(),
                    &lb.view(),
                    &mut recovered.view_mut(),
                    &cfg,
                )
                .unwrap();
                assert!(
                    max_abs_diff(&recovered, &b).unwrap() < 1e-10,
                    "{side:?}/{uplo:?}/{trans:?}"
                );
            }
        }
    }

    #[test]
    fn singular_diagonal_is_reported() {
        let cfg = BlockConfig::default();
        let mut l = random_triangular(5, Uplo::Lower, 1);
        l[(3, 3)] = 0.0;
        let b = random_seeded(5, 2, 2);
        let mut x = Matrix::zeros(5, 2);
        let err = trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut x.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err, MatrixError::SingularDiagonal { index: 3 });
        assert!(trsm_naive(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut x.view_mut()
        )
        .is_err());
        // Right side: the singular triangle sits on the column dimension.
        let b_r = random_seeded(2, 5, 3);
        let mut x_r = Matrix::zeros(2, 5);
        let err_r = trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b_r.view(),
            &mut x_r.view_mut(),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err_r, MatrixError::SingularDiagonal { index: 3 });
    }

    #[test]
    fn shape_errors_are_detected() {
        let cfg = BlockConfig::default();
        let l = Matrix::zeros(3, 4);
        let b = Matrix::zeros(3, 2);
        let mut x = Matrix::zeros(3, 2);
        assert!(trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l.view(),
            &b.view(),
            &mut x.view_mut(),
            &cfg
        )
        .is_err());
        // Right side: a square L of the wrong order is rejected.
        let l3 = Matrix::zeros(3, 3);
        assert!(trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            1.0,
            &l3.view(),
            &b.view(),
            &mut x.view_mut(),
            &cfg
        )
        .is_err());
    }
}
