//! Property-based validation of the optimised kernels against the naive
//! reference, over randomly drawn shapes, transposition flags, scalars and
//! blocking configurations.

use lamb_kernels::{
    factor_triangle, gemm, gemm_naive, getrf, getrf_naive, ormqr, pivot_apply, qr, qr_naive,
    qr_packed, symm, syrk, trmm, trmm_naive, trsm, trsm_naive, BlockConfig, TileVariant,
};
use lamb_matrix::ops::{frobenius_norm, max_abs_diff, zero_opposite_triangle};
use lamb_matrix::random::{random_seeded, random_symmetric, random_triangular};
use lamb_matrix::{Matrix, Side, Trans, Uplo};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trans_strategy() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

fn uplo_strategy() -> impl Strategy<Value = Uplo> {
    prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)]
}

fn side_strategy() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Left), Just(Side::Right)]
}

fn tile_strategy() -> impl Strategy<Value = TileVariant> {
    prop_oneof![
        Just(TileVariant::T8x4),
        Just(TileVariant::T8x8),
        Just(TileVariant::T4x8),
        Just(TileVariant::T16x4),
        Just(TileVariant::T8x12),
    ]
}

fn config_strategy() -> impl Strategy<Value = BlockConfig> {
    // Every blocking regime crossed with every register-tile variant, so each
    // kernel property exercises each micro-kernel instantiation.
    (
        prop_oneof![
            Just(BlockConfig::tiny()),
            Just(BlockConfig::serial()),
            Just(BlockConfig {
                parallel_flop_threshold: 1,
                ..BlockConfig::default()
            }),
        ],
        tile_strategy(),
    )
        .prop_map(|(base, tile)| base.with_tile(tile))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_naive(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        transa in trans_strategy(),
        transb in trans_strategy(),
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        let (ar, ac) = transa.apply((m, k));
        let (br, bc) = transb.apply((k, n));
        let a = random_seeded(ar, ac, seed);
        let b = random_seeded(br, bc, seed.wrapping_add(1));
        let c0 = random_seeded(m, n, seed.wrapping_add(2));
        let mut c_fast = c0.clone();
        let mut c_ref = c0;
        gemm(transa, transb, 1.5, &a.view(), &b.view(), -0.5, &mut c_fast.view_mut(), &cfg).unwrap();
        gemm_naive(transa, transb, 1.5, &a.view(), &b.view(), -0.5, &mut c_ref.view_mut()).unwrap();
        prop_assert!(max_abs_diff(&c_fast, &c_ref).unwrap() < 1e-11 * k as f64);
    }

    #[test]
    fn syrk_matches_gemm_on_triangle(
        n in 1usize..32,
        k in 1usize..32,
        uplo in uplo_strategy(),
        trans in trans_strategy(),
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        let (ar, ac) = trans.apply((n, k));
        let a = random_seeded(ar, ac, seed);
        let mut c_syrk = Matrix::zeros(n, n);
        syrk(uplo, trans, 1.0, &a.view(), 0.0, &mut c_syrk.view_mut(), &cfg).unwrap();
        let mut full = Matrix::zeros(n, n);
        gemm_naive(trans, trans.flip(), 1.0, &a.view(), &a.view(), 0.0, &mut full.view_mut()).unwrap();
        for i in 0..n {
            for j in 0..n {
                if uplo.contains(i, j) {
                    prop_assert!((c_syrk[(i, j)] - full[(i, j)]).abs() < 1e-11 * k as f64);
                } else {
                    prop_assert_eq!(c_syrk[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn symm_matches_full_gemm(
        m in 1usize..32,
        n in 1usize..32,
        uplo in uplo_strategy(),
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let full = random_symmetric(m, &mut rng);
        let mut stored = full.clone();
        zero_opposite_triangle(&mut stored, uplo).unwrap();
        let b = random_seeded(m, n, seed.wrapping_add(3));
        let mut c_symm = Matrix::zeros(m, n);
        symm(Side::Left, uplo, 1.0, &stored.view(), &b.view(), 0.0, &mut c_symm.view_mut(), &cfg).unwrap();
        let mut c_ref = Matrix::zeros(m, n);
        gemm_naive(Trans::No, Trans::No, 1.0, &full.view(), &b.view(), 0.0, &mut c_ref.view_mut()).unwrap();
        prop_assert!(max_abs_diff(&c_symm, &c_ref).unwrap() < 1e-11 * m as f64);
    }

    #[test]
    fn trmm_matches_naive(
        m in 1usize..40,
        n in 1usize..40,
        side in side_strategy(),
        uplo in uplo_strategy(),
        trans in trans_strategy(),
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        let order = match side { Side::Left => m, Side::Right => n };
        let l = random_triangular(order, uplo, seed);
        let b = random_seeded(m, n, seed.wrapping_add(5));
        let mut fast = Matrix::zeros(m, n);
        trmm(side, uplo, trans, 1.5, &l.view(), &b.view(), &mut fast.view_mut(), &cfg).unwrap();
        let mut reference = Matrix::zeros(m, n);
        trmm_naive(side, uplo, trans, 1.5, &l.view(), &b.view(), &mut reference.view_mut()).unwrap();
        let norm = frobenius_norm(&reference).max(1.0);
        prop_assert!(max_abs_diff(&fast, &reference).unwrap() < 1e-10 * norm);
    }

    #[test]
    fn trsm_matches_naive(
        m in 1usize..40,
        n in 1usize..40,
        side in side_strategy(),
        uplo in uplo_strategy(),
        trans in trans_strategy(),
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        // random_triangular is diagonally dominant, so the solves stay well
        // conditioned and the 1e-10·norm tolerance is meaningful.
        let order = match side { Side::Left => m, Side::Right => n };
        let l = random_triangular(order, uplo, seed);
        let b = random_seeded(m, n, seed.wrapping_add(7));
        let mut fast = Matrix::zeros(m, n);
        trsm(side, uplo, trans, -0.5, &l.view(), &b.view(), &mut fast.view_mut(), &cfg).unwrap();
        let mut reference = Matrix::zeros(m, n);
        trsm_naive(side, uplo, trans, -0.5, &l.view(), &b.view(), &mut reference.view_mut()).unwrap();
        let norm = frobenius_norm(&reference).max(1.0);
        prop_assert!(max_abs_diff(&fast, &reference).unwrap() < 1e-10 * norm);
    }

    #[test]
    fn trsm_undoes_trmm(
        m in 1usize..32,
        n in 1usize..32,
        side in side_strategy(),
        uplo in uplo_strategy(),
        trans in trans_strategy(),
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        let order = match side { Side::Left => m, Side::Right => n };
        let l = random_triangular(order, uplo, seed);
        let b = random_seeded(m, n, seed.wrapping_add(11));
        let mut lb = Matrix::zeros(m, n);
        trmm(side, uplo, trans, 1.0, &l.view(), &b.view(), &mut lb.view_mut(), &cfg).unwrap();
        let mut recovered = Matrix::zeros(m, n);
        trsm(side, uplo, trans, 1.0, &l.view(), &lb.view(), &mut recovered.view_mut(), &cfg).unwrap();
        let norm = frobenius_norm(&b).max(1.0);
        prop_assert!(max_abs_diff(&recovered, &b).unwrap() < 1e-10 * norm);
    }

    #[test]
    fn getrf_matches_naive_and_reconstructs(
        n in 1usize..40,
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        let a = random_seeded(n, n, seed);
        let mut blocked = a.clone();
        let mut naive = a.clone();
        let (mut pb, mut pn) = (Vec::new(), Vec::new());
        getrf(&mut blocked.view_mut(), &mut pb, &cfg).unwrap();
        getrf_naive(&mut naive.view_mut(), &mut pn).unwrap();
        prop_assert_eq!(&pb, &pn);
        let norm = frobenius_norm(&naive).max(1.0);
        prop_assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-10 * norm);
        // L·U reproduces P·A.
        let f = Matrix::from_fn(n, n + 1, |i, j| {
            if j < n { blocked[(i, j)] } else { pb[i] as f64 }
        });
        let l = factor_triangle(Uplo::Lower, &f).unwrap();
        let u = factor_triangle(Uplo::Upper, &f).unwrap();
        let pa = pivot_apply(&f, &a).unwrap();
        let mut back = Matrix::zeros(n, n);
        gemm_naive(Trans::No, Trans::No, 1.0, &l.view(), &u.view(), 0.0, &mut back.view_mut()).unwrap();
        prop_assert!(max_abs_diff(&back, &pa).unwrap() < 1e-10 * frobenius_norm(&pa).max(1.0));
    }

    #[test]
    fn qr_matches_naive_and_is_orthogonal(
        m in 1usize..40,
        extra in 0usize..12,
        cfg in config_strategy(),
        seed in 0u64..10_000,
    ) {
        // Tall or square: n <= m by construction.
        let n = m.saturating_sub(extra).max(1);
        let a = random_seeded(m, n, seed);
        let mut blocked = a.clone();
        let mut naive = a.clone();
        let (mut tb, mut tn) = (Vec::new(), Vec::new());
        qr(&mut blocked.view_mut(), &mut tb, &cfg).unwrap();
        qr_naive(&mut naive.view_mut(), &mut tn).unwrap();
        let norm = frobenius_norm(&a).max(1.0);
        prop_assert!(max_abs_diff(&blocked, &naive).unwrap() < 1e-9 * norm);
        // ORMQR preserves Gram structure: (Qᵀa)ᵀ(Qᵀa) restricted to the top
        // n rows equals RᵀR = aᵀa (Q orthogonal and a in Q's column span).
        let f = qr_packed(&a, &cfg).unwrap();
        let qta = ormqr(&f, &a).unwrap();
        let r = factor_triangle(Uplo::Upper, &f).unwrap();
        prop_assert!(max_abs_diff(&qta, &r).unwrap() < 1e-9 * norm);
        let mut gram_a = Matrix::zeros(n, n);
        gemm_naive(Trans::Yes, Trans::No, 1.0, &a.view(), &a.view(), 0.0, &mut gram_a.view_mut()).unwrap();
        let mut gram_r = Matrix::zeros(n, n);
        gemm_naive(Trans::Yes, Trans::No, 1.0, &r.view(), &r.view(), 0.0, &mut gram_r.view_mut()).unwrap();
        prop_assert!(max_abs_diff(&gram_a, &gram_r).unwrap() < 1e-9 * norm * norm);
    }

    #[test]
    fn tile_variants_handle_partial_tiles(
        tile in tile_strategy(),
        mi in 0usize..4,
        ni in 0usize..4,
        mq in 1usize..4,
        nq in 1usize..4,
        k in 1usize..24,
        transa in trans_strategy(),
        transb in trans_strategy(),
        serial_blocks in prop_oneof![Just(false), Just(true)],
        seed in 0u64..10_000,
    ) {
        // Operand extents sit exactly on the register-tile edge cases: a
        // whole number of MR/NR tiles, one past, one short, and a single
        // tile plus one — the shapes where the masked partial-tile writeback
        // must not read or write out of range.
        let edge = |q: usize, t: usize, which: usize| match which {
            0 => q * t,                       // ≡ 0 (mod tile)
            1 => q * t + 1,                   // ≡ 1
            2 => (q * t).saturating_sub(1).max(1), // ≡ tile-1
            _ => t + 1,                       // tile+1
        };
        let m = edge(mq, tile.mr(), mi);
        let n = edge(nq, tile.nr(), ni);
        let cfg = if serial_blocks { BlockConfig::serial() } else { BlockConfig::tiny() }.with_tile(tile);
        let (ar, ac) = transa.apply((m, k));
        let (br, bc) = transb.apply((k, n));
        let a = random_seeded(ar, ac, seed);
        let b = random_seeded(br, bc, seed.wrapping_add(13));
        let c0 = random_seeded(m, n, seed.wrapping_add(14));
        let mut fast = c0.clone();
        let mut reference = c0;
        gemm(transa, transb, 2.0, &a.view(), &b.view(), 0.25, &mut fast.view_mut(), &cfg).unwrap();
        gemm_naive(transa, transb, 2.0, &a.view(), &b.view(), 0.25, &mut reference.view_mut()).unwrap();
        prop_assert!(max_abs_diff(&fast, &reference).unwrap() < 1e-11 * k as f64);
    }

    #[test]
    fn aatb_algorithm_variants_agree(
        d0 in 1usize..24,
        d1 in 1usize..24,
        d2 in 1usize..24,
        seed in 0u64..10_000,
    ) {
        // The five algorithm families of the paper's A·Aᵀ·B expression are
        // mathematically equivalent; verify their kernel realisations agree.
        let cfg = BlockConfig::serial();
        let a = random_seeded(d0, d1, seed);
        let b = random_seeded(d0, d2, seed.wrapping_add(9));

        // GEMM(A·Aᵀ) then GEMM(M·B).
        let m_full = lamb_kernels::gemm_new(Trans::No, &a, Trans::Yes, &a, &cfg).unwrap();
        let x_gg = lamb_kernels::gemm_new(Trans::No, &m_full, Trans::No, &b, &cfg).unwrap();
        // SYRK then SYMM (triangle only).
        let tri = lamb_kernels::syrk_new(Uplo::Lower, Trans::No, &a, &cfg).unwrap();
        let x_ss = lamb_kernels::symm_new(Side::Left, Uplo::Lower, &tri, &b, &cfg).unwrap();
        // SYRK, copy to full, then GEMM.
        let mut full_from_tri = tri.clone();
        full_from_tri.symmetrize_from(Uplo::Lower).unwrap();
        let x_sg = lamb_kernels::gemm_new(Trans::No, &full_from_tri, Trans::No, &b, &cfg).unwrap();
        // GEMM(Aᵀ·B) then GEMM(A·M).
        let m_right = lamb_kernels::gemm_new(Trans::Yes, &a, Trans::No, &b, &cfg).unwrap();
        let x_right = lamb_kernels::gemm_new(Trans::No, &a, Trans::No, &m_right, &cfg).unwrap();

        let tol = 1e-10 * (d0 * d1) as f64;
        prop_assert!(max_abs_diff(&x_gg, &x_ss).unwrap() < tol);
        prop_assert!(max_abs_diff(&x_gg, &x_sg).unwrap() < tol);
        prop_assert!(max_abs_diff(&x_gg, &x_right).unwrap() < tol);
    }

    #[test]
    fn chain_parenthesisations_agree(
        d0 in 1usize..16,
        d1 in 1usize..16,
        d2 in 1usize..16,
        d3 in 1usize..16,
        d4 in 1usize..16,
        seed in 0u64..10_000,
    ) {
        // All parenthesisations of A·B·C·D agree numerically (associativity).
        let cfg = BlockConfig::serial();
        let a = random_seeded(d0, d1, seed);
        let b = random_seeded(d1, d2, seed.wrapping_add(1));
        let c = random_seeded(d2, d3, seed.wrapping_add(2));
        let d = random_seeded(d3, d4, seed.wrapping_add(3));
        let g = |x: &Matrix, y: &Matrix| lamb_kernels::gemm_new(Trans::No, x, Trans::No, y, &cfg).unwrap();
        let left = g(&g(&g(&a, &b), &c), &d); // ((AB)C)D
        let right = g(&a, &g(&b, &g(&c, &d))); // A(B(CD))
        let mid = g(&g(&a, &b), &g(&c, &d)); // (AB)(CD)
        let inner = g(&g(&a, &g(&b, &c)), &d); // (A(BC))D
        let tol = 1e-9 * (d1 * d2 * d3) as f64;
        prop_assert!(max_abs_diff(&left, &right).unwrap() < tol);
        prop_assert!(max_abs_diff(&left, &mid).unwrap() < tol);
        prop_assert!(max_abs_diff(&left, &inner).unwrap() < tol);
    }
}
