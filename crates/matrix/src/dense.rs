//! Owned, column-major dense matrices.

use crate::error::{MatrixError, Result};
use crate::types::Uplo;
use crate::view::{MatrixView, MatrixViewMut};
use std::ops::{Index, IndexMut};

/// An owned, heap-allocated, column-major matrix of `f64` values.
///
/// The storage is always contiguous with leading dimension equal to the number
/// of rows, i.e. element `(i, j)` lives at `data[i + j * rows]`.
///
/// # Examples
///
/// ```
/// use lamb_matrix::Matrix;
///
/// let a = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
/// assert_eq!(a[(1, 2)], 21.0);
/// assert_eq!(a.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Create a matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create a matrix where every element equals `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Create an `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i + i * n] = 1.0;
        }
        m
    }

    /// Create a matrix from a column-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DataLengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::DataLengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Create a matrix by evaluating `f(i, j)` for every element.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Create a matrix from row-major data (convenience for tests and examples).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DataLengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::DataLengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix::from_fn(rows, cols, |i, j| data[i * cols + j]))
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Leading dimension of the storage (always equal to `rows` for owned matrices).
    #[must_use]
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Borrow the underlying column-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying column-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its column-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Checked element access.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i + j * self.rows])
        } else {
            None
        }
    }

    /// Checked element assignment.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] when the index is invalid.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i < self.rows && j < self.cols {
            self.data[i + j * self.rows] = value;
            Ok(())
        } else {
            Err(MatrixError::IndexOutOfBounds {
                row: i,
                col: j,
                rows: self.rows,
                cols: self.cols,
            })
        }
    }

    /// Borrow column `j` as a contiguous slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        &self.data[j * self.rows..j * self.rows + self.rows]
    }

    /// Mutably borrow column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        &mut self.data[j * self.rows..j * self.rows + self.rows]
    }

    /// Immutable view covering the whole matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(&self.data, self.rows, self.cols, self.rows)
            .expect("owned matrix storage is always consistent")
    }

    /// Mutable view covering the whole matrix.
    pub fn view_mut(&mut self) -> MatrixViewMut<'_> {
        MatrixViewMut::new(&mut self.data, self.rows, self.cols, self.rows)
            .expect("owned matrix storage is always consistent")
    }

    /// Immutable view of the `nr x nc` window whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit inside the matrix.
    #[must_use]
    pub fn subview(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'_> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "subview out of bounds"
        );
        let start = r0 + c0 * self.rows;
        let end = if nr == 0 || nc == 0 {
            start
        } else {
            start + (nc - 1) * self.rows + nr
        };
        MatrixView::new(&self.data[start..end], nr, nc, self.rows)
            .expect("subview bounds already validated")
    }

    /// Return the explicit transpose as a new matrix.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.data[j + i * self.rows])
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copy the `uplo` triangle into the opposite triangle, making the matrix
    /// numerically symmetric. This mirrors the explicit "extend the triangle
    /// computed by SYRK to a full matrix" step of Algorithm 2 for `A·Aᵀ·B`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for rectangular matrices.
    pub fn symmetrize_from(&mut self, uplo: Uplo) -> Result<()> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        for j in 0..n {
            for i in (j + 1)..n {
                match uplo {
                    Uplo::Lower => {
                        let v = self.data[i + j * n];
                        self.data[j + i * n] = v;
                    }
                    Uplo::Upper => {
                        let v = self.data[j + i * n];
                        self.data[i + j * n] = v;
                    }
                }
            }
        }
        Ok(())
    }

    /// Copy only the `uplo` triangle of `src` into `self`, leaving the other
    /// triangle untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes differ or the matrices are not square.
    pub fn copy_triangle(&mut self, src: &Matrix, uplo: Uplo) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "copy_triangle",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        for j in 0..n {
            for i in 0..n {
                if uplo.contains(i, j) {
                    self.data[i + j * n] = src.data[i + j * n];
                }
            }
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i + j * self.rows]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_empty());
        assert!(!m.is_square());
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
        assert!(m.is_square());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::DataLengthMismatch { len: 3, .. }
        ));
    }

    #[test]
    fn from_fn_is_column_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn from_rows_matches_row_major_input() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn get_and_set_are_bounds_checked() {
        let mut m = Matrix::zeros(2, 2);
        assert_eq!(m.get(1, 1), Some(0.0));
        assert_eq!(m.get(2, 0), None);
        assert!(m.set(1, 0, 5.0).is_ok());
        assert_eq!(m[(1, 0)], 5.0);
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn col_returns_contiguous_column() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "column index")]
    fn col_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.col(2);
    }

    #[test]
    fn transpose_swaps_shape_and_elements() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = m.transposed();
        assert_eq!(t.shape(), (3, 2));
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = Matrix::from_fn(4, 5, |i, j| (i * 17 + j * 3) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn symmetrize_from_lower() {
        let mut m = Matrix::from_fn(
            3,
            3,
            |i, j| if i >= j { (i * 3 + j + 1) as f64 } else { -1.0 },
        );
        m.symmetrize_from(Uplo::Lower).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], m[(j, i)]);
                assert!(m[(i, j)] >= 0.0, "upper triangle was not overwritten");
            }
        }
    }

    #[test]
    fn symmetrize_from_upper() {
        let mut m = Matrix::from_fn(
            3,
            3,
            |i, j| if i <= j { (i + 3 * j + 1) as f64 } else { -1.0 },
        );
        m.symmetrize_from(Uplo::Upper).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], m[(j, i)]);
                assert!(m[(i, j)] >= 0.0);
            }
        }
    }

    #[test]
    fn symmetrize_rejects_rectangular() {
        let mut m = Matrix::zeros(2, 3);
        assert!(matches!(
            m.symmetrize_from(Uplo::Lower),
            Err(MatrixError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn copy_triangle_only_touches_requested_triangle() {
        let src = Matrix::filled(3, 3, 7.0);
        let mut dst = Matrix::filled(3, 3, 1.0);
        dst.copy_triangle(&src, Uplo::Lower).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i >= j { 7.0 } else { 1.0 };
                assert_eq!(dst[(i, j)], expected);
            }
        }
    }

    #[test]
    fn copy_triangle_shape_mismatch() {
        let src = Matrix::zeros(2, 2);
        let mut dst = Matrix::zeros(3, 3);
        assert!(dst.copy_triangle(&src, Uplo::Upper).is_err());
    }

    #[test]
    fn subview_reads_expected_window() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        let v = m.subview(1, 2, 2, 2);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.at(0, 0), m[(1, 2)]);
        assert_eq!(v.at(1, 1), m[(2, 3)]);
    }

    #[test]
    fn empty_matrix_edge_cases() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let t = m.transposed();
        assert_eq!(t.shape(), (5, 0));
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        m.fill(2.5);
        assert!(m.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn into_vec_round_trips() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        let v = m.clone().into_vec();
        let m2 = Matrix::from_vec(2, 2, v).unwrap();
        assert_eq!(m, m2);
    }
}
