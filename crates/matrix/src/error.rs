//! Error types for matrix construction and shape-checked operations.

use std::fmt;

/// Errors produced by matrix constructors and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The requested dimensions are inconsistent with the provided data length.
    DataLengthMismatch {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// An operation that requires a square matrix was given a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Row index requested.
        row: usize,
        /// Column index requested.
        col: usize,
        /// Number of rows of the matrix.
        rows: usize,
        /// Number of columns of the matrix.
        cols: usize,
    },
    /// A view was requested with a leading dimension smaller than its row count.
    InvalidLeadingDimension {
        /// Leading dimension requested.
        ld: usize,
        /// Number of rows requested.
        rows: usize,
    },
    /// A triangular solve encountered a zero on the diagonal: the triangular
    /// operand is singular and `op(L)⁻¹·B` does not exist.
    SingularDiagonal {
        /// Index of the zero diagonal element.
        index: usize,
    },
    /// A Cholesky factorisation encountered a non-positive pivot: the operand
    /// is not positive definite and `A = L·Lᵀ` does not exist.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        index: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DataLengthMismatch { rows, cols, len } => write!(
                f,
                "data length {len} does not match {rows}x{cols} = {} elements",
                rows * cols
            ),
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            MatrixError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for a {rows}x{cols} matrix"
            ),
            MatrixError::InvalidLeadingDimension { ld, rows } => write!(
                f,
                "leading dimension {ld} is smaller than the number of rows {rows}"
            ),
            MatrixError::SingularDiagonal { index } => write!(
                f,
                "triangular operand is singular: zero diagonal element at index {index}"
            ),
            MatrixError::NotPositiveDefinite { index } => write!(
                f,
                "operand is not positive definite: non-positive pivot at index {index}"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_data_length_mismatch() {
        let e = MatrixError::DataLengthMismatch {
            rows: 2,
            cols: 3,
            len: 5,
        };
        let s = e.to_string();
        assert!(s.contains("5"));
        assert!(s.contains("2x3"));
        assert!(s.contains("6"));
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = MatrixError::DimensionMismatch {
            op: "gemm",
            lhs: (4, 5),
            rhs: (6, 7),
        };
        let s = e.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains("4x5"));
        assert!(s.contains("6x7"));
    }

    #[test]
    fn display_not_square() {
        let e = MatrixError::NotSquare { rows: 3, cols: 4 };
        assert!(e.to_string().contains("3x4"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = MatrixError::IndexOutOfBounds {
            row: 9,
            col: 1,
            rows: 3,
            cols: 2,
        };
        let s = e.to_string();
        assert!(s.contains("(9, 1)"));
        assert!(s.contains("3x2"));
    }

    #[test]
    fn display_invalid_ld() {
        let e = MatrixError::InvalidLeadingDimension { ld: 2, rows: 5 };
        let s = e.to_string();
        assert!(s.contains("2"));
        assert!(s.contains("5"));
    }

    #[test]
    fn display_singular_diagonal() {
        let e = MatrixError::SingularDiagonal { index: 4 };
        let s = e.to_string();
        assert!(s.contains("singular"));
        assert!(s.contains('4'));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = MatrixError::NotPositiveDefinite { index: 2 };
        let s = e.to_string();
        assert!(s.contains("positive definite"));
        assert!(s.contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&MatrixError::NotSquare { rows: 1, cols: 2 });
    }
}
