//! # lamb-matrix
//!
//! Dense, column-major matrix substrate used throughout the `lamb` workspace.
//!
//! The crate provides exactly what the BLAS-3 kernels and the experiment
//! drivers need and nothing more:
//!
//! * [`Matrix`] — an owned, heap-allocated, column-major `f64` matrix.
//! * [`MatrixView`] / [`MatrixViewMut`] — borrowed rectangular windows with an
//!   explicit leading dimension, the lingua franca of the kernel crate.
//! * Triangular helpers ([`Uplo`], [`Matrix::symmetrize_from`],
//!   [`Matrix::copy_triangle`]) required by the SYRK/SYMM algorithms of the
//!   paper's `A·Aᵀ·B` expression.
//! * Comparison utilities (`max_abs_diff`, `approx_eq`) used by the test
//!   suites to validate optimised kernels against naive references.
//!
//! The storage convention is FORTRAN/BLAS column-major: element `(i, j)` of a
//! matrix with leading dimension `ld` lives at linear index `i + j * ld`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dense;
pub mod error;
pub mod ops;
pub mod random;
pub mod types;
pub mod view;

pub use dense::Matrix;
pub use error::{MatrixError, Result};
pub use types::{Side, Structure, Trans, Uplo};
pub use view::{MatrixView, MatrixViewMut};
