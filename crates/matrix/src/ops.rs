//! Element-wise utilities, norms, and comparison helpers.
//!
//! These are deliberately simple, reference-grade operations: they are used to
//! validate the optimised kernels and to prepare operands, not to be fast.

use crate::dense::Matrix;
use crate::error::{MatrixError, Result};
use crate::types::Uplo;

/// Maximum absolute difference between two matrices of identical shape.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> Result<f64> {
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch {
            op: "max_abs_diff",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// Whether two matrices are element-wise equal within a tolerance that scales
/// with the magnitude of the entries (mixed absolute/relative criterion).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
pub fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> Result<bool> {
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch {
            op: "approx_eq",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| {
        let scale = 1.0_f64.max(x.abs()).max(y.abs());
        (x - y).abs() <= tol * scale
    }))
}

/// Frobenius norm of a matrix.
#[must_use]
pub fn frobenius_norm(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Maximum absolute value of any element.
#[must_use]
pub fn max_abs(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// Whether a square matrix is numerically symmetric within `tol`.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input.
pub fn is_symmetric(a: &Matrix, tol: f64) -> Result<bool> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    for j in 0..n {
        for i in (j + 1)..n {
            let x = a[(i, j)];
            let y = a[(j, i)];
            let scale = 1.0_f64.max(x.abs()).max(y.abs());
            if (x - y).abs() > tol * scale {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Whether a square matrix is exactly triangular: every element outside the
/// `uplo` triangle (diagonal included in the triangle) is zero.
///
/// Kernels such as TRMM/TRSM read only the stored triangle and *assume* the
/// rest is zero — a declared-triangular operand that is not actually
/// triangular makes the structured and GEMM-based variants of one expression
/// diverge. The measured executor asserts this invariant on its triangular
/// operands in debug builds (it is O(n²), so the release timing path skips
/// it), and the triangular-generator tests validate against it.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input.
pub fn is_triangular(a: &Matrix, uplo: Uplo) -> Result<bool> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    for j in 0..n {
        for i in 0..n {
            if !uplo.contains(i, j) && a[(i, j)] != 0.0 {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Whether a square matrix is symmetric positive definite: numerically
/// symmetric within `tol` and admitting a Cholesky factorisation (every pivot
/// of the unblocked factorisation strictly positive).
///
/// This is a *validation* routine — `O(n³)`, scalar, reference-grade — used
/// by tests and by debug assertions in the executors; it is the ground truth
/// the blocked POTRF kernel in `lamb-kernels` is checked against. Operands
/// declared `S[spd]` at the expression level must satisfy it, or the
/// Cholesky-based and inverse-free algorithm variants of one expression
/// diverge (or fail outright with a non-positive pivot).
///
/// The pivot recurrence below must stay in lockstep with the kernel crate's
/// `potrf` diagonal-block factor (this crate sits *below* `lamb-kernels` in
/// the dependency order, so it cannot call `potrf_naive` and carries its own
/// copy): in particular, both reject NaN pivots.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input.
pub fn is_spd(a: &Matrix, tol: f64) -> Result<bool> {
    if !is_symmetric(a, tol)? {
        return Ok(false);
    }
    // Unblocked lower Cholesky on a scratch copy; any non-positive pivot
    // certifies indefiniteness.
    let n = a.rows();
    let mut l = a.clone();
    for j in 0..n {
        let mut d = l[(j, j)];
        for p in 0..j {
            d -= l[(j, p)] * l[(j, p)];
        }
        // The NaN check matches the blocked kernel: a NaN pivot (e.g. a
        // poisoned diagonal, which the off-diagonal symmetry scan above
        // never inspects) is not positive definite.
        if d <= 0.0 || d.is_nan() {
            return Ok(false);
        }
        let d = d.sqrt();
        l[(j, j)] = d;
        for i in (j + 1)..n {
            let mut s = l[(i, j)];
            for p in 0..j {
                s -= l[(i, p)] * l[(j, p)];
            }
            l[(i, j)] = s / d;
        }
    }
    Ok(true)
}

/// `b := alpha * a + b` for matrices of identical shape.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the shapes differ.
pub fn axpy(alpha: f64, a: &Matrix, b: &mut Matrix) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch {
            op: "axpy",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (y, x) in b.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *y += alpha * x;
    }
    Ok(())
}

/// Scale every element of `a` by `alpha` in place.
pub fn scale(alpha: f64, a: &mut Matrix) {
    for x in a.as_mut_slice() {
        *x *= alpha;
    }
}

/// Build a full symmetric matrix from the `uplo` triangle of `a`, zeroing
/// nothing: the missing triangle is reconstructed by mirroring.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input.
pub fn full_from_triangle(a: &Matrix, uplo: Uplo) -> Result<Matrix> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    Ok(Matrix::from_fn(n, n, |i, j| {
        if uplo.contains(i, j) {
            a[(i, j)]
        } else {
            a[(j, i)]
        }
    }))
}

/// Zero out the triangle of `a` *not* selected by `uplo` (strictly: the
/// off-diagonal part of the opposite triangle). Useful for testing kernels
/// that promise not to touch the unreferenced triangle.
///
/// # Errors
///
/// Returns [`MatrixError::NotSquare`] for rectangular input.
pub fn zero_opposite_triangle(a: &mut Matrix, uplo: Uplo) -> Result<()> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    for j in 0..n {
        for i in 0..n {
            if i != j && !uplo.contains(i, j) {
                a[(i, j)] = 0.0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(3, 3, |i, j| (i as f64) - 2.0 * (j as f64))
    }

    #[test]
    fn max_abs_diff_of_identical_is_zero() {
        let a = sample();
        assert_eq!(max_abs_diff(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_single_change() {
        let a = sample();
        let mut b = a.clone();
        b[(2, 1)] += 0.5;
        assert!((max_abs_diff(&a, &b).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(max_abs_diff(&a, &b).is_err());
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        let a = Matrix::filled(2, 2, 1.0e12);
        let mut b = a.clone();
        b[(0, 0)] += 1.0; // relative error 1e-12
        assert!(approx_eq(&a, &b, 1e-10).unwrap());
        assert!(!approx_eq(&a, &b, 1e-14).unwrap());
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let a = Matrix::from_rows(2, 2, &[3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((frobenius_norm(&a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let a = Matrix::from_rows(2, 2, &[1.0, -7.0, 3.0, 2.0]).unwrap();
        assert_eq!(max_abs(&a), 7.0);
    }

    #[test]
    fn is_symmetric_detects_both_cases() {
        let mut a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert!(is_symmetric(&a, 1e-12).unwrap());
        a[(0, 2)] += 1.0;
        assert!(!is_symmetric(&a, 1e-12).unwrap());
    }

    #[test]
    fn is_symmetric_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(is_symmetric(&a, 1e-12).is_err());
    }

    #[test]
    fn is_spd_detects_definiteness_and_rejects_rectangular() {
        assert!(is_spd(&Matrix::identity(5), 1e-12).unwrap());
        // Asymmetric and indefinite matrices both fail.
        let mut asym = Matrix::identity(3);
        asym[(0, 2)] = 0.5;
        assert!(!is_spd(&asym, 1e-12).unwrap());
        let mut indef = Matrix::identity(3);
        indef[(1, 1)] = -1.0;
        assert!(!is_spd(&indef, 1e-12).unwrap());
        assert!(is_spd(&Matrix::zeros(2, 3), 1e-12).is_err());
    }

    #[test]
    fn is_spd_rejects_nan_poisoned_matrices_like_the_kernel() {
        // A NaN on the diagonal is invisible to the off-diagonal symmetry
        // scan; the pivot check must still reject it, exactly as the blocked
        // POTRF kernel does.
        for idx in [0usize, 2] {
            let mut a = Matrix::identity(4);
            a[(idx, idx)] = f64::NAN;
            assert!(!is_spd(&a, 1e-12).unwrap(), "NaN pivot at {idx}");
        }
    }

    #[test]
    fn is_triangular_detects_structure() {
        let mut a = Matrix::from_fn(3, 3, |i, j| if i >= j { 1.0 } else { 0.0 });
        assert!(is_triangular(&a, Uplo::Lower).unwrap());
        assert!(!is_triangular(&a, Uplo::Upper).unwrap());
        a[(0, 2)] = 0.5;
        assert!(!is_triangular(&a, Uplo::Lower).unwrap());
        assert!(is_triangular(&Matrix::zeros(2, 3), Uplo::Lower).is_err());
        // The diagonal belongs to both triangles.
        let d = Matrix::identity(4);
        assert!(is_triangular(&d, Uplo::Lower).unwrap());
        assert!(is_triangular(&d, Uplo::Upper).unwrap());
    }

    #[test]
    fn axpy_accumulates() {
        let a = Matrix::filled(2, 2, 2.0);
        let mut b = Matrix::filled(2, 2, 1.0);
        axpy(3.0, &a, &mut b).unwrap();
        assert!(b.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn scale_multiplies_every_element() {
        let mut a = Matrix::filled(2, 3, 2.0);
        scale(-0.5, &mut a);
        assert!(a.as_slice().iter().all(|&x| x == -1.0));
    }

    #[test]
    fn full_from_triangle_lower_mirrors() {
        let a = Matrix::from_fn(
            3,
            3,
            |i, j| if i >= j { (i * 3 + j + 1) as f64 } else { 99.0 },
        );
        let f = full_from_triangle(&a, Uplo::Lower).unwrap();
        assert!(is_symmetric(&f, 0.0).unwrap());
        assert_eq!(f[(2, 0)], a[(2, 0)]);
        assert_eq!(f[(0, 2)], a[(2, 0)]);
    }

    #[test]
    fn full_from_triangle_upper_mirrors() {
        let a = Matrix::from_fn(
            3,
            3,
            |i, j| if i <= j { (i + 3 * j + 1) as f64 } else { -5.0 },
        );
        let f = full_from_triangle(&a, Uplo::Upper).unwrap();
        assert!(is_symmetric(&f, 0.0).unwrap());
        assert_eq!(f[(0, 2)], a[(0, 2)]);
        assert_eq!(f[(2, 0)], a[(0, 2)]);
    }

    #[test]
    fn zero_opposite_triangle_keeps_selected_triangle() {
        let mut a = Matrix::filled(3, 3, 4.0);
        zero_opposite_triangle(&mut a, Uplo::Lower).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i >= j { 4.0 } else { 0.0 };
                assert_eq!(a[(i, j)], expected);
            }
        }
    }
}
