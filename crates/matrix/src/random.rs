//! Deterministic random matrix generation.
//!
//! The paper's operands are "dense and unstructured", so only their sizes (not
//! their elements) affect performance; nonetheless all executors fill operands
//! with reproducible pseudo-random values so that numerical validation across
//! algorithm variants is meaningful.

use crate::dense::Matrix;
use crate::types::Uplo;
use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fill an existing matrix with uniform values in `[-1, 1)`.
pub fn fill_uniform<R: Rng + ?Sized>(m: &mut Matrix, rng: &mut R) {
    let dist = Uniform::new(-1.0f64, 1.0).expect("valid uniform range");
    for x in m.as_mut_slice() {
        *x = dist.sample(rng);
    }
}

/// Create a `rows x cols` matrix with uniform values in `[-1, 1)`.
#[must_use]
pub fn random_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    fill_uniform(&mut m, rng);
    m
}

/// Create a `rows x cols` matrix seeded deterministically: the same
/// `(rows, cols, seed)` triple always yields the same matrix.
#[must_use]
pub fn random_seeded(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ mix(rows as u64, cols as u64));
    random_uniform(rows, cols, &mut rng)
}

/// Create a random `n x n` triangular matrix: uniform values in `[-1, 1)` on
/// the `uplo` triangle, exact zeros elsewhere, and a diagonal shifted to
/// `±(2 + |value|)` so the matrix is strictly diagonally dominant within its
/// triangle. Dominance keeps triangular solves (`op(L)⁻¹·B`) well conditioned,
/// which is what lets TRSM-based algorithm variants be compared numerically
/// against their references at `1e-10`-level tolerances.
///
/// The same `(n, uplo, seed)` triple always yields the same matrix, so two
/// algorithms of the same expression see identical triangular operands.
#[must_use]
pub fn random_triangular(n: usize, uplo: Uplo, seed: u64) -> Matrix {
    let dense = random_seeded(n, n, seed);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            let v = dense[(i, j)];
            v.signum() * (2.0 + v.abs())
        } else if uplo.contains(i, j) {
            dense[(i, j)]
        } else {
            0.0
        }
    })
}

/// Create a random symmetric positive-definite `n x n` matrix: exactly
/// symmetric off-diagonal values in `(-1, 1)` with the diagonal lifted to
/// `n + 1`, which makes the matrix strictly diagonally dominant with a
/// positive diagonal — a sufficient condition for positive definiteness.
/// Dominance keeps the Cholesky factorisation and the subsequent triangular
/// solves well conditioned, which is what lets POTRF-based algorithm variants
/// be compared numerically against naive references at `1e-10`-level
/// tolerances.
///
/// The same `(n, seed)` pair always yields the same matrix, so two algorithms
/// of the same expression see identical SPD operands.
#[must_use]
pub fn random_spd(n: usize, seed: u64) -> Matrix {
    let dense = random_seeded(n, n, seed);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64 + 1.0
        } else {
            // Exact symmetry: both (i, j) and (j, i) read the same pair.
            0.5 * (dense[(i, j)] + dense[(j, i)])
        }
    })
}

/// Create a random symmetric `n x n` matrix (A + Aᵀ scaled to stay in range).
#[must_use]
pub fn random_symmetric<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    let a = random_uniform(n, n, rng);
    Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

fn mix(a: u64, b: u64) -> u64 {
    // SplitMix64-style mixing so that different shapes decorrelate.
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::is_symmetric;

    #[test]
    fn random_seeded_is_deterministic() {
        let a = random_seeded(8, 5, 42);
        let b = random_seeded(8, 5, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn random_seeded_depends_on_seed() {
        let a = random_seeded(8, 5, 1);
        let b = random_seeded(8, 5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn random_seeded_depends_on_shape() {
        let a = random_seeded(4, 4, 7);
        let b = random_seeded(2, 8, 7);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn values_are_in_range() {
        let a = random_seeded(30, 30, 3);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn values_are_not_constant() {
        let a = random_seeded(10, 10, 9);
        let first = a.as_slice()[0];
        assert!(a.as_slice().iter().any(|&x| x != first));
    }

    #[test]
    fn random_triangular_is_triangular_and_nonsingular() {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            let t = random_triangular(9, uplo, 17);
            assert!(crate::ops::is_triangular(&t, uplo).unwrap());
            for i in 0..9 {
                assert!(t[(i, i)].abs() >= 2.0, "diagonal must dominate");
            }
            // Deterministic per (n, uplo, seed).
            assert_eq!(t, random_triangular(9, uplo, 17));
            assert_ne!(t, random_triangular(9, uplo, 18));
        }
    }

    #[test]
    fn random_spd_is_symmetric_positive_definite_and_deterministic() {
        let s = random_spd(11, 3);
        assert!(crate::ops::is_symmetric(&s, 0.0).unwrap(), "exact symmetry");
        assert!(crate::ops::is_spd(&s, 1e-12).unwrap());
        assert_eq!(s, random_spd(11, 3));
        assert_ne!(s, random_spd(11, 4));
        // Degenerate orders are well defined.
        assert!(crate::ops::is_spd(&random_spd(0, 1), 1e-12).unwrap());
        assert!(crate::ops::is_spd(&random_spd(1, 1), 1e-12).unwrap());
    }

    #[test]
    fn random_symmetric_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = random_symmetric(12, &mut rng);
        assert!(is_symmetric(&s, 1e-15).unwrap());
    }

    #[test]
    fn fill_uniform_overwrites_all_elements() {
        let mut m = Matrix::filled(6, 6, 123.0);
        let mut rng = StdRng::seed_from_u64(5);
        fill_uniform(&mut m, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x != 123.0));
    }
}
