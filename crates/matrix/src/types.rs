//! Small BLAS-style enumerations shared between the matrix and kernel crates.

/// Which triangle of a symmetric matrix is stored / referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Uplo {
    /// The lower triangle (including the diagonal).
    Lower,
    /// The upper triangle (including the diagonal).
    Upper,
}

impl Uplo {
    /// The opposite triangle.
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Uplo::Lower => Uplo::Upper,
            Uplo::Upper => Uplo::Lower,
        }
    }

    /// Whether element `(i, j)` belongs to this triangle (diagonal included).
    #[must_use]
    pub fn contains(self, i: usize, j: usize) -> bool {
        match self {
            Uplo::Lower => i >= j,
            Uplo::Upper => i <= j,
        }
    }

    /// BLAS-style single character tag (`'L'` / `'U'`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            Uplo::Lower => 'L',
            Uplo::Upper => 'U',
        }
    }

    /// The triangle this triangle becomes under a transposition: `op(L)` of
    /// a stored-lower `L` with `trans = T` effectively occupies the upper
    /// triangle. This is the single definition every kernel and the
    /// enumerator share for "which triangle does `op(L)` live in".
    #[must_use]
    pub fn under(self, trans: Trans) -> Uplo {
        match trans {
            Trans::No => self,
            Trans::Yes => self.flip(),
        }
    }
}

/// Known structure of a matrix operand, as declared at the expression level
/// and threaded through planning, execution and calibration.
///
/// Structure is what unlocks structured kernels: a [`Structure::Triangular`]
/// operand can multiply through TRMM and (inverse-marked) solve through TRSM,
/// while a [`Structure::Spd`] operand is symmetric (so it can multiply
/// through SYMM) and positive definite (so its inverse is realisable by a
/// Cholesky factorisation, POTRF, followed by two triangular solves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// A general dense matrix with no declared structure.
    General,
    /// A triangular matrix storing the given triangle; the opposite triangle
    /// is structurally zero. Necessarily square.
    Triangular(Uplo),
    /// A symmetric positive-definite matrix, stored in full (both triangles
    /// explicit, exactly symmetric). Necessarily square.
    Spd,
}

impl Structure {
    /// The stored triangle when the structure is triangular.
    #[must_use]
    pub fn triangle(self) -> Option<Uplo> {
        match self {
            Structure::Triangular(uplo) => Some(uplo),
            _ => None,
        }
    }

    /// Whether the structure is symmetric positive definite.
    #[must_use]
    pub fn is_spd(self) -> bool {
        matches!(self, Structure::Spd)
    }

    /// Whether the structure forces the operand to be square.
    #[must_use]
    pub fn is_square(self) -> bool {
        !matches!(self, Structure::General)
    }

    /// The structure of the transposed operand: transposition flips a
    /// triangle and preserves both generality and (by symmetry) SPD-ness.
    #[must_use]
    pub fn under(self, trans: Trans) -> Structure {
        match self {
            Structure::Triangular(uplo) => Structure::Triangular(uplo.under(trans)),
            other => other,
        }
    }
}

/// Whether an operand is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// The opposite setting.
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }

    /// BLAS-style single character tag (`'N'` / `'T'`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            Trans::No => 'N',
            Trans::Yes => 'T',
        }
    }

    /// Apply the transposition to a `(rows, cols)` shape.
    #[must_use]
    pub fn apply(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Trans::No => shape,
            Trans::Yes => (shape.1, shape.0),
        }
    }
}

/// Which side a symmetric operand multiplies from in SYMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// `C := A * B` with `A` symmetric.
    Left,
    /// `C := B * A` with `A` symmetric.
    Right,
}

impl Side {
    /// BLAS-style single character tag (`'L'` / `'R'`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            Side::Left => 'L',
            Side::Right => 'R',
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplo_flip_is_involution() {
        assert_eq!(Uplo::Lower.flip(), Uplo::Upper);
        assert_eq!(Uplo::Upper.flip(), Uplo::Lower);
        assert_eq!(Uplo::Lower.flip().flip(), Uplo::Lower);
    }

    #[test]
    fn uplo_contains_diagonal() {
        for u in [Uplo::Lower, Uplo::Upper] {
            for d in 0..5 {
                assert!(u.contains(d, d));
            }
        }
    }

    #[test]
    fn uplo_contains_off_diagonal() {
        assert!(Uplo::Lower.contains(3, 1));
        assert!(!Uplo::Lower.contains(1, 3));
        assert!(Uplo::Upper.contains(1, 3));
        assert!(!Uplo::Upper.contains(3, 1));
    }

    #[test]
    fn uplo_partition_is_exact() {
        // Every off-diagonal element belongs to exactly one triangle.
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert_ne!(Uplo::Lower.contains(i, j), Uplo::Upper.contains(i, j));
                }
            }
        }
    }

    #[test]
    fn uplo_under_transposition() {
        assert_eq!(Uplo::Lower.under(Trans::No), Uplo::Lower);
        assert_eq!(Uplo::Lower.under(Trans::Yes), Uplo::Upper);
        assert_eq!(Uplo::Upper.under(Trans::Yes), Uplo::Lower);
    }

    #[test]
    fn trans_flip_and_apply() {
        assert_eq!(Trans::No.flip(), Trans::Yes);
        assert_eq!(Trans::Yes.apply((2, 7)), (7, 2));
        assert_eq!(Trans::No.apply((2, 7)), (2, 7));
        assert_eq!(Trans::Yes.flip().apply((2, 7)), (2, 7));
    }

    #[test]
    fn structure_helpers_cover_all_variants() {
        assert_eq!(Structure::General.triangle(), None);
        assert_eq!(
            Structure::Triangular(Uplo::Lower).triangle(),
            Some(Uplo::Lower)
        );
        assert_eq!(Structure::Spd.triangle(), None);
        assert!(Structure::Spd.is_spd());
        assert!(!Structure::General.is_spd());
        assert!(Structure::Spd.is_square());
        assert!(Structure::Triangular(Uplo::Upper).is_square());
        assert!(!Structure::General.is_square());
        // Transposition flips a triangle and fixes everything else.
        assert_eq!(
            Structure::Triangular(Uplo::Lower).under(Trans::Yes),
            Structure::Triangular(Uplo::Upper)
        );
        assert_eq!(Structure::Spd.under(Trans::Yes), Structure::Spd);
        assert_eq!(Structure::General.under(Trans::Yes), Structure::General);
    }

    #[test]
    fn tags_match_blas_convention() {
        assert_eq!(Uplo::Lower.tag(), 'L');
        assert_eq!(Uplo::Upper.tag(), 'U');
        assert_eq!(Trans::No.tag(), 'N');
        assert_eq!(Trans::Yes.tag(), 'T');
        assert_eq!(Side::Left.tag(), 'L');
        assert_eq!(Side::Right.tag(), 'R');
    }
}
