//! Borrowed matrix windows with an explicit leading dimension.
//!
//! Views are the interface between the matrix substrate and the BLAS-3
//! kernels: a kernel only ever sees a `(&[f64], rows, cols, ld)` quadruple,
//! exactly like a FORTRAN BLAS routine sees `(A, M, N, LDA)`.

use crate::error::{MatrixError, Result};

/// Minimum buffer length required for a `rows x cols` window with leading
/// dimension `ld`.
fn required_len(rows: usize, cols: usize, ld: usize) -> usize {
    if rows == 0 || cols == 0 {
        0
    } else {
        (cols - 1) * ld + rows
    }
}

/// An immutable, column-major matrix window.
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a> MatrixView<'a> {
    /// Create a view over `data` interpreted as a `rows x cols` column-major
    /// window with leading dimension `ld`.
    ///
    /// # Errors
    ///
    /// Returns an error if `ld < rows` or the buffer is too short.
    pub fn new(data: &'a [f64], rows: usize, cols: usize, ld: usize) -> Result<Self> {
        if ld < rows {
            return Err(MatrixError::InvalidLeadingDimension { ld, rows });
        }
        let need = required_len(rows, cols, ld);
        if data.len() < need {
            return Err(MatrixError::DataLengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(MatrixView {
            data,
            rows,
            cols,
            ld,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride).
    #[must_use]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// The raw backing slice.
    #[must_use]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "view index out of bounds");
        self.data[i + j * self.ld]
    }

    /// Column `j` as a contiguous slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> &'a [f64] {
        assert!(j < self.cols, "view column out of bounds");
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Sub-window of size `nr x nc` starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit.
    #[must_use]
    pub fn subview(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "subview out of bounds"
        );
        let start = r0 + c0 * self.ld;
        let end = start + required_len(nr, nc, self.ld);
        MatrixView {
            data: &self.data[start..end],
            rows: nr,
            cols: nc,
            ld: self.ld,
        }
    }

    /// Copy the window into an owned column-major `Vec` with `ld == rows`.
    #[must_use]
    pub fn to_compact_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.cols {
            out.extend_from_slice(self.col(j));
        }
        out
    }
}

/// A mutable, column-major matrix window.
#[derive(Debug)]
pub struct MatrixViewMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a> MatrixViewMut<'a> {
    /// Create a mutable view; see [`MatrixView::new`] for the shape rules.
    ///
    /// # Errors
    ///
    /// Returns an error if `ld < rows` or the buffer is too short.
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize, ld: usize) -> Result<Self> {
        if ld < rows {
            return Err(MatrixError::InvalidLeadingDimension { ld, rows });
        }
        let need = required_len(rows, cols, ld);
        if data.len() < need {
            return Err(MatrixError::DataLengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(MatrixViewMut {
            data,
            rows,
            cols,
            ld,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride).
    #[must_use]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// The raw backing slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        self.data
    }

    /// The raw backing slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "view index out of bounds");
        self.data[i + j * self.ld]
    }

    /// Mutable reference to element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "view index out of bounds");
        &mut self.data[i + j * self.ld]
    }

    /// Column `j`, mutably, as a contiguous slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "view column out of bounds");
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Reborrow as an immutable view.
    #[must_use]
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Fill the whole window with `value` (respecting the leading dimension).
    pub fn fill(&mut self, value: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(value);
        }
    }

    /// Mutable sub-window of size `nr x nc` starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit.
    pub fn subview_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "subview out of bounds"
        );
        let start = r0 + c0 * self.ld;
        let end = start + required_len(nr, nc, self.ld);
        MatrixViewMut {
            data: &mut self.data[start..end],
            rows: nr,
            cols: nc,
            ld: self.ld,
        }
    }

    /// Consume the view and split it into disjoint column panels of width
    /// `panel_width` (the final panel may be narrower). Useful for handing
    /// disjoint output panels to parallel workers.
    ///
    /// # Panics
    ///
    /// Panics if `panel_width == 0` and the view has at least one column.
    #[must_use]
    pub fn into_col_panels(self, panel_width: usize) -> Vec<MatrixViewMut<'a>> {
        if self.cols == 0 {
            return Vec::new();
        }
        assert!(panel_width > 0, "panel width must be positive");
        let mut panels = Vec::with_capacity(self.cols.div_ceil(panel_width));
        let mut rest = self;
        while rest.cols() > panel_width {
            let (head, tail) = rest.split_at_col_mut(panel_width);
            panels.push(head);
            rest = tail;
        }
        panels.push(rest);
        panels
    }

    /// Split the view into two disjoint mutable views at column `j`:
    /// the left view holds columns `[0, j)`, the right view columns `[j, cols)`.
    ///
    /// The split is safe because column panels occupy disjoint ranges of the
    /// backing buffer whenever `ld >= rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j > cols`.
    pub fn split_at_col_mut(self, j: usize) -> (MatrixViewMut<'a>, MatrixViewMut<'a>) {
        assert!(j <= self.cols, "split column out of bounds");
        let left_cols = j;
        let right_cols = self.cols - j;
        let split_point = j * self.ld;
        // When the right side is empty the split point may exceed the buffer
        // (the buffer only needs to cover the last column's rows), so clamp.
        let split_point = split_point.min(self.data.len());
        let (left, right) = self.data.split_at_mut(split_point);
        let left_view = MatrixViewMut {
            data: left,
            rows: self.rows,
            cols: left_cols,
            ld: self.ld,
        };
        let right_view = MatrixViewMut {
            data: right,
            rows: self.rows,
            cols: right_cols,
            ld: self.ld,
        };
        (left_view, right_view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn view_rejects_bad_ld() {
        let buf = vec![0.0; 10];
        assert!(MatrixView::new(&buf, 5, 2, 4).is_err());
        assert!(MatrixView::new(&buf, 5, 2, 5).is_ok());
    }

    #[test]
    fn view_rejects_short_buffer() {
        let buf = vec![0.0; 9];
        assert!(MatrixView::new(&buf, 5, 2, 5).is_err());
    }

    #[test]
    fn view_with_larger_ld_reads_strided_columns() {
        // 3x2 window inside a buffer with ld = 4.
        let buf: Vec<f64> = (0..8).map(|x| x as f64).collect();
        let v = MatrixView::new(&buf, 3, 2, 4).unwrap();
        assert_eq!(v.at(0, 0), 0.0);
        assert_eq!(v.at(2, 0), 2.0);
        assert_eq!(v.at(0, 1), 4.0);
        assert_eq!(v.at(2, 1), 6.0);
        assert_eq!(v.col(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn empty_view_is_allowed() {
        let buf: Vec<f64> = vec![];
        let v = MatrixView::new(&buf, 0, 3, 0).unwrap();
        assert_eq!(v.rows(), 0);
        assert_eq!(v.cols(), 3);
        let v2 = MatrixView::new(&buf, 4, 0, 4).unwrap();
        assert_eq!(v2.cols(), 0);
    }

    #[test]
    fn subview_of_view() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 10 + j) as f64);
        let v = m.view();
        let s = v.subview(2, 1, 3, 2);
        assert_eq!(s.at(0, 0), m[(2, 1)]);
        assert_eq!(s.at(2, 1), m[(4, 2)]);
        assert_eq!(s.ld(), 5);
    }

    #[test]
    fn to_compact_vec_drops_the_gap() {
        let buf: Vec<f64> = (0..8).map(|x| x as f64).collect();
        let v = MatrixView::new(&buf, 3, 2, 4).unwrap();
        assert_eq!(v.to_compact_vec(), vec![0.0, 1.0, 2.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn view_mut_write_through() {
        let mut m = Matrix::zeros(3, 3);
        {
            let mut v = m.view_mut();
            *v.at_mut(1, 2) = 9.0;
            v.col_mut(0)[2] = 4.0;
        }
        assert_eq!(m[(1, 2)], 9.0);
        assert_eq!(m[(2, 0)], 4.0);
    }

    #[test]
    fn view_mut_fill_respects_ld() {
        // A 2x2 window with ld 3 must not touch the third row of each column.
        let mut buf = vec![0.0; 6];
        {
            let mut v = MatrixViewMut::new(&mut buf[..5], 2, 2, 3).unwrap();
            v.fill(1.0);
        }
        assert_eq!(buf, vec![1.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn split_at_col_mut_partitions_columns() {
        let mut m = Matrix::zeros(2, 4);
        {
            let v = m.view_mut();
            let (mut left, mut right) = v.split_at_col_mut(1);
            assert_eq!(left.cols(), 1);
            assert_eq!(right.cols(), 3);
            left.fill(1.0);
            right.fill(2.0);
        }
        assert_eq!(m.col(0), &[1.0, 1.0]);
        for j in 1..4 {
            assert_eq!(m.col(j), &[2.0, 2.0]);
        }
    }

    #[test]
    fn split_at_col_mut_edges() {
        let mut m = Matrix::zeros(2, 3);
        {
            let v = m.view_mut();
            let (left, right) = v.split_at_col_mut(0);
            assert_eq!(left.cols(), 0);
            assert_eq!(right.cols(), 3);
        }
        {
            let v = m.view_mut();
            let (left, right) = v.split_at_col_mut(3);
            assert_eq!(left.cols(), 3);
            assert_eq!(right.cols(), 0);
        }
    }

    #[test]
    fn subview_mut_writes_through_window() {
        let mut m = Matrix::zeros(4, 4);
        {
            let mut v = m.view_mut();
            let mut s = v.subview_mut(1, 1, 2, 2);
            s.fill(3.0);
        }
        let mut count = 0;
        for i in 0..4 {
            for j in 0..4 {
                if (1..3).contains(&i) && (1..3).contains(&j) {
                    assert_eq!(m[(i, j)], 3.0);
                    count += 1;
                } else {
                    assert_eq!(m[(i, j)], 0.0);
                }
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn into_col_panels_covers_all_columns() {
        let mut m = Matrix::zeros(3, 7);
        {
            let panels = m.view_mut().into_col_panels(3);
            assert_eq!(panels.len(), 3);
            assert_eq!(panels[0].cols(), 3);
            assert_eq!(panels[1].cols(), 3);
            assert_eq!(panels[2].cols(), 1);
            for (idx, mut p) in panels.into_iter().enumerate() {
                p.fill((idx + 1) as f64);
            }
        }
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m[(0, 3)], 2.0);
        assert_eq!(m[(1, 5)], 2.0);
        assert_eq!(m[(2, 6)], 3.0);
    }

    #[test]
    fn into_col_panels_empty_view() {
        let mut buf: Vec<f64> = vec![];
        let v = MatrixViewMut::new(&mut buf, 4, 0, 4).unwrap();
        assert!(v.into_col_panels(2).is_empty());
    }

    #[test]
    fn as_view_round_trip() {
        let mut m = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let vm = m.view_mut();
        let v = vm.as_view();
        assert_eq!(v.at(2, 1), 3.0);
    }
}
