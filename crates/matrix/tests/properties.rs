//! Property-based tests for the matrix substrate.

use lamb_matrix::ops::{approx_eq, frobenius_norm, full_from_triangle, is_symmetric, max_abs_diff};
use lamb_matrix::random::random_seeded;
use lamb_matrix::{Matrix, Uplo};
use proptest::prelude::*;

fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..24, 1usize..24)
}

proptest! {
    #[test]
    fn transpose_is_involution((r, c) in shape(), seed in 0u64..1000) {
        let a = random_seeded(r, c, seed);
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn transpose_preserves_frobenius_norm((r, c) in shape(), seed in 0u64..1000) {
        let a = random_seeded(r, c, seed);
        let t = a.transposed();
        prop_assert!((frobenius_norm(&a) - frobenius_norm(&t)).abs() < 1e-12);
    }

    #[test]
    fn symmetrize_produces_symmetric(n in 1usize..24, seed in 0u64..1000) {
        let mut a = random_seeded(n, n, seed);
        a.symmetrize_from(Uplo::Lower).unwrap();
        prop_assert!(is_symmetric(&a, 0.0).unwrap());
        let mut b = random_seeded(n, n, seed.wrapping_add(1));
        b.symmetrize_from(Uplo::Upper).unwrap();
        prop_assert!(is_symmetric(&b, 0.0).unwrap());
    }

    #[test]
    fn full_from_triangle_agrees_with_symmetrize(n in 1usize..24, seed in 0u64..1000) {
        let a = random_seeded(n, n, seed);
        let f_lower = full_from_triangle(&a, Uplo::Lower).unwrap();
        let mut b = a.clone();
        b.symmetrize_from(Uplo::Lower).unwrap();
        prop_assert_eq!(f_lower, b);
    }

    #[test]
    fn max_abs_diff_is_a_metric((r, c) in shape(), s1 in 0u64..500, s2 in 0u64..500) {
        let a = random_seeded(r, c, s1);
        let b = random_seeded(r, c, s2);
        let dab = max_abs_diff(&a, &b).unwrap();
        let dba = max_abs_diff(&b, &a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-15);
        prop_assert_eq!(max_abs_diff(&a, &a).unwrap(), 0.0);
        if s1 == s2 {
            prop_assert_eq!(dab, 0.0);
        }
    }

    #[test]
    fn approx_eq_is_reflexive((r, c) in shape(), seed in 0u64..1000) {
        let a = random_seeded(r, c, seed);
        prop_assert!(approx_eq(&a, &a, 0.0).unwrap());
    }

    #[test]
    fn from_fn_and_index_agree((r, c) in shape()) {
        let a = Matrix::from_fn(r, c, |i, j| (i * 131 + j * 7) as f64);
        for i in 0..r {
            for j in 0..c {
                prop_assert_eq!(a[(i, j)], (i * 131 + j * 7) as f64);
            }
        }
    }

    #[test]
    fn subview_matches_elementwise((r, c) in (3usize..20, 3usize..20), seed in 0u64..100) {
        let a = random_seeded(r, c, seed);
        let nr = r / 2;
        let nc = c / 2;
        let v = a.subview(1, 1, nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                prop_assert_eq!(v.at(i, j), a[(i + 1, j + 1)]);
            }
        }
    }
}
