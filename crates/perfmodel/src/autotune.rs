//! Calibration-driven blocking autotuner: coordinate descent over
//! `(tile, mc, kc, nc, tri_block, parallel_flop_threshold)`.
//!
//! The paper's selection argument is only as sharp as the kernel roofline it
//! measures against, and the roofline depends on blocking parameters that are
//! machine facts, not constants. `lamb calibrate --autotune` runs the descent
//! in this module against *measured* GEMM/SYRK/TRSM timings, records the
//! winning [`BlockConfig`] (plus the GFLOP/s it achieved) in the calibration
//! store as the v5 `tuned` section, and every warm start — `Planner`,
//! `BatchPlanner`, [`crate::MeasuredExecutor`] builders in the CLI — runs its
//! kernels under the tuned configuration from then on.
//!
//! The search itself is deliberately separable from the clock: the descent
//! takes its objective as a closure `FnMut(&BlockConfig) -> f64` (seconds;
//! lower is better). Production passes [`measured_score`]; tests pass a fixed
//! timing table, which makes the tuner's determinism a testable property.

use crate::store::TunedConfig;
use lamb_kernels::{gemm_new, syrk_new, trsm_new, BlockConfig, TileVariant};
use lamb_matrix::random::{random_seeded, random_triangular};
use lamb_matrix::{Side, Trans, Uplo};
use std::collections::HashMap;
use std::time::Instant;

/// Candidate values per coordinate axis. The grids are small on purpose:
/// coordinate descent revisits every axis each pass, so a handful of
/// well-spread candidates per axis explores the cross products that matter
/// without the full grid's combinatorial cost.
pub mod grid {
    /// Cache-block rows of `C` per L2-resident block.
    pub const MC: [usize; 5] = [64, 96, 128, 192, 256];
    /// Inner (`k`) depth per cache block.
    pub const KC: [usize; 5] = [128, 192, 256, 384, 512];
    /// Output columns per outermost block.
    pub const NC: [usize; 4] = [512, 1024, 2048, 4096];
    /// Diagonal-block order of the triangular recurrences.
    pub const TRI_BLOCK: [usize; 5] = [32, 48, 64, 96, 128];
    /// Minimum useful FLOPs before forking to Rayon.
    pub const PARALLEL_FLOP_THRESHOLD: [u64; 3] =
        [2 * 32 * 32 * 32, 2 * 64 * 64 * 64, 2 * 128 * 128 * 128];
}

/// Number of coordinate axes the descent sweeps.
pub const NUM_AXES: usize = 6;

/// How a finished descent got to its answer — the winning configuration plus
/// the bookkeeping the CLI reports.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The coordinate-descent winner.
    pub config: BlockConfig,
    /// Objective value (seconds, lower is better) of the winner.
    pub score: f64,
    /// Objective value of the starting configuration.
    pub baseline_score: f64,
    /// Distinct configurations evaluated (memoised; re-visits are free).
    pub evaluations: usize,
    /// Full passes over the axes until the descent converged.
    pub passes: usize,
}

/// All candidate configurations along one axis, holding every other
/// coordinate of `base` fixed. Axis order is the descent's sweep order:
/// register tile first (it changes the meaning of every other block), then
/// the cache blocks outermost-in, then the triangular block, then the
/// parallel cutoff.
#[must_use]
pub fn axis_candidates(axis: usize, base: &BlockConfig) -> Vec<BlockConfig> {
    let with = |f: &dyn Fn(&mut BlockConfig)| {
        let mut cfg = base.clone();
        f(&mut cfg);
        cfg
    };
    match axis {
        0 => TileVariant::ALL
            .iter()
            .map(|&tile| with(&|c| c.tile = tile))
            .collect(),
        1 => grid::MC.iter().map(|&mc| with(&|c| c.mc = mc)).collect(),
        2 => grid::KC.iter().map(|&kc| with(&|c| c.kc = kc)).collect(),
        3 => grid::NC.iter().map(|&nc| with(&|c| c.nc = nc)).collect(),
        4 => grid::TRI_BLOCK
            .iter()
            .map(|&tb| with(&|c| c.tri_block = tb))
            .collect(),
        5 => grid::PARALLEL_FLOP_THRESHOLD
            .iter()
            .map(|&t| with(&|c| c.parallel_flop_threshold = t))
            .collect(),
        _ => Vec::new(),
    }
}

/// Coordinate descent from `base`: sweep each axis in order, adopting a
/// candidate only when it scores *strictly* better than the incumbent
/// (ties keep the current value, which makes the descent deterministic for
/// any deterministic objective), and stop after a full pass changes nothing
/// or `max_passes` passes have run. Scores are memoised by fingerprint, so
/// revisiting a configuration never re-measures it.
pub fn coordinate_descent(
    base: &BlockConfig,
    score: &mut dyn FnMut(&BlockConfig) -> f64,
    max_passes: usize,
) -> TuneOutcome {
    let mut cache: HashMap<String, f64> = HashMap::new();
    let mut evaluations = 0usize;
    let mut eval = |cfg: &BlockConfig, evaluations: &mut usize| -> f64 {
        *cache.entry(cfg.fingerprint()).or_insert_with(|| {
            *evaluations += 1;
            score(cfg)
        })
    };

    let mut current = base.clone();
    let baseline_score = eval(&current, &mut evaluations);
    let mut current_score = baseline_score;
    let mut passes = 0usize;
    for _ in 0..max_passes.max(1) {
        passes += 1;
        let before = current.fingerprint();
        for axis in 0..NUM_AXES {
            for candidate in axis_candidates(axis, &current) {
                let s = eval(&candidate, &mut evaluations);
                if s < current_score {
                    current = candidate;
                    current_score = s;
                }
            }
        }
        if current.fingerprint() == before {
            break;
        }
    }
    TuneOutcome {
        config: current,
        score: current_score,
        baseline_score,
        evaluations,
        passes,
    }
}

/// The measured objective: wall-clock seconds for one GEMM, one SYRK and one
/// TRSM of order `size` under `cfg` (best of `reps` repetitions each, so
/// scheduler noise inflates no candidate). Lower is better. The three-kernel
/// mix keeps the descent honest — `tri_block` only shows up in TRSM, and a
/// tile that wins GEMM but loses the triangular recurrences should not win
/// overall.
#[must_use]
pub fn measured_score(cfg: &BlockConfig, size: usize, reps: usize) -> f64 {
    let n = size.max(8);
    let a = random_seeded(n, n, 0xA110);
    let b = random_seeded(n, n, 0xB110);
    let l = random_triangular(n, Uplo::Lower, 0x7110);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let c = gemm_new(Trans::No, &a, Trans::No, &b, cfg).expect("square gemm");
        let s = syrk_new(Uplo::Lower, Trans::No, &a, cfg).expect("square syrk");
        let x = trsm_new(Side::Left, Uplo::Lower, Trans::No, &l, &b, cfg).expect("square trsm");
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box((c, s, x));
        best = best.min(dt);
    }
    best
}

/// Measure sustained GEMM GFLOP/s of order `size` under `cfg` (best of
/// `reps`): the headline number recorded next to the tuned configuration.
#[must_use]
pub fn measured_gemm_gflops(cfg: &BlockConfig, size: usize, reps: usize) -> f64 {
    let n = size.max(8);
    let a = random_seeded(n, n, 0xA110);
    let b = random_seeded(n, n, 0xB110);
    let flops = 2.0 * (n as f64).powi(3);
    let mut best = 0.0f64;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let c = gemm_new(Trans::No, &a, Trans::No, &b, cfg).expect("square gemm");
        let dt = start.elapsed().as_secs_f64();
        std::hint::black_box(c);
        best = best.max(flops / dt / 1e9);
    }
    best
}

/// Run the full measured autotune from `base` and package the winner as the
/// store's [`TunedConfig`]. `quick` trades fidelity for speed (smaller
/// operands, one repetition, one pass) and exists for CI smoke tests; the
/// full setting is what `lamb calibrate --autotune` runs.
#[must_use]
pub fn autotune_measured(base: &BlockConfig, quick: bool) -> (TuneOutcome, TunedConfig) {
    let (size, reps, passes) = if quick { (96, 1, 1) } else { (384, 2, 3) };
    let mut score = |cfg: &BlockConfig| measured_score(cfg, size, reps);
    let outcome = coordinate_descent(base, &mut score, passes);
    let gflops = measured_gemm_gflops(&outcome.config, size, reps.max(2));
    let tuned = TunedConfig {
        config: outcome.config.clone(),
        gflops,
    };
    (outcome, tuned)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic objective with a unique global minimum that
    /// coordinate descent can reach one axis at a time.
    fn table_score(cfg: &BlockConfig) -> f64 {
        let tile_cost = match cfg.tile {
            TileVariant::T8x8 => 0.0,
            TileVariant::T8x4 => 1.0,
            TileVariant::T4x8 => 2.0,
            TileVariant::T16x4 => 3.0,
            TileVariant::T8x12 => 4.0,
        };
        tile_cost
            + (cfg.mc as f64 - 192.0).abs() / 64.0
            + (cfg.kc as f64 - 384.0).abs() / 128.0
            + (cfg.nc as f64 - 2048.0).abs() / 1024.0
            + (cfg.tri_block as f64 - 96.0).abs() / 32.0
            + (cfg.parallel_flop_threshold as f64 - 524_288.0).abs() / 1e6
    }

    #[test]
    fn descent_finds_the_synthetic_optimum() {
        let mut score = |c: &BlockConfig| table_score(c);
        let outcome = coordinate_descent(&BlockConfig::default(), &mut score, 4);
        assert_eq!(outcome.config.tile, TileVariant::T8x8);
        assert_eq!(outcome.config.mc, 192);
        assert_eq!(outcome.config.kc, 384);
        assert_eq!(outcome.config.nc, 2048);
        assert_eq!(outcome.config.tri_block, 96);
        assert_eq!(outcome.config.parallel_flop_threshold, 2 * 64 * 64 * 64);
        assert!(outcome.score < outcome.baseline_score);
        assert!(outcome.passes >= 2, "needs a pass to confirm convergence");
    }

    #[test]
    fn descent_is_deterministic_for_a_fixed_timing_table() {
        // The satellite determinism requirement: same timing table, same
        // winner — run to run, bit for bit (fingerprints included).
        let run = || {
            let mut score = |c: &BlockConfig| table_score(c);
            coordinate_descent(&BlockConfig::default(), &mut score, 4)
        };
        let first = run();
        let second = run();
        assert_eq!(first.config, second.config);
        assert_eq!(first.config.fingerprint(), second.config.fingerprint());
        assert_eq!(first.score.to_bits(), second.score.to_bits());
        assert_eq!(first.evaluations, second.evaluations);
        assert_eq!(first.passes, second.passes);
    }

    #[test]
    fn descent_memoises_scores_by_fingerprint() {
        let mut calls = 0usize;
        let mut score = |c: &BlockConfig| {
            calls += 1;
            table_score(c)
        };
        let outcome = coordinate_descent(&BlockConfig::default(), &mut score, 4);
        assert_eq!(
            calls, outcome.evaluations,
            "every scorer call is a distinct configuration"
        );
        // Multiple passes revisit configurations; memoisation keeps the call
        // count well under passes * axis-grid size.
        let grid_total = TileVariant::ALL.len()
            + grid::MC.len()
            + grid::KC.len()
            + grid::NC.len()
            + grid::TRI_BLOCK.len()
            + grid::PARALLEL_FLOP_THRESHOLD.len();
        assert!(outcome.evaluations <= outcome.passes * grid_total + 1);
    }

    #[test]
    fn ties_keep_the_incumbent() {
        // A constant objective must return the base configuration untouched:
        // nothing is strictly better, so nothing is adopted.
        let mut score = |_: &BlockConfig| 1.0;
        let base = BlockConfig::default();
        let outcome = coordinate_descent(&base, &mut score, 4);
        assert_eq!(outcome.config, base);
        assert_eq!(outcome.passes, 1);
    }

    #[test]
    fn axis_candidates_cover_every_axis_and_respect_the_base() {
        let base = BlockConfig::default();
        for axis in 0..NUM_AXES {
            let candidates = axis_candidates(axis, &base);
            assert!(!candidates.is_empty(), "axis {axis}");
            for c in &candidates {
                // Only the axis under sweep differs from the base.
                let mut reverted = c.clone();
                match axis {
                    0 => reverted.tile = base.tile,
                    1 => reverted.mc = base.mc,
                    2 => reverted.kc = base.kc,
                    3 => reverted.nc = base.nc,
                    4 => reverted.tri_block = base.tri_block,
                    _ => reverted.parallel_flop_threshold = base.parallel_flop_threshold,
                }
                assert_eq!(&reverted, &base, "axis {axis}");
            }
        }
        assert!(axis_candidates(NUM_AXES, &base).is_empty());
    }

    #[test]
    fn measured_quick_autotune_produces_a_valid_tuned_config() {
        // A tiny end-to-end smoke with real timings: sizes kept minimal so
        // the test is fast; only structural properties are asserted
        // (wall-clock winners are machine-dependent by design).
        let mut score = |cfg: &BlockConfig| measured_score(cfg, 24, 1);
        let outcome = coordinate_descent(&BlockConfig::serial(), &mut score, 1);
        assert!(outcome.score.is_finite() && outcome.score > 0.0);
        let gflops = measured_gemm_gflops(&outcome.config, 24, 1);
        assert!(gflops.is_finite() && gflops > 0.0);
    }
}
