//! Kernel backends: interchangeable implementations of the kernel-call
//! vocabulary the planner can choose between *per call*.
//!
//! The paper's discriminant question — "which algorithm is fastest?" — has a
//! second axis in any real library: which *implementation* of each kernel
//! runs. A [`Backend`] binds a [`lamb_expr::KernelOp`] plus its input
//! matrices to one concrete implementation:
//!
//! * [`NativeBackend`] dispatches to the blocked, packed, Rayon-parallel
//!   `lamb-kernels` drivers — asymptotically fast, but every call pays
//!   packing and blocking overheads;
//! * [`ReferenceBackend`] runs straight-loop naive kernels for the BLAS-3
//!   multiplication family — no packing, no blocking, no parallel ramp-up,
//!   which makes it *faster* on sufficiently small operands and far slower on
//!   large ones.
//!
//! The two surfaces genuinely cross, so a plan over a mixed-size kernel-call
//! sequence can be time-optimal only by assigning *different* backends to
//! different calls — which is exactly what the measured-time selection
//! strategies do once the calibration store carries per-backend call tables
//! (format v6, see [`crate::store`]).
//!
//! Factorisations (POTRF/GETRF/QR), reflector application and the zero-FLOP
//! packed-factor movers have a single shared implementation: the reference
//! backend delegates them to the native one, so *every* backend supports the
//! full vocabulary and a `--backend` pin can execute any algorithm
//! end-to-end.

use lamb_expr::KernelOp;
use lamb_kernels::{gemm_naive, trmm_naive, trsm_naive, BlockConfig, Kernel};
use lamb_matrix::{Matrix, MatrixError, Result, Side, Trans, Uplo};

/// Name of the default blocked-driver backend.
pub const NATIVE_BACKEND_NAME: &str = "native";

/// Name of the naive straight-loop backend.
pub const REFERENCE_BACKEND_NAME: &str = "reference";

/// An interchangeable implementation of the kernel-call vocabulary.
///
/// Object safe: plans store `Arc<dyn Backend>` assignments per call, and the
/// measured executor runs whichever backend the plan chose.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Stable name of this backend — the key its calibration data is stored
    /// under (see [`crate::CalibrationStore::backend_tables_mut`]) and what
    /// `lamb select --backend <name>` pins.
    fn name(&self) -> &'static str;

    /// Whether this backend can execute the given operation. Honest by
    /// contract: `supports(op)` implies [`Backend::run_into`] succeeds on
    /// well-shaped operands.
    fn supports(&self, op: &KernelOp) -> bool;

    /// Execute `op` over `inputs` into `out` (already allocated at the op's
    /// output shape). Input order follows the kernel-call IR convention: the
    /// structured operand (triangle, symmetric operand, packed factor)
    /// first, then the rectangular operand.
    ///
    /// # Errors
    ///
    /// Propagates the underlying kernel's shape errors, TRSM's singularity
    /// error and POTRF's indefiniteness error.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is shorter than the operation's arity — a
    /// malformed kernel call, not a recoverable condition.
    fn run_into(
        &self,
        op: &KernelOp,
        inputs: &[&Matrix],
        out: &mut Matrix,
        cfg: &BlockConfig,
    ) -> Result<()>;
}

/// The blocked, packed, Rayon-parallel `lamb-kernels` drivers — the default
/// backend, and the one the store's top-level calibration tables describe.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend;

impl Backend for NativeBackend {
    fn name(&self) -> &'static str {
        NATIVE_BACKEND_NAME
    }

    fn supports(&self, _op: &KernelOp) -> bool {
        true
    }

    fn run_into(
        &self,
        op: &KernelOp,
        inputs: &[&Matrix],
        out: &mut Matrix,
        cfg: &BlockConfig,
    ) -> Result<()> {
        // The in-place triangle copy is the one op outside the Kernel
        // vocabulary: the output operand already holds the triangle.
        if let KernelOp::CopyTriangle { uplo, .. } = op {
            return out.symmetrize_from(*uplo);
        }
        let kernel = match *op {
            KernelOp::Gemm { transa, transb, .. } => Kernel::Gemm {
                transa,
                a: inputs[0],
                transb,
                b: inputs[1],
            },
            KernelOp::Syrk { uplo, trans, .. } => Kernel::Syrk {
                uplo,
                trans,
                a: inputs[0],
            },
            KernelOp::Symm { side, uplo, .. } => Kernel::Symm {
                side,
                uplo,
                a_sym: inputs[0],
                b: inputs[1],
            },
            KernelOp::Trmm {
                side, uplo, trans, ..
            } => Kernel::Trmm {
                side,
                uplo,
                trans,
                l: inputs[0],
                b: inputs[1],
            },
            KernelOp::Trsm {
                side, uplo, trans, ..
            } => Kernel::Trsm {
                side,
                uplo,
                trans,
                l: inputs[0],
                b: inputs[1],
            },
            KernelOp::Potrf { uplo, .. } => Kernel::Potrf { uplo, a: inputs[0] },
            KernelOp::Getrf { .. } => Kernel::Getrf { a: inputs[0] },
            KernelOp::Qr { .. } => Kernel::Qr { a: inputs[0] },
            KernelOp::Ormqr { .. } => Kernel::Ormqr {
                f: inputs[0],
                b: inputs[1],
            },
            KernelOp::FactorTri { uplo, .. } => Kernel::FactorTri { uplo, f: inputs[0] },
            KernelOp::PivotApply { side, .. } => Kernel::PivotApply {
                side,
                f: inputs[0],
                b: inputs[1],
            },
            KernelOp::CopyTriangle { .. } => unreachable!("handled above"),
        };
        kernel.run_into(out, cfg)
    }
}

/// Straight-loop naive kernels for the BLAS-3 multiplication family (GEMM,
/// SYRK, SYMM, TRMM, TRSM on either side); everything else delegates to the
/// native implementations.
///
/// Deliberately *not* a slowed-down copy of the native backend: the naive
/// loops skip packing, blocking and the parallel runtime entirely, so their
/// efficiency surface is nearly flat — above the native surface at small
/// operand orders (where packing overhead dominates) and far below it at
/// large ones. The crossover is what makes per-call backend selection a real
/// decision rather than a constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl Backend for ReferenceBackend {
    fn name(&self) -> &'static str {
        REFERENCE_BACKEND_NAME
    }

    fn supports(&self, _op: &KernelOp) -> bool {
        true
    }

    fn run_into(
        &self,
        op: &KernelOp,
        inputs: &[&Matrix],
        out: &mut Matrix,
        cfg: &BlockConfig,
    ) -> Result<()> {
        match *op {
            KernelOp::Gemm { transa, transb, .. } => gemm_naive(
                transa,
                transb,
                1.0,
                &inputs[0].view(),
                &inputs[1].view(),
                0.0,
                &mut out.view_mut(),
            ),
            KernelOp::Syrk { uplo, trans, .. } => syrk_reference(uplo, trans, inputs[0], out),
            KernelOp::Symm { side, uplo, .. } => {
                symm_reference(side, uplo, inputs[0], inputs[1], out)
            }
            KernelOp::Trmm {
                side, uplo, trans, ..
            } => trmm_naive(
                side,
                uplo,
                trans,
                1.0,
                &inputs[0].view(),
                &inputs[1].view(),
                &mut out.view_mut(),
            ),
            KernelOp::Trsm {
                side, uplo, trans, ..
            } => trsm_naive(
                side,
                uplo,
                trans,
                1.0,
                &inputs[0].view(),
                &inputs[1].view(),
                &mut out.view_mut(),
            ),
            // Factorisations and packed-factor movers have one shared
            // implementation; see the module docs.
            _ => NativeBackend.run_into(op, inputs, out, cfg),
        }
    }
}

/// One triangle of `op(A)·op(A)ᵀ` by plain triple loop, the other triangle
/// left at zero — the same output contract as the blocked SYRK.
fn syrk_reference(uplo: Uplo, trans: Trans, a: &Matrix, c: &mut Matrix) -> Result<()> {
    let (n, k) = trans.apply(a.shape());
    if c.shape() != (n, n) {
        return Err(MatrixError::DimensionMismatch {
            op: "syrk (reference)",
            lhs: c.shape(),
            rhs: (n, n),
        });
    }
    let get = |i: usize, p: usize| match trans {
        Trans::No => a[(i, p)],
        Trans::Yes => a[(p, i)],
    };
    c.fill(0.0);
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, n),
            Uplo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            let mut acc = 0.0;
            for p in 0..k {
                acc += get(i, p) * get(j, p);
            }
            c[(i, j)] = acc;
        }
    }
    Ok(())
}

/// `A_sym·B` (Left) or `B·A_sym` (Right) by plain triple loop, reading the
/// symmetric operand through a mirror of its stored triangle — the same
/// input contract as the blocked SYMM.
fn symm_reference(
    side: Side,
    uplo: Uplo,
    a_sym: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
) -> Result<()> {
    let order = a_sym.rows();
    let ok = a_sym.cols() == order
        && c.shape() == b.shape()
        && match side {
            Side::Left => b.rows() == order,
            Side::Right => b.cols() == order,
        };
    if !ok {
        return Err(MatrixError::DimensionMismatch {
            op: "symm (reference)",
            lhs: a_sym.shape(),
            rhs: b.shape(),
        });
    }
    let sym = |i: usize, j: usize| {
        let mirrored = match uplo {
            Uplo::Lower => i < j,
            Uplo::Upper => i > j,
        };
        if mirrored {
            a_sym[(j, i)]
        } else {
            a_sym[(i, j)]
        }
    };
    let (m, n) = b.shape();
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            match side {
                Side::Left => {
                    for p in 0..order {
                        acc += sym(i, p) * b[(p, j)];
                    }
                }
                Side::Right => {
                    for p in 0..order {
                        acc += b[(i, p)] * sym(p, j);
                    }
                }
            }
            c[(i, j)] = acc;
        }
    }
    Ok(())
}

/// Look up a backend by its stable name.
#[must_use]
pub fn backend_by_name(name: &str) -> Option<std::sync::Arc<dyn Backend>> {
    match name {
        NATIVE_BACKEND_NAME => Some(std::sync::Arc::new(NativeBackend)),
        REFERENCE_BACKEND_NAME => Some(std::sync::Arc::new(ReferenceBackend)),
        _ => None,
    }
}

/// Every backend this build ships, native first.
#[must_use]
pub fn all_backends() -> Vec<std::sync::Arc<dyn Backend>> {
    vec![
        std::sync::Arc::new(NativeBackend),
        std::sync::Arc::new(ReferenceBackend),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamb_matrix::ops::max_abs_diff;
    use lamb_matrix::random::{random_seeded, random_spd, random_triangular};

    fn run(backend: &dyn Backend, op: &KernelOp, inputs: &[&Matrix]) -> Matrix {
        let (m, n) = op.output_shape();
        let mut out = Matrix::zeros(m, n);
        backend
            .run_into(op, inputs, &mut out, &BlockConfig::default())
            .unwrap();
        out
    }

    #[test]
    fn backends_agree_on_the_multiplication_family_both_sides() {
        let a = random_seeded(17, 13, 1);
        let b = random_seeded(13, 9, 2);
        let s = random_spd(17, 3);
        let sr = random_spd(9, 4);
        let l = random_triangular(17, Uplo::Lower, 5);
        let u = random_triangular(9, Uplo::Upper, 6);
        let rect = random_seeded(17, 9, 7);
        let cases: Vec<(KernelOp, Vec<&Matrix>)> = vec![
            (
                KernelOp::Gemm {
                    transa: Trans::No,
                    transb: Trans::No,
                    m: 17,
                    n: 9,
                    k: 13,
                },
                vec![&a, &b],
            ),
            (
                KernelOp::Syrk {
                    uplo: Uplo::Lower,
                    trans: Trans::No,
                    n: 17,
                    k: 13,
                },
                vec![&a],
            ),
            (
                KernelOp::Syrk {
                    uplo: Uplo::Upper,
                    trans: Trans::Yes,
                    n: 13,
                    k: 17,
                },
                vec![&a],
            ),
            (
                KernelOp::Symm {
                    side: Side::Left,
                    uplo: Uplo::Lower,
                    m: 17,
                    n: 9,
                },
                vec![&s, &rect],
            ),
            (
                KernelOp::Symm {
                    side: Side::Right,
                    uplo: Uplo::Upper,
                    m: 17,
                    n: 9,
                },
                vec![&sr, &rect],
            ),
            (
                KernelOp::Trmm {
                    side: Side::Left,
                    uplo: Uplo::Lower,
                    trans: Trans::No,
                    m: 17,
                    n: 9,
                },
                vec![&l, &rect],
            ),
            (
                KernelOp::Trmm {
                    side: Side::Right,
                    uplo: Uplo::Upper,
                    trans: Trans::Yes,
                    m: 17,
                    n: 9,
                },
                vec![&u, &rect],
            ),
            (
                KernelOp::Trsm {
                    side: Side::Left,
                    uplo: Uplo::Lower,
                    trans: Trans::No,
                    m: 17,
                    n: 9,
                },
                vec![&l, &rect],
            ),
            (
                KernelOp::Trsm {
                    side: Side::Right,
                    uplo: Uplo::Upper,
                    trans: Trans::No,
                    m: 17,
                    n: 9,
                },
                vec![&u, &rect],
            ),
        ];
        for (op, inputs) in cases {
            let native = run(&NativeBackend, &op, &inputs);
            let reference = run(&ReferenceBackend, &op, &inputs);
            assert!(max_abs_diff(&native, &reference).unwrap() < 1e-10, "{op}");
        }
    }

    #[test]
    fn reference_backend_delegates_the_factorisations() {
        let s = random_spd(12, 8);
        let op = KernelOp::Potrf {
            uplo: Uplo::Lower,
            n: 12,
        };
        let native = run(&NativeBackend, &op, &[&s]);
        let reference = run(&ReferenceBackend, &op, &[&s]);
        assert_eq!(max_abs_diff(&native, &reference).unwrap(), 0.0);
        let a = random_seeded(10, 10, 9);
        let op = KernelOp::Getrf { n: 10 };
        let native = run(&NativeBackend, &op, &[&a]);
        let reference = run(&ReferenceBackend, &op, &[&a]);
        assert_eq!(max_abs_diff(&native, &reference).unwrap(), 0.0);
    }

    #[test]
    fn both_backends_support_the_full_vocabulary() {
        let ops = [
            KernelOp::Gemm {
                transa: Trans::No,
                transb: Trans::No,
                m: 4,
                n: 4,
                k: 4,
            },
            KernelOp::Trsm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: Trans::No,
                m: 4,
                n: 4,
            },
            KernelOp::PivotApply {
                side: Side::Right,
                m: 4,
                n: 4,
            },
            KernelOp::Qr { m: 6, n: 4 },
        ];
        for op in &ops {
            assert!(NativeBackend.supports(op));
            assert!(ReferenceBackend.supports(op));
        }
        assert_eq!(NativeBackend.name(), "native");
        assert_eq!(ReferenceBackend.name(), "reference");
        assert!(backend_by_name("native").is_some());
        assert!(backend_by_name("reference").is_some());
        assert!(backend_by_name("mkl").is_none());
        assert_eq!(all_backends().len(), 2);
    }

    #[test]
    fn degenerate_zero_dimensions_execute_cleanly() {
        let empty = Matrix::zeros(0, 0);
        let b = Matrix::zeros(0, 5);
        let op = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: Trans::No,
            m: 0,
            n: 5,
        };
        for backend in all_backends() {
            let out = run(backend.as_ref(), &op, &[&empty, &b]);
            assert_eq!(out.shape(), (0, 5));
        }
    }

    #[test]
    fn shape_errors_are_reported_not_panicked() {
        let bad = Matrix::zeros(3, 3);
        let b = Matrix::zeros(4, 5);
        let op = KernelOp::Symm {
            side: Side::Left,
            uplo: Uplo::Lower,
            m: 4,
            n: 5,
        };
        let mut out = Matrix::zeros(4, 5);
        for backend in all_backends() {
            assert!(backend
                .run_into(&op, &[&bad, &b], &mut out, &BlockConfig::default())
                .is_err());
        }
    }
}
